"""Figure 6 benchmark: the Lemma 4.1 contradiction sequence for max.

Fig. 6 illustrates the witness ``a_i = (i, 0)``, ``Δ_ij = (0, j)``: adding
``Δ`` after computing ``max(i, 0)`` must release ``j - i`` more outputs, but
after computing ``max(j, 0)`` it must release none — forcing any
output-oblivious candidate CRN to overproduce.  The benchmark verifies the
witness, shows the bounded search rediscovers it, and measures the actual
overshoot of the (necessarily output-consuming) four-reaction max CRN.
"""

import pytest

from repro.core.impossibility import (
    find_contradiction_witness,
    max_contradiction_witness,
    verify_witness,
)
from repro.functions.catalog import maximum_spec
from repro.verify.overproduction import find_overproduction


def test_fig6_explicit_witness(benchmark):
    witness = max_contradiction_witness()

    def run():
        return verify_witness(lambda x: max(x), witness, terms=8)

    assert benchmark(run)
    rows = [(witness.a(i), witness.delta(i)) for i in range(1, 5)]
    print("\n[Fig. 6] witness rows (a_i, Δ): " + ", ".join(str(row) for row in rows))


def test_fig6_witness_search(benchmark):
    def run():
        return find_contradiction_witness(
            lambda x: max(x), 2, direction_bound=1, offset_bound=2, terms=4
        )

    witness = benchmark.pedantic(run, rounds=1, iterations=1)
    assert witness is not None
    print(f"\n[Fig. 6] bounded Theorem 5.4 search found: {witness.describe()}")


@pytest.mark.parametrize("size", [4, 8, 16])
def test_fig6_overshoot_grows_with_input(benchmark, size):
    spec = maximum_spec()

    def run():
        return find_overproduction(spec.known_crn, spec.func, (size, size), trials=6, seed=2)

    witness = benchmark.pedantic(run, rounds=1, iterations=1)
    assert witness is not None
    print(f"\n[Fig. 6] max CRN on ({size},{size}): peak output {witness.max_output_seen} "
          f"(target {witness.target}, overshoot {witness.overshoot}, retracted={not witness.permanent})")
    # The overshoot scales with the input (up to x1 + x2 - max = min(x1, x2)).
    assert witness.overshoot >= size // 4
