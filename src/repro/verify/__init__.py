"""Empirical verification harness.

Stable computation is a reachability property, checked here two ways:

* exhaustively, by exploring the full reachability graph for small inputs
  (:mod:`repro.crn.reachability`), and
* statistically, by running the fair scheduler repeatedly and checking that
  every run converges to the expected output
  (:func:`repro.verify.stable.verify_stable_computation`).  The randomized
  path accepts ``engine="vectorized"`` to gather its repeated-run evidence
  through the numpy batch engine (:mod:`repro.sim.engine`), which is the
  practical option at large populations; ``DESIGN.md`` documents why this
  randomized substitution is sound evidence (though not a proof).

The package also audits output-obliviousness, searches for overproduction
witnesses (the failure mode of composing non-output-oblivious CRNs,
Section 1.2), and checks compositions end to end.

API
---

==============================  ==========================================================
Symbol                          Purpose
==============================  ==========================================================
``verify_stable_computation``   Exhaustive-or-randomized stable-computation check
                                (``method=``, ``engine="python"|"vectorized"``).
``InputVerification``           Per-input verdict (method used, pass/fail, detail).
``VerificationReport``          Aggregate over a grid of inputs, with ``describe()``.
``audit_output_oblivious``      Structural audit: does Y ever appear as a reactant?
``ObliviousnessReport``         Result of the audit, listing offending reactions.
``find_overproduction``         Adversarial search for output overshoot witnesses.
``OverproductionWitness``       A schedule that pushed output above the target.
``measure_overshoot``           Peak-minus-final output statistics over biased runs.
``verify_composition``          End-to-end check of composed (concatenated) CRNs.
``CompositionReport``           Result of the composition check.
``sample_kinetic_distribution``  Seeded per-trajectory step/output samples per engine.
``ks_two_sample`` / ``KSResult``  Two-sample Kolmogorov–Smirnov test (pure python).
``assert_distributions_match``  Cross-engine statistical equivalence gate (KS, alpha).
``DistributionSample``          The sampled step/output distributions for one engine.
==============================  ==========================================================
"""

from repro.verify.oblivious import ObliviousnessReport, audit_output_oblivious
from repro.verify.stable import InputVerification, VerificationReport, verify_stable_computation
from repro.verify.overproduction import OverproductionWitness, find_overproduction, measure_overshoot
from repro.verify.composition import CompositionReport, verify_composition
from repro.verify.statistical import (
    DistributionSample,
    KSResult,
    assert_distributions_match,
    ks_two_sample,
    sample_kinetic_distribution,
)

__all__ = [
    "ObliviousnessReport",
    "audit_output_oblivious",
    "InputVerification",
    "VerificationReport",
    "verify_stable_computation",
    "OverproductionWitness",
    "find_overproduction",
    "measure_overshoot",
    "CompositionReport",
    "verify_composition",
    "DistributionSample",
    "KSResult",
    "assert_distributions_match",
    "ks_two_sample",
    "sample_kinetic_distribution",
]
