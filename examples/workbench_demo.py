#!/usr/bin/env python3
"""Demo of the unified repro.api workbench (sibling of batch_engine_demo.py).

The whole spec → CRN → simulate → verify pipeline through one facade: a
frozen ``RunConfig`` instead of repeated keyword clouds, strategy-selectable
compilation, engine selection through the pluggable registry (including a
custom engine registered on the fly), and per-input seeded sweeps.

Run with::

    PYTHONPATH=src python examples/workbench_demo.py
"""

from repro import RunConfig, Workbench
from repro.functions.catalog import (
    maximum_spec,
    minimum_spec,
    quilt_2d_fig3b_spec,
    threshold_capped_spec,
)
from repro.sim.registry import register_engine, registered_engines, unregister_engine
from repro.sim.runner import PythonEngine


def main() -> None:
    wb = Workbench(RunConfig(trials=8, seed=7))
    print(f"=== {wb!r} ===")
    for info in wb.engines():
        population = info.max_recommended_population or "unbounded"
        print(f"  engine {info.name!r}: pop<={population} — {info.description}")
    print()

    print("=== compile -> simulate -> verify, one object per function ===")
    for spec, strategy in [
        (minimum_spec(), "auto"),          # hand-written Fig. 1 CRN
        (threshold_capped_spec(), "1d"),   # Theorem 3.1 construction
        (quilt_2d_fig3b_spec(), "quilt"),  # Lemma 6.1 construction
    ]:
        compiled = wb.compile(spec, strategy=strategy)
        x = (4,) * spec.dimension
        report = compiled.simulate(x)
        verification = compiled.verify(inputs=[x, (1,) * spec.dimension])
        print(
            f"  {compiled!r}\n"
            f"    f{x} = {spec(x)}; simulated mode {report.output_mode} "
            f"({'unanimous' if report.output_unanimous else 'split'}), "
            f"verification {'PASS' if verification.passed else 'FAIL'}"
        )
    print()

    print("=== per-call overrides derive configs; the workbench never mutates ===")
    compiled = wb.compile(maximum_spec())
    python = compiled.simulate((25, 60))
    vectorized = compiled.simulate((25, 60), engine="vectorized", trials=100)
    print(f"  python    : {len(python.outputs)} trials, mode {python.output_mode}")
    print(
        f"  vectorized: {len(vectorized.outputs)} trials, mode {vectorized.output_mode}, "
        f"max overshoot {vectorized.max_overshoot}"
    )
    print(f"  workbench config still: {wb.config.describe()}")
    print()

    print("=== sweeps spawn an independent seed per input ===")
    reports = wb.compile(minimum_spec()).sweep([(1, 1), (2, 3), (9, 4)])
    print(f"  min over sweep: {[r.output_mode for r in reports]}")
    print()

    print("=== plugging a custom engine into the registry ===")

    @register_engine(
        "traced-python",
        max_recommended_population=2_000,
        description="python engine + call tracing",
    )
    class TracedEngine(PythonEngine):
        def run_many(self, crn, x, config):
            print(f"  [traced-python] run_many {crn.name} on {tuple(x)}: {config.describe()}")
            return super().run_many(crn, x, config)

    try:
        report = compiled.simulate((5, 8), engine="traced-python", trials=3)
        print(f"  dispatched without touching any dispatch code -> mode {report.output_mode}")
        print(f"  registry now: {[info.name for info in registered_engines()]}")
    finally:
        unregister_engine("traced-python")


if __name__ == "__main__":
    main()
