"""Unit tests for composition by concatenation (Section 2.3)."""

import pytest

from repro.crn.composition import concatenate, fan_out_network, parallel_composition, rename_disjoint
from repro.crn.network import CRN
from repro.crn.reachability import stably_computes_exhaustive
from repro.crn.species import Species, species
from repro.functions.catalog import double_spec, maximum_spec, minimum_spec


X, X1, X2, Y, W = species("X X1 X2 Y W")


class TestConcatenate:
    def test_two_min_of_doubles_composition(self):
        # 2·min(x1, x2): min upstream, doubling downstream (the Section 1.2 example).
        upstream = minimum_spec().known_crn
        downstream = double_spec().known_crn
        composed = concatenate(upstream, downstream)
        verdicts = stably_computes_exhaustive(
            composed, lambda x: 2 * min(x), [(0, 0), (1, 2), (2, 2), (3, 1)]
        )
        assert all(v.holds and v.conclusive for v in verdicts)

    def test_composition_is_output_oblivious_when_both_are(self):
        composed = concatenate(minimum_spec().known_crn, double_spec().known_crn)
        assert composed.is_output_oblivious()

    def test_requires_output_oblivious_upstream(self):
        with pytest.raises(ValueError):
            concatenate(maximum_spec().known_crn, double_spec().known_crn)

    def test_non_oblivious_upstream_allowed_when_requested(self):
        composed = concatenate(
            maximum_spec().known_crn,
            double_spec().known_crn,
            require_output_oblivious=False,
        )
        assert composed.dimension == 2

    def test_naive_max_doubling_concatenation_fails(self):
        # The paper's Section 1.2 failure mode: doubling can lock in the overshoot,
        # so the concatenation does not stably compute 2·max.
        composed = concatenate(
            maximum_spec().known_crn,
            double_spec().known_crn,
            require_output_oblivious=False,
        )
        verdicts = stably_computes_exhaustive(composed, lambda x: 2 * max(x), [(1, 1), (2, 1)])
        assert any(not v.holds for v in verdicts)

    def test_leader_split_reaction_added(self):
        leader_crn = CRN([Species("L") + X >> Y], (X,), Y, leader=Species("L"), name="min1")
        composed = concatenate(leader_crn, double_spec().known_crn)
        assert composed.leader is not None
        assert any(rxn.name == "leader-split" for rxn in composed.reactions)

    def test_downstream_input_index_bounds(self):
        with pytest.raises(ValueError):
            concatenate(double_spec().known_crn, minimum_spec().known_crn, downstream_input_index=5)

    def test_feed_forward_with_extra_upstream(self):
        # min(2a, 2b): two doubling CRNs feed both inputs of the min CRN.
        double_a = double_spec().known_crn
        double_b = double_spec().known_crn
        composed = concatenate(
            double_a,
            minimum_spec().known_crn,
            downstream_input_index=0,
            extra_upstream=[double_b],
        )
        assert composed.dimension == 2
        verdicts = stably_computes_exhaustive(
            composed, lambda x: min(2 * x[0], 2 * x[1]), [(0, 1), (1, 1), (2, 1)]
        )
        assert all(v.holds and v.conclusive for v in verdicts)


class TestHelpers:
    def test_rename_disjoint(self):
        up, down = rename_disjoint(minimum_spec().known_crn, double_spec().known_crn)
        assert not set(up.species()) & set(down.species())

    def test_rename_disjoint_keeps_shared(self):
        up, down = rename_disjoint(minimum_spec().known_crn, double_spec().known_crn, shared=[Y])
        assert Y in set(up.species()) and Y in set(down.species())

    def test_parallel_composition_disjoint(self):
        parallel = parallel_composition([minimum_spec().known_crn, double_spec().known_crn])
        assert parallel.dimension == 3
        assert parallel.is_output_oblivious()

    def test_fan_out_reactions(self):
        copies = [Species("X_a"), Species("X_b")]
        (rxn,) = fan_out_network(X, copies)
        assert rxn.reactant_count(X) == 1
        assert all(rxn.product_count(sp) == 1 for sp in copies)

    def test_fan_out_requires_targets(self):
        with pytest.raises(ValueError):
            fan_out_network(X, [])
