"""repro — a reproduction of "Composable computation in discrete chemical reaction networks".

Severson, Haley, Doty (PODC 2019).  The package implements the discrete CRN
model, output-oblivious (composable) computation, the paper's characterization
of obliviously-computable functions (Theorem 5.2), all of its constructions
(Theorems 3.1 and 9.2, Lemmas 6.1 and 6.2), the Lemma 4.1 impossibility tool,
the Section 7 domain decomposition, and the Section 8 continuous-CRN
correspondence, together with simulators, a verification harness, and a
benchmark suite regenerating every figure of the paper.

Quickstart (the :class:`~repro.api.workbench.Workbench` facade)::

    import repro

    wb = repro.Workbench(repro.RunConfig(trials=20, seed=7))
    compiled = wb.compile(repro.minimum_spec())
    assert compiled.verify().passed
    print(compiled.simulate((30, 50)).output_mode)  # -> 30

or hands-on with the underlying pieces::

    from repro import species, CRN, verify_stable_computation

    X1, X2, Y = species("X1 X2 Y")
    min_crn = CRN([X1 + X2 >> Y], (X1, X2), Y, name="min")
    report = verify_stable_computation(min_crn, lambda x: min(x[0], x[1]))
    assert report.passed
"""

from repro.crn import (
    CRN,
    Configuration,
    Expression,
    Reaction,
    Species,
    concatenate,
    parse_reaction,
    species,
)
from repro.quilt import EventuallyMin, QuiltAffine
from repro.core import (
    FunctionSpec,
    build_1d_crn,
    build_crn_for,
    build_general_crn,
    build_leaderless_1d_crn,
    build_quilt_affine_crn,
    check_obliviously_computable,
    decompose,
)
from repro.verify import (
    audit_output_oblivious,
    find_overproduction,
    verify_composition,
    verify_stable_computation,
)
from repro.api import RunConfig
from repro.api.workbench import CompiledFunction, Workbench
from repro.functions import (
    add_spec,
    all_catalog_specs,
    all_extended_specs,
    all_paper_example_specs,
    double_spec,
    identity_spec,
    maximum_spec,
    minimum_spec,
)

from repro.lab import (
    Campaign,
    CampaignRun,
    SweepGrid,
    resume_campaign,
    run_campaign,
)

# Kept in sync with setup.py (tests/test_api_workbench.py enforces it and
# `python -m repro --version` prints it).
__version__ = "1.9.0"

__all__ = [
    "CRN",
    "Configuration",
    "Expression",
    "Reaction",
    "Species",
    "concatenate",
    "parse_reaction",
    "species",
    "EventuallyMin",
    "QuiltAffine",
    "FunctionSpec",
    "build_1d_crn",
    "build_crn_for",
    "build_general_crn",
    "build_leaderless_1d_crn",
    "build_quilt_affine_crn",
    "check_obliviously_computable",
    "decompose",
    "audit_output_oblivious",
    "find_overproduction",
    "verify_composition",
    "verify_stable_computation",
    "RunConfig",
    "Workbench",
    "CompiledFunction",
    "Campaign",
    "CampaignRun",
    "SweepGrid",
    "resume_campaign",
    "run_campaign",
    "add_spec",
    "all_catalog_specs",
    "all_extended_specs",
    "all_paper_example_specs",
    "double_spec",
    "identity_spec",
    "maximum_spec",
    "minimum_spec",
    "__version__",
]
