"""The ``Workbench`` facade: spec → CRN → simulate → verify in one place.

The paper's point is *composable* computation, and this module makes the
workflow composable too.  Instead of threading the same keyword cloud through
``build_crn_for`` / ``run_many`` / ``verify_stable_computation`` by hand::

    wb = Workbench(RunConfig(trials=20, seed=7, engine="vectorized"))
    compiled = wb.compile(minimum_spec())          # builds + caches the CRN
    report = compiled.simulate((30, 50))           # ConvergenceReport
    verdict = compiled.verify()                    # VerificationReport
    mean = compiled.expected_output((30, 50))      # Gillespie estimate

Every method returns the existing report types unchanged, and every per-call
override (``trials=``, ``engine=``, ``epsilon=``, …) derives a fresh
:class:`~repro.api.config.RunConfig` via ``replace()`` — the workbench itself
is never mutated.  Any registered engine is addressable per call, including
the approximate tau-leaping backend::

    compiled.simulate((100_000, 100_000), engine="tau", epsilon=0.03)
"""

from __future__ import annotations

import copy
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.api.config import RunConfig
from repro.core.characterization import (
    CharacterizationVerdict,
    build_crn_for,
    check_obliviously_computable,
)
from repro.core.specs import FunctionSpec
from repro.crn.network import CRN
from repro.sim.registry import EngineInfo, registered_engines, validate_engine_request
from repro.sim.runner import (
    ConvergenceReport,
    estimate_expected_output,
    run_many,
    sweep_inputs,
)
from repro.verify.stable import VerificationReport, verify_stable_computation


class CompiledFunction:
    """A spec bound to a built CRN, ready to simulate and verify.

    Produced by :meth:`Workbench.compile`.  Holds the CRN *and* its
    :class:`~repro.sim.engine.CompiledCRN` IR (forced eagerly so the first
    run pays no compilation cost — the IR now carries the sparse term lists
    and reaction dependency graph consumed by the scalar kernel of
    :mod:`repro.sim.kernel` as well as the dense matrices consumed by the
    vectorized batch engines), plus the run configuration inherited from the
    workbench.
    """

    def __init__(
        self,
        spec: FunctionSpec,
        crn: CRN,
        strategy: str,
        config: RunConfig,
    ) -> None:
        self.spec = spec
        self.crn = crn
        self.strategy = strategy
        self.config = config
        self.compiled_crn = crn.compiled()

    # -- configuration ---------------------------------------------------------

    def _resolved(self, config: Optional[RunConfig], overrides: dict) -> RunConfig:
        # Explicit per-call requests are checked against the resolved engine's
        # capability metadata: ``fair=True`` (an assertion of fair-scheduler
        # semantics, not a RunConfig field) rejects kinetic-only engines such
        # as "nrm"/"tau", and an explicit ``epsilon=`` override rejects exact
        # engines, which would silently ignore the error knob.
        fair = bool(overrides.pop("fair", False))
        explicit_epsilon = overrides.get("epsilon")
        if config is not None:
            resolved = config.replace(**overrides) if overrides else config
        elif overrides:
            resolved = self.config.replace(**overrides)
        else:
            resolved = self.config
        if fair or explicit_epsilon is not None:
            validate_engine_request(
                resolved.engine, fair=fair, epsilon=explicit_epsilon
            )
        return resolved

    def with_config(self, config: Optional[RunConfig] = None, **overrides) -> "CompiledFunction":
        """A copy of this compiled function carrying a derived run configuration."""
        clone = copy.copy(self)
        clone.config = self._resolved(config, overrides)
        return clone

    # -- the workflow ----------------------------------------------------------

    def __call__(self, x: Sequence[int]) -> int:
        """Evaluate the *specification* (not the CRN) at ``x``."""
        return self.spec(x)

    def simulate(
        self, x: Sequence[int], config: Optional[RunConfig] = None, **overrides
    ) -> ConvergenceReport:
        """Repeated fair-scheduler runs on one input (see :func:`repro.sim.run_many`)."""
        return run_many(self.crn, x, config=self._resolved(config, overrides))

    def sweep(
        self,
        inputs: Iterable[Sequence[int]],
        config: Optional[RunConfig] = None,
        **overrides,
    ) -> List[ConvergenceReport]:
        """:meth:`simulate` over many inputs, with independent per-input seeds."""
        return sweep_inputs(self.crn, inputs, config=self._resolved(config, overrides))

    def expected_output(
        self, x: Sequence[int], config: Optional[RunConfig] = None, **overrides
    ) -> float:
        """Monte-Carlo mean output under Gillespie kinetics."""
        return estimate_expected_output(
            self.crn, x, config=self._resolved(config, overrides)
        )

    def verify(
        self,
        inputs: Optional[Iterable[Sequence[int]]] = None,
        method: str = "auto",
        exhaustive_limit: int = 20_000,
        config: Optional[RunConfig] = None,
        **overrides,
    ) -> VerificationReport:
        """Check that the built CRN stably computes the spec.

        Defaults to the exhaustive-with-randomized-fallback policy of
        :func:`repro.verify.verify_stable_computation` over the standard input
        grid; the randomized path uses this compiled function's run config.
        """
        return verify_stable_computation(
            self.crn,
            self.spec,
            inputs=inputs,
            method=method,
            exhaustive_limit=exhaustive_limit,
            function_name=self.spec.name,
            config=self._resolved(config, overrides),
        )

    def __repr__(self) -> str:
        return (
            f"CompiledFunction({self.spec.name!r}, strategy={self.strategy!r}, "
            f"reactions={len(self.crn.reactions)}, engine={self.config.engine!r})"
        )


class Workbench:
    """The documented front door: compile specs into runnable, verifiable CRNs.

    Parameters
    ----------
    config:
        The default :class:`~repro.api.config.RunConfig` handed to every
        compiled function (``RunConfig()`` when omitted).  Per-call overrides
        never mutate it.

    Compilation results are cached per ``(spec, strategy)``, so repeated
    ``compile`` calls on the same spec object reuse both the CRN and its
    dense matrices.
    """

    def __init__(self, config: Optional[RunConfig] = None) -> None:
        self.config = config if config is not None else RunConfig()
        self._cache: Dict[Tuple[int, str, str], CompiledFunction] = {}

    def with_config(self, config: Optional[RunConfig] = None, **overrides) -> "Workbench":
        """A new workbench with a derived default configuration (cache not shared)."""
        if config is None:
            config = self.config.replace(**overrides) if overrides else self.config
        elif overrides:
            config = config.replace(**overrides)
        return Workbench(config)

    def compile(
        self, spec: FunctionSpec, strategy: str = "auto", name: str = ""
    ) -> CompiledFunction:
        """Build (or fetch from cache) the CRN for ``spec``.

        ``strategy`` is one of ``"auto"`` / ``"known"`` / ``"1d"`` /
        ``"leaderless"`` / ``"quilt"`` / ``"general"`` — see
        :func:`repro.core.characterization.build_crn_for`, which performs the
        actual dispatch.
        """
        key = (id(spec), strategy, name)
        cached = self._cache.get(key)
        if cached is not None and cached.spec is spec:
            return cached.with_config(self.config)
        crn = build_crn_for(spec, name=name, strategy=strategy)
        compiled = CompiledFunction(spec, crn, strategy, self.config)
        self._cache[key] = compiled
        return compiled

    def compile_json(self, payload) -> CompiledFunction:
        """Compile from a wire-form request: the serve protocol's seam.

        ``payload`` is a JSON-shaped dict — ``{"spec": <name or
        spec_to_json_dict payload>, "strategy": ..., "config": ...}`` — the
        same shape ``POST /v1/compile`` and ``POST /v1/simulate`` accept.
        The spec resolves by registered name
        (:func:`repro.api.serialization.spec_from_json_dict`), the config
        merges over this workbench's default
        (:meth:`repro.api.config.RunConfig.from_json_dict`), and validation
        errors name the offending field.
        """
        from repro.api.serialization import spec_from_json_dict

        if not isinstance(payload, dict):
            raise ValueError(f"payload must be a dict, got {type(payload).__name__}")
        raw_spec = payload.get("spec")
        if isinstance(raw_spec, str):
            raw_spec = {"name": raw_spec}
        spec = spec_from_json_dict(raw_spec if raw_spec is not None else {})
        strategy = payload.get("strategy", "auto")
        compiled = self.compile(spec, strategy=strategy)
        if payload.get("config") is not None:
            compiled = compiled.with_config(
                RunConfig.from_json_dict(payload["config"], default=self.config)
            )
        return compiled

    def characterize(self, spec: FunctionSpec, **kwargs) -> CharacterizationVerdict:
        """Run the Theorem 5.2 / 5.4 decision procedure on ``spec``."""
        return check_obliviously_computable(spec, **kwargs)

    def engines(self) -> Tuple[EngineInfo, ...]:
        """The registered simulation engines with their capability metadata."""
        return registered_engines()

    def campaign(
        self,
        name: str,
        specs,
        inputs,
        engines: Optional[Sequence[str]] = None,
        configs=None,
        seed: Optional[int] = None,
        out_dir: Optional[str] = None,
        workers: int = 1,
        **kwargs,
    ):
        """Run a :mod:`repro.lab` campaign seeded with this workbench's defaults.

        ``specs`` accepts registered spec names, ``(name, strategy)`` pairs,
        or :class:`~repro.core.specs.FunctionSpec` instances (auto-registered
        under their own name); ``inputs`` is an explicit list of tuples or a
        :class:`~repro.lab.campaign.SweepGrid`.  Unless overridden, the engine
        axis, config variant, and master seed come from this workbench's
        :class:`~repro.api.config.RunConfig`.  Returns the
        :class:`~repro.lab.campaign.CampaignRun` (results + summary +
        provenance counts); artifacts land in ``out_dir`` (default
        ``runs/<name>``).  Extra keyword arguments flow to
        :func:`repro.lab.campaign.run_campaign` (``cache_dir``, ``timeout``,
        ``executor``, ``progress``, ...).
        """
        # Imported lazily: repro.lab sits above this module in the layering.
        from repro.lab.campaign import Campaign, run_campaign

        campaign = Campaign(
            name=name,
            specs=list(specs),
            inputs=inputs,
            engines=tuple(engines) if engines is not None else (self.config.engine,),
            configs=tuple(configs) if configs is not None else (self.config,),
            seed=seed if seed is not None else self.config.seed,
        )
        import os

        return run_campaign(
            campaign,
            out_dir if out_dir is not None else os.path.join("runs", name),
            workers=workers,
            **kwargs,
        )

    def __repr__(self) -> str:
        return f"Workbench(config={self.config.describe()}, cached={len(self._cache)})"
