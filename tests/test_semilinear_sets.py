"""Unit tests for semilinear sets (Definition 2.5)."""

import pytest

from repro.semilinear.sets import (
    Complement,
    EmptySet,
    Intersection,
    ModSet,
    ThresholdSet,
    Union,
    UniversalSet,
    box_set,
    equality_set,
)


class TestThresholdSet:
    def test_membership(self):
        threshold = ThresholdSet((1, -1), 0)  # x1 >= x2
        assert threshold.contains((3, 2))
        assert threshold.contains((2, 2))
        assert not threshold.contains((1, 2))

    def test_boundary_hyperplane(self):
        assert ThresholdSet((2, 0), 3).boundary_hyperplane() == ((2, 0), 3)

    def test_dimension_mismatch_raises(self):
        with pytest.raises(ValueError):
            ThresholdSet((1, 1), 0).contains((1,))

    def test_str(self):
        assert ">=" in str(ThresholdSet((1,), 2))


class TestModSet:
    def test_membership(self):
        parity = ModSet((1, 1), 0, 2)
        assert parity.contains((1, 1))
        assert not parity.contains((1, 2))

    def test_negative_residue_normalized(self):
        assert ModSet((1,), -1, 3).contains((2,))

    def test_zero_modulus_rejected(self):
        with pytest.raises(ValueError):
            ModSet((1,), 0, 0)


class TestBooleanAlgebra:
    def test_union_intersection_complement(self):
        ge2 = ThresholdSet((1,), 2)
        even = ModSet((1,), 0, 2)
        union = ge2 | even
        inter = ge2 & even
        comp = ~ge2
        assert union.contains((0,)) and union.contains((3,))
        assert inter.contains((4,)) and not inter.contains((3,))
        assert comp.contains((1,)) and not comp.contains((2,))

    def test_difference(self):
        ge1 = ThresholdSet((1,), 1)
        ge3 = ThresholdSet((1,), 3)
        band = ge1 - ge3
        assert band.contains((2,)) and not band.contains((3,)) and not band.contains((0,))

    def test_mixed_dimension_rejected(self):
        with pytest.raises(ValueError):
            Union(ThresholdSet((1,), 0), ThresholdSet((1, 1), 0))

    def test_atoms_collected(self):
        expr = (ThresholdSet((1,), 1) & ModSet((1,), 0, 2)) | ThresholdSet((1,), 5)
        assert len(expr.threshold_atoms()) == 2
        assert len(expr.mod_atoms()) == 1

    def test_global_period_is_lcm(self):
        expr = ModSet((1,), 0, 4) & ModSet((1,), 1, 6)
        assert expr.global_period() == 12

    def test_universal_and_empty(self):
        assert UniversalSet(2).contains((5, 5))
        assert not EmptySet(2).contains((0, 0))
        assert UniversalSet(1).global_period() == 1


class TestEnumeration:
    def test_enumerate_upto(self):
        even = ModSet((1,), 0, 2)
        assert list(even.enumerate_upto(6)) == [(0,), (2,), (4,)]

    def test_count_upto_2d(self):
        diag = equality_set((1, -1), 0)
        assert diag.count_upto(4) == 4

    def test_is_empty_upto(self):
        assert ThresholdSet((1,), 100).is_empty_upto(10)
        assert not ThresholdSet((1,), 2).is_empty_upto(10)


class TestConstructors:
    def test_equality_set(self):
        diag = equality_set((1, -1), 0)
        assert diag.contains((3, 3)) and not diag.contains((3, 2))

    def test_box_set(self):
        box = box_set((1, 1), (2, 3))
        assert box.contains((1, 3)) and box.contains((2, 1))
        assert not box.contains((0, 1)) and not box.contains((2, 4))

    def test_box_set_dimension_mismatch(self):
        with pytest.raises(ValueError):
            box_set((0,), (1, 1))
