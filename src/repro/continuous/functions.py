"""Piecewise rational-linear real-valued functions (the continuous function class).

The continuous characterization ([9], restated in Section 8) involves three
properties: superadditivity, positive-continuity (continuity on each face
``D_S`` of the nonnegative orthant, where ``S`` is the set of zero
coordinates), and piecewise rational-linearity.  The classes here represent
such functions explicitly as a min of rational-linear functions per face,
which is the normal form Lemma 8 of [9] provides.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple


RationalVector = Tuple[Fraction, ...]


@dataclass(frozen=True)
class LinearFunction:
    """A rational-linear function ``z -> gradient · z``."""

    gradient: RationalVector

    def __post_init__(self) -> None:
        object.__setattr__(self, "gradient", tuple(Fraction(g) for g in self.gradient))

    @property
    def dimension(self) -> int:
        """The input dimension."""
        return len(self.gradient)

    def __call__(self, z: Sequence) -> Fraction:
        if len(z) != self.dimension:
            raise ValueError("dimension mismatch")
        return sum((g * Fraction(v) for g, v in zip(self.gradient, z)), start=Fraction(0))

    def is_nonnegative(self) -> bool:
        """True if the gradient is componentwise nonnegative (so the function is, on the orthant)."""
        return all(g >= 0 for g in self.gradient)


@dataclass(frozen=True)
class MinOfLinear:
    """The pointwise minimum of finitely many rational-linear functions."""

    pieces: Tuple[LinearFunction, ...]

    def __post_init__(self) -> None:
        if not self.pieces:
            raise ValueError("MinOfLinear needs at least one piece")
        dims = {piece.dimension for piece in self.pieces}
        if len(dims) != 1:
            raise ValueError("all pieces must share a dimension")

    @property
    def dimension(self) -> int:
        """The input dimension."""
        return self.pieces[0].dimension

    def __call__(self, z: Sequence) -> Fraction:
        return min(piece(z) for piece in self.pieces)

    def is_superadditive_on(self, samples: Iterable[Tuple[Sequence, Sequence]]) -> bool:
        """Check superadditivity on sample pairs (min of linear is always superadditive; sanity hook)."""
        for a, b in samples:
            total = tuple(Fraction(x) + Fraction(y) for x, y in zip(a, b))
            if self(a) + self(b) > self(total):
                return False
        return True

    @staticmethod
    def from_gradients(gradients: Iterable[Sequence]) -> "MinOfLinear":
        """Build a min-of-linear function from an iterable of gradient vectors."""
        return MinOfLinear(tuple(LinearFunction(tuple(Fraction(g) for g in gradient)) for gradient in gradients))


class PiecewiseRationalLinear:
    """A positive-continuous piecewise rational-linear function on ``R^d_{>=0}``.

    The function is given by one :class:`MinOfLinear` per face ``D_S`` (the set
    of points whose zero coordinates are exactly ``S``).  Faces without an
    explicit entry fall back to the face of their closure with the fewest
    additional zero coordinates; the all-coordinates-zero face is always 0.
    """

    def __init__(self, dimension: int, faces: Dict[FrozenSet[int], MinOfLinear], name: str = "") -> None:
        self.dimension = int(dimension)
        self.faces: Dict[FrozenSet[int], MinOfLinear] = {
            frozenset(key): value for key, value in faces.items()
        }
        self.name = name
        for key, value in self.faces.items():
            if any(not 0 <= index < dimension for index in key):
                raise ValueError(f"face index out of range: {sorted(key)}")
            if value.dimension != dimension - len(key):
                raise ValueError(
                    f"the face {sorted(key)} fixes {len(key)} coordinates, so its "
                    f"min-of-linear must have dimension {dimension - len(key)}"
                )

    def face_of(self, z: Sequence) -> FrozenSet[int]:
        """The set of zero coordinates of ``z``."""
        return frozenset(i for i, value in enumerate(z) if Fraction(value) == 0)

    def __call__(self, z: Sequence) -> Fraction:
        z = tuple(Fraction(value) for value in z)
        if len(z) != self.dimension:
            raise ValueError("dimension mismatch")
        if any(value < 0 for value in z):
            raise ValueError("the function is only defined on the nonnegative orthant")
        face = self.face_of(z)
        if len(face) == self.dimension:
            return Fraction(0)
        if face not in self.faces:
            raise ValueError(
                f"no piece is defined for the face with zero coordinates {sorted(face)}"
            )
        remaining = tuple(value for i, value in enumerate(z) if i not in face)
        return self.faces[face](remaining)

    # -- property checks ------------------------------------------------------------

    def is_superadditive_on(self, samples: Iterable[Tuple[Sequence, Sequence]]) -> bool:
        """Check superadditivity ``f(a) + f(b) <= f(a + b)`` on sample pairs."""
        for a, b in samples:
            total = tuple(Fraction(x) + Fraction(y) for x, y in zip(a, b))
            try:
                if self(a) + self(b) > self(total):
                    return False
            except ValueError:
                continue
        return True

    def is_positive_continuous_on_rays(self, rays: Iterable[Sequence], epsilon=Fraction(1, 1000)) -> bool:
        """A sampled continuity check along rays within a single face.

        For points ``z`` and ``z + epsilon·z`` in the same face the values must
        be close (within ``epsilon`` times the value plus a constant); exact
        continuity holds because each face is a min of linear functions, so
        this is a smoke check used by tests.
        """
        for ray in rays:
            z = tuple(Fraction(value) for value in ray)
            bumped = tuple(value * (1 + epsilon) for value in z)
            if self.face_of(z) != self.face_of(bumped):
                continue
            difference = abs(self(bumped) - self(z))
            if difference > epsilon * (abs(self(z)) + 1) * self.dimension:
                return False
        return True

    def __repr__(self) -> str:
        return f"PiecewiseRationalLinear(name={self.name!r}, d={self.dimension}, faces={len(self.faces)})"
