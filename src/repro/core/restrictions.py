"""Fixed-input restrictions (Observation 5.3).

Condition (iii) of Theorem 5.2 is recursive: every restriction
``f_[x(i) -> j]`` obtained by hard-coding one input must itself be
obliviously-computable.  Observation 5.3 shows the CRN-level counterpart: from
an output-oblivious CRN for ``f`` one obtains an output-oblivious CRN for the
restriction by renaming the leader and the ``i``-th input species and adding an
initial reaction ``L -> j X'_i + L'`` that injects the hard-coded input.
"""

from __future__ import annotations

from typing import Dict

from repro.core.specs import FunctionSpec
from repro.crn.network import CRN
from repro.crn.reaction import Reaction
from repro.crn.species import Expression, Species


def hardcode_input(crn: CRN, index: int, value: int, suffix: str = "_fixed") -> CRN:
    """The Observation 5.3 transformation: hard-code input ``index`` to ``value``.

    The resulting CRN has the same input species tuple as ``crn`` (the
    hard-coded coordinate is simply ignored: providing copies of the original
    ``X_i`` has no effect because every occurrence of it inside the reactions
    has been renamed).  It stably computes ``f_[x(index) -> value]`` and is
    output-oblivious whenever ``crn`` is.
    """
    if crn.leader is None:
        raise ValueError(
            "the Observation 5.3 transformation requires a leader to inject the hard-coded input"
        )
    if not 0 <= index < crn.dimension:
        raise ValueError(f"input index {index} out of range for dimension {crn.dimension}")
    value = int(value)
    if value < 0:
        raise ValueError("the hard-coded value must be nonnegative")

    old_input = crn.input_species[index]
    old_leader = crn.leader
    new_input = Species(old_input.name + suffix)
    new_leader = Species(old_leader.name + suffix)

    renamed = crn.renamed({old_input: new_input, old_leader: new_leader})
    injection_products: Dict[Species, int] = {new_leader: 1}
    if value > 0:
        injection_products[new_input] = value
    injection = Reaction(old_leader, Expression(injection_products), name="hardcode-input")

    return CRN(
        list(renamed.reactions) + [injection],
        crn.input_species,
        renamed.output_species,
        leader=old_leader,
        name=f"{crn.name or 'f'}[x{index + 1}={value}]",
    )


def restriction_spec(spec: FunctionSpec, index: int, value: int) -> FunctionSpec:
    """The spec of the restriction ``f_[x(index) -> value]`` (delegates to the spec)."""
    return spec.restriction(index, value)
