"""High-level simulation runners and convergence reporting.

Every repeated-run entry point accepts either the legacy keyword cloud
(``trials`` / ``max_steps`` / ``quiescence_window`` / ``seed`` / ``engine``)
or a single :class:`repro.api.config.RunConfig`; the keywords are forwarded
into a ``RunConfig`` internally, so both spellings hit the same code path.

Engines are resolved through the pluggable registry of
:mod:`repro.sim.registry`.  The two built-ins are registered here:

* ``"python"`` (default) — the scalar simulators, now backed by the shared
  kernel (:mod:`repro.sim.kernel`): one trajectory at a time over the
  ``CompiledCRN`` IR with dependency-graph propensity updates.  Seeded runs
  reproduce the historical dict-backed behaviour bit for bit.
* ``"vectorized"`` — the numpy batch engines of :mod:`repro.sim.engine`, which
  advance all trials simultaneously and remain the best option for very large
  populations or trial counts.  Seeded runs are reproducible, but draw from a
  numpy random stream distinct from the python engine's (see DESIGN.md).
* ``"nrm"`` — exact SSA via the Gibson–Bruck next-reaction method
  (:class:`repro.sim.kernel.NextReactionPolicy`): per-reaction putative firing
  times in an indexed priority queue, so each step costs O(|deps| log R)
  instead of the direct method's O(R) propensity scan — the engine of choice
  for the dozens-of-reactions networks the general construction emits.
  Scheduling is *kinetic only* (``supports_fair=False``); results are
  statistically — not bit-for-bit — equivalent to the other exact engines.
* ``"tau"`` — approximate SSA via tau-leaping
  (:class:`repro.sim.kernel.TauLeapPolicy`): many reactions fire per
  scheduler iteration when propensities are quasi-constant, controlled by the
  ``epsilon`` error knob on :class:`~repro.api.config.RunConfig`.  Scheduling
  is *kinetic* (Gillespie rates, not the fair scheduler), and results are
  statistically — not bit-for-bit — equivalent to the exact engines
  (``tests/test_statistical_equivalence.py`` gates this).  Intended for
  populations around 10^4 and above; under its recommended floor it degrades
  gracefully to exact stepping.
* ``"tau-vec"`` — batched tau-leaping
  (:class:`repro.sim.engine.BatchTauLeapEngine`): the whole trial batch
  advances one Cao–Gillespie–Petzold leap per round through dense numpy
  kinetics, compounding the batch engines' vectorization with tau's
  scheduler-iteration collapse.  Same ``epsilon`` knob, same kinetic-only
  scheduling and statistical (KS-gated) equivalence contract as ``"tau"``,
  same exact-fallback rule per trial — but on the numpy random stream, an
  order of magnitude faster at populations of 10^5 and above.

Third-party backends plug in via
:func:`repro.sim.registry.register_engine` and become addressable as
``engine="<name>"`` everywhere without touching any dispatch code.
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.api.config import RunConfig
from repro.crn.network import CRN
from repro.sim.fair import FairRunResult, FairScheduler
from repro.sim.gillespie import GillespieSimulator
from repro.sim.kernel import (
    NextReactionPolicy,
    SimulatorCore,
    TauLeapPolicy,
    default_quiescence_window,
)
from repro.sim.registry import check_engine, engine_names, get_engine, register_engine

__all__ = [
    "ConvergenceReport",
    "default_quiescence_window",  # re-exported; defined in repro.sim.kernel
    "run_to_convergence",
    "run_many",
    "estimate_expected_output",
    "sweep_inputs",
    "register_builtin_engines",
    "PythonEngine",
    "VectorizedEngine",
    "NextReactionEngine",
    "TauLeapEngine",
    "TauVecEngine",
]


def __getattr__(name: str):
    # Back-compat: the hard-coded ``ENGINES`` tuple is now a live view of the
    # registry, so engines registered at runtime show up too.
    if name == "ENGINES":
        return engine_names()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass
class ConvergenceReport:
    """Aggregate statistics over repeated runs of one CRN on one input."""

    input_value: Tuple[int, ...]
    outputs: List[int]
    max_outputs: List[int]
    steps: List[int]
    all_silent_or_converged: bool

    @property
    def output_mode(self) -> int:
        """The most frequent final output (ties broken by smallest value)."""
        if not self.outputs:
            raise ValueError(
                "ConvergenceReport aggregates zero runs; output_mode is undefined"
            )
        counts: Dict[int, int] = {}
        for value in self.outputs:
            counts[value] = counts.get(value, 0) + 1
        best = max(counts.values())
        return min(value for value, count in counts.items() if count == best)

    @property
    def output_unanimous(self) -> bool:
        """True if every run ended with the same output count."""
        return len(set(self.outputs)) == 1

    @property
    def mean_steps(self) -> float:
        """Mean number of reactions fired per run."""
        return statistics.fmean(self.steps) if self.steps else 0.0

    @property
    def max_overshoot(self) -> int:
        """The largest amount by which any run's peak output exceeded its final output.

        Zero when the report aggregates zero runs (no run overshot).
        """
        return max(
            (peak - final for peak, final in zip(self.max_outputs, self.outputs)),
            default=0,
        )


def run_to_convergence(
    crn: CRN,
    x: Sequence[int],
    max_steps: int = 1_000_000,
    quiescence_window: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> FairRunResult:
    """Run the fair scheduler once on input ``x`` until silence or quiescence.

    The quiescence window defaults to a value scaled with the input size so
    that catalytic CRNs (which never fall silent) still terminate.
    """
    if quiescence_window is None:
        quiescence_window = default_quiescence_window(x)
    scheduler = FairScheduler(crn, rng=rng)
    return scheduler.run_on_input(
        x, max_steps=max_steps, quiescence_window=quiescence_window
    )


# ---------------------------------------------------------------------------
# The built-in engines, registered through repro.sim.registry
# ---------------------------------------------------------------------------


def _aggregate_scalar_trials(crn: CRN, x: Sequence[int], config: RunConfig, run_one) -> ConvergenceReport:
    """Fold one scalar run per trial seed into a :class:`ConvergenceReport`.

    ``run_one(trial_seed)`` returns any result exposing
    ``final_configuration`` / ``max_output_seen`` / ``steps`` / ``silent`` /
    ``converged`` — the shared aggregation of the per-trajectory engines.
    """
    outputs: List[int] = []
    max_outputs: List[int] = []
    steps: List[int] = []
    all_done = True
    for trial_seed in config.trial_seeds():
        result = run_one(trial_seed)
        outputs.append(crn.output_count(result.final_configuration))
        max_outputs.append(result.max_output_seen)
        steps.append(result.steps)
        if not (result.silent or result.converged):
            all_done = False
    return ConvergenceReport(
        input_value=tuple(x),
        outputs=outputs,
        max_outputs=max_outputs,
        steps=steps,
        all_silent_or_converged=all_done,
    )


class PythonEngine:
    """The scalar reference engine: one trajectory at a time, ``random.Random``.

    Backed by the shared scalar kernel (:mod:`repro.sim.kernel`) through the
    :class:`~repro.sim.fair.FairScheduler` /
    :class:`~repro.sim.gillespie.GillespieSimulator` shims, so seeded runs
    stay bit-for-bit reproducible while populations of 10^4+ remain practical.
    """

    def run_many(self, crn: CRN, x: Sequence[int], config: RunConfig) -> ConvergenceReport:
        return _aggregate_scalar_trials(
            crn,
            x,
            config,
            lambda trial_seed: run_to_convergence(
                crn,
                x,
                max_steps=config.max_steps,
                quiescence_window=config.quiescence_window,
                rng=random.Random(trial_seed),
            ),
        )

    def estimate_expected_output(
        self, crn: CRN, x: Sequence[int], config: RunConfig
    ) -> float:
        total = 0.0
        for trial_seed in config.trial_seeds():
            simulator = GillespieSimulator(crn, rng=random.Random(trial_seed))
            result = simulator.run_on_input(x, max_steps=config.max_steps)
            total += crn.output_count(result.final_configuration)
        return total / config.trials


class VectorizedEngine:
    """The numpy batch engine (all trials advance simultaneously, one row each)."""

    def run_many(self, crn: CRN, x: Sequence[int], config: RunConfig) -> ConvergenceReport:
        from repro.sim.engine import BatchFairEngine

        quiescence_window = config.quiescence_window
        if quiescence_window is None:
            quiescence_window = default_quiescence_window(x)
        batch_engine = BatchFairEngine(crn.compiled(), seed=config.seed)
        result = batch_engine.run_on_input(
            x,
            batch=config.trials,
            max_steps=config.max_steps,
            quiescence_window=quiescence_window,
        )
        return ConvergenceReport(
            input_value=tuple(int(v) for v in x),
            outputs=[int(v) for v in result.output_counts()],
            max_outputs=[int(v) for v in result.max_output_seen],
            steps=[int(v) for v in result.steps],
            all_silent_or_converged=result.all_silent_or_converged(),
        )

    def estimate_expected_output(
        self, crn: CRN, x: Sequence[int], config: RunConfig
    ) -> float:
        from repro.sim.engine import BatchGillespieEngine

        batch_engine = BatchGillespieEngine(crn.compiled(), seed=config.seed)
        result = batch_engine.run_on_input(
            x, batch=config.trials, max_steps=config.max_steps
        )
        return float(result.output_counts().mean())


class NextReactionEngine:
    """Exact kinetic engine: Gibson–Bruck next-reaction method.

    One :class:`~repro.sim.kernel.SimulatorCore` trajectory per trial under
    :class:`~repro.sim.kernel.NextReactionPolicy`.  Samples the same CTMC as
    exact Gillespie, but each step repairs only the dependency-graph
    neighbours of the fired reaction (O(|deps| log R) against the direct
    method's O(R) scan).  Like ``"tau"``, ``run_many`` samples the *kinetic*
    process (``supports_fair=False``), and seeded runs are reproducible but
    on a differently-consumed stream than ``"python"`` — cross-engine
    agreement is gated by ``tests/test_statistical_equivalence.py``.
    """

    def run_many(self, crn: CRN, x: Sequence[int], config: RunConfig) -> ConvergenceReport:
        quiescence_window = config.quiescence_window
        if quiescence_window is None:
            quiescence_window = default_quiescence_window(x)
        policy = NextReactionPolicy()
        return _aggregate_scalar_trials(
            crn,
            x,
            config,
            lambda trial_seed: SimulatorCore(
                crn, policy, rng=random.Random(trial_seed)
            ).run_on_input(
                x,
                max_steps=config.max_steps,
                quiescence_window=quiescence_window,
            ),
        )

    def estimate_expected_output(
        self, crn: CRN, x: Sequence[int], config: RunConfig
    ) -> float:
        policy = NextReactionPolicy()
        total = 0.0
        for trial_seed in config.trial_seeds():
            core = SimulatorCore(crn, policy, rng=random.Random(trial_seed))
            result = core.run_on_input(x, max_steps=config.max_steps)
            total += crn.output_count(result.final_configuration)
        return total / config.trials


class TauLeapEngine:
    """Approximate kinetic engine: tau-leaping over the scalar kernel.

    One :class:`~repro.sim.kernel.SimulatorCore` trajectory per trial under
    :class:`~repro.sim.kernel.TauLeapPolicy`, with ``config.epsilon`` as the
    error knob.  Unlike the ``"python"`` / ``"vectorized"`` fair-scheduler
    paths, ``run_many`` here samples the *kinetic* process (quiescence is
    still detected through the shared window mechanism, at leap granularity);
    both entry points are statistically equivalent to exact Gillespie
    sampling, which the KS suite in ``tests/test_statistical_equivalence.py``
    enforces.
    """

    def run_many(self, crn: CRN, x: Sequence[int], config: RunConfig) -> ConvergenceReport:
        quiescence_window = config.quiescence_window
        if quiescence_window is None:
            quiescence_window = default_quiescence_window(x)
        policy = TauLeapPolicy(epsilon=config.epsilon)
        return _aggregate_scalar_trials(
            crn,
            x,
            config,
            lambda trial_seed: SimulatorCore(
                crn, policy, rng=random.Random(trial_seed)
            ).run_on_input(
                x,
                max_steps=config.max_steps,
                quiescence_window=quiescence_window,
            ),
        )

    def estimate_expected_output(
        self, crn: CRN, x: Sequence[int], config: RunConfig
    ) -> float:
        policy = TauLeapPolicy(epsilon=config.epsilon)
        total = 0.0
        for trial_seed in config.trial_seeds():
            core = SimulatorCore(crn, policy, rng=random.Random(trial_seed))
            result = core.run_on_input(x, max_steps=config.max_steps)
            total += crn.output_count(result.final_configuration)
        return total / config.trials


class TauVecEngine:
    """Approximate kinetic engine: batched tau-leaping over dense numpy rows.

    One :class:`~repro.sim.engine.BatchTauLeapEngine` run advances all trials
    simultaneously, one Cao–Gillespie–Petzold leap per round, with
    ``config.epsilon`` as the error knob — the same shared tau-selection
    math as the scalar ``"tau"`` engine (:mod:`repro.sim.tau`), so the two
    cannot disagree on the bound.  Like ``"tau"``, ``run_many`` samples the
    *kinetic* process with quiescence detected at leap granularity; like
    ``"vectorized"``, trials live on one numpy random stream seeded from
    ``config.seed``.  Statistical (KS-gated) equivalence to the exact
    engines is enforced by ``tests/test_statistical_equivalence.py``.
    """

    def run_many(self, crn: CRN, x: Sequence[int], config: RunConfig) -> ConvergenceReport:
        from repro.sim.engine import BatchTauLeapEngine

        quiescence_window = config.quiescence_window
        if quiescence_window is None:
            quiescence_window = default_quiescence_window(x)
        batch_engine = BatchTauLeapEngine(
            crn.compiled(), seed=config.seed, epsilon=config.epsilon
        )
        result = batch_engine.run_on_input(
            x,
            batch=config.trials,
            max_steps=config.max_steps,
            quiescence_window=quiescence_window,
        )
        return ConvergenceReport(
            input_value=tuple(int(v) for v in x),
            outputs=[int(v) for v in result.output_counts()],
            max_outputs=[int(v) for v in result.max_output_seen],
            steps=[int(v) for v in result.steps],
            all_silent_or_converged=result.all_silent_or_converged(),
        )

    def estimate_expected_output(
        self, crn: CRN, x: Sequence[int], config: RunConfig
    ) -> float:
        from repro.sim.engine import BatchTauLeapEngine

        batch_engine = BatchTauLeapEngine(
            crn.compiled(), seed=config.seed, epsilon=config.epsilon
        )
        result = batch_engine.run_on_input(
            x, batch=config.trials, max_steps=config.max_steps
        )
        return float(result.output_counts().mean())


def register_builtin_engines(names: Optional[Iterable[str]] = None) -> None:
    """(Re-)register the built-in engines (all of them, or just ``names``).

    Idempotent (``replace=True``), so module re-execution under
    ``importlib.reload`` / IPython autoreload is safe, and the registry can
    restore a built-in that a test unregistered without touching the others.
    """
    names = (
        {"python", "vectorized", "nrm", "tau", "tau-vec"}
        if names is None
        else set(names)
    )
    if "python" in names:
        register_engine(
            "python",
            supports_gillespie=True,
            supports_fair=True,
            max_recommended_population=20_000,
            description=(
                "Scalar kernel (shared CompiledCRN IR, sparse incremental "
                "propensities); historical seeded behaviour, bit for bit"
            ),
            replace=True,
        )(PythonEngine)
    if "vectorized" in names:
        register_engine(
            "vectorized",
            supports_gillespie=True,
            supports_fair=True,
            max_recommended_population=None,
            batch_capable=True,
            description=(
                "numpy batch engines advancing all trials per step; "
                "reproducible but on a numpy random stream"
            ),
            replace=True,
        )(VectorizedEngine)
    if "nrm" in names:
        register_engine(
            "nrm",
            supports_gillespie=True,
            supports_fair=False,
            max_recommended_population=20_000,
            description=(
                "Gibson-Bruck next-reaction method (indexed priority queue of "
                "putative firing times, dependency-graph clock repair); exact, "
                "O(|deps| log R) per step, kinetic scheduling only"
            ),
            replace=True,
        )(NextReactionEngine)
    if "tau" in names:
        register_engine(
            "tau",
            supports_gillespie=True,
            supports_fair=False,
            max_recommended_population=None,
            min_recommended_population=10_000,
            approximate=True,
            description=(
                "tau-leaping approximate SSA (Cao-Gillespie tau selection, "
                "Poisson firing batches, exact fallback); error knob "
                "RunConfig.epsilon, statistically equivalent to exact engines"
            ),
            replace=True,
        )(TauLeapEngine)
    if "tau-vec" in names:
        register_engine(
            "tau-vec",
            supports_gillespie=True,
            supports_fair=False,
            max_recommended_population=None,
            min_recommended_population=10_000,
            approximate=True,
            batch_capable=True,
            description=(
                "batched tau-leaping: the whole trial batch advances one "
                "Cao-Gillespie leap per round (dense numpy kinetics, batched "
                "Poisson firings, per-trial exact fallback); error knob "
                "RunConfig.epsilon, statistically equivalent to exact engines"
            ),
            replace=True,
        )(TauVecEngine)


register_builtin_engines()


# ---------------------------------------------------------------------------
# Public entry points (legacy keyword signatures forwarded into RunConfig)
# ---------------------------------------------------------------------------


def run_many(
    crn: CRN,
    x: Sequence[int],
    trials: int = 10,
    max_steps: int = 1_000_000,
    quiescence_window: Optional[int] = None,
    seed: Optional[int] = None,
    engine: str = "python",
    config: Optional[RunConfig] = None,
) -> ConvergenceReport:
    """Run the fair scheduler several times on input ``x`` and aggregate results.

    Pass either the individual keywords or a ready-made ``config``; an
    explicit ``config`` takes precedence over the keywords.  The engine is
    resolved through :mod:`repro.sim.registry`, so any registered backend is
    addressable here.
    """
    if config is None:
        config = RunConfig(
            trials=trials,
            max_steps=max_steps,
            quiescence_window=quiescence_window,
            seed=seed,
            engine=engine,
        )
    return get_engine(config.engine).run_many(crn, x, config)


def estimate_expected_output(
    crn: CRN,
    x: Sequence[int],
    trials: int = 20,
    max_steps: int = 500_000,
    seed: Optional[int] = None,
    engine: str = "python",
    config: Optional[RunConfig] = None,
) -> float:
    """Monte-Carlo estimate of the expected final output under Gillespie kinetics."""
    if config is None:
        config = RunConfig(trials=trials, max_steps=max_steps, seed=seed, engine=engine)
    return get_engine(config.engine).estimate_expected_output(crn, x, config)


def sweep_inputs(
    crn: CRN,
    inputs: Iterable[Sequence[int]],
    trials: int = 5,
    seed: Optional[int] = None,
    config: Optional[RunConfig] = None,
    **kwargs,
) -> List[ConvergenceReport]:
    """Run :func:`run_many` over a collection of inputs.

    Each input gets an independent derived seed
    (:meth:`~repro.api.config.RunConfig.per_input`), so no two inputs of one
    sweep replay the same random stream while the whole sweep stays
    reproducible from the master ``seed``.
    """
    if config is None:
        config = RunConfig(trials=trials, seed=seed, **kwargs)
    inputs = list(inputs)
    return [
        run_many(crn, x, config=derived)
        for x, derived in zip(inputs, config.per_input(len(inputs)))
    ]
