"""Structural audits of output-obliviousness and output-monotonicity."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.crn.network import CRN
from repro.crn.reaction import Reaction


@dataclass
class ObliviousnessReport:
    """The result of auditing a CRN's treatment of its output species."""

    crn_name: str
    output_species: str
    output_oblivious: bool
    output_monotonic: bool
    consuming_reactions: Tuple[str, ...]
    decreasing_reactions: Tuple[str, ...]

    def composable_by_concatenation(self) -> bool:
        """Whether the CRN can be composed downstream by renaming its output (Section 2.3)."""
        return self.output_oblivious

    def describe(self) -> str:
        """A human-readable multi-line summary."""
        lines = [
            f"CRN {self.crn_name or '(unnamed)'} / output {self.output_species}",
            f"  output-oblivious : {self.output_oblivious}",
            f"  output-monotonic : {self.output_monotonic}",
        ]
        if self.consuming_reactions:
            lines.append("  reactions consuming the output:")
            lines.extend(f"    {rxn}" for rxn in self.consuming_reactions)
        if self.decreasing_reactions:
            lines.append("  reactions strictly decreasing the output:")
            lines.extend(f"    {rxn}" for rxn in self.decreasing_reactions)
        return "\n".join(lines)


def audit_output_oblivious(crn: CRN) -> ObliviousnessReport:
    """Audit which reactions of ``crn`` consume or decrease the output species."""
    output = crn.output_species
    consuming: List[str] = []
    decreasing: List[str] = []
    for rxn in crn.reactions:
        if rxn.consumes(output):
            consuming.append(str(rxn))
        if rxn.net_change(output) < 0:
            decreasing.append(str(rxn))
    return ObliviousnessReport(
        crn_name=crn.name,
        output_species=output.name,
        output_oblivious=not consuming,
        output_monotonic=not decreasing,
        consuming_reactions=tuple(consuming),
        decreasing_reactions=tuple(decreasing),
    )
