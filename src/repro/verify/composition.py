"""End-to-end verification of composition by concatenation (Observation 2.2)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

from repro.crn.composition import concatenate
from repro.crn.network import CRN
from repro.verify.stable import VerificationReport, verify_stable_computation


@dataclass
class CompositionReport:
    """Result of verifying a concatenated CRN against the composed function."""

    upstream_name: str
    downstream_name: str
    upstream_output_oblivious: bool
    verification: VerificationReport

    @property
    def passed(self) -> bool:
        """True if the concatenation stably computed the composition on every tested input."""
        return self.verification.passed

    def describe(self) -> str:
        """A human-readable summary."""
        header = (
            f"concatenation {self.downstream_name} ∘ {self.upstream_name} "
            f"(upstream output-oblivious: {self.upstream_output_oblivious})"
        )
        return header + "\n" + self.verification.describe()


def verify_composition(
    upstream: CRN,
    downstream: CRN,
    upstream_function: Callable[[Sequence[int]], int],
    downstream_function: Callable[[Sequence[int]], int],
    inputs: Optional[Iterable[Sequence[int]]] = None,
    require_output_oblivious: bool = True,
    **verify_kwargs,
) -> CompositionReport:
    """Concatenate two CRNs and verify the result computes the composition.

    ``downstream_function`` takes a single value (the upstream output); the
    composed target is ``g(f(x))``.  When ``require_output_oblivious`` is
    False, the concatenation is built even for a non-output-oblivious upstream
    CRN — used to demonstrate the paper's Section 1.2 failure mode.
    """
    composed = concatenate(
        upstream,
        downstream,
        require_output_oblivious=require_output_oblivious,
    )

    def target(x: Sequence[int]) -> int:
        return int(downstream_function((int(upstream_function(x)),)))

    verification = verify_stable_computation(
        composed,
        target,
        inputs=inputs,
        function_name=f"{downstream.name or 'g'}∘{upstream.name or 'f'}",
        **verify_kwargs,
    )
    return CompositionReport(
        upstream_name=upstream.name or "f",
        downstream_name=downstream.name or "g",
        upstream_output_oblivious=upstream.is_output_oblivious(),
        verification=verification,
    )
