"""Population protocols: the 2-reactant / 2-product fragment of CRNs.

A population protocol is a set of agents, each in one of finitely many states,
interacting in randomly chosen ordered pairs according to a transition function
``δ : Q × Q -> Q × Q``.  Function computation follows the convention used for
CRNs in the paper: designated *input* states encode the input counts, one agent
starts in the *leader* state (when the protocol has one), and the output value
is the number of agents in states belonging to the designated *output* set
(mirroring the count of the output species ``Y``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, List, Mapping, Optional, Sequence, Tuple

from repro.crn.network import CRN
from repro.crn.species import Species


State = Hashable


@dataclass
class PopulationProtocol:
    """A population protocol with designated input / output / leader states."""

    states: Tuple[State, ...]
    transitions: Dict[Tuple[State, State], Tuple[State, State]]
    input_states: Tuple[State, ...]
    output_states: FrozenSet[State]
    leader_state: Optional[State] = None
    name: str = ""

    def __post_init__(self) -> None:
        state_set = set(self.states)
        for (a, b), (c, d) in self.transitions.items():
            for state in (a, b, c, d):
                if state not in state_set:
                    raise ValueError(f"transition uses unknown state {state!r}")
        for state in self.input_states:
            if state not in state_set:
                raise ValueError(f"unknown input state {state!r}")
        if self.leader_state is not None and self.leader_state not in state_set:
            raise ValueError(f"unknown leader state {self.leader_state!r}")

    @property
    def dimension(self) -> int:
        """The number of inputs."""
        return len(self.input_states)

    def initial_population(self, x: Sequence[int]) -> List[State]:
        """The initial multiset of agents encoding input ``x`` (plus the leader, if any)."""
        if len(x) != self.dimension:
            raise ValueError(f"expected {self.dimension} inputs, got {len(x)}")
        agents: List[State] = []
        for state, count in zip(self.input_states, x):
            agents.extend([state] * int(count))
        if self.leader_state is not None:
            agents.append(self.leader_state)
        return agents

    def output_count(self, agents: Sequence[State]) -> int:
        """The number of agents currently in an output state."""
        return sum(1 for agent in agents if agent in self.output_states)

    def step(self, agents: List[State], rng: random.Random) -> bool:
        """Perform one random pairwise interaction in place.

        Returns True if the interaction changed at least one agent's state.
        """
        if len(agents) < 2:
            return False
        i, j = rng.sample(range(len(agents)), 2)
        key = (agents[i], agents[j])
        if key not in self.transitions:
            return False
        new_i, new_j = self.transitions[key]
        changed = (new_i != agents[i]) or (new_j != agents[j])
        agents[i], agents[j] = new_i, new_j
        return changed

    def run(
        self,
        x: Sequence[int],
        max_interactions: int = 200_000,
        quiescence_window: int = 2_000,
        seed: Optional[int] = None,
    ) -> Tuple[List[State], int]:
        """Run the random scheduler until the output is quiescent or the budget runs out.

        Returns the final population and the number of interactions performed.
        """
        rng = random.Random(seed)
        agents = self.initial_population(x)
        last_output = self.output_count(agents)
        stable_for = 0
        interactions = 0
        while interactions < max_interactions and stable_for < quiescence_window:
            self.step(agents, rng)
            interactions += 1
            current = self.output_count(agents)
            if current == last_output:
                stable_for += 1
            else:
                stable_for = 0
                last_output = current
        return agents, interactions


def crn_to_population_protocol(crn: CRN, inert_state: str = "F") -> PopulationProtocol:
    """Convert a CRN whose reactions are all 2-reactant / 2-product into a protocol.

    Each species becomes a state; each reaction ``A + B -> C + D`` becomes the
    transition ``(A, B) -> (C, D)`` (and its symmetric variant).  Reactions of
    the form ``A + B -> C`` (one product) are padded with an inert "fuel" state
    so agent count is conserved, and unimolecular reactions ``A -> ...`` are
    rejected (they have no population-protocol counterpart without a fuel
    convention; convert the CRN with :func:`to_at_most_bimolecular` and add
    explicit fuel species first if needed).
    """
    species_states = {sp: sp.name for sp in crn.species()}
    states = list(species_states.values())
    if inert_state not in states:
        states.append(inert_state)
    transitions: Dict[Tuple[State, State], Tuple[State, State]] = {}

    for rxn in crn.reactions:
        if rxn.order() != 2:
            raise ValueError(
                f"reaction {rxn} is not bimolecular; population protocols need exactly "
                "two reactants per interaction"
            )
        if rxn.products.total() > 2:
            raise ValueError(
                f"reaction {rxn} has more than two products and cannot be a population "
                "protocol transition"
            )
        reactant_list: List[str] = []
        for sp, count in rxn.reactants.counts.items():
            reactant_list.extend([species_states[sp]] * count)
        product_list: List[str] = []
        for sp, count in rxn.products.counts.items():
            product_list.extend([species_states[sp]] * count)
        while len(product_list) < 2:
            product_list.append(inert_state)
        a, b = reactant_list
        c, d = product_list
        transitions[(a, b)] = (c, d)
        if (b, a) not in transitions:
            transitions[(b, a)] = (d, c)

    output_states = frozenset({crn.output_species.name})
    return PopulationProtocol(
        states=tuple(states),
        transitions=transitions,
        input_states=tuple(sp.name for sp in crn.input_species),
        output_states=output_states,
        leader_state=crn.leader.name if crn.leader else None,
        name=(crn.name + "-protocol") if crn.name else "protocol",
    )
