"""Tests for the spec-level composition calculus (closure under min / sum / scale / compose)."""

import pytest

from repro.core.algebra import compose_specs, min_of_specs, scale_spec, sum_of_specs
from repro.core.characterization import check_obliviously_computable
from repro.functions.catalog import (
    add_spec,
    double_spec,
    floor_3x_over_2_spec,
    identity_spec,
    min_one_spec,
    minimum_spec,
)
from repro.verify.stable import verify_stable_computation


def x1_spec():
    """The projection f(x1, x2) = x1 as a spec with a known CRN."""
    from repro.crn.network import CRN
    from repro.crn.species import species
    from repro.core.specs import FunctionSpec
    from repro.quilt.eventually_min import EventuallyMin
    from repro.quilt.quilt_affine import QuiltAffine

    X1, X2, Y = species("X1 X2 Y")
    crn = CRN([X1 >> Y], (X1, X2), Y, name="proj1")
    return FunctionSpec(
        name="x1",
        dimension=2,
        func=lambda x: x[0],
        eventually_min=EventuallyMin([QuiltAffine.affine((1, 0), 0)], (0, 0)),
        known_crn=crn,
        expected_obliviously_computable=True,
    )


def x2_plus_one_spec():
    from repro.crn.network import CRN
    from repro.crn.species import species, Species
    from repro.core.specs import FunctionSpec
    from repro.quilt.eventually_min import EventuallyMin
    from repro.quilt.quilt_affine import QuiltAffine

    X1, X2, Y, L = species("X1 X2 Y L")
    crn = CRN([X2 >> Y, L >> Y], (X1, X2), Y, leader=L, name="x2+1")
    return FunctionSpec(
        name="x2+1",
        dimension=2,
        func=lambda x: x[1] + 1,
        eventually_min=EventuallyMin([QuiltAffine.affine((0, 1), 1)], (0, 0)),
        known_crn=crn,
        expected_obliviously_computable=True,
    )


class TestMinOfSpecs:
    def test_callable_and_representation(self):
        combined = min_of_specs([x1_spec(), x2_plus_one_spec()])
        assert combined((3, 1)) == 2
        assert combined((1, 4)) == 1
        assert combined.eventually_min is not None
        assert len(combined.eventually_min.pieces) == 2
        assert combined.agrees_with_eventually_min()

    def test_combined_crn_stably_computes_the_min(self):
        combined = min_of_specs([x1_spec(), x2_plus_one_spec()])
        assert combined.known_crn is not None
        assert combined.known_crn.is_output_oblivious()
        report = verify_stable_computation(
            combined.known_crn, combined.func, inputs=[(0, 0), (2, 0), (1, 3), (3, 1)]
        )
        assert report.passed, report.describe()

    def test_result_passes_characterization(self):
        combined = min_of_specs([x1_spec(), x2_plus_one_spec()])
        verdict = check_obliviously_computable(combined)
        assert verdict.obliviously_computable is True

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            min_of_specs([x1_spec(), double_spec()])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            min_of_specs([])


class TestSumOfSpecs:
    def test_sum_callable_and_crn(self):
        combined = sum_of_specs([x1_spec(), x2_plus_one_spec()])
        assert combined((2, 3)) == 6
        assert combined.eventually_min is not None
        assert combined.eventually_min.pieces[0].gradient == (1, 1)
        report = verify_stable_computation(
            combined.known_crn, combined.func, inputs=[(0, 0), (1, 2), (2, 1)]
        )
        assert report.passed, report.describe()

    def test_sum_of_true_minimum_drops_representation(self):
        combined = sum_of_specs([minimum_spec(), add_spec()])
        assert combined((2, 3)) == 2 + 5
        assert combined.eventually_min is None


class TestScaleSpec:
    def test_scaled_values_and_crn(self):
        tripled = scale_spec(minimum_spec(), 3)
        assert tripled((2, 5)) == 6
        assert tripled.eventually_min is not None
        report = verify_stable_computation(
            tripled.known_crn, tripled.func, inputs=[(0, 1), (2, 2), (1, 3)]
        )
        assert report.passed, report.describe()

    def test_negative_factor_rejected(self):
        with pytest.raises(ValueError):
            scale_spec(minimum_spec(), -1)


class TestComposeSpecs:
    def test_double_after_min(self):
        composed = compose_specs(double_spec(), minimum_spec())
        assert composed((3, 5)) == 6
        assert composed.known_crn is not None
        report = verify_stable_computation(
            composed.known_crn, composed.func, inputs=[(1, 2), (2, 2)]
        )
        assert report.passed

    def test_floor_after_double(self):
        composed = compose_specs(floor_3x_over_2_spec(), double_spec())
        assert composed((3,)) == 9
        report = verify_stable_computation(composed.known_crn, composed.func, inputs=[(0,), (2,), (3,)])
        assert report.passed

    def test_outer_must_be_single_input(self):
        with pytest.raises(ValueError):
            compose_specs(minimum_spec(), minimum_spec())

    def test_min_one_after_identity(self):
        composed = compose_specs(min_one_spec(), identity_spec())
        assert [composed((v,)) for v in range(4)] == [0, 1, 1, 1]
