"""Construction benchmarks and ablations (Theorems 3.1 / 9.2, Lemmas 6.1 / 6.2).

Regenerates the size/shape comparisons called out in DESIGN.md:

* leader vs. leaderless 1D constructions — Θ(n + p) species for both, but the
  leaderless construction needs Θ((n + p)^2) merge reactions;
* direct Lemma 6.1 construction vs. the general Lemma 6.2 composition for a
  function expressible both ways (the 2D quilt of Fig. 3b);
* Lemma 6.2 construction size as a function of the threshold ``n`` of the
  eventually-min representation (it grows with ``d·n`` restriction terms).
"""

import pytest

from repro.core.construction_1d import build_1d_crn
from repro.core.construction_general import build_general_crn
from repro.core.construction_leaderless import build_leaderless_1d_crn
from repro.core.construction_quilt import build_quilt_affine_crn
from repro.functions.catalog import minimum_spec, quilt_2d_fig3b_spec
from repro.functions.paper_examples import fig4a_style_spec, interior_min_plus_one_spec
from repro.verify.stable import verify_stable_computation


def test_leader_vs_leaderless_1d(benchmark):
    def staircase(x: int) -> int:
        return (3 * x) // 2

    def run():
        return build_1d_crn(staircase), build_leaderless_1d_crn(staircase)

    with_leader, leaderless = benchmark(run)
    print("\n[ablation] Theorem 3.1 vs Theorem 9.2 for floor(3x/2):")
    print(f"  with leader : {with_leader.size()}")
    print(f"  leaderless  : {leaderless.size()}")
    # Both are correct; the leaderless one pays quadratically many merge reactions.
    assert leaderless.size()["reactions"] > with_leader.size()["reactions"]
    for crn in (with_leader, leaderless):
        report = verify_stable_computation(crn, lambda x: (3 * x[0]) // 2, inputs=[(v,) for v in range(5)])
        assert report.passed


def test_direct_quilt_vs_general_construction(benchmark):
    spec = quilt_2d_fig3b_spec()
    quilt = spec.eventually_min.pieces[0]

    def run():
        return build_quilt_affine_crn(quilt), build_general_crn(spec)

    direct, general = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n[ablation] Lemma 6.1 (direct) vs Lemma 6.2 (composition) for the Fig. 3b quilt:")
    print(f"  direct  : {direct.size()}")
    print(f"  general : {general.size()}")
    # The general construction pays overhead for the min/fan-out plumbing.
    assert general.size()["reactions"] >= direct.size()["reactions"]


@pytest.mark.parametrize(
    "spec_factory", [minimum_spec, interior_min_plus_one_spec, fig4a_style_spec],
    ids=lambda f: f.__name__,
)
def test_general_construction_size_vs_threshold(benchmark, spec_factory):
    spec = spec_factory()

    def run():
        return build_general_crn(spec)

    crn = benchmark.pedantic(run, rounds=1, iterations=1)
    threshold = max(spec.eventually_min.threshold)
    terms = 1 + spec.dimension * threshold
    print(f"\n[Lemma 6.2] {spec.name}: threshold n={threshold}, terms={terms}, size={crn.size()}")
    assert crn.is_output_oblivious()
