"""The scalar simulation kernel: one step loop, pluggable step policies.

Historically the package carried two parallel scalar hot loops — the Gillespie
direct method in :mod:`repro.sim.gillespie` and the fair scheduler in
:mod:`repro.sim.fair` — each advancing an immutable dict-backed
:class:`~repro.crn.configuration.Configuration` one reaction at a time and
re-deriving every propensity / applicability flag from scratch at every step.
That duplicated the applicability, propensity, and quiescence logic already
present in the batch engines and capped scalar runs at populations around
10^3 (every step paid a full dict copy plus ``R`` dict-lookup propensity
evaluations).

This module replaces both loops with a single :class:`SimulatorCore` running
over the shared :class:`~repro.sim.engine.CompiledCRN` IR:

* species counts live in one mutable dense list, so firing a reaction is a
  handful of integer adds over the reaction's sparse ``net_terms``;
* propensities / applicability flags are recomputed *incrementally*: after
  reaction ``j`` fires, only the reactions listed in
  ``CompiledCRN.dependency_graph[j]`` (those whose reactants share a species
  with the species ``j`` changed) are refreshed — the Gibson–Bruck dependency
  trick, which makes exact SSA scale with the number of *affected* reactions
  instead of the number of reactions;
* scheduling semantics are pluggable :class:`StepPolicy` strategies —
  :class:`GillespiePolicy` (exponential clocks, propensity-proportional
  choice) and :class:`FairPolicy` (uniform or statically biased choice among
  applicable reactions) — while the quiescence-window convergence detector,
  step/time bounds, trajectory recording, and ``stop_when`` predicates live
  once in the core.

Seeding / reproducibility policy
--------------------------------

The kernel consumes a :class:`random.Random` generator with *exactly* the
draw order of the legacy loops: Gillespie draws ``expovariate(total)`` then
``random()`` per step; the fair policy draws one ``choice()`` (unbiased) or
one ``random()`` (biased) per step, and propensities are multiplied in each
reaction's own term order.  Seeded runs therefore reproduce the historical
scalar simulators bit for bit — ``tests/test_kernel.py`` locks this against
the frozen legacy implementation in :mod:`repro.sim._reference`.  The one
documented divergence: a :class:`FairPolicy` bias function is evaluated once
per reaction per run (it is static in every in-repo use), not once per step,
so a *stateful* bias callable would observe fewer calls than under the legacy
scheduler.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.crn.configuration import Configuration
from repro.crn.species import Species
from repro.sim.engine import CompiledCRN
from repro.sim.trajectory import Trajectory

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.crn.network import CRN
    from repro.crn.reaction import Reaction


def default_quiescence_window(x: Sequence[int]) -> int:
    """The default quiescence window, scaled with the input population.

    Catalytic CRNs never fall silent, so convergence is detected by the output
    count staying unchanged for this many consecutive steps.  This is the
    single definition shared by the scalar kernel, the runner entry points,
    and the vectorized engines (it used to be duplicated per call site).
    """
    population = sum(int(v) for v in x) + 2
    return max(200, 50 * population)


@dataclass
class KernelRunResult:
    """Result of one :meth:`SimulatorCore.run` — the union of what the two
    scalar result dataclasses need, so the compatibility shims are pure field
    mappings."""

    final_configuration: Configuration
    steps: int
    silent: bool
    """True if the run ended because no reaction was applicable."""
    converged: bool
    """True if the run stopped because the output was quiescent for the window."""
    final_time: float
    """Simulated time (Gillespie clocks); 0.0 under time-free policies."""
    max_output_seen: int
    """The maximum output count observed at any point during the run."""
    trajectory: Optional[Trajectory] = None


class StepPolicy:
    """A scheduling strategy for :class:`SimulatorCore`.

    A policy owns reaction *selection* (and, for kinetic policies, the clock);
    the core owns everything else — counts, firing, bounds, quiescence
    detection, trajectory recording.  ``bind`` returns a fresh single-run
    stepper; policy objects themselves are stateless and reusable.
    """

    #: Whether the policy advances simulated time (enables ``max_time``).
    uses_time: bool = False

    def bind(self, compiled: CompiledCRN, rng: random.Random):
        """Return a bound per-run stepper exposing ``start`` / ``select`` / ``fired``."""
        raise NotImplementedError


class GillespiePolicy(StepPolicy):
    """Exact SSA (Gillespie 1977 direct method) over the compiled IR.

    Per step: total propensity summed in reaction order, an exponential
    waiting time, then a propensity-proportional reaction choice — the same
    draws, in the same order, as the legacy ``GillespieSimulator`` loop.
    Propensities are refreshed incrementally through the dependency graph.
    """

    uses_time = True

    def bind(self, compiled: CompiledCRN, rng: random.Random) -> "_GillespieStepper":
        return _GillespieStepper(compiled, rng)


class FairPolicy(StepPolicy):
    """Rate-agnostic fair scheduling: a random applicable reaction per step.

    ``bias`` optionally maps a reaction to a nonnegative weight; applicable
    reactions are then chosen proportionally to their weight (falling back to
    the uniform choice when every applicable reaction weighs zero).  The bias
    is evaluated once per reaction when a run starts — see the module
    docstring for how this relates to the legacy scheduler.
    """

    def __init__(self, bias: Optional[Callable[["Reaction"], float]] = None) -> None:
        self.bias = bias

    def bind(self, compiled: CompiledCRN, rng: random.Random) -> "_FairStepper":
        weights = None
        if self.bias is not None:
            # max(..., 0.0) mirrors the legacy _choose clamp, including its
            # int-preserving behaviour (max(3, 0.0) stays an int).
            weights = [max(self.bias(rxn), 0.0) for rxn in compiled.crn.reactions]
        return _FairStepper(compiled, rng, weights)


#: Sentinel select() results (reaction indices are always >= 0).
_SILENT = -1
_TIMED_OUT = -2


class _GillespieStepper:
    """Single-run Gillespie state: the propensity vector, kept incrementally."""

    __slots__ = ("compiled", "rng", "props", "last_recomputed")

    def __init__(self, compiled: CompiledCRN, rng: random.Random) -> None:
        self.compiled = compiled
        self.rng = rng
        self.props: List[float] = []
        #: Reactions refreshed by the most recent ``fired`` call (test hook).
        self.last_recomputed: Tuple[int, ...] = ()

    def _propensity(self, r: int, counts: List[int]) -> float:
        # Bit-identical to Reaction.propensity: start from the rate constant
        # and multiply binomial coefficients in the reaction's own term order.
        p = self.compiled.rate_list[r]
        for s, k in self.compiled.reactant_terms[r]:
            n = counts[s]
            if n < k:
                return 0.0
            p *= n if k == 1 else math.comb(n, k)
        return p

    def start(self, counts: List[int]) -> None:
        self.props = [
            self._propensity(r, counts) for r in range(self.compiled.n_reactions)
        ]

    def select(self, time_now: float, max_time: float) -> Tuple[int, float]:
        """Pick the next reaction; returns ``(index, new_time)``.

        ``index`` is ``_SILENT`` when the total propensity is zero and
        ``_TIMED_OUT`` when the sampled waiting time crosses ``max_time`` (the
        clock is then clamped, matching the legacy loop).
        """
        props = self.props
        total = sum(props)
        if total <= 0.0:
            return _SILENT, time_now
        rng = self.rng
        time_now += rng.expovariate(total)
        if time_now > max_time:
            return _TIMED_OUT, max_time
        choice = rng.random() * total
        cumulative = 0.0
        for j, a in enumerate(props):
            cumulative += a
            if choice <= cumulative:
                if a <= 0.0:
                    # Only reachable when random() returns exactly 0.0 with a
                    # leading zero-propensity reaction; the legacy loop then
                    # fired it through Reaction.apply, which raises.
                    raise ValueError(
                        f"reaction {self.compiled.crn.reactions[j]} is not "
                        f"applicable (zero propensity)"
                    )
                return j, time_now
        # Numerical edge case (choice exceeded the accumulated total by an
        # ulp): fall back to the last reaction with positive propensity.
        for j in range(len(props) - 1, -1, -1):
            if props[j] > 0.0:
                return j, time_now
        raise AssertionError("positive total propensity but no positive term")

    def fired(self, j: int, counts: List[int]) -> None:
        """Refresh exactly the propensities that firing ``j`` can have changed."""
        dependents = self.compiled.dependency_graph[j]
        self.last_recomputed = dependents
        props = self.props
        for r in dependents:
            props[r] = self._propensity(r, counts)

    def propensities(self) -> Tuple[float, ...]:
        """A snapshot of the incrementally-maintained propensity vector."""
        return tuple(self.props)


class _FairStepper:
    """Single-run fair-scheduler state: the applicability flags, kept incrementally."""

    __slots__ = ("compiled", "rng", "weights", "app", "last_recomputed")

    def __init__(
        self,
        compiled: CompiledCRN,
        rng: random.Random,
        weights: Optional[List[float]],
    ) -> None:
        self.compiled = compiled
        self.rng = rng
        self.weights = weights
        self.app: List[bool] = []
        #: Reactions refreshed by the most recent ``fired`` call (test hook).
        self.last_recomputed: Tuple[int, ...] = ()

    def _applicable(self, r: int, counts: List[int]) -> bool:
        for s, k in self.compiled.reactant_terms[r]:
            if counts[s] < k:
                return False
        return True

    def start(self, counts: List[int]) -> None:
        self.app = [
            self._applicable(r, counts) for r in range(self.compiled.n_reactions)
        ]

    def select(self, time_now: float, max_time: float) -> Tuple[int, float]:
        """Pick a random applicable reaction (``_SILENT`` when there is none)."""
        app = self.app
        applicable = [j for j in range(len(app)) if app[j]]
        if not applicable:
            return _SILENT, time_now
        rng = self.rng
        if self.weights is None:
            return rng.choice(applicable), time_now
        weights = [self.weights[j] for j in applicable]
        total = sum(weights)
        if total <= 0:
            return rng.choice(applicable), time_now
        pick = rng.random() * total
        cumulative = 0.0
        for j, weight in zip(applicable, weights):
            cumulative += weight
            if pick <= cumulative:
                return j, time_now
        return applicable[-1], time_now

    def fired(self, j: int, counts: List[int]) -> None:
        """Refresh exactly the applicability flags firing ``j`` can have changed."""
        dependents = self.compiled.dependency_graph[j]
        self.last_recomputed = dependents
        app = self.app
        for r in dependents:
            app[r] = self._applicable(r, counts)

    def applicability(self) -> Tuple[bool, ...]:
        """A snapshot of the incrementally-maintained applicability flags."""
        return tuple(self.app)


class SimulatorCore:
    """The one scalar step loop, parameterized by a :class:`StepPolicy`.

    Parameters
    ----------
    crn:
        The network to simulate (a :class:`~repro.crn.network.CRN`, compiled
        lazily and cached on the network) or an existing
        :class:`~repro.sim.engine.CompiledCRN`.
    policy:
        The scheduling strategy (:class:`GillespiePolicy`,
        :class:`FairPolicy`, or a third-party :class:`StepPolicy`).
    rng:
        Optional :class:`random.Random` for reproducibility; draw order per
        step matches the legacy scalar simulators (see the module docstring).
    """

    def __init__(
        self,
        crn: "CRN | CompiledCRN",
        policy: StepPolicy,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.compiled = crn if isinstance(crn, CompiledCRN) else crn.compiled()
        self.crn = self.compiled.crn
        self.policy = policy
        self.rng = rng or random.Random()

    # -- encoding --------------------------------------------------------------

    def _encode(self, initial: Configuration) -> Tuple[List[int], Dict[Species, int]]:
        """Dense counts plus a passthrough dict for out-of-network species.

        The legacy dict-backed simulators carried species the network never
        mentions through a run untouched (no reaction can consume them); the
        kernel preserves that by re-merging them into every decoded
        configuration.
        """
        counts = [0] * self.compiled.n_species
        extras: Dict[Species, int] = {}
        index = self.compiled.index
        for sp, count in initial.items():
            i = index.get(sp)
            if i is None:
                extras[sp] = count
            else:
                counts[i] = count
        return counts, extras

    def _decode(self, counts: List[int], extras: Dict[Species, int]) -> Configuration:
        merged = {sp: counts[i] for sp, i in self.compiled.index.items() if counts[i] > 0}
        if extras:
            merged.update(extras)
        return Configuration(merged)

    # -- the step loop ---------------------------------------------------------

    def run(
        self,
        initial: Configuration,
        max_steps: int = 1_000_000,
        max_time: float = math.inf,
        quiescence_window: int = 0,
        track: Sequence[Species] = (),
        record_every: int = 1,
        stop_when: Optional[Callable[[Configuration], bool]] = None,
    ) -> KernelRunResult:
        """Advance from ``initial`` until silence, quiescence, a bound, or ``stop_when``.

        Parameters
        ----------
        max_steps / max_time:
            Upper bounds on reactions fired / simulated time (``max_time``
            only binds under a clock-bearing policy such as
            :class:`GillespiePolicy`).
        quiescence_window:
            If positive, stop (``converged``) once the output count has been
            unchanged for this many consecutive steps while reactions kept
            firing — the convergence detector for CRNs that never fall silent.
        track / record_every:
            Species recorded into a :class:`~repro.sim.trajectory.Trajectory`,
            sampled every ``record_every`` reaction events.
        stop_when:
            Optional predicate on the current configuration, checked before
            each step; the run stops as soon as it returns True.
        """
        compiled = self.compiled
        counts, extras = self._encode(initial)
        stepper = self.policy.bind(compiled, self.rng)
        stepper.start(counts)
        select = stepper.select
        fired = stepper.fired
        net_terms = compiled.net_terms
        output_index = compiled.output_index
        uses_time = self.policy.uses_time

        time_now = 0.0
        steps = 0
        silent = False
        converged = False
        max_output = counts[output_index]
        last_output = max_output
        unchanged_for = 0
        trajectory = Trajectory(track) if track else None
        if trajectory is not None:
            trajectory.record(0.0, 0, self._decode(counts, extras))

        while steps < max_steps and time_now < max_time:
            if stop_when is not None and stop_when(self._decode(counts, extras)):
                break
            j, time_now = select(time_now, max_time)
            if j < 0:
                if j == _SILENT:
                    silent = True
                break
            for s, delta in net_terms[j]:
                counts[s] += delta
            steps += 1
            fired(j, counts)
            current = counts[output_index]
            if current > max_output:
                max_output = current
            if current == last_output:
                unchanged_for += 1
            else:
                unchanged_for = 0
                last_output = current
            if trajectory is not None and steps % record_every == 0:
                trajectory.record(
                    time_now if uses_time else float(steps),
                    steps,
                    self._decode(counts, extras),
                )
            if quiescence_window and unchanged_for >= quiescence_window:
                converged = True
                break

        if trajectory is not None and (
            len(trajectory) == 0 or trajectory[-1].step != steps
        ):
            trajectory.record(
                time_now if uses_time else float(steps),
                steps,
                self._decode(counts, extras),
            )
        return KernelRunResult(
            final_configuration=self._decode(counts, extras),
            steps=steps,
            silent=silent,
            converged=converged,
            final_time=time_now,
            max_output_seen=max_output,
            trajectory=trajectory,
        )

    def run_on_input(self, x: Sequence[int], **kwargs) -> KernelRunResult:
        """Run from the CRN's initial configuration for input ``x``."""
        return self.run(self.crn.initial_configuration(x), **kwargs)

    def __repr__(self) -> str:
        return (
            f"SimulatorCore({self.compiled!r}, "
            f"policy={type(self.policy).__name__})"
        )
