"""Tests for the function catalog and the structured paper examples."""

import pytest

from repro.core.superadditive import is_nondecreasing_upto
from repro.crn.reachability import stably_computes_exhaustive
from repro.functions.catalog import (
    add_spec,
    all_catalog_specs,
    constant_spec,
    double_spec,
    floor_3x_over_2_spec,
    identity_spec,
    maximum_spec,
    min_one_leaderless_crn,
    min_one_spec,
    minimum_spec,
    quilt_2d_fig3b_spec,
    threshold_capped_spec,
)
from repro.functions.paper_examples import (
    all_paper_example_specs,
    eq2_counterexample_spec,
    fig4a_style_spec,
    fig7_spec,
    interior_min_plus_one_spec,
)


class TestCatalogConsistency:
    @pytest.mark.parametrize("spec", all_catalog_specs(), ids=lambda s: s.name)
    def test_semilinear_representation_agrees(self, spec):
        assert spec.agrees_with_semilinear_upto(5)

    @pytest.mark.parametrize("spec", all_catalog_specs(), ids=lambda s: s.name)
    def test_eventually_min_representation_agrees(self, spec):
        assert spec.agrees_with_eventually_min()

    @pytest.mark.parametrize(
        "spec", [s for s in all_catalog_specs() if s.expected_obliviously_computable], ids=lambda s: s.name
    )
    def test_expected_computable_functions_are_nondecreasing(self, spec):
        assert spec.is_nondecreasing_upto(4)

    def test_known_crns_output_obliviousness_labels(self):
        assert minimum_spec().known_crn.is_output_oblivious()
        assert double_spec().known_crn.is_output_oblivious()
        assert min_one_spec().known_crn.is_output_oblivious()
        assert floor_3x_over_2_spec().known_crn.is_output_oblivious()
        assert not maximum_spec().known_crn.is_output_oblivious()
        assert not min_one_leaderless_crn().is_output_oblivious()


class TestKnownCrnsComputeTheirFunctions:
    @pytest.mark.parametrize(
        "spec, inputs",
        [
            (double_spec(), [(0,), (2,), (4,)]),
            (identity_spec(), [(0,), (3,)]),
            (add_spec(), [(0, 0), (2, 3)]),
            (minimum_spec(), [(0, 2), (3, 1), (2, 2)]),
            (maximum_spec(), [(0, 2), (3, 1), (2, 2)]),
            (min_one_spec(), [(0,), (1,), (4,)]),
            (floor_3x_over_2_spec(), [(0,), (1,), (4,), (5,)]),
            (constant_spec(2), [(0,), (3,)]),
        ],
        ids=lambda value: value.name if hasattr(value, "name") else "",
    )
    def test_stable_computation(self, spec, inputs):
        verdicts = stably_computes_exhaustive(spec.known_crn, spec.func, inputs)
        assert all(v.holds and v.conclusive for v in verdicts), [
            (v.input_value, v.failure_reason) for v in verdicts if not v.holds
        ]

    def test_min_one_leaderless_crn_computes_min1(self):
        crn = min_one_leaderless_crn()
        verdicts = stably_computes_exhaustive(crn, lambda x: min(1, x[0]), [(0,), (1,), (3,)])
        assert all(v.holds and v.conclusive for v in verdicts)


class TestPaperExamples:
    def test_fig7_values(self):
        spec = fig7_spec()
        assert spec((2, 5)) == 3
        assert spec((5, 2)) == 3
        assert spec((4, 4)) == 4
        assert spec.is_nondecreasing_upto(6)
        assert spec.agrees_with_semilinear_upto(6)
        assert spec.agrees_with_eventually_min()

    def test_eq2_values_and_monotonicity(self):
        spec = eq2_counterexample_spec()
        assert spec((3, 3)) == 6
        assert spec((3, 4)) == 8
        assert spec.is_nondecreasing_upto(6)
        assert spec.agrees_with_semilinear_upto(6)

    def test_fig4a_style_structure(self):
        spec = fig4a_style_spec()
        assert spec((0, 5)) == 0
        assert spec((1, 5)) == 1
        assert spec((2, 2)) == 1
        assert spec((5, 5)) == 4
        assert spec.is_nondecreasing_upto(7)
        assert spec.agrees_with_eventually_min()

    def test_interior_min_plus_one(self):
        spec = interior_min_plus_one_spec()
        assert spec((0, 3)) == 0
        assert spec((2, 3)) == 3
        assert spec.is_nondecreasing_upto(6)
        assert spec.agrees_with_eventually_min()

    def test_quilt_2d_fig3b_nondecreasing(self):
        spec = quilt_2d_fig3b_spec()
        assert spec.is_nondecreasing_upto(6)

    def test_restrictions_of_fig4a_are_simple(self):
        spec = fig4a_style_spec()
        edge = spec.restriction(0, 1)
        assert [edge((t,)) for t in range(5)] == [0, 1, 1, 1, 1]
        zero_edge = spec.restriction(1, 0)
        assert all(zero_edge((t,)) == 0 for t in range(5))

    def test_all_example_lists_nonempty(self):
        assert len(all_catalog_specs()) >= 8
        assert len(all_paper_example_specs()) == 4

    def test_capped_spec_validation(self):
        with pytest.raises(ValueError):
            threshold_capped_spec(-1)
        with pytest.raises(ValueError):
            constant_spec(-2)
