"""Executor contract: parallel == serial bit for bit, failure capture, timeouts."""

import time

import pytest

from repro.api.config import RunConfig
from repro.lab.campaign import Campaign, SweepGrid, register_spec_factory
from repro.lab.executor import PoolExecutor, SerialExecutor, run_cell, run_cell_with_timeout
from repro.core.specs import FunctionSpec


def seeded_cells(specs=("minimum",), engines=("python",), seed=11, grid="0:3"):
    campaign = Campaign(
        name="exec-test",
        specs=list(specs),
        inputs=SweepGrid.parse(grid, dimension=2),
        engines=engines,
        configs=(RunConfig(trials=3),),
        seed=seed,
    )
    return campaign.expand()


class TestRunCell:
    def test_ok_row_fields(self):
        cells = seeded_cells()
        result = run_cell(cells[4])  # input (1, 1), minimum -> 1
        assert result.ok
        assert result.cell_id == cells[4].cell_id
        assert result.expected == min(cells[4].input)
        assert result.output_mode == result.expected
        assert result.correct is True
        assert result.converged is True
        assert len(result.outputs) == 3
        assert result.wall_time > 0

    def test_run_cell_is_deterministic_for_seeded_cells(self):
        cell = seeded_cells()[5]
        assert run_cell(cell).deterministic_dict() == run_cell(cell).deterministic_dict()

    def test_exception_becomes_error_row(self):
        # an unknown construction strategy fails inside build_crn_for
        campaign = Campaign(
            name="err",
            specs=[("minimum", "no-such-strategy")],
            inputs=[(1, 1)],
            engines=("python",),
            seed=1,
        )
        (result,) = SerialExecutor().map(campaign.expand())
        assert result.status == "error"
        assert "no-such-strategy" in result.error
        assert result.outputs == ()

    def test_error_cell_does_not_kill_the_batch(self):
        good = seeded_cells()[:2]
        bad = Campaign(
            name="err",
            specs=[("minimum", "no-such-strategy")],
            inputs=[(1, 1)],
            engines=("python",),
            seed=1,
        ).expand()
        results = list(SerialExecutor().map(bad + good))
        assert [r.status for r in results] == ["error", "ok", "ok"]


class TestParallelSerialEquivalence:
    def test_pool_rows_bit_identical_to_serial_python_engine(self):
        cells = seeded_cells(specs=("minimum", "add"), grid="0:4")
        serial = [r.deterministic_dict() for r in SerialExecutor().map(cells)]
        pool = [r.deterministic_dict() for r in PoolExecutor(workers=4).map(cells)]
        assert serial == pool

    def test_pool_rows_bit_identical_for_vectorized_engine(self):
        cells = seeded_cells(engines=("vectorized",), grid="0:3")
        serial = [r.deterministic_dict() for r in SerialExecutor().map(cells)]
        pool = [r.deterministic_dict() for r in PoolExecutor(workers=2).map(cells)]
        assert serial == pool

    def test_pool_preserves_cell_order(self):
        cells = seeded_cells(grid="0:4")
        results = list(PoolExecutor(workers=4, chunksize=1).map(cells))
        assert [r.cell_id for r in results] == [c.cell_id for c in cells]

    def test_single_cell_falls_back_to_serial(self):
        cells = seeded_cells()[:1]
        (result,) = PoolExecutor(workers=4).map(cells)
        assert result.ok

    def test_empty_batch(self):
        assert list(PoolExecutor(workers=2).map([])) == []

    def test_workers_validation(self):
        with pytest.raises(ValueError):
            PoolExecutor(workers=0)


class TestTimeout:
    def test_slow_cell_becomes_timeout_error_row(self):
        def slow_spec():
            def slow(x):
                # fast on the fingerprint grid [0, 5); the campaign input
                # (7,) is the one that hangs
                if x[0] >= 5:
                    time.sleep(10)
                return 0

            return FunctionSpec(name="lab-test-slow", dimension=1, func=slow)

        register_spec_factory("lab-test-slow", slow_spec, replace=True)
        campaign = Campaign(
            name="slow", specs=["lab-test-slow"], inputs=[(7,)], engines=("python",), seed=1
        )
        (cell,) = campaign.expand()
        start = time.perf_counter()
        result = run_cell_with_timeout(cell, timeout=0.3)
        elapsed = time.perf_counter() - start
        assert elapsed < 5
        assert result.status == "error"
        assert "CellTimeoutError" in result.error

    def test_no_timeout_leaves_fast_cells_untouched(self):
        cell = seeded_cells()[0]
        assert run_cell_with_timeout(cell, timeout=None).ok
        assert run_cell_with_timeout(cell, timeout=30).ok

    def test_preexisting_itimer_is_restored_not_clobbered(self):
        # a host process (e.g. a worker loop with its own watchdog) may have
        # an ITIMER_REAL armed; running a cell under a timeout must put the
        # caller's timer back, shortened by the elapsed time, not zero it
        import signal as signal_module

        fired = []
        previous_handler = signal_module.signal(
            signal_module.SIGALRM, lambda signum, frame: fired.append(signum)
        )
        try:
            signal_module.setitimer(signal_module.ITIMER_REAL, 60.0)
            cell = seeded_cells()[0]
            assert run_cell_with_timeout(cell, timeout=5.0).ok
            remaining, _interval = signal_module.setitimer(
                signal_module.ITIMER_REAL, 0.0
            )
            assert 0.0 < remaining <= 60.0
            # the cell's own handler is gone too: ours is back in place
            assert signal_module.getsignal(signal_module.SIGALRM) is not previous_handler
            assert fired == []
        finally:
            signal_module.setitimer(signal_module.ITIMER_REAL, 0.0)
            signal_module.signal(signal_module.SIGALRM, previous_handler)

    def test_no_preexisting_itimer_stays_disarmed(self):
        import signal as signal_module

        signal_module.setitimer(signal_module.ITIMER_REAL, 0.0)
        cell = seeded_cells()[0]
        assert run_cell_with_timeout(cell, timeout=5.0).ok
        remaining, interval = signal_module.setitimer(signal_module.ITIMER_REAL, 0.0)
        assert remaining == 0.0 and interval == 0.0
