"""Unit tests for bounded reachability and exhaustive stable-computation checking."""

import pytest

from repro.crn.network import CRN
from repro.crn.reachability import (
    check_stable_computation_at,
    reachable_configurations,
    reachability_graph,
    stable_configurations,
    stably_computes_exhaustive,
)
from repro.crn.species import species
from repro.functions.catalog import maximum_spec, min_one_leaderless_crn, minimum_spec


X, X1, X2, Y, Z = species("X X1 X2 Y Z")


class TestReachableConfigurations:
    def test_linear_chain(self):
        crn = CRN([X >> Y], (X,), Y)
        result = reachable_configurations(crn, crn.initial_configuration((3,)))
        # Configurations: 3X, 2X+Y, X+2Y, 3Y.
        assert len(result) == 4
        assert result.exhausted

    def test_bound_respected(self):
        crn = CRN([X >> Y], (X,), Y)
        result = reachable_configurations(crn, crn.initial_configuration((10,)), max_configurations=4)
        assert len(result) == 4
        assert not result.exhausted

    def test_index_of(self):
        crn = CRN([X >> Y], (X,), Y)
        initial = crn.initial_configuration((1,))
        result = reachable_configurations(crn, initial)
        assert result.index_of(initial) == 0
        assert result.index_of(crn.initial_configuration((5,))) is None

    def test_graph_has_outputs(self):
        crn = CRN([X >> 2 * Y], (X,), Y)
        graph = reachability_graph(crn, crn.initial_configuration((2,)))
        outputs = {graph.nodes[node]["output"] for node in graph.nodes}
        assert outputs == {0, 2, 4}


class TestStableConfigurations:
    def test_min_stable_configs(self):
        crn = minimum_spec().known_crn
        stable, result = stable_configurations(crn, crn.initial_configuration((2, 1)))
        assert result.exhausted
        # Stable exactly when the smaller input is exhausted (output can no longer change).
        assert all(config[crn.output_species] == 1 for config in stable)

    def test_annihilation_network_stability(self):
        crn = min_one_leaderless_crn()
        stable, _ = stable_configurations(crn, crn.initial_configuration((3,)))
        # Only the single-Y configurations with no X left are stable.
        assert stable
        assert all(config[Y] == 1 and config[X] == 0 for config in stable)


class TestStableComputation:
    def test_min_stably_computes(self):
        crn = minimum_spec().known_crn
        verdicts = stably_computes_exhaustive(
            crn, lambda x: min(x), [(0, 0), (1, 0), (2, 3), (3, 3)]
        )
        assert all(v.holds and v.conclusive for v in verdicts)

    def test_max_crn_stably_computes_max(self):
        crn = maximum_spec().known_crn
        verdicts = stably_computes_exhaustive(
            crn, lambda x: max(x), [(0, 0), (1, 0), (1, 2), (2, 2)]
        )
        assert all(v.holds and v.conclusive for v in verdicts)

    def test_wrong_function_detected(self):
        crn = minimum_spec().known_crn
        verdict = check_stable_computation_at(crn, (2, 3), expected=5)
        assert verdict.conclusive and not verdict.holds

    def test_inconclusive_when_bound_hit(self):
        crn = CRN([X >> Y], (X,), Y)
        verdict = check_stable_computation_at(crn, (50,), expected=50, max_configurations=10)
        assert not verdict.conclusive

    def test_non_converging_network_detected(self):
        # X -> Y, Y -> X never stabilizes its output from a configuration with an X or Y.
        crn = CRN([X >> Y, Y >> X], (X,), Y)
        verdict = check_stable_computation_at(crn, (1,), expected=1)
        assert verdict.conclusive and not verdict.holds
