"""Benchmark suite configuration.

Makes the package importable from a bare checkout, skips every test in this
directory unless ``--benchmark`` was passed (see the root ``conftest.py``) so
the tier-1 test run stays fast, and collects machine-readable per-benchmark
records into ``BENCH_results.json`` (schema shared with ``python -m repro
bench`` — see :func:`repro.lab.aggregate.write_bench_json`) so the perf
trajectory is tracked across PRs.
"""

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

_HERE = os.path.dirname(os.path.abspath(__file__))
_BENCH_JSON = os.path.join(os.path.dirname(_HERE), "BENCH_results.json")

_RECORDS = []


def pytest_collection_modifyitems(config, items):
    if config.getoption("benchmark", default=False):
        return
    skip = pytest.mark.skip(reason="benchmark suite; pass --benchmark to run")
    for item in items:
        if str(item.fspath).startswith(_HERE):
            item.add_marker(skip)


@pytest.fixture(scope="session")
def bench_record():
    """Append one machine-readable benchmark record.

    ``bench_record(name, population, wall_time_s, steps)`` — steps/sec is
    derived.  Records from the whole session land in ``BENCH_results.json``
    at the repository root.
    """

    def record(name, population, wall_time_s, steps, **extra):
        from repro.lab.aggregate import make_bench_record

        _RECORDS.append(make_bench_record(name, population, wall_time_s, steps, **extra))

    return record


def mean_seconds(benchmark):
    """Best-effort mean runtime from a pytest-benchmark fixture (None if unknown)."""
    try:
        return float(benchmark.stats.stats.mean)
    except AttributeError:
        try:
            return float(benchmark.stats["mean"])
        except Exception:
            return None


def pytest_sessionfinish(session, exitstatus):
    if not _RECORDS:
        return
    from repro.lab.aggregate import write_bench_json

    # merge=True: a partial run (-k one family) updates its own records and
    # leaves the rest of the perf trajectory in place.
    write_bench_json(_BENCH_JSON, list(_RECORDS), source="pytest benchmarks", merge=True)
    print(f"\n[bench] wrote {_BENCH_JSON} ({len(_RECORDS)} records)")
