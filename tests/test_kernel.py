"""The scalar simulation kernel: equivalence, dependency graph, and IR tests.

Three layers of protection for the dict-loop -> kernel rebase:

* **IR correctness** — the sparse term lists and the reaction dependency
  graph on :class:`~repro.sim.engine.CompiledCRN` match brute-force
  recomputation from the reactions themselves.
* **Bit-for-bit equivalence** — seeded runs of the kernel-backed
  ``GillespieSimulator`` / ``FairScheduler`` reproduce the frozen pre-kernel
  loops (:mod:`repro.sim._reference`) exactly: same final configuration, same
  step/time bookkeeping, same trajectories, across every construction
  strategy (known / 1d / leaderless / quilt / general).
* **Incrementality** — after firing reaction ``r``, the kernel recomputes
  exactly the propensities / applicability flags of reactions sharing a
  species with the species ``r`` changed, and the incrementally-maintained
  state always equals a from-scratch recomputation.
"""

import random

import pytest

from repro.core.characterization import build_crn_for
from repro.crn.configuration import Configuration
from repro.crn.network import CRN
from repro.crn.species import species
from repro.functions.catalog import (
    double_spec,
    maximum_spec,
    minimum_spec,
    quilt_2d_fig3b_spec,
    threshold_capped_spec,
)
from repro.sim._reference import ReferenceFairScheduler, ReferenceGillespieSimulator
from repro.sim.fair import FairScheduler, output_consuming_bias, output_producing_bias
from repro.sim.gillespie import GillespieSimulator
from repro.sim.kernel import (
    FairPolicy,
    GillespiePolicy,
    NextReactionPolicy,
    SimulatorCore,
    TauLeapPolicy,
    default_quiescence_window,
)
from repro.sim.runner import run_many


X1, X2, Y, Z = species("X1 X2 Y Z")


def build_strategy_cases():
    """(label, CRN, input) cases covering every construction strategy."""
    return [
        ("known/min", minimum_spec().known_crn, (4, 7)),
        ("known/max", maximum_spec().known_crn, (5, 3)),
        ("known/double", double_spec().known_crn, (6,)),
        ("1d/threshold", build_crn_for(threshold_capped_spec(), strategy="1d"), (5,)),
        ("leaderless/double", build_crn_for(double_spec(), strategy="leaderless"), (4,)),
        ("quilt/fig3b", build_crn_for(quilt_2d_fig3b_spec(), strategy="quilt"), (3, 2)),
        ("general/min", build_crn_for(minimum_spec(), strategy="general"), (3, 4)),
    ]


STRATEGY_CASES = build_strategy_cases()
STRATEGY_IDS = [label for label, _, _ in STRATEGY_CASES]


def assert_same_gillespie(kernel_result, reference_result):
    assert kernel_result.final_configuration == reference_result.final_configuration
    assert kernel_result.final_time == reference_result.final_time
    assert kernel_result.steps == reference_result.steps
    assert kernel_result.silent == reference_result.silent


def assert_same_fair(kernel_result, reference_result):
    assert kernel_result.final_configuration == reference_result.final_configuration
    assert kernel_result.steps == reference_result.steps
    assert kernel_result.silent == reference_result.silent
    assert kernel_result.converged == reference_result.converged
    assert kernel_result.max_output_seen == reference_result.max_output_seen


def assert_same_trajectory(kernel_trajectory, reference_trajectory):
    assert kernel_trajectory is not None and reference_trajectory is not None
    assert len(kernel_trajectory) == len(reference_trajectory)
    for ours, theirs in zip(kernel_trajectory, reference_trajectory):
        assert (ours.time, ours.step, ours.counts) == (
            theirs.time,
            theirs.step,
            theirs.counts,
        )


class TestCompiledIRExtensions:
    def test_reactant_terms_follow_reaction_order(self):
        crn = maximum_spec().known_crn
        compiled = crn.compiled()
        for r, rxn in enumerate(crn.reactions):
            expected = tuple(
                (compiled.index[sp], count)
                for sp, count in rxn.reactants.counts.items()
            )
            assert compiled.reactant_terms[r] == expected

    def test_net_terms_match_net_changes(self):
        crn = maximum_spec().known_crn
        compiled = crn.compiled()
        for r, rxn in enumerate(crn.reactions):
            as_species = {compiled.species[s]: d for s, d in compiled.net_terms[r]}
            assert as_species == rxn.net_changes()

    @pytest.mark.parametrize(
        "label,crn,_x", STRATEGY_CASES, ids=STRATEGY_IDS
    )
    def test_dependency_graph_matches_brute_force(self, label, crn, _x):
        compiled = crn.compiled()
        for j, fired in enumerate(crn.reactions):
            changed = set(fired.net_changes())
            expected = tuple(
                r
                for r, rxn in enumerate(crn.reactions)
                if changed & set(rxn.reactants.counts)
            )
            assert compiled.dependency_graph[j] == expected, (label, j)

    def test_catalytic_noop_has_no_dependents(self):
        # X1 + X2 -> X1 + X2 changes nothing, so firing it can invalidate
        # no propensity — not even its own.
        crn = CRN([X1 + X2 >> X1 + X2, X1 >> Y], (X1, X2), Y)
        compiled = crn.compiled()
        assert compiled.net_terms[0] == ()
        assert compiled.dependency_graph[0] == ()
        # X1 -> Y changes X1 (consumed by both reactions) and Y (consumed by
        # neither), so both propensities must be refreshed.
        assert compiled.dependency_graph[1] == (0, 1)


class TestGillespieEquivalence:
    @pytest.mark.parametrize("label,crn,x", STRATEGY_CASES, ids=STRATEGY_IDS)
    def test_seeded_runs_bit_for_bit(self, label, crn, x):
        for seed in range(4):
            kernel = GillespieSimulator(crn, rng=random.Random(seed)).run_on_input(
                x, max_steps=20_000
            )
            reference = ReferenceGillespieSimulator(
                crn, rng=random.Random(seed)
            ).run_on_input(x, max_steps=20_000)
            assert_same_gillespie(kernel, reference)

    def test_max_time_clamp_matches(self):
        crn = minimum_spec().known_crn
        for seed in (1, 2, 3):
            kernel = GillespieSimulator(crn, rng=random.Random(seed)).run_on_input(
                (50, 50), max_time=0.01
            )
            reference = ReferenceGillespieSimulator(
                crn, rng=random.Random(seed)
            ).run_on_input((50, 50), max_time=0.01)
            assert_same_gillespie(kernel, reference)

    def test_stop_when_matches(self):
        crn = double_spec().known_crn
        predicate = lambda config: config[Y] >= 7  # noqa: E731
        kernel = GillespieSimulator(crn, rng=random.Random(5)).run_on_input(
            (20,), stop_when=predicate
        )
        reference = ReferenceGillespieSimulator(crn, rng=random.Random(5)).run_on_input(
            (20,), stop_when=predicate
        )
        assert_same_gillespie(kernel, reference)
        assert kernel.final_configuration[Y] >= 7

    def test_trajectories_match(self):
        crn = minimum_spec().known_crn
        kernel = GillespieSimulator(crn, rng=random.Random(9)).run_on_input(
            (10, 12), track=[Y], record_every=3
        )
        reference = ReferenceGillespieSimulator(crn, rng=random.Random(9)).run_on_input(
            (10, 12), track=[Y], record_every=3
        )
        assert_same_trajectory(kernel.trajectory, reference.trajectory)

    def test_out_of_network_species_pass_through(self):
        crn = double_spec().known_crn
        initial = crn.initial_configuration((3,)) + Configuration({Z: 2})
        kernel = GillespieSimulator(crn, rng=random.Random(1)).run(initial)
        reference = ReferenceGillespieSimulator(crn, rng=random.Random(1)).run(initial)
        assert kernel.final_configuration[Z] == 2
        assert_same_gillespie(kernel, reference)


class TestFairEquivalence:
    @pytest.mark.parametrize("label,crn,x", STRATEGY_CASES, ids=STRATEGY_IDS)
    def test_seeded_runs_bit_for_bit(self, label, crn, x):
        for seed in range(4):
            kernel = FairScheduler(crn, rng=random.Random(seed)).run_on_input(
                x, max_steps=20_000, quiescence_window=400
            )
            reference = ReferenceFairScheduler(
                crn, rng=random.Random(seed)
            ).run_on_input(x, max_steps=20_000, quiescence_window=400)
            assert_same_fair(kernel, reference)

    @pytest.mark.parametrize("bias_factory", [output_producing_bias, output_consuming_bias])
    def test_biased_runs_bit_for_bit(self, bias_factory):
        crn = maximum_spec().known_crn
        for seed in range(4):
            kernel = FairScheduler(
                crn, rng=random.Random(seed), bias=bias_factory(crn)
            ).run_on_input((5, 5), quiescence_window=500)
            reference = ReferenceFairScheduler(
                crn, rng=random.Random(seed), bias=bias_factory(crn)
            ).run_on_input((5, 5), quiescence_window=500)
            assert_same_fair(kernel, reference)

    def test_trajectories_match(self):
        crn = minimum_spec().known_crn
        kernel = FairScheduler(crn, rng=random.Random(3)).run_on_input(
            (6, 9), track=[Y], record_every=2
        )
        reference = ReferenceFairScheduler(crn, rng=random.Random(3)).run_on_input(
            (6, 9), track=[Y], record_every=2
        )
        assert_same_trajectory(kernel.trajectory, reference.trajectory)

    def test_zero_weight_bias_falls_back_to_uniform(self):
        crn = minimum_spec().known_crn
        zero_bias = lambda rxn: 0.0  # noqa: E731
        for seed in (1, 4):
            kernel = FairScheduler(
                crn, rng=random.Random(seed), bias=zero_bias
            ).run_on_input((4, 4))
            reference = ReferenceFairScheduler(
                crn, rng=random.Random(seed), bias=zero_bias
            ).run_on_input((4, 4))
            assert_same_fair(kernel, reference)

    def test_subclass_choose_override_still_honoured(self):
        # Pre-kernel, subclasses could redefine the per-step selection hook;
        # the shim must detect that and route through the frozen legacy loop.
        class FirstApplicableScheduler(FairScheduler):
            def _choose(self, applicable):
                return applicable[0]

        crn = minimum_spec().known_crn
        result = FirstApplicableScheduler(crn, rng=random.Random(1)).run_on_input((3, 5))
        assert result.silent
        assert crn.output_count(result.final_configuration) == 3
        # The deterministic "always first" schedule consumes no randomness:
        # two differently-seeded runs agree exactly.
        again = FirstApplicableScheduler(crn, rng=random.Random(2)).run_on_input((3, 5))
        assert again.final_configuration == result.final_configuration
        assert again.steps == result.steps

    def test_instance_level_choose_monkeypatch_still_honoured(self):
        # Assigning _choose on the *instance* (a common test-double pattern)
        # must also route through the legacy loop, not be silently ignored.
        crn = minimum_spec().known_crn
        scheduler = FairScheduler(crn, rng=random.Random(1))
        calls = []

        def first_applicable(applicable):
            calls.append(len(applicable))
            return applicable[0]

        scheduler._choose = first_applicable
        result = scheduler.run_on_input((3, 5))
        assert result.silent
        assert crn.output_count(result.final_configuration) == 3
        assert len(calls) == result.steps  # the patched hook ran every step

    def test_run_many_python_engine_matches_reference_loop(self):
        # The registered "python" engine spawns one seed per trial; the frozen
        # reference scheduler fed the same seeds must agree output for output.
        from repro.api.config import RunConfig

        crn = minimum_spec().known_crn
        config = RunConfig(trials=5, seed=17)
        report = run_many(crn, (3, 8), config=config)
        window = default_quiescence_window((3, 8))
        expected = [
            crn.output_count(
                ReferenceFairScheduler(crn, rng=random.Random(trial_seed))
                .run_on_input((3, 8), quiescence_window=window)
                .final_configuration
            )
            for trial_seed in config.trial_seeds()
        ]
        assert report.outputs == expected


class TestIncrementalState:
    def test_fired_recomputes_exactly_the_dependents(self):
        crn = maximum_spec().known_crn
        compiled = crn.compiled()
        stepper = GillespiePolicy().bind(compiled, random.Random(0))
        counts = list(compiled.encode(crn.initial_configuration((4, 6))))
        stepper.start(counts)
        for j in range(compiled.n_reactions):
            applicable = all(counts[s] >= k for s, k in compiled.reactant_terms[j])
            if not applicable:
                continue
            for s, delta in compiled.net_terms[j]:
                counts[s] += delta
            stepper.fired(j, counts)
            assert stepper.last_recomputed == compiled.dependency_graph[j]

    def test_incremental_propensities_equal_full_recompute(self):
        crn = build_crn_for(minimum_spec(), strategy="general")
        compiled = crn.compiled()
        rng = random.Random(11)
        core = SimulatorCore(crn, GillespiePolicy(), rng=rng)
        result = core.run(crn.initial_configuration((4, 5)), max_steps=500)
        # Replay the same run, checking the stepper invariant step by step.
        rng = random.Random(11)
        stepper = GillespiePolicy().bind(compiled, rng)
        counts = list(compiled.encode(crn.initial_configuration((4, 5))))
        stepper.start(counts)
        for _ in range(min(result.steps, 200)):
            j, _time = stepper.select(0.0, float("inf"))
            if j < 0:
                break
            for s, delta in compiled.net_terms[j]:
                counts[s] += delta
            stepper.fired(j, counts)
            fresh = GillespiePolicy().bind(compiled, random.Random(0))
            fresh.start(counts)
            assert stepper.propensities() == fresh.propensities()

    def test_incremental_applicability_equals_full_recompute(self):
        crn = build_crn_for(quilt_2d_fig3b_spec(), strategy="quilt")
        compiled = crn.compiled()
        rng = random.Random(7)
        stepper = FairPolicy().bind(compiled, rng)
        counts = list(compiled.encode(crn.initial_configuration((3, 3))))
        stepper.start(counts)
        for _ in range(200):
            j, _time = stepper.select(0.0, float("inf"))
            if j < 0:
                break
            for s, delta in compiled.net_terms[j]:
                counts[s] += delta
            stepper.fired(j, counts)
            fresh = FairPolicy().bind(compiled, random.Random(0))
            fresh.start(counts)
            assert stepper.applicability() == fresh.applicability()


class TestTauLeapPolicy:
    """Unit behaviour of the batch-firing policy (distributional correctness
    lives in ``tests/test_statistical_equivalence.py``)."""

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.5, 2, True, "0.1"])
    def test_epsilon_validated(self, bad):
        with pytest.raises(ValueError, match="epsilon"):
            TauLeapPolicy(epsilon=bad)

    def test_small_population_falls_back_to_exact_bursts(self):
        crn = minimum_spec().known_crn
        core = SimulatorCore(crn, TauLeapPolicy(), rng=random.Random(2))
        result = core.run_on_input((8, 13))
        assert result.silent
        assert crn.output_count(result.final_configuration) == 8
        assert result.steps == 8  # every event consumes one X1: exact count

    def test_large_population_collapses_selections(self):
        crn = minimum_spec().known_crn
        core = SimulatorCore(crn, TauLeapPolicy(), rng=random.Random(2))
        result = core.run_on_input((20_000, 20_000), max_steps=10_000_000)
        assert result.silent
        assert crn.output_count(result.final_configuration) == 20_000
        assert result.steps == 20_000
        assert result.selections < result.steps / 5  # the step-count collapse

    def test_counts_never_go_negative_and_time_advances(self):
        # Drive the stepper directly: the decoded Configuration drops
        # nonpositive entries, so only the raw dense counts can witness a
        # negative-population bug.
        import math

        crn = maximum_spec().known_crn
        compiled = crn.compiled()
        stepper = TauLeapPolicy().bind(compiled, random.Random(6))
        counts = list(compiled.encode(crn.initial_configuration((5_000, 3_000))))
        stepper.start(counts)
        time_now = 0.0
        while True:
            events, time_now = stepper.advance(counts, time_now, math.inf)
            if events < 0:
                break
            assert all(count >= 0 for count in counts), counts
        assert time_now > 0.0
        # The max CRN keeps its intermediates scarce, so the Cao bound
        # (rightly) routes the whole run through exact bursts.
        assert stepper.exact_events > 0

    def test_leaps_keep_raw_counts_nonnegative_when_actually_leaping(self):
        import math

        crn = minimum_spec().known_crn
        compiled = crn.compiled()
        stepper = TauLeapPolicy().bind(compiled, random.Random(6))
        counts = list(compiled.encode(crn.initial_configuration((30_000, 20_000))))
        stepper.start(counts)
        time_now = 0.0
        while True:
            events, time_now = stepper.advance(counts, time_now, math.inf)
            if events < 0:
                break
            assert all(count >= 0 for count in counts), counts
        assert stepper.leaps > 0  # abundant species: genuine leaping territory

    def test_max_time_clamps_the_clock(self):
        crn = minimum_spec().known_crn
        core = SimulatorCore(crn, TauLeapPolicy(), rng=random.Random(4))
        result = core.run_on_input((50_000, 50_000), max_time=1e-9)
        assert result.final_time <= 1e-9 + 1e-18
        assert not result.silent

    def test_tau_respects_registry_metadata(self):
        from repro.sim.registry import get_engine

        info = get_engine("tau")
        assert info.approximate
        assert not info.supports_fair
        assert info.supports_gillespie
        assert info.min_recommended_population == 10_000


class TestSeedStreamLock:
    """The exact engines are bit-for-bit unchanged by the tau-leaping PR.

    ``RunConfig`` grew an ``epsilon`` field (consumed only by approximate
    engines); these locks re-run the kernel-vs-reference parity with epsilon
    present-but-unused and assert the seeded streams did not move.
    """

    def test_gillespie_parity_with_epsilon_present(self):
        from repro.api.config import RunConfig

        crn = minimum_spec().known_crn
        config = RunConfig(trials=1, seed=23, epsilon=0.5)  # non-default epsilon
        (trial_seed,) = config.trial_seeds()
        kernel = GillespieSimulator(crn, rng=random.Random(trial_seed)).run_on_input(
            (6, 11)
        )
        reference = ReferenceGillespieSimulator(
            crn, rng=random.Random(trial_seed)
        ).run_on_input((6, 11))
        assert_same_gillespie(kernel, reference)

    def test_run_many_python_stream_independent_of_epsilon(self):
        from repro.api.config import RunConfig
        from repro.sim.runner import estimate_expected_output

        crn = maximum_spec().known_crn
        default_eps = run_many(crn, (4, 9), config=RunConfig(trials=6, seed=31))
        custom_eps = run_many(
            crn, (4, 9), config=RunConfig(trials=6, seed=31, epsilon=0.7)
        )
        assert default_eps.outputs == custom_eps.outputs
        assert default_eps.steps == custom_eps.steps
        assert estimate_expected_output(
            crn, (4, 9), config=RunConfig(trials=4, seed=31)
        ) == estimate_expected_output(
            crn, (4, 9), config=RunConfig(trials=4, seed=31, epsilon=0.7)
        )

    def test_run_many_reference_parity_with_epsilon_present(self):
        # The full kernel-vs-reference run_many lock, re-run with epsilon in
        # the config: the registered python engine must still reproduce the
        # frozen reference scheduler output for output.
        from repro.api.config import RunConfig

        crn = minimum_spec().known_crn
        config = RunConfig(trials=5, seed=17, epsilon=0.42)
        report = run_many(crn, (3, 8), config=config)
        window = default_quiescence_window((3, 8))
        expected = [
            crn.output_count(
                ReferenceFairScheduler(crn, rng=random.Random(trial_seed))
                .run_on_input((3, 8), quiescence_window=window)
                .final_configuration
            )
            for trial_seed in config.trial_seeds()
        ]
        assert report.outputs == expected

    def test_vectorized_stream_independent_of_epsilon(self):
        from repro.api.config import RunConfig

        crn = minimum_spec().known_crn
        default_eps = run_many(
            crn, (30, 40), config=RunConfig(trials=8, seed=5, engine="vectorized")
        )
        custom_eps = run_many(
            crn,
            (30, 40),
            config=RunConfig(trials=8, seed=5, engine="vectorized", epsilon=0.9),
        )
        assert default_eps.outputs == custom_eps.outputs
        assert default_eps.steps == custom_eps.steps


def branching_crn():
    """X -> Y (rate 1) vs X -> Z (rate 3): outputs are rate-sensitive, so a
    kinetic run's result genuinely depends on every draw of its stream."""
    X = species("X")[0]
    return CRN([(X >> Y), (X >> Z).with_rate(3.0)], (X,), Y, name="branching")


class TestNextReactionPolicy:
    """Unit behaviour of the Gibson–Bruck policy (the distributional gates
    against the other engines live in ``tests/test_statistical_equivalence.py``)."""

    @pytest.mark.parametrize("label,crn,x", STRATEGY_CASES, ids=STRATEGY_IDS)
    def test_stable_computations_reach_the_stable_output(self, label, crn, x):
        # Stable computation means a unique achievable final output; the
        # kinetic scheduler reaches it with probability 1, so NRM and the
        # direct method must land on the same value.
        window = default_quiescence_window(x)
        nrm = SimulatorCore(crn, NextReactionPolicy(), rng=random.Random(3)).run_on_input(
            x, max_steps=200_000, quiescence_window=window
        )
        direct = SimulatorCore(crn, GillespiePolicy(), rng=random.Random(3)).run_on_input(
            x, max_steps=200_000, quiescence_window=window
        )
        assert nrm.silent or nrm.converged, label
        assert crn.output_count(nrm.final_configuration) == crn.output_count(
            direct.final_configuration
        ), label

    def test_selections_equal_steps(self):
        crn = minimum_spec().known_crn
        result = SimulatorCore(
            crn, NextReactionPolicy(), rng=random.Random(3)
        ).run_on_input((20, 30))
        assert result.selections == result.steps == 20

    def test_silent_at_step_zero(self):
        crn = CRN([X1 >> Y], (X1,), Y)
        result = SimulatorCore(
            crn, NextReactionPolicy(), rng=random.Random(1)
        ).run_on_input((0,))
        assert result.silent and result.steps == 0
        assert result.final_time == 0.0

    def test_max_time_clamps_the_clock(self):
        crn = branching_crn()
        result = SimulatorCore(
            crn, NextReactionPolicy(), rng=random.Random(3)
        ).run_on_input((40,), max_time=0.01)
        assert result.final_time <= 0.01
        assert not result.silent

    def test_seeded_runs_are_deterministic(self):
        crn = branching_crn()
        first = SimulatorCore(
            crn, NextReactionPolicy(), rng=random.Random(7)
        ).run_on_input((40,))
        second = SimulatorCore(
            crn, NextReactionPolicy(), rng=random.Random(7)
        ).run_on_input((40,))
        assert first.final_configuration == second.final_configuration
        assert first.final_time == second.final_time
        assert first.steps == second.steps

    def test_putative_time_finite_iff_propensity_positive(self):
        # The max CRN's intermediates toggle between zero and nonzero, so
        # reactions are repeatedly disabled (parked at inf) and re-enabled
        # (fresh exponential) along a run — the invariant must hold throughout.
        import math

        crn = maximum_spec().known_crn
        compiled = crn.compiled()
        stepper = NextReactionPolicy().bind(compiled, random.Random(6))
        counts = list(compiled.encode(crn.initial_configuration((5, 4))))
        stepper.start(counts)
        time_now = 0.0
        for _ in range(500):
            for a, t in zip(stepper.propensities(), stepper.putative_times()):
                assert (a > 0.0) == (t != math.inf)
                if t != math.inf:
                    assert t >= time_now
            j, time_now = stepper.select(time_now, math.inf)
            if j < 0:
                break
            for s, delta in compiled.net_terms[j]:
                counts[s] += delta
            stepper.fired(j, counts)
        assert stepper.propensity_ops > 0

    def test_incremental_propensities_equal_full_recompute(self):
        import math

        crn = build_crn_for(minimum_spec(), strategy="general")
        compiled = crn.compiled()
        stepper = NextReactionPolicy().bind(compiled, random.Random(11))
        counts = list(compiled.encode(crn.initial_configuration((4, 5))))
        stepper.start(counts)
        time_now = 0.0
        for _ in range(200):
            j, time_now = stepper.select(time_now, math.inf)
            if j < 0:
                break
            for s, delta in compiled.net_terms[j]:
                counts[s] += delta
            stepper.fired(j, counts)
            assert stepper.last_recomputed == compiled.dependency_graph[j]
            fresh = GillespiePolicy().bind(compiled, random.Random(0))
            fresh.start(counts)
            assert stepper.propensities() == fresh.propensities()

    def test_distribution_matches_direct_method(self):
        # A coarse in-suite distributional check on the rate-sensitive
        # branching CRN: 200 seeded trajectories per policy, KS on the final
        # output counts.  (The full cross-engine matrix runs under -m
        # statistical.)
        from repro.verify.statistical import ks_two_sample

        crn = branching_crn()
        nrm_outputs = []
        direct_outputs = []
        for seed in range(200):
            nrm = SimulatorCore(
                crn, NextReactionPolicy(), rng=random.Random(seed)
            ).run_on_input((40,))
            direct = SimulatorCore(
                crn, GillespiePolicy(), rng=random.Random(10_000 + seed)
            ).run_on_input((40,))
            assert nrm.silent and nrm.steps == 40
            nrm_outputs.append(crn.output_count(nrm.final_configuration))
            direct_outputs.append(crn.output_count(direct.final_configuration))
        ks = ks_two_sample(nrm_outputs, direct_outputs)
        assert not ks.rejects(1e-3), ks.describe()

    def test_fewer_propensity_ops_than_direct_method(self):
        # The point of the engine: the direct method reads the whole vector
        # every select, NRM touches only the fired reaction's dependents.
        # (The >= 2x CI gate on an R >= 30 network lives in benchmarks/.)
        import math

        crn = build_crn_for(minimum_spec(), strategy="general")
        compiled = crn.compiled()

        def drive(policy, seed):
            stepper = policy.bind(compiled, random.Random(seed))
            counts = list(compiled.encode(crn.initial_configuration((6, 9))))
            stepper.start(counts)
            time_now = 0.0
            steps = 0
            while steps < 2_000:
                j, time_now = stepper.select(time_now, math.inf)
                if j < 0:
                    break
                for s, delta in compiled.net_terms[j]:
                    counts[s] += delta
                stepper.fired(j, counts)
                steps += 1
            return stepper.propensity_ops, steps

        nrm_ops, nrm_steps = drive(NextReactionPolicy(), 5)
        direct_ops, direct_steps = drive(GillespiePolicy(), 5)
        assert nrm_steps > 0 and direct_steps > 0
        assert nrm_ops / nrm_steps < direct_ops / direct_steps

    def test_nrm_registry_metadata(self):
        from repro.sim.registry import get_engine

        info = get_engine("nrm")
        assert not info.approximate  # exact sampler
        assert info.supports_gillespie
        assert not info.supports_fair  # kinetic scheduling only


class TestSeedStreamLockNRM:
    """The pre-existing engines are bit-for-bit unchanged by the NRM PR.

    NRM consumes the ``random.Random`` stream differently (one exponential
    per reaction up front, ~one draw per step) — these replay fixtures were
    captured *before* the engine landed and pin every existing engine's
    seeded stream, so NRM's different consumption cannot silently leak into
    them through shared code paths.
    """

    def test_python_run_many_replays_pre_nrm_fixture(self):
        from repro.api.config import RunConfig

        report = run_many(
            branching_crn(), (40,), config=RunConfig(trials=6, seed=424242)
        )
        assert report.outputs == [22, 27, 25, 24, 18, 18]

    def test_vectorized_run_many_replays_pre_nrm_fixture(self):
        from repro.api.config import RunConfig

        report = run_many(
            branching_crn(),
            (40,),
            config=RunConfig(trials=6, seed=424242, engine="vectorized"),
        )
        assert report.outputs == [18, 18, 18, 21, 16, 23]

    def test_tau_run_many_replays_pre_nrm_fixture(self):
        from repro.api.config import RunConfig

        report = run_many(
            branching_crn(),
            (40,),
            config=RunConfig(trials=6, seed=424242, engine="tau"),
        )
        assert report.outputs == [7, 10, 10, 8, 11, 9]

    @pytest.mark.parametrize("engine", ["python", "vectorized", "tau"])
    def test_general_construction_replays_pre_nrm_fixture(self, engine):
        from repro.api.config import RunConfig

        crn = build_crn_for(minimum_spec(), strategy="general")
        report = run_many(
            crn,
            (4, 6),
            config=RunConfig(trials=4, seed=777, engine=engine, max_steps=50_000),
        )
        assert report.outputs == [4, 4, 4, 4], engine
        assert report.steps == [41, 41, 41, 41], engine

    @pytest.mark.parametrize(
        "engine,expected", [("python", 10.2), ("vectorized", 10.0), ("tau", 10.2)]
    )
    def test_estimates_replay_pre_nrm_fixture(self, engine, expected):
        from repro.api.config import RunConfig
        from repro.sim.runner import estimate_expected_output

        estimate = estimate_expected_output(
            branching_crn(), (40,), config=RunConfig(trials=5, seed=99, engine=engine)
        )
        assert estimate == pytest.approx(expected, abs=1e-12)

    @pytest.mark.parametrize(
        "seed,final_time,output,steps",
        [(5, 0.7678122926074016, 12, 40), (6, 2.0320946168568637, 7, 40)],
    )
    def test_gillespie_clock_replays_pre_nrm_fixture(
        self, seed, final_time, output, steps
    ):
        # Exact float equality on the simulated clock: the strongest
        # detector of any extra/missing draw in the scalar kinetic stream.
        result = GillespieSimulator(
            branching_crn(), rng=random.Random(seed)
        ).run_on_input((40,))
        assert result.final_time == final_time
        assert result.final_configuration[Y] == output
        assert result.steps == steps


class TestSeedStreamLockTauVec:
    """The pre-existing engines are bit-for-bit unchanged by the tau-vec PR.

    That PR moved the tau-selection math out of ``_TauLeapStepper`` into the
    shared :mod:`repro.sim.tau` helpers (now also consumed by the batched
    ``tau-vec`` engine, which draws from its own numpy Generator).  These
    fixtures were captured *before* the refactor and pin every scalar
    engine's seeded stream — and the shared tau bound itself, down to the
    float — so neither the helper move nor the new engine can perturb them.
    """

    def test_nrm_run_many_replays_pre_tau_vec_fixture(self):
        from repro.api.config import RunConfig

        report = run_many(
            branching_crn(),
            (40,),
            config=RunConfig(trials=6, seed=424242, engine="nrm"),
        )
        assert report.outputs == [12, 12, 9, 10, 9, 6]

    def test_nrm_estimate_replays_pre_tau_vec_fixture(self):
        from repro.api.config import RunConfig
        from repro.sim.runner import estimate_expected_output

        estimate = estimate_expected_output(
            branching_crn(), (40,), config=RunConfig(trials=5, seed=99, engine="nrm")
        )
        assert estimate == pytest.approx(13.6, abs=1e-12)

    @pytest.mark.parametrize("engine", ["python", "vectorized", "tau", "nrm"])
    def test_general_construction_replays_pre_tau_vec_fixture(self, engine):
        from repro.api.config import RunConfig

        crn = build_crn_for(minimum_spec(), strategy="general")
        report = run_many(
            crn,
            (4, 6),
            config=RunConfig(trials=4, seed=777, engine=engine, max_steps=50_000),
        )
        assert report.outputs == [4, 4, 4, 4], engine
        assert report.steps == [41, 41, 41, 41], engine

    @pytest.mark.parametrize(
        "seed,final_time,selections",
        [(5, 1.6949295079945488, 142), (6, 1.914413349394657, 141)],
    )
    def test_tau_clock_replays_pre_tau_vec_fixture(
        self, seed, final_time, selections
    ):
        # Exact float equality on the simulated clock plus the leap-round
        # count: the strongest detector of any change to the tau bound or to
        # the scalar Poisson sampler's draw order.
        result = SimulatorCore(
            minimum_spec().known_crn, TauLeapPolicy(), rng=random.Random(seed)
        ).run_on_input((5_000, 5_000))
        assert result.final_time == final_time
        assert result.steps == 5_000
        assert result.selections == selections

    @pytest.mark.parametrize(
        "seed,final_time,output",
        [(5, 1.7633406230519273, 10), (6, 1.2634142499274723, 8)],
    )
    def test_nrm_clock_replays_pre_tau_vec_fixture(self, seed, final_time, output):
        result = SimulatorCore(
            branching_crn(), NextReactionPolicy(), rng=random.Random(seed)
        ).run_on_input((40,))
        assert result.final_time == final_time
        assert result.final_configuration[Y] == output

    @pytest.mark.parametrize(
        "x,epsilon,expected",
        [((5_000, 5_000), 0.03, 3e-06), ((123, 77), 0.07, 0.00028455284552845534)],
    )
    def test_shared_select_tau_replays_scalar_bound(self, x, epsilon, expected):
        # The shared repro.sim.tau scalar form produces the exact floats the
        # pre-refactor inline loop did (same ops, same order).
        from repro.sim.engine import CompiledCRN

        compiled = CompiledCRN(minimum_spec().known_crn)
        stepper = TauLeapPolicy(epsilon=epsilon).bind(compiled, random.Random(0))
        counts = [int(v) for v in compiled.encode(
            minimum_spec().known_crn.initial_configuration(x)
        )]
        stepper.exact.start(counts)
        assert stepper.select_tau(counts) == expected


class TestSimulatorCore:
    def test_quiescence_window_converges_catalytic_network(self):
        crn = CRN([X1 + X2 >> X1 + X2], (X1, X2), Y)
        core = SimulatorCore(crn, FairPolicy(), rng=random.Random(8))
        result = core.run_on_input((2, 2), quiescence_window=50, max_steps=10_000)
        assert result.converged and not result.silent
        assert result.steps == 50

    def test_nothing_applicable_is_silent_at_step_zero(self):
        crn = CRN([X1 >> Y], (X1,), Y)
        core = SimulatorCore(crn, GillespiePolicy(), rng=random.Random(1))
        result = core.run_on_input((0,))
        assert result.silent and result.steps == 0
        assert result.final_configuration == Configuration({})

    def test_accepts_precompiled_ir(self):
        crn = minimum_spec().known_crn
        core = SimulatorCore(crn.compiled(), FairPolicy(), rng=random.Random(2))
        result = core.run_on_input((3, 9))
        assert result.silent
        assert result.final_configuration[Y] == 3

    def test_exact_policies_report_selections_equal_to_steps(self):
        crn = minimum_spec().known_crn
        result = SimulatorCore(crn, GillespiePolicy(), rng=random.Random(3)).run_on_input(
            (20, 30)
        )
        assert result.selections == result.steps == 20

    def test_default_quiescence_window_is_single_sourced(self):
        import repro.sim as sim
        import repro.sim.kernel as kernel
        import repro.sim.runner as runner

        assert sim.default_quiescence_window is kernel.default_quiescence_window
        assert runner.default_quiescence_window is kernel.default_quiescence_window
        assert default_quiescence_window((2, 2)) == max(200, 50 * 6)
