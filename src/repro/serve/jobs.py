"""The async job layer: campaign grids on a worker pool, memoized by the cache.

A job is a :class:`repro.lab.campaign.Campaign` submitted over HTTP.  The
manager expands it into the same deterministic, content-addressed cells an
in-process ``Workbench.campaign`` run would produce — **the whole point**: a
job cell and a local campaign cell with the same descriptor share a cache
key, per-cell derived seed, and cell id, so their results are interchangeable
and mutually memoizing.

Lifecycle per job (one asyncio task, cells fanned out to the pool):

1. cells whose seeded cache key hits the shared
   :class:`~repro.lab.cache.ResultCache` are resolved without touching the
   pool;
2. the misses are all submitted to the ``ProcessPoolExecutor`` at once (the
   pool provides the parallelism; the task just awaits completions);
3. completions are folded in as they land; successful seeded rows are
   published back to the cache;
4. cancellation sets an event the task races against: pending pool futures
   are cancelled, in-flight cells are abandoned (their results discarded),
   and the job settles as ``"cancelled"`` with its partial results intact.

**Backpressure** is cell-granular: the manager tracks the number of cells not
yet finished across all live jobs, and a submission that would push the total
past ``queue_limit`` is rejected with :class:`QueueFullError` — the HTTP
layer renders that as ``429 Too Many Requests`` with a ``Retry-After`` hint.
"""

from __future__ import annotations

import asyncio
import time
import uuid
from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.api.config import RunConfig
from repro.lab.backends import SharedDirQueue
from repro.lab.cache import ResultCache
from repro.lab.campaign import Campaign, Cell
from repro.lab.executor import run_cell
from repro.lab.store import CellResult
from repro.serve.metrics import ServerMetrics

#: Terminal job states.
DONE_STATES = ("done", "cancelled", "failed")


class QueueFullError(Exception):
    """The job queue is at capacity; retry later (HTTP 429)."""

    def __init__(self, message: str, retry_after: int = 1) -> None:
        super().__init__(message)
        self.retry_after = retry_after


def single_cell(spec_name: str, strategy: str, x: Sequence[int], config: RunConfig) -> Cell:
    """The one campaign cell a simulate request denotes.

    Built through a one-cell :class:`~repro.lab.campaign.Campaign` expansion
    rather than by hand, so the cell id, cache key, and ``"auto"`` engine
    resolution are *definitionally* identical to what a campaign over the
    same descriptor produces — the serve memo and the lab memo are one memo.
    """
    campaign = Campaign(
        name="serve",
        specs=[(spec_name, strategy)],
        inputs=[tuple(int(v) for v in x)],
        engines=(config.engine,),
        configs=(config,),
        seed=None,  # the request config's own seed is the cell seed
    )
    return campaign.expand()[0]


class Job:
    """One submitted campaign: cells, progress counters, partial results."""

    def __init__(
        self,
        job_id: str,
        name: str,
        cells: List[Cell],
        queue_dir: Optional[str] = None,
    ) -> None:
        self.id = job_id
        self.name = name
        self.cells = cells
        self.queue_dir = queue_dir
        self.worker_stats: Dict[str, Dict[str, Any]] = {}
        self.state = "queued"
        self.error: Optional[str] = None
        self.created = time.time()
        self.finished: Optional[float] = None
        self.from_cache = 0
        self.executed = 0
        self.errors = 0
        self.cancel_event = asyncio.Event()
        self._rows: Dict[str, CellResult] = {}

    # -- progress ---------------------------------------------------------------

    @property
    def total(self) -> int:
        return len(self.cells)

    @property
    def done_cells(self) -> int:
        return self.from_cache + self.executed

    @property
    def remaining(self) -> int:
        return self.total - self.done_cells

    @property
    def active(self) -> bool:
        return self.state not in DONE_STATES

    def record(self, cell: Cell, row: CellResult, from_cache: bool) -> None:
        self._rows[cell.cell_id] = row
        if from_cache:
            self.from_cache += 1
        else:
            self.executed += 1
        if not row.ok:
            self.errors += 1

    def results(self) -> List[CellResult]:
        """Rows so far, in deterministic cell order (not completion order)."""
        return list(self.results_iter())

    def results_iter(self) -> Iterator[CellResult]:
        """Stream rows so far in deterministic cell order (never a list).

        The NDJSON results endpoint serializes straight off this iterator, so
        a million-cell job's results are never buffered as one response body.
        """
        for cell in self.cells:
            row = self._rows.get(cell.cell_id)
            if row is not None:
                yield row

    def to_dict(self, include_results: bool = True) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "id": self.id,
            "name": self.name,
            "state": self.state,
            "error": self.error,
            "progress": {
                "total": self.total,
                "done": self.done_cells,
                "from_cache": self.from_cache,
                "executed": self.executed,
                "errors": self.errors,
            },
        }
        if self.queue_dir is not None:
            payload["backend"] = {
                "name": "shared-dir",
                "queue_dir": self.queue_dir,
                "workers": self.worker_stats,
            }
        if include_results:
            payload["results"] = [row.to_dict() for row in self.results()]
        return payload


class JobManager:
    """Owns the job table, the worker pool handle, and the queue bound."""

    def __init__(
        self,
        pool,  # ProcessPoolExecutor, or None for the loop's thread executor
        cache: Optional[ResultCache],
        metrics: ServerMetrics,
        queue_limit: int = 10_000,
    ) -> None:
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        self.pool = pool
        self.cache = cache
        self.metrics = metrics
        self.queue_limit = queue_limit
        #: Poll interval for shared-dir jobs (workers signal via the filesystem).
        self.shared_dir_poll = 0.2
        self.jobs: Dict[str, Job] = {}
        self._tasks: Dict[str, asyncio.Task] = {}

    # -- queue accounting ---------------------------------------------------------

    @property
    def pending_cells(self) -> int:
        return sum(job.remaining for job in self.jobs.values() if job.active)

    # -- the cache memo, shared with the simulate endpoint -------------------------

    def cache_lookup(self, cell: Cell) -> Optional[CellResult]:
        """The cached row for a cell, or ``None``; records hit/miss metrics."""
        if self.cache is None or not cell.cacheable:
            return None
        payload = self.cache.get(cell.cache_key())
        if payload is None or payload.get("cell_id") != cell.cell_id:
            self.metrics.record_cache(False)
            return None
        self.metrics.record_cache(True)
        row = CellResult.from_dict(payload)
        row.cached = True
        row.wall_time = 0.0
        return row

    def cache_publish(self, cell: Cell, row: CellResult) -> None:
        if self.cache is not None and cell.cacheable and row.ok:
            self.cache.put(cell.cache_key(), row.deterministic_dict())

    async def execute_cell(self, cell: Cell) -> Tuple[CellResult, bool]:
        """Run one cell through the memo: ``(row, was_cache_hit)``.

        The simulate endpoint calls this directly; job tasks use the same
        lookup/publish pair around their fan-out.
        """
        self.metrics.record_engine_request(cell.engine)
        row = self.cache_lookup(cell)
        if row is not None:
            return row, True
        loop = asyncio.get_running_loop()
        row = await loop.run_in_executor(self.pool, run_cell, cell)
        self.metrics.record_engine_executed(cell.engine)
        self.cache_publish(cell, row)
        return row, False

    # -- job lifecycle --------------------------------------------------------------

    def submit(
        self,
        campaign: Campaign,
        cells: Optional[List[Cell]] = None,
        queue_dir: Optional[str] = None,
    ) -> Job:
        """Admit a campaign as a job, or raise :class:`QueueFullError`.

        With ``queue_dir`` the job's cache misses are *enqueued* on a
        :class:`~repro.lab.backends.SharedDirQueue` instead of fanned out to
        the server's own pool: external ``python -m repro worker`` processes
        claim and execute them, and the job task folds rows in as shards
        complete.  Same cells, same cache keys — just a different executor.
        """
        if cells is None:
            cells = campaign.expand()
        backlog = self.pending_cells
        if backlog + len(cells) > self.queue_limit:
            self.metrics.record_job_event("rejected")
            raise QueueFullError(
                f"job queue is full: {backlog} cells pending, job adds "
                f"{len(cells)}, limit is {self.queue_limit}",
                retry_after=max(1, backlog // 100),
            )
        job = Job(uuid.uuid4().hex[:12], campaign.name, cells, queue_dir=queue_dir)
        self.jobs[job.id] = job
        self.metrics.record_job_event("submitted")
        self._tasks[job.id] = asyncio.get_running_loop().create_task(self._run(job))
        return job

    def get(self, job_id: str) -> Optional[Job]:
        return self.jobs.get(job_id)

    def cancel(self, job_id: str) -> Optional[Job]:
        """Request cancellation; settled jobs keep their terminal state."""
        job = self.jobs.get(job_id)
        if job is not None and job.active:
            job.cancel_event.set()
        return job

    async def _run(self, job: Job) -> None:
        try:
            job.state = "running"
            loop = asyncio.get_running_loop()

            to_run: List[Cell] = []
            for cell in job.cells:
                if job.cancel_event.is_set():
                    break
                self.metrics.record_engine_request(cell.engine)
                row = self.cache_lookup(cell)
                if row is not None:
                    job.record(cell, row, from_cache=True)
                    self.metrics.record_job_event("cells_from_cache")
                else:
                    to_run.append(cell)

            if job.queue_dir is not None:
                if not job.cancel_event.is_set():
                    await self._run_shared_dir(job, to_run)
            else:
                by_future: Dict[asyncio.Future, Cell] = {}
                if not job.cancel_event.is_set():
                    for cell in to_run:
                        by_future[loop.run_in_executor(self.pool, run_cell, cell)] = cell

                pending = set(by_future)
                waiter = asyncio.ensure_future(job.cancel_event.wait())
                try:
                    while pending:
                        done, still_pending = await asyncio.wait(
                            pending | {waiter}, return_when=asyncio.FIRST_COMPLETED
                        )
                        pending = still_pending - {waiter}
                        for future in done - {waiter}:
                            if future.cancelled():
                                continue
                            cell = by_future[future]
                            row = future.result()  # run_cell never raises
                            job.record(cell, row, from_cache=False)
                            self.metrics.record_engine_executed(cell.engine)
                            self.metrics.record_job_event("cells_executed")
                            self.cache_publish(cell, row)
                        if job.cancel_event.is_set():
                            for future in pending:
                                future.cancel()
                            if pending:
                                await asyncio.gather(*pending, return_exceptions=True)
                            pending = set()
                finally:
                    waiter.cancel()

            if job.cancel_event.is_set():
                job.state = "cancelled"
                self.metrics.record_job_event("cancelled")
            else:
                job.state = "done"
                self.metrics.record_job_event("completed")
        except Exception as exc:  # noqa: BLE001 — a job failure is a recorded state
            job.state = "failed"
            job.error = f"{type(exc).__name__}: {exc}"
            self.metrics.record_job_event("failed")
        finally:
            job.finished = time.time()

    async def _run_shared_dir(self, job: Job, to_run: List[Cell]) -> None:
        """Drive a job's cache misses through a shared-dir work queue.

        The server never executes these cells itself: it enqueues them and
        polls the queue's ``done/`` markers, folding merged rows in as
        external workers complete shards.  All filesystem traffic runs on the
        loop's thread executor so the event loop stays responsive.  Rows
        stream into ``job._rows`` incrementally, so ``GET .../results``
        observes partial progress exactly as it does for pool jobs.
        """
        loop = asyncio.get_running_loop()
        queue = SharedDirQueue(job.queue_dir)
        by_id = {cell.cell_id: cell for cell in to_run}
        await loop.run_in_executor(None, queue.enqueue, to_run)
        folded: Set[str] = set()
        while folded != set(by_id):
            if job.cancel_event.is_set():
                break
            done = await loop.run_in_executor(None, queue.done_ids)
            fresh = (done & set(by_id)) - folded
            if fresh:
                rows = await loop.run_in_executor(None, queue.merged_rows, fresh)
                for cell_id in sorted(fresh):
                    row = rows.get(cell_id)
                    if row is None:
                        continue  # done marker ahead of the row flush; next poll
                    cell = by_id[cell_id]
                    job.record(cell, row, from_cache=False)
                    self.metrics.record_engine_executed(cell.engine)
                    self.metrics.record_job_event("cells_executed")
                    self.cache_publish(cell, row)
                    folded.add(cell_id)
                job.worker_stats = await loop.run_in_executor(None, queue.worker_stats)
                continue  # something landed; re-poll immediately
            try:
                await asyncio.wait_for(
                    job.cancel_event.wait(), timeout=self.shared_dir_poll
                )
            except asyncio.TimeoutError:
                pass
        job.worker_stats = await loop.run_in_executor(None, queue.worker_stats)

    async def shutdown(self) -> None:
        """Cancel every live job and wait for their tasks to settle."""
        for job in self.jobs.values():
            if job.active:
                job.cancel_event.set()
        tasks = [task for task in self._tasks.values() if not task.done()]
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
