"""CLI smoke tests: ``python -m repro`` end to end in a subprocess."""

import json
import os
import subprocess
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")


def repro_cli(*args, cwd):
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = SRC + (os.pathsep + existing if existing else "")
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        cwd=str(cwd),
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )


class TestCliSmoke:
    def test_run_report_resume_round_trip(self, tmp_path):
        run = repro_cli(
            "run", "--spec", "minimum", "--grid", "0:3", "--trials", "2",
            "--seed", "5", "--workers", "2", "--out", "camp", "--quiet", "--json",
            cwd=tmp_path,
        )
        assert run.returncode == 0, run.stderr
        summary = json.loads(run.stdout)
        assert summary["total_cells"] == 9
        assert summary["errors"] == 0
        assert summary["correct_rate"] == 1.0
        assert summary["provenance"]["executed"] == 9
        assert (tmp_path / "camp" / "manifest.json").exists()
        assert (tmp_path / "camp" / "results.jsonl").exists()
        assert (tmp_path / "camp" / "summary.json").exists()

        report = repro_cli("report", "camp", "--json", cwd=tmp_path)
        assert report.returncode == 0, report.stderr
        assert json.loads(report.stdout)["total_cells"] == 9

        resume = repro_cli("resume", "camp", "--quiet", "--json", cwd=tmp_path)
        assert resume.returncode == 0, resume.stderr
        provenance = json.loads(resume.stdout)["provenance"]
        assert provenance["already_done"] == 9
        assert provenance["executed"] == 0

    def test_interrupted_campaign_resumes_only_remainder(self, tmp_path):
        run = repro_cli(
            "run", "--spec", "minimum", "--grid", "0:3", "--trials", "2",
            "--seed", "5", "--out", "camp", "--quiet", "--no-cache",
            cwd=tmp_path,
        )
        assert run.returncode == 0, run.stderr
        store = tmp_path / "camp" / "results.jsonl"
        lines = store.read_text().splitlines(keepends=True)
        store.write_text("".join(lines[:3]))  # as if killed after 3 cells

        resume = repro_cli(
            "resume", "camp", "--quiet", "--no-cache", "--json", cwd=tmp_path
        )
        assert resume.returncode == 0, resume.stderr
        provenance = json.loads(resume.stdout)["provenance"]
        assert provenance["already_done"] == 3
        assert provenance["executed"] == 6
        assert json.loads(resume.stdout)["total_cells"] == 9

    def test_second_run_hits_cache(self, tmp_path):
        args = (
            "run", "--spec", "minimum", "--grid", "0:3", "--trials", "2",
            "--seed", "5", "--quiet", "--json", "--cache-dir", "cache",
        )
        first = repro_cli(*args, "--out", "one", cwd=tmp_path)
        assert first.returncode == 0, first.stderr
        second = repro_cli(*args, "--out", "two", cwd=tmp_path)
        assert second.returncode == 0, second.stderr
        provenance = json.loads(second.stdout)["provenance"]
        assert provenance["from_cache"] == 9
        assert provenance["executed"] == 0

    def test_specs_and_engines_listings(self, tmp_path):
        specs = repro_cli("specs", cwd=tmp_path)
        assert specs.returncode == 0
        assert "minimum" in specs.stdout
        engines = repro_cli("engines", cwd=tmp_path)
        assert engines.returncode == 0
        assert "python" in engines.stdout and "vectorized" in engines.stdout
        assert "tau" in engines.stdout
        assert "tau-vec" in engines.stdout
        assert "approximate" in engines.stdout  # capability surfaced
        assert ">= 10000" in engines.stdout  # tau's population floor
        assert "batch" in engines.stdout and "scalar" in engines.stdout

    def test_engines_json_matches_the_registry(self, tmp_path):
        result = repro_cli("engines", "--json", cwd=tmp_path)
        assert result.returncode == 0, result.stderr
        payload = json.loads(result.stdout)

        # the machine-readable form is EngineInfo.to_dict, the same
        # serialization GET /v1/engines responds with
        from repro.sim.registry import registered_engines

        assert payload == {"engines": [info.to_dict() for info in registered_engines()]}
        by_name = {entry["name"]: entry for entry in payload["engines"]}
        assert set(by_name) == {"python", "vectorized", "nrm", "tau", "tau-vec"}
        assert by_name["tau"]["approximate"] is True
        assert by_name["tau"]["min_recommended_population"] == 10000
        assert by_name["python"]["supports_fair"] is True
        assert by_name["tau-vec"]["approximate"] is True
        assert by_name["tau-vec"]["batch_capable"] is True
        assert by_name["vectorized"]["batch_capable"] is True
        assert by_name["python"]["batch_capable"] is False

    def test_unknown_spec_is_a_clean_error(self, tmp_path):
        run = repro_cli(
            "run", "--spec", "definitely-not-a-spec", "--out", "x", cwd=tmp_path
        )
        assert run.returncode == 2
        assert "unknown spec" in run.stderr

    def test_bench_writes_schema(self, tmp_path):
        bench = repro_cli(
            "bench", "--populations", "20", "--trials", "2", "--workers", "2",
            "--out", "B.json", cwd=tmp_path,
        )
        assert bench.returncode == 0, bench.stderr
        payload = json.loads((tmp_path / "B.json").read_text())
        assert payload["schema"] == "repro-bench-v1"
        names = [record["name"] for record in payload["results"]]
        assert any("python" in name for name in names)
        assert any("vectorized" in name for name in names)
        for record in payload["results"]:
            assert record["steps"] > 0
            assert record["wall_time_s"] > 0

    def test_bench_default_out_is_the_repo_root(self, tmp_path):
        # No --out: the records must land in BENCH_results.json at the
        # repository root found by walking up from the working directory, so
        # the perf trajectory accumulates in one tracked file.
        (tmp_path / "ROADMAP.md").write_text("marker\n")
        nested = tmp_path / "deep" / "inside"
        nested.mkdir(parents=True)
        bench = repro_cli(
            "bench", "--populations", "10", "--trials", "1", "--workers", "1",
            cwd=nested,
        )
        assert bench.returncode == 0, bench.stderr
        assert (tmp_path / "BENCH_results.json").exists()
        assert not (nested / "BENCH_results.json").exists()

    def test_bench_merges_into_existing_results(self, tmp_path):
        (tmp_path / "BENCH_results.json").write_text(
            json.dumps(
                {
                    "schema": "repro-bench-v1",
                    "source": "older run",
                    "results": [
                        {
                            "name": "some-other-family/alpha",
                            "population": 5,
                            "steps": 1,
                            "wall_time_s": 1.0,
                            "steps_per_sec": 1.0,
                        }
                    ],
                }
            )
        )
        bench = repro_cli(
            "bench", "--populations", "10", "--trials", "1", "--workers", "1",
            "--out", "BENCH_results.json", cwd=tmp_path,
        )
        assert bench.returncode == 0, bench.stderr
        payload = json.loads((tmp_path / "BENCH_results.json").read_text())
        names = [record["name"] for record in payload["results"]]
        assert "some-other-family/alpha" in names  # survived the merge
        assert any(name.startswith("campaign/") for name in names)

    def test_version_flag(self, tmp_path):
        import repro

        result = repro_cli("--version", cwd=tmp_path)
        assert result.returncode == 0
        assert result.stdout.strip() == f"repro {repro.__version__}"


class TestReportStreaming:
    def test_report_never_materializes_the_row_list(self, tmp_path, monkeypatch, capsys):
        # the tripwire: `repro report` must fold store.iter_rows() in one
        # streaming pass — store.load() materializes every row and would make
        # million-cell reports O(rows) in memory
        from repro.api.config import RunConfig
        from repro.lab import cli
        from repro.lab.campaign import Campaign, SweepGrid, run_campaign
        from repro.lab.store import ResultStore

        campaign = Campaign(
            name="stream-test",
            specs=["minimum"],
            inputs=SweepGrid.parse("0:3", dimension=2),
            engines=("python",),
            configs=(RunConfig(trials=2),),
            seed=5,
        )
        out = tmp_path / "camp"
        run_campaign(campaign, str(out), cache_dir=None)

        def tripwire(self):
            raise AssertionError("report must stream iter_rows(), never store.load()")

        monkeypatch.setattr(ResultStore, "load", tripwire)
        assert cli.main(["report", str(out), "--profile"]) == 0
        output = capsys.readouterr().out
        assert "stream-test" in output
        assert "slowest cells" in output or "profile" in output.lower()


def write_bench_file(path, **throughputs):
    path.write_text(
        json.dumps(
            {
                "schema": "repro-bench-v1",
                "source": "test",
                "results": [
                    {
                        "name": name,
                        "population": 100,
                        "steps": 1000,
                        "wall_time_s": 1.0,
                        "steps_per_sec": value,
                    }
                    for name, value in throughputs.items()
                ],
            }
        )
    )


class TestBenchCompare:
    def test_no_regression_passes(self, tmp_path):
        write_bench_file(tmp_path / "old.json", **{"scalar/gillespie": 1000.0})
        write_bench_file(tmp_path / "new.json", **{"scalar/gillespie": 950.0})
        result = repro_cli("bench-compare", "old.json", "new.json", cwd=tmp_path)
        assert result.returncode == 0, result.stderr
        assert "scalar/gillespie" in result.stdout

    def test_regression_beyond_threshold_fails(self, tmp_path):
        write_bench_file(tmp_path / "old.json", **{"scalar/gillespie": 1000.0})
        write_bench_file(tmp_path / "new.json", **{"scalar/gillespie": 500.0})
        result = repro_cli("bench-compare", "old.json", "new.json", cwd=tmp_path)
        assert result.returncode == 4
        assert "regression" in result.stderr.lower()

    def test_threshold_is_configurable(self, tmp_path):
        write_bench_file(tmp_path / "old.json", **{"scalar/gillespie": 1000.0})
        write_bench_file(tmp_path / "new.json", **{"scalar/gillespie": 500.0})
        result = repro_cli(
            "bench-compare", "old.json", "new.json", "--max-regression", "0.6",
            cwd=tmp_path,
        )
        assert result.returncode == 0, result.stderr

    def test_filter_restricts_comparison(self, tmp_path):
        write_bench_file(
            tmp_path / "old.json",
            **{"scalar/gillespie": 1000.0, "campaign/minimum": 1000.0},
        )
        write_bench_file(
            tmp_path / "new.json",
            **{"scalar/gillespie": 1000.0, "campaign/minimum": 100.0},
        )
        result = repro_cli(
            "bench-compare", "old.json", "new.json", "--filter", "scalar",
            cwd=tmp_path,
        )
        assert result.returncode == 0, result.stderr  # campaign drop filtered out
        assert "campaign/minimum" not in result.stdout

    def test_missing_baseline_is_not_a_failure(self, tmp_path):
        write_bench_file(tmp_path / "new.json", **{"scalar/gillespie": 1000.0})
        result = repro_cli("bench-compare", "absent.json", "new.json", cwd=tmp_path)
        assert result.returncode == 0
        assert "no baseline" in result.stdout

    def test_missing_current_is_an_error(self, tmp_path):
        write_bench_file(tmp_path / "old.json", **{"scalar/gillespie": 1000.0})
        result = repro_cli("bench-compare", "old.json", "absent.json", cwd=tmp_path)
        assert result.returncode == 2

    def test_new_and_removed_records_are_skipped(self, tmp_path):
        write_bench_file(tmp_path / "old.json", **{"retired/bench": 1000.0})
        write_bench_file(tmp_path / "new.json", **{"brand-new/bench": 1.0})
        result = repro_cli("bench-compare", "old.json", "new.json", cwd=tmp_path)
        assert result.returncode == 0, result.stderr
        assert "nothing to compare" in result.stdout

    def test_markdown_emits_trend_table(self, tmp_path):
        write_bench_file(
            tmp_path / "old.json",
            **{"scalar/gillespie": 1000.0, "retired/bench": 50.0},
        )
        write_bench_file(
            tmp_path / "new.json",
            **{"scalar/gillespie": 950.0, "tau-leap/kernel": 9000.0},
        )
        result = repro_cli("bench-compare", "old.json", "new.json", "--markdown",
                           cwd=tmp_path)
        assert result.returncode == 0, result.stderr
        assert "| benchmark | baseline steps/s |" in result.stdout
        assert "| `scalar/gillespie` | 1,000 | 950 | 95% |" in result.stdout
        assert "stable" in result.stdout
        assert "`tau-leap/kernel`" in result.stdout  # new record listed
        assert "`retired/bench`" in result.stdout  # retired record listed

    def test_markdown_still_fails_on_regression(self, tmp_path):
        write_bench_file(tmp_path / "old.json", **{"scalar/gillespie": 1000.0})
        write_bench_file(tmp_path / "new.json", **{"scalar/gillespie": 500.0})
        result = repro_cli("bench-compare", "old.json", "new.json", "--markdown",
                           cwd=tmp_path)
        assert result.returncode == 4
        assert ":x: regression" in result.stdout
        assert "regression" in result.stderr.lower()
