"""Tests for the Section 8 scaling limit and the Section 9 superadditivity checks."""

from fractions import Fraction

import pytest

from repro.core.scaling import (
    infinity_scaling,
    scaling_gradient_table,
    scaling_is_superadditive,
    scaling_of_eventually_min,
    scaling_on_face,
)
from repro.core.superadditive import (
    find_monotonicity_violation,
    find_superadditivity_violation,
    is_nondecreasing_upto,
    is_superadditive_upto,
    superadditive_implies_nondecreasing,
)
from repro.functions.catalog import double_spec, floor_3x_over_2_spec, min_one_spec, minimum_spec
from repro.functions.paper_examples import fig7_spec


class TestInfinityScaling:
    def test_numeric_estimate_of_min(self):
        value = infinity_scaling(lambda x: min(x), (1.0, 2.0), scale=5_000)
        assert value == pytest.approx(1.0, abs=1e-3)

    def test_exact_scaling_of_eventually_min(self):
        spec = fig7_spec()
        value = scaling_of_eventually_min(spec.eventually_min, (Fraction(1), Fraction(3)))
        assert value == Fraction(1)
        balanced = scaling_of_eventually_min(spec.eventually_min, (Fraction(2), Fraction(2)))
        assert balanced == Fraction(2)

    def test_exact_scaling_requires_positive_point(self):
        spec = fig7_spec()
        with pytest.raises(ValueError):
            scaling_of_eventually_min(spec.eventually_min, (0, 1))

    def test_periodic_offsets_vanish_in_the_limit(self):
        spec = floor_3x_over_2_spec()
        numeric = infinity_scaling(spec.func, (1.0,), scale=10_000)
        assert numeric == pytest.approx(1.5, abs=1e-3)
        exact = scaling_of_eventually_min(spec.eventually_min, (1,))
        assert exact == Fraction(3, 2)

    def test_scaling_on_zero_face_uses_restriction(self):
        spec = min_one_spec()
        # On the face x = 0 the scaling is 0.
        assert scaling_on_face(spec, (0,), frozenset({0})) == 0

    def test_scaling_superadditive_for_min(self):
        samples = [((1.0, 2.0), (2.0, 1.0)), ((0.5, 0.5), (1.5, 2.5))]
        assert scaling_is_superadditive(lambda x: min(x), 2, samples)

    def test_scaling_not_superadditive_for_max(self):
        samples = [((1.0, 0.0), (0.0, 1.0))]
        assert not scaling_is_superadditive(lambda x: max(x), 2, samples)

    def test_gradient_table(self):
        table = scaling_gradient_table(minimum_spec().eventually_min)
        assert (Fraction(1), Fraction(0)) in table and (Fraction(0), Fraction(1)) in table


class TestSuperadditivity:
    def test_double_is_superadditive(self):
        assert is_superadditive_upto(lambda x: 2 * x[0], 1, 8)

    def test_min_is_superadditive(self):
        assert is_superadditive_upto(lambda x: min(x), 2, 6)

    def test_min_one_is_not_superadditive(self):
        # min(1, x) fails superadditivity: f(1) + f(1) = 2 > f(2) = 1 (Observation 9.1 context).
        assert not is_superadditive_upto(lambda x: min(1, x[0]), 1, 4)
        violation = find_superadditivity_violation(lambda x: min(1, x[0]), 1, 4)
        assert violation is not None

    def test_max_is_not_superadditive(self):
        assert not is_superadditive_upto(lambda x: max(x), 2, 4)

    def test_nondecreasing_checks(self):
        assert is_nondecreasing_upto(lambda x: min(x), 2, 5)
        assert not is_nondecreasing_upto(lambda x: max(0, 3 - x[0]), 1, 5)
        assert find_monotonicity_violation(lambda x: max(0, 3 - x[0]), 1, 5) is not None
        assert find_monotonicity_violation(lambda x: x[0], 1, 5) is None

    def test_superadditive_implies_nondecreasing(self):
        assert superadditive_implies_nondecreasing(lambda x: 2 * x[0], 1, 6)
        # Vacuously true for a non-superadditive function.
        assert superadditive_implies_nondecreasing(lambda x: min(1, x[0]), 1, 6)
