#!/usr/bin/env python3
"""Demo of the vectorized batch simulation engine (repro.sim.engine).

Compiles the Fig. 1 ``min`` and ``max`` CRNs into dense stoichiometry form,
races the scalar Gillespie loop against the batch engine at population 10^4,
and gathers batched repeated-run convergence evidence through the
``engine="vectorized"`` selector.

Run with::

    PYTHONPATH=src python examples/batch_engine_demo.py
"""

import random
import time

from repro.api import RunConfig
from repro.functions.catalog import maximum_spec, minimum_spec
from repro.sim import BatchFairEngine, BatchGillespieEngine, GillespieSimulator, run_many
from repro.verify import verify_stable_computation


def main() -> None:
    population = 10_000
    batch = 256
    minimum = minimum_spec().known_crn
    maximum = maximum_spec().known_crn

    print("=== Dense compilation ===")
    for crn in (minimum, maximum):
        compiled = crn.compiled()
        print(f"{compiled!r}: species order = {[sp.name for sp in compiled.species]}")
        print(f"  net stoichiometry:\n{compiled.net}")
    print()

    print(f"=== Scalar vs. vectorized Gillespie, min on ({population}, {population}) ===")
    start = time.perf_counter()
    scalar = GillespieSimulator(minimum, rng=random.Random(1)).run_on_input(
        (population, population)
    )
    scalar_rate = scalar.steps / (time.perf_counter() - start)
    print(f"scalar   : 1 trajectory,   {scalar.steps:>9,} events, {scalar_rate:>12,.0f} ev/s")

    engine = BatchGillespieEngine(minimum.compiled(), seed=1)
    start = time.perf_counter()
    result = engine.run_on_input((population, population), batch=batch)
    batch_rate = result.total_steps() / (time.perf_counter() - start)
    print(
        f"batch    : {batch} trajectories, {result.total_steps():>9,} events, "
        f"{batch_rate:>12,.0f} ev/s  ({batch_rate / scalar_rate:.1f}x)"
    )
    assert (result.output_counts() == population).all()
    print(f"all {batch} trajectories settled on the stable output {population}")
    print()

    print("=== Rate-independent batch runs: max on (40, 70), fair engine ===")
    fair = BatchFairEngine(maximum.compiled(), seed=2)
    result = fair.run_on_input((40, 70), batch=batch)
    outputs = sorted(set(int(v) for v in result.output_counts()))
    peak = int(result.max_output_seen.max())
    print(f"outputs across {batch} runs: {outputs} (peak transient output {peak})")
    print()

    print("=== Batched convergence evidence through run_many(config=RunConfig(...)) ===")
    config = RunConfig(trials=100, seed=3, engine="vectorized")
    report = run_many(maximum, (25, 60), config=config)
    print(
        f"max(25, 60): unanimous={report.output_unanimous}, mode={report.output_mode}, "
        f"mean steps={report.mean_steps:.1f}, max overshoot={report.max_overshoot}"
    )
    print()

    print("=== Randomized verification at scale (same config, fewer trials) ===")
    report = verify_stable_computation(
        minimum,
        lambda x: min(x),
        inputs=[(2_000, 3_000), (5_000, 1_000)],
        method="simulation",
        function_name="min",
        config=config.replace(trials=32),
    )
    print(report.describe())


if __name__ == "__main__":
    main()
