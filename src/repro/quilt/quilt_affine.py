"""The :class:`QuiltAffine` class implementing Definition 5.1 of the paper.

A quilt-affine function with period ``p`` is

    g(x) = ∇g · x + B(x mod p)

where ``∇g ∈ Q^d_{≥0}`` and ``B : Z^d/pZ^d -> Q``.  Both terms may be
rational, but the sum is required to be an integer at every integer point, and
``g`` is required to be nondecreasing.  The paper's Lemma 6.1 constructs an
output-oblivious CRN computing any quilt-affine function with nonnegative
outputs; the finite differences used by that construction are exposed here as
:meth:`QuiltAffine.finite_difference`.
"""

from __future__ import annotations

import itertools
from fractions import Fraction
from typing import Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple


Residue = Tuple[int, ...]
RationalVector = Tuple[Fraction, ...]


def residue_of(x: Sequence[int], period: int) -> Residue:
    """The congruence class of ``x`` in ``Z^d / p Z^d`` as a tuple of residues."""
    if period <= 0:
        raise ValueError(f"period must be positive, got {period}")
    return tuple(int(v) % period for v in x)


def all_residues(dimension: int, period: int) -> Iterator[Residue]:
    """Iterate over all ``p^d`` congruence classes of ``Z^d / p Z^d``."""
    return itertools.product(range(period), repeat=dimension)


class QuiltAffine:
    """A quilt-affine function ``g(x) = ∇g·x + B(x mod p)``.

    Parameters
    ----------
    gradient:
        The rational gradient ``∇g`` (must be componentwise nonnegative).
    period:
        The common period ``p`` along every input component.
    offsets:
        Mapping from residue tuples (length ``d``, entries in ``[0, p)``) to
        rational offsets ``B``.  Missing residues default to 0.
    name:
        Optional human-readable name.
    validate:
        If True (default), check integrality and the nondecreasing property.
    """

    def __init__(
        self,
        gradient: Sequence,
        period: int = 1,
        offsets: Optional[Mapping[Sequence[int], object]] = None,
        name: str = "",
        validate: bool = True,
    ) -> None:
        self.gradient: RationalVector = tuple(Fraction(g) for g in gradient)
        self.dimension: int = len(self.gradient)
        if self.dimension == 0:
            raise ValueError("a quilt-affine function needs at least one input dimension")
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self.period: int = int(period)
        self.name = name

        table: Dict[Residue, Fraction] = {}
        for residue, value in dict(offsets or {}).items():
            residue = residue_of(residue, self.period)
            table[residue] = Fraction(value)
        self._offsets = table

        if any(g < 0 for g in self.gradient):
            raise ValueError(f"quilt-affine gradients must be nonnegative, got {self.gradient}")
        if validate:
            self._check_integrality()
            if not self.is_nondecreasing():
                raise ValueError(
                    f"the given gradient/offsets do not define a nondecreasing function ({self.name or 'unnamed'})"
                )

    # -- core evaluation -------------------------------------------------------

    def offset(self, x: Sequence[int]) -> Fraction:
        """The periodic offset ``B(x mod p)``."""
        return self._offsets.get(residue_of(x, self.period), Fraction(0))

    def value(self, x: Sequence[int]) -> Fraction:
        """The (exact rational) value ``∇g·x + B(x mod p)``."""
        if len(x) != self.dimension:
            raise ValueError(f"expected a point of dimension {self.dimension}, got {len(x)}")
        linear = sum((g * Fraction(v) for g, v in zip(self.gradient, x)), start=Fraction(0))
        return linear + self.offset(x)

    def __call__(self, x: Sequence[int]) -> int:
        value = self.value(x)
        if value.denominator != 1:
            raise ValueError(
                f"quilt-affine function {self.name or ''} produced non-integer value {value} at {tuple(x)}"
            )
        return int(value)

    # -- validation --------------------------------------------------------------

    def _check_integrality(self) -> None:
        for i, g in enumerate(self.gradient):
            if (g * self.period).denominator != 1:
                raise ValueError(
                    f"gradient component {i} = {g} times period {self.period} must be an integer"
                )
        for residue in all_residues(self.dimension, self.period):
            value = self.value(residue)
            if value.denominator != 1:
                raise ValueError(
                    f"quilt-affine value at residue representative {residue} is not an integer: {value}"
                )

    def is_nondecreasing(self) -> bool:
        """True if every periodic finite difference is nonnegative.

        Since the finite differences are periodic (they depend only on the
        congruence class), it suffices to check one representative per class
        and unit direction.
        """
        for residue in all_residues(self.dimension, self.period):
            for i in range(self.dimension):
                if self.finite_difference(i, residue) < 0:
                    return False
        return True

    def is_nonnegative_on(self, points: Iterable[Sequence[int]]) -> bool:
        """True if the function is >= 0 on every given point."""
        return all(self.value(x) >= 0 for x in points)

    def has_nonnegative_range_upto(self, bound: int) -> bool:
        """Bounded check that the function is nonnegative on ``[0, bound)^d``.

        Because the gradient is nonnegative, nonnegativity on the residue cube
        ``[0, p)^d`` implies nonnegativity everywhere; the bound only matters
        when it is smaller than the period.
        """
        limit = min(bound, self.period)
        return all(
            self.value(x) >= 0 for x in itertools.product(range(limit), repeat=self.dimension)
        )

    # -- finite differences (used by the Lemma 6.1 construction) -------------------

    def finite_difference(self, direction: int, residue: Sequence[int]) -> Fraction:
        """The periodic finite difference ``δ^i_a = g(x + e_i) - g(x)`` for ``x ≡ a``.

        Equals ``∇g·e_i + B(a + e_i) - B(a)``; for a valid (integer-valued,
        nondecreasing) quilt-affine function this is a nonnegative integer.
        """
        if not 0 <= direction < self.dimension:
            raise ValueError(f"direction {direction} out of range for dimension {self.dimension}")
        residue = residue_of(residue, self.period)
        shifted = tuple(
            (v + (1 if i == direction else 0)) % self.period for i, v in enumerate(residue)
        )
        return (
            self.gradient[direction]
            + self._offsets.get(shifted, Fraction(0))
            - self._offsets.get(residue, Fraction(0))
        )

    def finite_difference_table(self) -> Dict[Tuple[int, Residue], int]:
        """All finite differences, keyed by (direction, residue class)."""
        table: Dict[Tuple[int, Residue], int] = {}
        for residue in all_residues(self.dimension, self.period):
            for i in range(self.dimension):
                delta = self.finite_difference(i, residue)
                if delta.denominator != 1:
                    raise ValueError(
                        f"finite difference at {residue} in direction {i} is not an integer: {delta}"
                    )
                table[(i, residue)] = int(delta)
        return table

    # -- algebra ---------------------------------------------------------------------

    def with_period(self, new_period: int) -> "QuiltAffine":
        """Re-express this function with a (multiple) period ``new_period``."""
        if new_period % self.period != 0:
            raise ValueError(
                f"new period {new_period} must be a multiple of the current period {self.period}"
            )
        offsets = {
            residue: self.offset(residue)
            for residue in all_residues(self.dimension, new_period)
        }
        return QuiltAffine(self.gradient, new_period, offsets, name=self.name, validate=False)

    def translate(self, shift: Sequence[int]) -> "QuiltAffine":
        """The translated function ``x -> g(x + shift)`` (still quilt-affine)."""
        shift = tuple(int(v) for v in shift)
        if len(shift) != self.dimension:
            raise ValueError("shift dimension mismatch")
        linear_shift = sum(
            (g * Fraction(v) for g, v in zip(self.gradient, shift)), start=Fraction(0)
        )
        offsets = {
            residue: linear_shift
            + self.offset(tuple(r + s for r, s in zip(residue, shift)))
            for residue in all_residues(self.dimension, self.period)
        }
        return QuiltAffine(
            self.gradient,
            self.period,
            offsets,
            name=f"{self.name}+shift{shift}" if self.name else "",
            validate=False,
        )

    def add_constant(self, constant) -> "QuiltAffine":
        """The function ``x -> g(x) + constant``."""
        constant = Fraction(constant)
        offsets = {
            residue: self.offset(residue) + constant
            for residue in all_residues(self.dimension, self.period)
        }
        return QuiltAffine(self.gradient, self.period, offsets, name=self.name, validate=False)

    def restrict_input(self, index: int, value: int) -> "QuiltAffine":
        """Fix input ``index`` to ``value``, producing a quilt-affine function of d-1 inputs."""
        if self.dimension == 1:
            raise ValueError("cannot restrict the only input of a 1-dimensional function")
        if not 0 <= index < self.dimension:
            raise ValueError(f"index {index} out of range")
        value = int(value)
        new_gradient = tuple(g for i, g in enumerate(self.gradient) if i != index)
        fixed_contribution = self.gradient[index] * value
        offsets: Dict[Residue, Fraction] = {}
        for residue in all_residues(self.dimension - 1, self.period):
            full = list(residue)
            full.insert(index, value)
            offsets[residue] = fixed_contribution + self.offset(full)
        return QuiltAffine(
            new_gradient,
            self.period,
            offsets,
            name=f"{self.name}[x{index + 1}={value}]" if self.name else "",
            validate=False,
        )

    def scaling_gradient(self) -> RationalVector:
        """The gradient, which is the ∞-scaling of this function (Theorem 8.2)."""
        return self.gradient

    # -- comparisons / display ------------------------------------------------------

    def agrees_with(self, other: Callable[[Sequence[int]], int], points: Iterable[Sequence[int]]) -> bool:
        """True if this function equals ``other`` at every given point."""
        return all(self(x) == int(other(x)) for x in points)

    def dominates(self, other: Callable[[Sequence[int]], int], points: Iterable[Sequence[int]]) -> bool:
        """True if ``g(x) >= other(x)`` at every given point."""
        return all(self.value(x) >= int(other(x)) for x in points)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuiltAffine):
            return NotImplemented
        if self.dimension != other.dimension:
            return False
        import math

        common = self.period * other.period // math.gcd(self.period, other.period)
        mine = self.with_period(common)
        theirs = other.with_period(common)
        if mine.gradient != theirs.gradient:
            return False
        return all(
            mine.offset(residue) == theirs.offset(residue)
            for residue in all_residues(self.dimension, common)
        )

    def __hash__(self) -> int:
        return hash((self.gradient, self.period, frozenset(self._offsets.items())))

    def __str__(self) -> str:
        gradient = ", ".join(str(g) for g in self.gradient)
        label = self.name or "g"
        return f"{label}(x) = ({gradient})·x + B(x mod {self.period})"

    def __repr__(self) -> str:
        return f"QuiltAffine(gradient={self.gradient}, period={self.period}, name={self.name!r})"

    # -- constructors ------------------------------------------------------------------

    @staticmethod
    def affine(gradient: Sequence, offset=0, name: str = "") -> "QuiltAffine":
        """An affine function viewed as quilt-affine with period 1."""
        gradient = tuple(Fraction(g) for g in gradient)
        return QuiltAffine(gradient, 1, {tuple([0] * len(gradient)): Fraction(offset)}, name=name)

    @staticmethod
    def floor_linear(numerators: Sequence[int], denominator: int, name: str = "") -> "QuiltAffine":
        """The function ``x -> floor((n·x) / denominator)`` as a quilt-affine function.

        For example ``floor_linear([3], 2)`` is the paper's Fig. 3a example
        ``⌊3x/2⌋ = (3/2)x + B(x mod 2)`` with ``B(0)=0, B(1)=-1/2``.
        """
        numerators = tuple(int(v) for v in numerators)
        if denominator <= 0:
            raise ValueError("denominator must be positive")
        if any(v < 0 for v in numerators):
            raise ValueError("numerators must be nonnegative for a nondecreasing function")
        dimension = len(numerators)
        gradient = tuple(Fraction(v, denominator) for v in numerators)
        offsets: Dict[Residue, Fraction] = {}
        for residue in all_residues(dimension, denominator):
            dot = sum(n * r for n, r in zip(numerators, residue))
            offsets[residue] = Fraction(dot // denominator) - Fraction(dot, denominator)
        return QuiltAffine(gradient, denominator, offsets, name=name or "floor_linear")

    @staticmethod
    def from_callable(
        func: Callable[[Sequence[int]], int],
        dimension: int,
        period: int,
        base_point: Sequence[int] = None,
        name: str = "",
    ) -> "QuiltAffine":
        """Recover the quilt-affine representation of a callable known to be quilt-affine.

        Samples the function at ``base_point`` (default the origin) and at
        offsets within one period plus one extra period step per dimension to
        recover the gradient, then fills in the periodic offsets.  Raises
        ``ValueError`` if the samples are inconsistent with a quilt-affine form.
        """
        if base_point is None:
            base_point = tuple([0] * dimension)
        base_point = tuple(int(v) for v in base_point)

        gradient: List[Fraction] = []
        for i in range(dimension):
            step = tuple(
                v + (period if j == i else 0) for j, v in enumerate(base_point)
            )
            gradient.append(Fraction(int(func(step)) - int(func(base_point)), period))
        gradient_tuple = tuple(gradient)

        offsets: Dict[Residue, Fraction] = {}
        for residue in all_residues(dimension, period):
            point = tuple(b + r for b, r in zip(base_point, residue))
            linear = sum(
                (g * Fraction(v) for g, v in zip(gradient_tuple, point)), start=Fraction(0)
            )
            offsets[residue_of(point, period)] = Fraction(int(func(point))) - linear

        candidate = QuiltAffine(gradient_tuple, period, offsets, name=name, validate=False)
        # Consistency check on a small verification grid around the base point.
        for delta in itertools.product(range(2 * period), repeat=dimension):
            point = tuple(b + v for b, v in zip(base_point, delta))
            if candidate(point) != int(func(point)):
                raise ValueError(
                    f"the sampled function is not quilt-affine with period {period} "
                    f"around {base_point} (mismatch at {point})"
                )
        return candidate
