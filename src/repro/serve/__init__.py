"""``repro.serve`` — simulation-as-a-service over the Workbench and lab cache.

A dependency-free asyncio HTTP front end: the pure-python core stays the
product, and this package is an *optional* deployment shell around it.  The
server exposes the Workbench workflow as JSON endpoints::

    POST /v1/compile          build (and memoize) the CRN for a registered spec
    POST /v1/simulate         one seeded simulate cell, memoized in ResultCache
    POST /v1/expected_output  Monte-Carlo kinetic mean, memoized the same way
    POST /v1/verify           stable-computation verification
    POST /v1/jobs             submit a sweep/campaign grid to the worker pool
                              (or, with ``"backend": "shared-dir"`` and a
                              ``queue_dir``, to external ``python -m repro
                              worker`` processes over a shared work queue)
    GET  /v1/jobs/{id}        poll progress / collect results
    GET  /v1/jobs/{id}/results  stream rows so far as NDJSON (never buffered)
    DELETE /v1/jobs/{id}      cancel a running job
    GET  /v1/engines          registry capability metadata (EngineInfo.to_dict)
    GET  /v1/stats            cache hit-rate, per-engine counts, latency
    GET  /v1/health           liveness probe

The load-bearing idea is the **cache memo contract**: every simulate request
and every job cell is content-addressed exactly like a ``repro.lab`` campaign
cell (:func:`repro.lab.cache.cell_cache_key`), so identical seeded requests
are O(1) hits against the shared on-disk :class:`~repro.lab.cache.ResultCache`
— the second of two identical ``POST /v1/simulate`` calls returns a
byte-identical body without touching an engine, and server results are
interchangeable with campaign results run in-process.

Quickstart::

    python -m repro serve --port 8421 --workers 2 &
    curl -s -X POST localhost:8421/v1/simulate -d \
      '{"spec": "minimum", "input": [30, 50], "config": {"seed": 7}}'

or from Python, :class:`~repro.serve.client.ServeClient` (stdlib
``http.client``, same zero dependencies)::

    from repro.serve import ServeClient
    client = ServeClient(port=8421)
    result = client.simulate("minimum", (30, 50), config={"seed": 7})
"""

from repro.serve.client import ServeClient, ServeError
from repro.serve.server import ReproServer, ServerThread

__all__ = ["ReproServer", "ServerThread", "ServeClient", "ServeError"]
