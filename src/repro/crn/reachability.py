"""Bounded exhaustive reachability and stable-computation checking.

The paper defines stable computation (Section 2.2): a CRN stably computes
``f`` if for every input ``x`` and every configuration ``C`` reachable from the
initial configuration ``I_x``, some *stable* configuration ``O`` with
``O(Y) = f(x)`` remains reachable from ``C``.  A configuration is stable when
the output count can never change again.

For small inputs this is decidable by exhaustive search of the (finite portion
of the) reachability graph.  :func:`stably_computes_exhaustive` performs that
check exactly whenever the reachable set fits within the configured bound, and
reports an inconclusive result otherwise (larger inputs are handled by the
randomized verifier in :mod:`repro.verify.stable`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.crn.configuration import Configuration
from repro.crn.network import CRN


@dataclass
class ReachabilityResult:
    """Result of a bounded exhaustive reachability exploration."""

    configurations: List[Configuration]
    """Every configuration discovered, in BFS order (index 0 is the initial one)."""

    edges: Dict[int, List[int]]
    """Adjacency (by index into ``configurations``) of the one-step reachability graph."""

    exhausted: bool
    """True if the entire reachable set was explored within the bound."""

    initial: Configuration
    """The initial configuration the exploration started from."""

    def index_of(self, config: Configuration) -> Optional[int]:
        """Index of ``config`` in :attr:`configurations`, or ``None`` if absent."""
        if not hasattr(self, "_index"):
            self._index = {c: i for i, c in enumerate(self.configurations)}
        return self._index.get(config)

    def __len__(self) -> int:
        return len(self.configurations)


def reachable_configurations(
    crn: CRN,
    initial: Configuration,
    max_configurations: int = 50_000,
) -> ReachabilityResult:
    """Breadth-first exploration of all configurations reachable from ``initial``.

    Exploration stops (with ``exhausted=False``) once ``max_configurations``
    distinct configurations have been discovered.
    """
    index: Dict[Configuration, int] = {initial: 0}
    configs: List[Configuration] = [initial]
    edges: Dict[int, List[int]] = {0: []}
    queue: deque[int] = deque([0])
    exhausted = True

    while queue:
        current_index = queue.popleft()
        current = configs[current_index]
        for rxn in crn.reactions:
            if not rxn.applicable(current):
                continue
            successor = rxn.apply(current)
            successor_index = index.get(successor)
            if successor_index is None:
                if len(configs) >= max_configurations:
                    exhausted = False
                    continue
                successor_index = len(configs)
                index[successor] = successor_index
                configs.append(successor)
                edges[successor_index] = []
                queue.append(successor_index)
            edges[current_index].append(successor_index)

    return ReachabilityResult(configurations=configs, edges=edges, exhausted=exhausted, initial=initial)


def reachability_graph(crn: CRN, initial: Configuration, max_configurations: int = 50_000):
    """The reachability graph as a :class:`networkx.DiGraph` (nodes are indices).

    Node attribute ``config`` holds the :class:`Configuration`; attribute
    ``output`` holds the output-species count.
    """
    import networkx as nx

    result = reachable_configurations(crn, initial, max_configurations)
    graph = nx.DiGraph()
    for i, config in enumerate(result.configurations):
        graph.add_node(i, config=config, output=crn.output_count(config))
    for source, targets in result.edges.items():
        for target in targets:
            graph.add_edge(source, target)
    graph.graph["exhausted"] = result.exhausted
    return graph


def _reachable_output_sets(result: ReachabilityResult, crn: CRN) -> List[Set[int]]:
    """For each configuration, the set of output counts reachable from it.

    Computed by propagating sets backwards over the condensation (strongly
    connected components in reverse topological order), which is exact when the
    exploration was exhaustive.
    """
    import networkx as nx

    graph = nx.DiGraph()
    graph.add_nodes_from(range(len(result.configurations)))
    for source, targets in result.edges.items():
        graph.add_edges_from((source, target) for target in set(targets))

    condensation = nx.condensation(graph)
    component_outputs: Dict[int, Set[int]] = {}
    for component in reversed(list(nx.topological_sort(condensation))):
        members = condensation.nodes[component]["members"]
        outputs: Set[int] = {crn.output_count(result.configurations[m]) for m in members}
        for successor in condensation.successors(component):
            outputs |= component_outputs[successor]
        component_outputs[component] = outputs

    node_to_component = condensation.graph["mapping"]
    return [component_outputs[node_to_component[i]] for i in range(len(result.configurations))]


def stable_configurations(
    crn: CRN,
    initial: Configuration,
    max_configurations: int = 50_000,
) -> Tuple[List[Configuration], ReachabilityResult]:
    """All *stable* configurations reachable from ``initial``.

    A configuration is stable when every configuration reachable from it has
    the same output count.  Requires the exploration to be exhaustive to be
    exact; if the bound is hit, the returned list is a sound under-approximation
    restricted to the explored portion.
    """
    result = reachable_configurations(crn, initial, max_configurations)
    reachable_outputs = _reachable_output_sets(result, crn)
    stable = [
        config
        for i, config in enumerate(result.configurations)
        if reachable_outputs[i] == {crn.output_count(config)}
    ]
    return stable, result


@dataclass
class StableComputationVerdict:
    """Outcome of an exhaustive stable-computation check for one input."""

    input_value: Tuple[int, ...]
    expected_output: int
    holds: bool
    conclusive: bool
    reachable_count: int
    failure_reason: str = ""
    counterexample: Optional[Configuration] = None

    def __bool__(self) -> bool:
        return self.holds and self.conclusive


def check_stable_computation_at(
    crn: CRN,
    x: Sequence[int],
    expected: int,
    max_configurations: int = 50_000,
) -> StableComputationVerdict:
    """Exhaustively check that ``crn`` stably computes ``expected`` on input ``x``.

    The check follows the definition directly: every reachable configuration
    must be able to reach a stable configuration with the correct output count.
    """
    initial = crn.initial_configuration(x)
    result = reachable_configurations(crn, initial, max_configurations)
    if not result.exhausted:
        return StableComputationVerdict(
            input_value=tuple(x),
            expected_output=expected,
            holds=False,
            conclusive=False,
            reachable_count=len(result),
            failure_reason=f"reachable set exceeds bound {max_configurations}",
        )

    reachable_outputs = _reachable_output_sets(result, crn)
    correct_stable_indices = {
        i
        for i, config in enumerate(result.configurations)
        if reachable_outputs[i] == {expected} and crn.output_count(config) == expected
    }
    if not correct_stable_indices:
        # No correct stable configuration reachable at all.
        bad_index = 0
        return StableComputationVerdict(
            input_value=tuple(x),
            expected_output=expected,
            holds=False,
            conclusive=True,
            reachable_count=len(result),
            failure_reason="no correct stable configuration is reachable from the initial configuration",
            counterexample=result.configurations[bad_index],
        )

    # Reverse reachability from the correct stable configurations: every
    # configuration must be able to reach one of them.
    reverse_edges: Dict[int, List[int]] = {i: [] for i in range(len(result.configurations))}
    for source, targets in result.edges.items():
        for target in set(targets):
            reverse_edges[target].append(source)
    can_reach_correct: Set[int] = set()
    queue: deque[int] = deque(correct_stable_indices)
    can_reach_correct.update(correct_stable_indices)
    while queue:
        node = queue.popleft()
        for predecessor in reverse_edges[node]:
            if predecessor not in can_reach_correct:
                can_reach_correct.add(predecessor)
                queue.append(predecessor)

    for i, config in enumerate(result.configurations):
        if i not in can_reach_correct:
            return StableComputationVerdict(
                input_value=tuple(x),
                expected_output=expected,
                holds=False,
                conclusive=True,
                reachable_count=len(result),
                failure_reason=(
                    "a reachable configuration cannot reach any correct stable configuration"
                ),
                counterexample=config,
            )

    return StableComputationVerdict(
        input_value=tuple(x),
        expected_output=expected,
        holds=True,
        conclusive=True,
        reachable_count=len(result),
    )


def stably_computes_exhaustive(
    crn: CRN,
    function,
    inputs: Iterable[Sequence[int]],
    max_configurations: int = 50_000,
) -> List[StableComputationVerdict]:
    """Check stable computation of ``function`` on each input in ``inputs``.

    ``function`` is a callable taking a tuple of ints and returning an int.
    Returns one verdict per input; the overall check passes when every verdict
    is conclusive and holds.
    """
    verdicts = []
    for x in inputs:
        x = tuple(x)
        verdicts.append(
            check_stable_computation_at(crn, x, int(function(x)), max_configurations)
        )
    return verdicts
