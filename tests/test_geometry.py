"""Unit tests for the polyhedral geometry substrate (hyperplanes, cones, regions)."""

from fractions import Fraction

import pytest

from repro.geometry.cones import Cone
from repro.geometry.hyperplanes import Hyperplane
from repro.geometry.linalg import (
    in_span,
    orthogonal_complement_basis,
    project_onto_span,
    rational_nullspace,
    rational_rank,
)
from repro.geometry.regions import (
    Region,
    determined_regions,
    enumerate_regions,
    region_of_point,
    under_determined_regions,
)


class TestLinearAlgebra:
    def test_rank(self):
        assert rational_rank([[1, 2], [2, 4]]) == 1
        assert rational_rank([[1, 0], [0, 1]]) == 2
        assert rational_rank([]) == 0

    def test_nullspace(self):
        basis = rational_nullspace([[1, -1]], 2)
        assert len(basis) == 1
        (vector,) = basis
        assert vector[0] == vector[1]

    def test_nullspace_of_empty_matrix(self):
        basis = rational_nullspace([], 3)
        assert len(basis) == 3

    def test_projection_onto_diagonal(self):
        projection = project_onto_span((1, 0), [(1, 1)])
        assert projection == (Fraction(1, 2), Fraction(1, 2))

    def test_orthogonal_complement(self):
        complement = orthogonal_complement_basis([(1, 1)], 2)
        assert len(complement) == 1
        assert sum(complement[0]) == 0

    def test_in_span(self):
        assert in_span((2, 2), [(1, 1)])
        assert not in_span((1, 0), [(1, 1)])


class TestHyperplane:
    def test_sides_avoid_integer_points(self):
        plane = Hyperplane((1, -1), 0)   # boundary x1 - x2 = -1/2
        assert plane.side((2, 2)) == 1   # x1 - x2 = 0 >= 0
        assert plane.side((1, 2)) == -1
        assert plane.shifted_value((2, 2)) == Fraction(1, 2)

    def test_parallel_direction(self):
        plane = Hyperplane((1, -1), 0)
        assert plane.is_parallel_to((1, 1))
        assert not plane.is_parallel_to((1, 0))

    def test_zero_normal_rejected(self):
        with pytest.raises(ValueError):
            Hyperplane((0, 0), 1)

    def test_distance_positive(self):
        plane = Hyperplane((1,), 3)
        assert plane.distance_to((3,)) == Fraction(1, 2)
        assert plane.distance_to((0,)) == Fraction(5, 2)


class TestCone:
    def test_full_orthant_is_full_dimensional(self):
        cone = Cone([], 2)
        assert cone.is_full_dimensional()
        assert cone.dim() == 2
        assert cone.contains((1, 5))

    def test_halfplane_cone(self):
        cone = Cone([[1, -1]], 2)   # y1 >= y2, y >= 0
        assert cone.contains((3, 1)) and not cone.contains((1, 3))
        assert cone.is_full_dimensional()

    def test_diagonal_cone_is_one_dimensional(self):
        cone = Cone([[1, -1], [-1, 1]], 2)   # y1 == y2
        assert cone.dim() == 1
        assert cone.contains((2, 2)) and not cone.contains((2, 1))

    def test_span_basis_of_diagonal(self):
        cone = Cone([[1, -1], [-1, 1]], 2)
        basis = cone.span_basis()
        assert len(basis) == 1
        assert basis[0][0] == basis[0][1]

    def test_interior_vector(self):
        cone = Cone([[1, -1]], 2)
        vector = cone.interior_vector()
        assert vector is not None
        assert vector[0] > vector[1] and vector[1] > 0

    def test_no_interior_vector_for_thin_cone(self):
        cone = Cone([[1, -1], [-1, 1]], 2)
        assert cone.interior_vector() is None

    def test_positive_vector(self):
        diagonal = Cone([[1, -1], [-1, 1]], 2)
        vector = diagonal.positive_vector()
        assert vector is not None and all(value > 0 for value in vector)

    def test_no_positive_vector_for_axis(self):
        axis = Cone([[0, -1]], 2)   # y2 <= 0 and y2 >= 0, so y2 = 0
        assert axis.positive_vector() is None

    def test_cone_containment(self):
        diagonal = Cone([[1, -1], [-1, 1]], 2)
        upper = Cone([[-1, 1]], 2)     # y2 >= y1
        lower = Cone([[1, -1]], 2)     # y1 >= y2
        assert upper.contains_cone(diagonal)
        assert lower.contains_cone(diagonal)
        assert not diagonal.contains_cone(upper)


class TestRegions:
    def diagonal_hyperplanes(self):
        # The Fig. 7 arrangement: x2 - x1 >= 1 and x1 - x2 >= 1.
        return [Hyperplane((-1, 1), 1), Hyperplane((1, -1), 1)]

    def test_region_of_point(self):
        planes = self.diagonal_hyperplanes()
        above = region_of_point(planes, (0, 5))
        diagonal = region_of_point(planes, (3, 3))
        assert above.contains((1, 4)) and not above.contains((4, 1))
        assert diagonal.contains((5, 5)) and not diagonal.contains((5, 6))

    def test_enumerate_regions_finds_three(self):
        planes = self.diagonal_hyperplanes()
        regions = enumerate_regions(planes, 2, bound=8)
        # (+,-), (-,+), (-,-); the (+,+) pattern is empty.
        assert len(regions) == 3

    def test_determined_and_under_determined_split(self):
        planes = self.diagonal_hyperplanes()
        regions = enumerate_regions(planes, 2, bound=8)
        assert len(determined_regions(regions)) == 2
        under = under_determined_regions(regions)
        assert len(under) == 1
        assert under[0].contains((4, 4))

    def test_under_determined_region_is_eventual(self):
        planes = self.diagonal_hyperplanes()
        diagonal = region_of_point(planes, (2, 2))
        assert diagonal.is_eventual()
        assert diagonal.is_under_determined()

    def test_neighbor_relation(self):
        planes = self.diagonal_hyperplanes()
        diagonal = region_of_point(planes, (2, 2))
        above = region_of_point(planes, (0, 5))
        below = region_of_point(planes, (5, 0))
        assert above.is_neighbor_of(diagonal)
        assert below.is_neighbor_of(diagonal)

    def test_neighbor_separating_hyperplanes(self):
        planes = self.diagonal_hyperplanes()
        diagonal = region_of_point(planes, (2, 2))
        assert diagonal.neighbor_separating_indices() == [0, 1]

    def test_neighbor_in_direction(self):
        planes = self.diagonal_hyperplanes()
        diagonal = region_of_point(planes, (2, 2))
        toward_above = diagonal.neighbor_in_direction((-1, 1))
        assert toward_above.contains((0, 5))

    def test_empty_hyperplane_region_needs_ambient(self):
        with pytest.raises(ValueError):
            Region((), ())
        full = Region((), (), ambient=2)
        assert full.contains((3, 4))
        assert full.is_determined() and full.is_eventual()

    def test_deep_points_stay_in_region(self):
        planes = self.diagonal_hyperplanes()
        above = region_of_point(planes, (0, 5))
        points = above.deep_points(4)
        assert len(points) == 4
        assert all(above.contains(point) for point in points)

    def test_determined_subspace_of_diagonal(self):
        planes = self.diagonal_hyperplanes()
        diagonal = region_of_point(planes, (2, 2))
        basis = diagonal.determined_subspace_basis()
        assert len(basis) == 1
        complement = diagonal.orthogonal_subspace_basis()
        assert len(complement) == 1
