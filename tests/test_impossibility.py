"""Tests for Lemma 4.1: contradiction sequences and the bounded witness search."""

import pytest

from repro.core.impossibility import (
    find_contradiction_witness,
    max_contradiction_witness,
    verify_contradiction_pair,
    verify_contradiction_sequence,
    verify_witness,
)
from repro.functions.paper_examples import eq2_counterexample_spec


def max2(x):
    return max(x[0], x[1])


def min2(x):
    return min(x[0], x[1])


class TestExplicitWitnesses:
    def test_max_pair_from_fig6(self):
        # a_i = (i, 0), a_j = (j, 0), Δ = (0, j): max gains j-i from a_i but 0 from a_j.
        assert verify_contradiction_pair(max2, (1, 0), (3, 0), (0, 3))

    def test_min_has_no_such_pair(self):
        assert not verify_contradiction_pair(min2, (1, 0), (3, 0), (0, 3))

    def test_pair_requires_ordering(self):
        with pytest.raises(ValueError):
            verify_contradiction_pair(max2, (3, 0), (1, 0), (0, 1))

    def test_max_sequence(self):
        points = [(i, 0) for i in range(1, 6)]
        assert verify_contradiction_sequence(max2, points, lambda i, j: (0, j + 1))

    def test_sequence_must_increase(self):
        with pytest.raises(ValueError):
            verify_contradiction_sequence(max2, [(1, 0), (1, 0)], lambda i, j: (0, 1))

    def test_paper_witness_object_for_max(self):
        witness = max_contradiction_witness()
        assert witness.a(3) == (3, 0)
        assert witness.delta(2) == (0, 2)
        assert verify_witness(max2, witness, terms=6)

    def test_paper_witness_fails_on_min(self):
        witness = max_contradiction_witness()
        assert not verify_witness(min2, witness, terms=4)

    def test_max_witness_needs_two_inputs(self):
        with pytest.raises(ValueError):
            max_contradiction_witness(dimension=1)


class TestWitnessSearch:
    def test_search_finds_max_witness(self):
        witness = find_contradiction_witness(max2, 2, direction_bound=1, offset_bound=2, terms=4)
        assert witness is not None
        assert verify_witness(max2, witness, terms=4)

    def test_search_finds_eq2_witness(self):
        spec = eq2_counterexample_spec()
        witness = find_contradiction_witness(spec.func, 2, direction_bound=1, offset_bound=2, terms=4)
        assert witness is not None
        assert verify_witness(spec.func, witness, terms=6)

    def test_search_finds_nothing_for_min(self):
        witness = find_contradiction_witness(min2, 2, direction_bound=1, offset_bound=2, terms=4)
        assert witness is None

    def test_search_finds_nothing_for_addition(self):
        witness = find_contradiction_witness(
            lambda x: x[0] + x[1], 2, direction_bound=1, offset_bound=2, terms=4
        )
        assert witness is None

    def test_witness_describe(self):
        witness = max_contradiction_witness()
        assert "a_i" in witness.describe()
