"""Polyhedral geometry substrate for the domain decomposition of Section 7.

The paper decomposes ``N^d`` into convex polyhedral *regions* induced by the
threshold hyperplanes of a semilinear function, classifies each region by the
dimension of its *recession cone* (determined vs. under-determined), and
relates under-determined regions to their *neighbors*.  This package provides
those geometric objects:

* :class:`Hyperplane` — an integer threshold hyperplane shifted off the lattice;
* :class:`Region` — a sign-pattern region ``{x >= 0 : S(Tx - h) >= 0}``;
* :class:`Cone` — a polyhedral cone with dimension computation, containment,
  and interior-vector search;
* rational linear algebra helpers (exact rank / null space / projection).
"""

from repro.geometry.linalg import (
    rational_rank,
    rational_nullspace,
    project_onto_span,
    orthogonal_complement_basis,
)
from repro.geometry.hyperplanes import Hyperplane
from repro.geometry.cones import Cone
from repro.geometry.regions import (
    Region,
    region_of_point,
    enumerate_regions,
    determined_regions,
    under_determined_regions,
)

__all__ = [
    "rational_rank",
    "rational_nullspace",
    "project_onto_span",
    "orthogonal_complement_basis",
    "Hyperplane",
    "Cone",
    "Region",
    "region_of_point",
    "enumerate_regions",
    "determined_regions",
    "under_determined_regions",
]
