"""Tests for the Section 7 domain decomposition."""

from fractions import Fraction

import pytest

from repro.core.decomposition import decompose
from repro.functions.catalog import maximum_spec, minimum_spec, threshold_capped_spec
from repro.functions.paper_examples import eq2_counterexample_spec, fig7_spec


class TestMinDecomposition:
    def test_min_decomposes_into_two_determined_pieces(self):
        result = decompose(minimum_spec())
        assert result.succeeded()
        assert len(result.determined) == 2
        assert not result.under_determined_eventual
        gradients = {piece.extension.gradient for piece in result.extensions}
        assert gradients == {(Fraction(1), Fraction(0)), (Fraction(0), Fraction(1))}

    def test_min_eventually_min_agrees_with_function(self):
        result = decompose(minimum_spec())
        assert result.eventually_min.agrees_with(lambda x: min(x))

    def test_summary_structure(self):
        summary = decompose(minimum_spec()).summary()
        assert summary["succeeded"]
        assert summary["regions"] == 2
        assert summary["pieces"] == 2


class TestMaxDecomposition:
    def test_max_fails_lemma_79(self):
        result = decompose(maximum_spec())
        assert not result.succeeded()
        assert "Lemma 7.9" in result.failure_reason or "dominate" in result.failure_reason


class TestFig7Decomposition:
    def test_three_regions_classified(self):
        result = decompose(fig7_spec())
        assert len(result.regions) == 3
        assert len(result.determined) == 2
        assert len(result.under_determined_eventual) == 1

    def test_determined_extensions_are_x_plus_one(self):
        result = decompose(fig7_spec())
        determined = [item.extension for item in result.extensions if item.determined]
        values = sorted(ext((4, 7)) for ext in determined)
        assert values == [5, 8]   # x1 + 1 and x2 + 1 at (4, 7)

    def test_under_determined_extension_is_ceiling_average(self):
        result = decompose(fig7_spec())
        assert result.succeeded()
        averaged = [item.extension for item in result.extensions if not item.determined]
        assert len(averaged) == 1
        extension = averaged[0]
        # gU = ceil((x1 + x2) / 2): the gradient is the average of (1,0) and (0,1).
        assert extension.gradient == (Fraction(1, 2), Fraction(1, 2))
        for point in [(3, 3), (4, 4), (3, 4), (6, 2)]:
            assert extension(point) == -((-point[0] - point[1]) // 2)

    def test_eventually_min_matches_paper(self):
        result = decompose(fig7_spec())
        spec = fig7_spec()
        assert result.eventually_min.agrees_with(spec.func)
        assert len(result.eventually_min.pieces) == 3


class TestEq2Counterexample:
    def test_depressed_diagonal_fails(self):
        result = decompose(eq2_counterexample_spec())
        assert not result.succeeded()
        assert "under-determined" in result.failure_reason or "dominate" in result.failure_reason


class TestOneDimensional:
    def test_capped_min_decomposes(self):
        result = decompose(threshold_capped_spec(3))
        assert result.succeeded()
        assert result.eventually_min.agrees_with(lambda x: min(x[0], 3))

    def test_requires_semilinear_representation(self):
        from repro.core.specs import FunctionSpec

        bare = FunctionSpec("bare", 2, lambda x: min(x))
        with pytest.raises(ValueError):
            decompose(bare)
