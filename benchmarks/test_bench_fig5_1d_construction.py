"""Figure 5 benchmark: the eventually quilt-affine structure and Theorem 3.1 construction.

Fig. 5 depicts a semilinear nondecreasing 1D function with an irregular prefix
of length ``n`` followed by periodic finite differences with period ``p``.  The
benchmark recovers that structure from black-box samples for a family of
functions with growing ``n`` and ``p``, builds the Theorem 3.1 CRN, verifies
it, and reports the construction size — which grows as Θ(n + p).
"""

import pytest

from repro.core.construction_1d import build_1d_crn, construction_size_1d
from repro.quilt.fitting import fit_eventually_quilt_affine_1d
from repro.verify.stable import verify_stable_computation


def make_function(prefix_length: int, period: int):
    """An irregular prefix of the given length followed by a periodic staircase."""

    def func(x: int) -> int:
        total = 0
        for step in range(x):
            if step < prefix_length:
                total += (step % 3 == 0) * 2
            else:
                total += 1 + ((step - prefix_length) % period == 0)
        return total

    return func


CASES = [(0, 1), (2, 2), (4, 3), (8, 4), (12, 6)]


@pytest.mark.parametrize("prefix_length, period", CASES)
def test_fig5_fit_and_construct(benchmark, prefix_length, period):
    func = make_function(prefix_length, period)

    def run():
        structure = fit_eventually_quilt_affine_1d(func, max_start=40, max_period=12)
        crn = build_1d_crn(structure)
        return structure, crn

    structure, crn = benchmark(run)
    size = construction_size_1d(structure)
    report = verify_stable_computation(
        crn, lambda x: func(x[0]), inputs=[(v,) for v in range(prefix_length + 2 * period + 2)],
        exhaustive_limit=30_000,
    )
    assert report.passed
    print(f"\n[Fig. 5] prefix n={structure.start}, period p={structure.period}: "
          f"CRN has {size['species']} species / {size['reactions']} reactions (Θ(n + p))")
    assert size["reactions"] == 1 + structure.start + structure.period
