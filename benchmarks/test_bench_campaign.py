"""The simulator benchmark family ported through the ``repro.lab`` executor.

Where ``test_bench_simulators.py`` times raw simulator loops, this suite
times the full campaign path — expansion, worker pool, store, cache — so
orchestration overhead stays visible next to raw engine throughput, and
parallel scaling is measured on the same workload the CLI runs.

Run with ``PYTHONPATH=src python -m pytest benchmarks --benchmark``.
"""

import time

import pytest

from repro.api.config import RunConfig
from repro.lab import (
    Campaign,
    PoolExecutor,
    SerialExecutor,
    SweepGrid,
    run_campaign,
)

POPULATIONS = [100, 1000]
WORKERS = 4


def minimum_family(populations, trials=3):
    return Campaign(
        name="bench-minimum-family",
        specs=[("minimum", "known")],
        inputs=[(p, p) for p in populations],
        engines=("python", "vectorized"),
        configs=(RunConfig(trials=trials, max_steps=10_000_000),),
        seed=1,
    )


@pytest.mark.parametrize("population", POPULATIONS)
def test_campaign_cell_throughput(benchmark, bench_record, population):
    """Per-cell cost through the serial executor (pure orchestration + engine)."""
    campaign = minimum_family([population])
    cells = campaign.expand()

    def run():
        return list(SerialExecutor().map(cells))

    results = benchmark.pedantic(run, rounds=3, iterations=1)
    assert all(r.ok and r.correct for r in results)
    total_steps = sum(r.total_steps for r in results)
    from conftest import mean_seconds

    bench_record(
        f"campaign/serial/minimum/pop{2 * population}",
        2 * population,
        mean_seconds(benchmark),
        total_steps,
        cells=len(cells),
    )


def test_campaign_parallel_scaling(tmp_path, bench_record):
    """Wall-clock for the same campaign: serial vs. a {WORKERS}-worker pool.

    Asserts correctness and records both timings; it does NOT gate on a
    speedup ratio (cells here are small, so pool overhead can dominate on a
    loaded CI box) — the numbers exist to track the trend.
    """
    campaign = minimum_family(POPULATIONS, trials=4)
    cells = campaign.expand()

    start = time.perf_counter()
    serial_run = run_campaign(
        campaign, str(tmp_path / "serial"), workers=1, cache_dir=None
    )
    serial_time = time.perf_counter() - start

    start = time.perf_counter()
    parallel_run = run_campaign(
        campaign, str(tmp_path / "parallel"), workers=WORKERS, cache_dir=None
    )
    parallel_time = time.perf_counter() - start

    assert serial_run.summary.errors == parallel_run.summary.errors == 0
    assert [r.deterministic_dict() for r in serial_run.results] == [
        r.deterministic_dict() for r in parallel_run.results
    ]
    total_steps = sum(r.total_steps for r in serial_run.results)
    bench_record(
        "campaign/run_campaign/serial", sum(2 * p for p in POPULATIONS),
        serial_time, total_steps, cells=len(cells),
    )
    bench_record(
        f"campaign/run_campaign/workers{WORKERS}", sum(2 * p for p in POPULATIONS),
        parallel_time, total_steps, cells=len(cells), workers=WORKERS,
    )
    print(
        f"\n[campaign] {len(cells)} cells: serial {serial_time:.2f}s, "
        f"{WORKERS} workers {parallel_time:.2f}s"
    )


def test_campaign_cache_replay_is_near_instant(tmp_path, bench_record):
    """Acceptance gate: a fully cached campaign replays without simulating."""
    campaign = minimum_family(POPULATIONS)
    cache_dir = str(tmp_path / "cache")
    first = run_campaign(campaign, str(tmp_path / "cold"), workers=2, cache_dir=cache_dir)
    assert first.executed == first.total_cells

    start = time.perf_counter()
    second = run_campaign(campaign, str(tmp_path / "warm"), workers=2, cache_dir=cache_dir)
    replay_time = time.perf_counter() - start

    assert second.executed == 0
    assert second.from_cache == second.total_cells
    bench_record(
        "campaign/cache-replay", sum(2 * p for p in POPULATIONS),
        replay_time, 0, cells=second.total_cells,
    )
    assert replay_time < 5.0
