"""Typed campaign artifacts: :class:`CellResult` rows in a JSONL store.

One campaign produces one ``results.jsonl`` file — one JSON object per line,
one line per cell.  Append-only and flushed per row, so a campaign killed
mid-run leaves a valid store behind; resume reads the completed cell ids back
and schedules only the remainder.

The **determinism contract**: everything in :meth:`CellResult.deterministic_dict`
is a pure function of the cell descriptor (spec fingerprint, input, config,
engine) for seeded cells, so the serial and parallel executors must produce
bit-identical deterministic rows.  The :data:`PROVENANCE_FIELDS`
(``wall_time``, ``cached``, ``cpu_time``, ``worker``) describe *this*
execution, not the result, and are the only fields excluded.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, fields
from typing import Any, Dict, Iterator, List, Mapping, Optional, Set, Tuple

#: Fields describing how a row was produced rather than what was computed.
#: Excluded from the deterministic view (and therefore from cache payloads).
PROVENANCE_FIELDS = ("wall_time", "cached", "cpu_time", "worker")


@dataclass
class CellResult:
    """The outcome of one campaign cell (one spec x input x engine x config run).

    ``status`` is ``"ok"`` or ``"error"``; error rows keep the descriptor
    fields populated and carry the exception rendering in ``error`` so a
    failed cell is a recorded data point, never a crashed campaign.
    """

    cell_id: str
    spec: str
    strategy: str
    input: Tuple[int, ...]
    engine: str
    config: Dict[str, Any]
    status: str
    expected: Optional[int] = None
    outputs: Tuple[int, ...] = ()
    output_mode: Optional[int] = None
    output_unanimous: Optional[bool] = None
    converged: Optional[bool] = None
    correct: Optional[bool] = None
    mean_steps: Optional[float] = None
    total_steps: Optional[int] = None
    error: Optional[str] = None
    wall_time: float = 0.0
    cached: bool = False
    cpu_time: Optional[float] = None
    """CPU seconds (``time.process_time``) the executing worker spent on this
    cell; ``None`` for cached rows (provenance, like ``wall_time``)."""
    worker: Optional[int] = None
    """PID of the process that executed the cell (provenance)."""

    def __post_init__(self) -> None:
        self.input = tuple(int(v) for v in self.input)
        self.outputs = tuple(int(v) for v in self.outputs)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> Dict[str, Any]:
        """The full row, provenance included (one JSONL line)."""
        data = asdict(self)
        data["input"] = list(self.input)
        data["outputs"] = list(self.outputs)
        return data

    def deterministic_dict(self) -> Dict[str, Any]:
        """The row minus provenance — the executor-equivalence / cache payload view."""
        data = self.to_dict()
        for name in PROVENANCE_FIELDS:
            data.pop(name)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CellResult":
        """Rebuild a row from :meth:`to_dict` / :meth:`deterministic_dict` output."""
        known = {f.name for f in fields(cls)}
        kwargs = {key: value for key, value in data.items() if key in known}
        return cls(**kwargs)


class ResultStore:
    """Append-only JSONL store for :class:`CellResult` rows.

    Rows are flushed (and fsync'd) as they are appended, so the store is
    always a valid prefix of the campaign — the property resume depends on.
    A trailing partial line (the one a ``kill -9`` can leave behind) is
    ignored on read.
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)

    def exists(self) -> bool:
        return os.path.exists(self.path)

    def append(self, result: CellResult) -> None:
        line = json.dumps(result.to_dict(), sort_keys=True, separators=(",", ":"))
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def iter_rows(self) -> Iterator[CellResult]:
        if not os.path.exists(self.path):
            return
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    data = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn final line from an interrupted writer
                yield CellResult.from_dict(data)

    def load(self) -> List[CellResult]:
        return list(self.iter_rows())

    def completed_ids(self) -> Set[str]:
        """Cell ids already recorded (both ok and error rows count as done)."""
        return {row.cell_id for row in self.iter_rows()}

    def __len__(self) -> int:
        return sum(1 for _ in self.iter_rows())

    def __repr__(self) -> str:
        return f"ResultStore({self.path!r})"
