"""Unit tests for Species and the reaction-expression DSL."""

import pytest

from repro.crn.species import Expression, Species, species
from repro.crn.reaction import Reaction


class TestSpecies:
    def test_species_equality_by_name(self):
        assert Species("X") == Species("X")
        assert Species("X") != Species("Y")

    def test_species_is_hashable(self):
        assert len({Species("X"), Species("X"), Species("Y")}) == 2

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Species("")

    def test_whitespace_name_rejected(self):
        with pytest.raises(ValueError):
            Species("A B")

    def test_with_prefix(self):
        assert Species("X").with_prefix("up_") == Species("up_X")

    def test_renamed(self):
        assert Species("X").renamed("Z") == Species("Z")

    def test_species_helper_splits_string(self):
        a, b, c = species("A B C")
        assert (a.name, b.name, c.name) == ("A", "B", "C")

    def test_species_helper_accepts_iterable(self):
        (only,) = species(["Solo"])
        assert only.name == "Solo"

    def test_species_helper_rejects_empty(self):
        with pytest.raises(ValueError):
            species("")


class TestExpression:
    def test_addition_of_species(self):
        x, y = species("X Y")
        expr = x + y
        assert expr.count(x) == 1 and expr.count(y) == 1

    def test_scalar_multiplication(self):
        (x,) = species("X")
        assert (3 * x).count(x) == 3
        assert (x * 2).count(x) == 2

    def test_repeated_addition_accumulates(self):
        (x,) = species("X")
        assert (x + x + x).count(x) == 3

    def test_total_molecularity(self):
        x, y = species("X Y")
        assert (2 * x + 3 * y).total() == 5

    def test_zero_literal_means_nothing(self):
        (x,) = species("X")
        rxn = x >> 0
        assert rxn.products.is_empty()

    def test_nonzero_int_rejected(self):
        (x,) = species("X")
        with pytest.raises(ValueError):
            x >> 5

    def test_negative_coefficient_rejected(self):
        with pytest.raises(ValueError):
            Expression({Species("X"): -1})

    def test_expression_equality_and_hash(self):
        x, y = species("X Y")
        assert x + y == y + x
        assert hash(x + y) == hash(y + x)
        assert x + y != x + 2 * y

    def test_str_sorted_by_name(self):
        x, y = species("X Y")
        assert str(2 * y + x) == "X + 2Y"

    def test_rshift_builds_reaction(self):
        x, y = species("X Y")
        rxn = 2 * x >> y
        assert isinstance(rxn, Reaction)
        assert rxn.reactant_count(x) == 2
        assert rxn.product_count(y) == 1

    def test_species_rshift_species(self):
        x, y = species("X Y")
        rxn = x >> y
        assert rxn.reactant_count(x) == 1 and rxn.product_count(y) == 1
