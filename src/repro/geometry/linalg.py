"""Exact rational linear algebra helpers (small dimensions).

The domain-decomposition machinery needs exact answers to questions such as
"what is the span of this recession cone?" and "project this gradient onto the
determined subspace W".  Floating point is avoided for these because gradients
are rational and the characterization checks compare them exactly.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Sequence, Tuple


Matrix = List[List[Fraction]]
Vector = Tuple[Fraction, ...]


def _to_matrix(rows: Sequence[Sequence]) -> Matrix:
    return [[Fraction(value) for value in row] for row in rows]


def _row_reduce(matrix: Matrix) -> Tuple[Matrix, List[int]]:
    """Reduced row echelon form; returns (rref, pivot column indices)."""
    rref = [row[:] for row in matrix]
    rows = len(rref)
    cols = len(rref[0]) if rows else 0
    pivots: List[int] = []
    pivot_row = 0
    for col in range(cols):
        if pivot_row >= rows:
            break
        # Find a nonzero pivot in or below pivot_row.
        pivot = None
        for r in range(pivot_row, rows):
            if rref[r][col] != 0:
                pivot = r
                break
        if pivot is None:
            continue
        rref[pivot_row], rref[pivot] = rref[pivot], rref[pivot_row]
        scale = rref[pivot_row][col]
        rref[pivot_row] = [value / scale for value in rref[pivot_row]]
        for r in range(rows):
            if r != pivot_row and rref[r][col] != 0:
                factor = rref[r][col]
                rref[r] = [a - factor * b for a, b in zip(rref[r], rref[pivot_row])]
        pivots.append(col)
        pivot_row += 1
    return rref, pivots


def rational_rank(rows: Sequence[Sequence]) -> int:
    """The rank of the matrix whose rows are given (exact rational arithmetic)."""
    matrix = _to_matrix(rows)
    if not matrix:
        return 0
    _, pivots = _row_reduce(matrix)
    return len(pivots)


def rational_nullspace(rows: Sequence[Sequence], dimension: int) -> List[Vector]:
    """A basis of the null space ``{x : A x = 0}`` of the matrix with the given rows.

    ``dimension`` is the number of columns (needed when ``rows`` is empty, in
    which case the null space is all of ``Q^dimension``).
    """
    matrix = _to_matrix(rows)
    if not matrix:
        return [
            tuple(Fraction(1) if j == i else Fraction(0) for j in range(dimension))
            for i in range(dimension)
        ]
    cols = len(matrix[0])
    if cols != dimension:
        raise ValueError(f"rows have {cols} columns but dimension={dimension} was given")
    rref, pivots = _row_reduce(matrix)
    free_columns = [c for c in range(cols) if c not in pivots]
    basis: List[Vector] = []
    for free in free_columns:
        vector = [Fraction(0)] * cols
        vector[free] = Fraction(1)
        for row_index, pivot_col in enumerate(pivots):
            vector[pivot_col] = -rref[row_index][free]
        basis.append(tuple(vector))
    return basis


def _dot(a: Sequence[Fraction], b: Sequence[Fraction]) -> Fraction:
    return sum((Fraction(x) * Fraction(y) for x, y in zip(a, b)), start=Fraction(0))


def _gram_schmidt(vectors: Sequence[Sequence]) -> List[Vector]:
    """Orthogonalize (not normalize) a list of rational vectors, dropping dependents."""
    orthogonal: List[Vector] = []
    for vector in vectors:
        v = [Fraction(x) for x in vector]
        for u in orthogonal:
            denom = _dot(u, u)
            if denom == 0:
                continue
            coefficient = _dot(v, u) / denom
            v = [a - coefficient * b for a, b in zip(v, u)]
        if any(x != 0 for x in v):
            orthogonal.append(tuple(v))
    return orthogonal


def project_onto_span(vector: Sequence, span_vectors: Sequence[Sequence]) -> Vector:
    """The orthogonal projection of ``vector`` onto ``span(span_vectors)`` (exact)."""
    v = tuple(Fraction(x) for x in vector)
    basis = _gram_schmidt(span_vectors)
    projection = [Fraction(0)] * len(v)
    for u in basis:
        denom = _dot(u, u)
        if denom == 0:
            continue
        coefficient = _dot(v, u) / denom
        projection = [p + coefficient * b for p, b in zip(projection, u)]
    return tuple(projection)


def orthogonal_complement_basis(span_vectors: Sequence[Sequence], dimension: int) -> List[Vector]:
    """A basis of the orthogonal complement ``W⊥`` of ``span(span_vectors)`` in Q^dimension."""
    if not span_vectors:
        return [
            tuple(Fraction(1) if j == i else Fraction(0) for j in range(dimension))
            for i in range(dimension)
        ]
    return rational_nullspace(span_vectors, dimension)


def in_span(vector: Sequence, span_vectors: Sequence[Sequence]) -> bool:
    """True if ``vector`` lies in the span of the given vectors (exact)."""
    v = tuple(Fraction(x) for x in vector)
    projection = project_onto_span(v, span_vectors)
    return all(a == b for a, b in zip(v, projection))
