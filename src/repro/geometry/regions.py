"""Regions induced by threshold hyperplanes (Definition 7.2).

Given threshold hyperplanes ``H_1, ..., H_l`` (shifted off the lattice), each
integer point ``y`` induces a sign pattern ``s_i = sign(t_i·y - (h_i - 1/2))``
and the region of ``y`` is the set of points with the same sign pattern:

    R = {x in R^d_{>=0} : S(Tx - h) >= 0}

(with the half-integer shift folded in so integer points are never on a
boundary).  Regions are classified as *determined* when their recession cone is
full-dimensional and *under-determined* otherwise, and an under-determined
region's *neighbors* are the regions whose recession cone contains its own
(Definition 7.11); ``neighbor_in_direction`` implements the construction used
in Lemma 7.18.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.geometry.cones import Cone
from repro.geometry.hyperplanes import Hyperplane
from repro.geometry.linalg import orthogonal_complement_basis


@dataclass(frozen=True)
class Region:
    """A sign-pattern region over a fixed tuple of hyperplanes.

    ``ambient`` records the ambient dimension explicitly; it is only required
    when the hyperplane tuple is empty (the whole orthant is then the single
    region).
    """

    hyperplanes: Tuple[Hyperplane, ...]
    signs: Tuple[int, ...]
    ambient: int = 0

    def __post_init__(self) -> None:
        if len(self.hyperplanes) != len(self.signs):
            raise ValueError("need exactly one sign per hyperplane")
        if any(s not in (-1, 1) for s in self.signs):
            raise ValueError(f"signs must be +1 or -1, got {self.signs}")
        if not self.hyperplanes and self.ambient <= 0:
            raise ValueError("a region with no hyperplanes needs an explicit ambient dimension")

    @property
    def dimension(self) -> int:
        """The ambient dimension."""
        return self.hyperplanes[0].dimension if self.hyperplanes else self.ambient

    # -- membership -----------------------------------------------------------------

    def contains(self, x: Sequence[int]) -> bool:
        """True if the integer point ``x`` (which must be >= 0) lies in the region."""
        if any(int(v) < 0 for v in x):
            return False
        return all(
            hyperplane.side(x) == sign
            for hyperplane, sign in zip(self.hyperplanes, self.signs)
        )

    # -- recession cone and classification --------------------------------------------

    def recession_cone(self) -> Cone:
        """The recession cone ``{y >= 0 : S T y >= 0}`` of the region."""
        rows = [
            [sign * value for value in hyperplane.normal]
            for hyperplane, sign in zip(self.hyperplanes, self.signs)
        ]
        return Cone(rows, self.dimension)

    def is_determined(self) -> bool:
        """True if the recession cone is full-dimensional (Section 7.3)."""
        return self.recession_cone().is_full_dimensional()

    def is_under_determined(self) -> bool:
        """True if the recession cone has dimension < d."""
        return not self.is_determined()

    def is_eventual(self) -> bool:
        """True if the region is unbounded in every input (Definition 7.10).

        Equivalent to the recession cone containing a strictly positive vector.
        """
        return self.recession_cone().positive_vector() is not None

    def determined_subspace_basis(self) -> List[Tuple[Fraction, ...]]:
        """A basis of ``W = span(recc(R))`` — the determined subspace (Section 7.4)."""
        return self.recession_cone().span_basis()

    def orthogonal_subspace_basis(self) -> List[Tuple[Fraction, ...]]:
        """A basis of ``W⊥``, the orthogonal complement of the determined subspace."""
        return orthogonal_complement_basis(self.determined_subspace_basis(), self.dimension)

    # -- neighbor structure -------------------------------------------------------------

    def is_neighbor_of(self, under_determined: "Region") -> bool:
        """True if this region is a neighbor of ``under_determined`` (Definition 7.11).

        ``R`` is a neighbor of ``U`` when ``recc(U) ⊆ recc(R)``.
        """
        return self.recession_cone().contains_cone(under_determined.recession_cone())

    def neighbor_separating_indices(self) -> List[int]:
        """Indices of hyperplanes orthogonal to the whole recession cone (Lemma 7.17).

        These are the hyperplanes whose normal lies in ``W⊥``; only they can
        separate the region from its neighbors.
        """
        span = self.determined_subspace_basis()
        separating: List[int] = []
        for index, hyperplane in enumerate(self.hyperplanes):
            if all(
                sum(
                    (Fraction(n) * b for n, b in zip(hyperplane.normal, basis_vector)),
                    start=Fraction(0),
                )
                == 0
                for basis_vector in span
            ):
                separating.append(index)
        return separating

    def neighbor_in_direction(self, direction: Sequence) -> "Region":
        """The neighbor region in the direction ``z ∈ W⊥`` (Lemma 7.18 construction).

        For every neighbor-separating hyperplane whose normal disagrees in sign
        with the direction, the region's sign is flipped; all other signs are
        kept.
        """
        direction = tuple(Fraction(value) for value in direction)
        separating = set(self.neighbor_separating_indices())
        new_signs: List[int] = []
        for index, (hyperplane, sign) in enumerate(zip(self.hyperplanes, self.signs)):
            if index in separating:
                dot = sum(
                    (Fraction(n) * v for n, v in zip(hyperplane.normal, direction)),
                    start=Fraction(0),
                )
                if dot != 0 and (1 if dot > 0 else -1) == -sign:
                    new_signs.append(-sign)
                    continue
            new_signs.append(sign)
        return Region(self.hyperplanes, tuple(new_signs), ambient=self.ambient)

    # -- sampling ---------------------------------------------------------------------------

    def integer_points_upto(self, bound: int) -> Iterable[Tuple[int, ...]]:
        """All integer points of the region with coordinates < ``bound``."""
        for x in itertools.product(range(bound), repeat=self.dimension):
            if self.contains(x):
                yield x

    def sample_point(self, bound: int = 50) -> Optional[Tuple[int, ...]]:
        """Some integer point of the region with coordinates < ``bound``, or None."""
        return next(iter(self.integer_points_upto(bound)), None)

    def deep_points(
        self, count: int, start_bound: int = 8, congruence: Optional[Tuple[int, ...]] = None, period: int = 1
    ) -> List[Tuple[int, ...]]:
        """Points of the region progressively deeper along its recession cone.

        Starting from a sample point (optionally constrained to a congruence
        class mod ``period``), repeatedly add a positive multiple of an interior
        (or arbitrary) recession-cone vector scaled to the period, producing
        points far from all boundaries.  Used to sample the affine behaviour of
        a function on a determined region.
        """
        cone = self.recession_cone()
        direction = cone.interior_vector() or cone.positive_vector()
        if direction is None:
            basis = self.determined_subspace_basis()
            if not basis:
                point = self.sample_point(start_bound * 4)
                return [point] * count if point is not None else []
            # Fall back to any nonnegative vector in the span.
            direction = tuple(
                int(value) if value == int(value) else 0 for value in basis[0]
            )
            if not cone.contains(direction):
                direction = tuple(abs(v) for v in direction)
                if not cone.contains(direction):
                    point = self.sample_point(start_bound * 4)
                    return [point] * count if point is not None else []
        base = None
        for candidate in self.integer_points_upto(start_bound * 4):
            if congruence is None or all(
                (c - v) % period == 0 for c, v in zip(congruence, candidate)
            ):
                base = candidate
                break
        if base is None:
            return []
        step = tuple(value * period for value in direction)
        points = []
        current = base
        for _ in range(count):
            points.append(current)
            current = tuple(c + s for c, s in zip(current, step))
        return points

    def __str__(self) -> str:
        parts = []
        for hyperplane, sign in zip(self.hyperplanes, self.signs):
            comparison = ">=" if sign == 1 else "<"
            terms = " + ".join(
                f"{c}*x{i+1}" for i, c in enumerate(hyperplane.normal) if c != 0
            ) or "0"
            parts.append(f"{terms} {comparison} {hyperplane.threshold}")
        return "{" + " and ".join(parts) + "}"


def region_of_point(hyperplanes: Sequence[Hyperplane], x: Sequence[int]) -> Region:
    """The unique region (sign pattern) containing the integer point ``x``."""
    signs = tuple(hyperplane.side(x) for hyperplane in hyperplanes)
    return Region(tuple(hyperplanes), signs, ambient=len(tuple(x)))


def enumerate_regions(
    hyperplanes: Sequence[Hyperplane],
    dimension: int,
    bound: int = 30,
    extra_points: Iterable[Sequence[int]] = (),
) -> List[Region]:
    """All regions realized by integer points with coordinates < ``bound``.

    Additional probe points (e.g. far along suspected recession directions) can
    be supplied via ``extra_points`` to make sure unbounded regions that only
    appear far from the origin are found.
    """
    if not hyperplanes:
        return [Region((), (), ambient=dimension)]
    seen: Dict[Tuple[int, ...], Region] = {}
    for x in itertools.product(range(bound), repeat=dimension):
        signs = tuple(hyperplane.side(x) for hyperplane in hyperplanes)
        if signs not in seen:
            seen[signs] = Region(tuple(hyperplanes), signs, ambient=dimension)
    for x in extra_points:
        signs = tuple(hyperplane.side(x) for hyperplane in hyperplanes)
        if signs not in seen:
            seen[signs] = Region(tuple(hyperplanes), signs, ambient=dimension)
    return list(seen.values())


def determined_regions(regions: Iterable[Region]) -> List[Region]:
    """The determined regions among ``regions``."""
    return [region for region in regions if region.is_determined()]


def under_determined_regions(regions: Iterable[Region]) -> List[Region]:
    """The under-determined regions among ``regions``."""
    return [region for region in regions if region.is_under_determined()]
