"""Engine registry: registration, capability metadata, and dynamic dispatch."""

import pytest

from repro.api.config import RunConfig
from repro.functions.catalog import minimum_spec
from repro.sim import registry
from repro.sim.registry import (
    EngineInfo,
    check_engine,
    engine_names,
    get_engine,
    register_engine,
    registered_engines,
    unregister_engine,
    validate_engine_request,
)
from repro.sim.runner import ConvergenceReport, estimate_expected_output, run_many


@pytest.fixture
def dummy_engine():
    """Register a stub engine for the duration of one test."""

    class DummyEngine:
        def __init__(self):
            self.calls = []

        def run_many(self, crn, x, config):
            self.calls.append(("run_many", tuple(x), config))
            return ConvergenceReport(
                input_value=tuple(x),
                outputs=[42] * config.trials,
                max_outputs=[42] * config.trials,
                steps=[1] * config.trials,
                all_silent_or_converged=True,
            )

        def estimate_expected_output(self, crn, x, config):
            self.calls.append(("estimate", tuple(x), config))
            return 42.0

    instance = DummyEngine()
    register_engine(
        "dummy",
        supports_gillespie=False,
        supports_fair=True,
        max_recommended_population=10,
        description="test stub",
    )(instance)
    yield instance
    unregister_engine("dummy")


class TestRegistryBasics:
    def test_builtin_engines_are_registered(self):
        names = engine_names()
        assert "python" in names
        assert "vectorized" in names

    def test_engines_tuple_is_live_view(self, dummy_engine):
        import repro.sim

        assert "dummy" in repro.sim.ENGINES
        unregister_engine("dummy")
        assert "dummy" not in repro.sim.ENGINES
        # Re-register so the fixture teardown stays a no-op.
        register_engine("dummy")(dummy_engine)

    def test_capability_metadata(self):
        python = get_engine("python")
        assert isinstance(python, EngineInfo)
        assert python.supports_gillespie and python.supports_fair
        # raised from 2_000 when the scalar kernel replaced the dict loops
        assert python.max_recommended_population == 20_000
        vectorized = get_engine("vectorized")
        assert vectorized.max_recommended_population is None
        assert {info.name for info in registered_engines()} >= {"python", "vectorized"}

    def test_nrm_capability_metadata(self):
        nrm = get_engine("nrm")
        assert nrm.supports_gillespie
        assert not nrm.supports_fair  # kinetic scheduling only
        assert not nrm.approximate  # exact sampler, unlike tau
        assert "nrm" in engine_names()

    def test_tau_vec_capability_metadata(self):
        tau_vec = get_engine("tau-vec")
        assert tau_vec.supports_gillespie
        assert not tau_vec.supports_fair  # kinetic scheduling only
        assert tau_vec.approximate  # statistically (not bit-for-bit) equivalent
        assert tau_vec.batch_capable  # advances the whole trial batch per round
        assert tau_vec.min_recommended_population == 10_000

    def test_batch_capable_metadata_partitions_the_builtins(self):
        # batch_capable is published metadata, not a name convention: the
        # dense-batch engines carry it, the scalar ones do not.
        flags = {info.name: info.batch_capable for info in registered_engines()}
        assert flags["vectorized"] and flags["tau-vec"]
        assert not flags["python"] and not flags["nrm"] and not flags["tau"]

    def test_batch_capable_in_to_dict(self):
        # to_dict is the single serialization behind both `engines --json`
        # and GET /v1/engines, so the new field must ride through it.
        payload = get_engine("tau-vec").to_dict()
        assert payload["batch_capable"] is True
        assert payload["approximate"] is True
        default = EngineInfo(name="x", implementation=None)
        assert default.to_dict()["batch_capable"] is False

    def test_unknown_engine_error_lists_registered_names(self):
        with pytest.raises(ValueError) as excinfo:
            check_engine("cuda")
        message = str(excinfo.value)
        assert "'cuda'" in message
        assert "'python'" in message and "'vectorized'" in message

    def test_error_listing_includes_runtime_registrations(self, dummy_engine):
        with pytest.raises(ValueError) as excinfo:
            get_engine("no-such-engine")
        assert "'dummy'" in str(excinfo.value)

    def test_duplicate_registration_rejected_unless_replace(self, dummy_engine):
        with pytest.raises(ValueError, match="already registered"):
            register_engine("dummy")(dummy_engine)
        register_engine("dummy", replace=True, description="swapped")(dummy_engine)
        assert get_engine("dummy").description == "swapped"

    def test_registration_requires_the_engine_methods(self):
        class Incomplete:
            def run_many(self, crn, x, config):
                return None

        with pytest.raises(TypeError, match="estimate_expected_output"):
            register_engine("incomplete")(Incomplete)
        assert "incomplete" not in engine_names()


class TestRegistryDispatch:
    def test_dummy_engine_dispatches_through_run_many(self, dummy_engine):
        crn = minimum_spec().known_crn
        report = run_many(crn, (3, 5), trials=4, engine="dummy")
        assert report.outputs == [42, 42, 42, 42]
        assert dummy_engine.calls[0][0] == "run_many"
        assert dummy_engine.calls[0][2].trials == 4

    def test_dummy_engine_dispatches_through_estimate(self, dummy_engine):
        crn = minimum_spec().known_crn
        assert estimate_expected_output(crn, (3, 5), engine="dummy") == 42.0

    def test_dummy_engine_dispatches_through_runconfig(self, dummy_engine):
        crn = minimum_spec().known_crn
        config = RunConfig(trials=2, engine="dummy")
        report = run_many(crn, (1, 1), config=config)
        assert report.outputs == [42, 42]
        assert dummy_engine.calls[-1][2] is config

    def test_dummy_engine_dispatches_through_verification(self, dummy_engine):
        from repro.verify import verify_stable_computation

        crn = minimum_spec().known_crn
        report = verify_stable_computation(
            crn,
            lambda x: 42,
            inputs=[(5, 9)],
            method="simulation",
            engine="dummy",
            function_name="const42",
        )
        assert report.passed
        assert report.results[0].observed_outputs[0] == 42

    def test_unregistered_engine_fails_at_dispatch(self):
        crn = minimum_spec().known_crn
        with pytest.raises(ValueError, match="registered engines"):
            run_many(crn, (1, 1), engine="gone")

    def test_verification_rejects_kinetic_only_engines(self):
        # supports_fair=False metadata is consulted by the verification
        # harness: the randomized path's evidence assumes fair scheduling,
        # which the approximate tau engine does not implement.
        from repro.verify import verify_stable_computation

        crn = minimum_spec().known_crn
        with pytest.raises(ValueError, match="supports_fair"):
            verify_stable_computation(
                crn, lambda x: min(x), inputs=[(2, 2)], method="simulation",
                engine="tau",
            )

    def test_verification_rejects_nrm(self):
        # Regression for the new exact kinetic-only engine: exactness is not
        # the question — NRM samples Gillespie kinetics, not the fair
        # scheduler the verification evidence assumes — so it must be routed
        # away from the randomized path with the same clear error as tau.
        from repro.verify import verify_stable_computation

        crn = minimum_spec().known_crn
        with pytest.raises(ValueError, match="supports_fair"):
            verify_stable_computation(
                crn, lambda x: min(x), inputs=[(2, 2)], method="simulation",
                engine="nrm",
            )


class TestValidateEngineRequest:
    """Explicit per-call requests are checked against capability metadata."""

    def test_epsilon_on_exact_engines_rejected(self):
        for engine in ("python", "vectorized", "nrm"):
            with pytest.raises(ValueError) as excinfo:
                validate_engine_request(engine, epsilon=0.05)
            message = str(excinfo.value)
            assert "exact" in message and "epsilon" in message
            assert "'tau'" in message  # the actionable part: what to use instead

    def test_fair_on_kinetic_only_engines_rejected(self):
        for engine in ("nrm", "tau"):
            with pytest.raises(ValueError) as excinfo:
                validate_engine_request(engine, fair=True)
            message = str(excinfo.value)
            assert "supports_fair" in message
            assert "'python'" in message and "'vectorized'" in message

    def test_valid_requests_return_the_engine_info(self):
        assert validate_engine_request("tau", epsilon=0.1).name == "tau"
        assert validate_engine_request("python", fair=True).name == "python"
        assert validate_engine_request("nrm").name == "nrm"

    def test_unknown_engine_still_reported_first(self):
        with pytest.raises(ValueError, match="registered engines"):
            validate_engine_request("cuda", epsilon=0.1)


class TestBackCompat:
    def test_runner_module_still_exposes_engines_and_check_engine(self):
        from repro.sim import runner

        assert set(runner.ENGINES) >= {"python", "vectorized"}
        runner.check_engine("python")
        with pytest.raises(ValueError):
            runner.check_engine("nope")

    def test_unregistered_builtins_are_restored_on_lookup(self):
        unregister_engine("python")
        try:
            assert get_engine("python").name == "python"
        finally:
            from repro.sim.runner import register_builtin_engines

            register_builtin_engines()

    def test_builtin_registration_is_idempotent(self):
        from repro.sim.runner import register_builtin_engines

        register_builtin_engines()
        register_builtin_engines()
        assert set(engine_names()) >= {"python", "vectorized"}

    def test_builtin_restore_does_not_clobber_an_override(self, dummy_engine):
        # Restoring one missing built-in must not re-register the other,
        # which a caller may have deliberately replaced.
        from repro.sim.runner import register_builtin_engines

        original_vectorized = get_engine("vectorized").implementation
        register_engine("vectorized", replace=True, description="override")(dummy_engine)
        unregister_engine("python")
        try:
            assert get_engine("python").name == "python"  # restored
            assert get_engine("vectorized").implementation is dummy_engine  # untouched
        finally:
            register_builtin_engines()
        assert get_engine("vectorized").implementation is not dummy_engine
        assert type(get_engine("vectorized").implementation) is type(original_vectorized)
