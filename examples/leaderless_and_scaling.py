#!/usr/bin/env python3
"""Leaderless computation (Section 9) and the continuous scaling limit (Section 8).

Builds the Theorem 9.2 leaderless CRN for a superadditive 1D function, compares
its size with the leader-driven Theorem 3.1 construction, converts a
bimolecular CRN into a population protocol, and exhibits the ∞-scaling
correspondence with continuous rate-independent CRNs (Theorem 8.2).

Run with::

    python examples/leaderless_and_scaling.py
"""

from fractions import Fraction

from repro import build_1d_crn, build_leaderless_1d_crn, verify_stable_computation
from repro.continuous import MinOfLinear, build_min_of_linear_continuous_crn
from repro.core.scaling import infinity_scaling, scaling_of_eventually_min
from repro.core.superadditive import is_superadditive_upto
from repro.functions.catalog import minimum_spec
from repro.functions.paper_examples import fig7_spec
from repro.protocols import crn_to_population_protocol


def leaderless_construction() -> None:
    print("=== Theorem 9.2: leaderless CRN for a superadditive function ===")

    def func(x: int) -> int:
        return (3 * x) // 2

    print(f"f(x) = floor(3x/2) is superadditive: {is_superadditive_upto(lambda v: func(v[0]), 1, 12)}")
    leaderless = build_leaderless_1d_crn(func)
    with_leader = build_1d_crn(func)
    print(f"leaderless construction : {leaderless.size()}  (leaderless = {leaderless.is_leaderless()})")
    print(f"Theorem 3.1 construction: {with_leader.size()}  (leaderless = {with_leader.is_leaderless()})")
    report = verify_stable_computation(
        leaderless, lambda x: func(x[0]), inputs=[(v,) for v in range(6)], function_name="floor(3x/2)"
    )
    print(report.describe())
    print()


def population_protocol_view() -> None:
    print("=== Population-protocol view of the min CRN ===")
    protocol = crn_to_population_protocol(minimum_spec().known_crn)
    print(f"states: {protocol.states}")
    print(f"transitions: {protocol.transitions}")
    agents, interactions = protocol.run((6, 9), seed=0)
    print(f"running on input (6, 9): output agents = {protocol.output_count(agents)} "
          f"after {interactions} interactions")
    print()


def scaling_limit() -> None:
    print("=== Theorem 8.2: the ∞-scaling limit of the Fig. 7 function ===")
    spec = fig7_spec()
    for point in [(1.0, 1.0), (1.0, 2.0), (3.0, 1.0)]:
        numeric = infinity_scaling(spec.func, point, scale=5_000)
        exact = scaling_of_eventually_min(spec.eventually_min, [Fraction(v) for v in point])
        print(f"  f̂{point} ≈ {numeric:.4f}   (exact limit {exact})")
    gradients = [piece.gradient for piece in spec.eventually_min.pieces]
    continuous = build_min_of_linear_continuous_crn(MinOfLinear.from_gradients(gradients))
    print("the same function as a continuous, rate-independent, output-oblivious CRN:")
    print(continuous.describe())
    for point in [(1.0, 1.0), (1.0, 2.0), (3.0, 1.0)]:
        print(f"  continuous stable output at {point}: {continuous.max_output(point):.4f}")


def main() -> None:
    leaderless_construction()
    population_protocol_view()
    scaling_limit()


if __name__ == "__main__":
    main()
