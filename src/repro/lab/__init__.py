"""``repro.lab`` — parallel experiment campaigns over the workbench pipeline.

The orchestration layer on top of :mod:`repro.api`: declare a
:class:`Campaign` (specs x input grids x engines x config variants), and
:func:`run_campaign` expands it into deterministic seeded cells, fans them
across a worker pool, records typed :class:`CellResult` rows in a JSONL
store, content-addresses every seeded result in an on-disk cache (so
re-running is free and interrupted campaigns resume), and aggregates
convergence / correctness / throughput statistics.

Quickstart::

    from repro.lab import Campaign, SweepGrid, run_campaign

    campaign = Campaign(
        name="minimum-sweep",
        specs=["minimum"],
        inputs=SweepGrid.parse("0:10", dimension=2),
        engines=("python", "vectorized"),
        seed=7,
    )
    run = run_campaign(campaign, "runs/minimum-sweep", workers=4)
    print(run.summary.correct_rate, run.from_cache, run.executed)

or from a shell: ``python -m repro run --spec minimum --grid 0:10 --seed 7
--workers 4 --out runs/minimum-sweep`` (then ``resume`` / ``report`` /
``bench`` — see ``python -m repro --help``).

Campaigns also shard across *processes and hosts*: pass ``--backend
shared-dir`` (or ``executor=SharedDirBackend(...)``) and serve the queue
directory with any number of ``python -m repro worker --queue-dir ...``
processes — see :mod:`repro.lab.backends` and DESIGN.md §11.
"""

from repro.lab.aggregate import (
    BENCH_SCHEMA,
    CampaignSummary,
    EngineStats,
    format_report,
    summarize,
    write_bench_json,
)
from repro.lab.backends import (
    LocalPoolBackend,
    SharedDirBackend,
    SharedDirQueue,
    WorkQueue,
    worker_loop,
)
from repro.lab.cache import (
    CODE_SALT,
    DEFAULT_CACHE_DIR,
    ResultCache,
    cell_cache_key,
    spec_fingerprint,
)
from repro.lab.campaign import (
    Campaign,
    CampaignRun,
    Cell,
    SweepGrid,
    register_spec_factory,
    resolve_engine,
    resolve_spec,
    resume_campaign,
    run_campaign,
    spec_factory_names,
)
from repro.lab.executor import (
    CellTimeoutError,
    PoolExecutor,
    SerialExecutor,
    run_cell,
    run_cell_with_timeout,
)
from repro.lab.store import CellResult, ResultStore

__all__ = [
    "BENCH_SCHEMA",
    "CODE_SALT",
    "DEFAULT_CACHE_DIR",
    "Campaign",
    "CampaignRun",
    "CampaignSummary",
    "Cell",
    "CellResult",
    "CellTimeoutError",
    "EngineStats",
    "LocalPoolBackend",
    "PoolExecutor",
    "ResultCache",
    "ResultStore",
    "SerialExecutor",
    "SharedDirBackend",
    "SharedDirQueue",
    "SweepGrid",
    "WorkQueue",
    "cell_cache_key",
    "format_report",
    "register_spec_factory",
    "resolve_engine",
    "resolve_spec",
    "resume_campaign",
    "run_campaign",
    "run_cell",
    "run_cell_with_timeout",
    "spec_factory_names",
    "spec_fingerprint",
    "summarize",
    "worker_loop",
    "write_bench_json",
]
