"""Configurations: nonnegative-integer vectors of species counts.

A configuration ``C`` assigns a count ``C(S) >= 0`` to every species ``S``.
Configurations support pointwise arithmetic (addition, subtraction with
nonnegativity checking), pointwise comparison (``<=`` is the partial order used
by Dickson's lemma arguments in the paper), and hashing of a frozen snapshot so
they can be used as vertices of reachability graphs.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Tuple

from repro.crn.species import Species


class Configuration:
    """A multiset of species, i.e. a vector in ``N^S``.

    The representation is sparse: species with count zero are not stored.
    Configurations are immutable from the caller's perspective; all operations
    return new configurations.
    """

    __slots__ = ("_counts",)

    def __init__(self, counts: Mapping[Species, int] | None = None) -> None:
        cleaned: Dict[Species, int] = {}
        for sp, count in dict(counts or {}).items():
            if not isinstance(sp, Species):
                raise TypeError(f"configuration keys must be Species, got {type(sp).__name__}")
            if not isinstance(count, int) or isinstance(count, bool):
                raise TypeError(f"species counts must be integers, got {count!r}")
            if count < 0:
                raise ValueError(f"species counts must be nonnegative, got {sp.name}={count}")
            if count > 0:
                cleaned[sp] = count
        self._counts = cleaned

    # -- accessors -----------------------------------------------------------

    def __getitem__(self, sp: Species) -> int:
        return self._counts.get(sp, 0)

    def get(self, sp: Species, default: int = 0) -> int:
        """The count of ``sp``, or ``default`` if absent."""
        return self._counts.get(sp, default)

    def species(self) -> Tuple[Species, ...]:
        """Species present with a positive count, sorted by name."""
        return tuple(sorted(self._counts, key=lambda s: s.name))

    def counts(self) -> Dict[Species, int]:
        """A copy of the sparse species -> count mapping."""
        return dict(self._counts)

    def total(self) -> int:
        """Total molecular count."""
        return sum(self._counts.values())

    def support(self) -> frozenset:
        """The set of species present with positive count."""
        return frozenset(self._counts)

    def __iter__(self) -> Iterator[Species]:
        return iter(self._counts)

    def items(self) -> Iterable[Tuple[Species, int]]:
        """Iterate over (species, count) pairs with positive count."""
        return self._counts.items()

    def __len__(self) -> int:
        return len(self._counts)

    def __bool__(self) -> bool:
        return bool(self._counts)

    # -- arithmetic ----------------------------------------------------------

    def __add__(self, other: "Configuration") -> "Configuration":
        if not isinstance(other, Configuration):
            return NotImplemented
        merged = dict(self._counts)
        for sp, count in other._counts.items():
            merged[sp] = merged.get(sp, 0) + count
        return Configuration(merged)

    def __sub__(self, other: "Configuration") -> "Configuration":
        if not isinstance(other, Configuration):
            return NotImplemented
        result = dict(self._counts)
        for sp, count in other._counts.items():
            new = result.get(sp, 0) - count
            if new < 0:
                raise ValueError(
                    f"configuration subtraction would make {sp.name} negative "
                    f"({result.get(sp, 0)} - {count})"
                )
            if new == 0:
                result.pop(sp, None)
            else:
                result[sp] = new
        return Configuration(result)

    def scaled(self, factor: int) -> "Configuration":
        """Return this configuration with every count multiplied by ``factor``."""
        if factor < 0:
            raise ValueError("scaling factor must be nonnegative")
        return Configuration({sp: count * factor for sp, count in self._counts.items()})

    def updated(self, sp: Species, count: int) -> "Configuration":
        """Return a copy with the count of ``sp`` set to ``count``."""
        new = dict(self._counts)
        if count == 0:
            new.pop(sp, None)
        else:
            new[sp] = count
        return Configuration(new)

    # -- comparison ----------------------------------------------------------

    def __le__(self, other: "Configuration") -> bool:
        if not isinstance(other, Configuration):
            return NotImplemented
        return all(count <= other[sp] for sp, count in self._counts.items())

    def __ge__(self, other: "Configuration") -> bool:
        if not isinstance(other, Configuration):
            return NotImplemented
        return other <= self

    def __lt__(self, other: "Configuration") -> bool:
        if not isinstance(other, Configuration):
            return NotImplemented
        return self <= other and self != other

    def __gt__(self, other: "Configuration") -> bool:
        if not isinstance(other, Configuration):
            return NotImplemented
        return other < self

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Configuration):
            return NotImplemented
        return self._counts == other._counts

    def __hash__(self) -> int:
        return hash(frozenset(self._counts.items()))

    # -- display -------------------------------------------------------------

    def __str__(self) -> str:
        if not self._counts:
            return "{}"
        parts = [f"{count} {sp.name}" for sp, count in sorted(self._counts.items(), key=lambda kv: kv[0].name)]
        return "{" + ", ".join(parts) + "}"

    def __repr__(self) -> str:
        return f"Configuration({self!s})"

    # -- constructors --------------------------------------------------------

    @staticmethod
    def zero() -> "Configuration":
        """The empty configuration."""
        return Configuration({})

    @staticmethod
    def single(sp: Species, count: int = 1) -> "Configuration":
        """A configuration containing only ``count`` copies of ``sp``."""
        return Configuration({sp: count})

    @staticmethod
    def from_counts(**kwargs: int) -> "Configuration":
        """Build a configuration from keyword arguments keyed by species name.

        Example: ``Configuration.from_counts(X1=3, X2=5, L=1)``.
        """
        return Configuration({Species(name): count for name, count in kwargs.items()})
