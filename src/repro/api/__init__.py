"""``repro.api`` — the unified workbench facade.

The stable, documented front door to the whole pipeline:

* :class:`~repro.api.config.RunConfig` — one frozen value object for the
  ``trials`` / ``max_steps`` / ``quiescence_window`` / ``seed`` / ``engine``
  cloud, with ``replace()`` derivation and per-trial / per-input seed
  spawning;
* :class:`~repro.api.workbench.Workbench` — ``compile(spec, strategy=...)``
  into a :class:`~repro.api.workbench.CompiledFunction` whose ``simulate`` /
  ``sweep`` / ``verify`` / ``expected_output`` methods return the existing
  report types;
* the engine registry lives in :mod:`repro.sim.registry`; the workbench
  surfaces it via :meth:`Workbench.engines`.

``RunConfig`` is importable with no simulation dependencies; the workbench
itself loads lazily so the low-level layers can import this package's config
module without cycles.
"""

from repro.api.config import RunConfig

__all__ = [
    "RunConfig",
    "Workbench",
    "CompiledFunction",
    "registered_name_for",
    "spec_to_json_dict",
    "spec_from_json_dict",
    "run_config_to_json_dict",
    "run_config_from_json_dict",
]

_SERIALIZATION_NAMES = (
    "registered_name_for",
    "spec_to_json_dict",
    "spec_from_json_dict",
    "run_config_to_json_dict",
    "run_config_from_json_dict",
)


def __getattr__(name: str):
    # Lazy: repro.sim.runner imports repro.api.config at module level, which
    # executes this package __init__; importing the workbench eagerly here
    # would re-enter repro.sim mid-initialization.
    if name in ("Workbench", "CompiledFunction"):
        from repro.api import workbench

        return getattr(workbench, name)
    if name in _SERIALIZATION_NAMES:
        from repro.api import serialization

        return getattr(serialization, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
