#!/usr/bin/env python3
"""The main theorem in action: decide oblivious computability and build the CRN.

Walks the paper's headline examples through the Theorem 5.2 / 5.4 decision
procedure (``check_obliviously_computable``) and, for the positive cases,
through the Lemma 6.2 construction (``build_crn_for``), verifying the
constructed CRN empirically.

Run with::

    python examples/characterization_demo.py
"""

from repro import build_crn_for, check_obliviously_computable, decompose, verify_stable_computation
from repro.functions.catalog import maximum_spec, min_one_spec, minimum_spec
from repro.functions.paper_examples import (
    eq2_counterexample_spec,
    fig4a_style_spec,
    fig7_spec,
)


def classify_everything() -> None:
    print("=== Theorem 5.2 / 5.4: which functions are obliviously-computable? ===")
    for spec in [
        minimum_spec(),
        maximum_spec(),
        min_one_spec(),
        fig7_spec(),
        fig4a_style_spec(),
        eq2_counterexample_spec(),
    ]:
        verdict = check_obliviously_computable(spec)
        print(verdict.describe())
        print()


def decompose_fig7() -> None:
    print("=== Section 7 decomposition of the Fig. 7 function ===")
    decomposition = decompose(fig7_spec())
    summary = decomposition.summary()
    for key, value in summary.items():
        print(f"  {key}: {value}")
    print("  extensions:")
    for item in decomposition.extensions:
        kind = "determined" if item.determined else "under-determined (averaged)"
        print(f"    [{kind}] {item.extension}")
    print()


def construct_and_verify() -> None:
    print("=== Lemma 6.2 construction for the Fig. 4a-style function ===")
    spec = fig4a_style_spec()
    crn = build_crn_for(spec, prefer_known=False)
    size = crn.size()
    print(f"constructed CRN: {size['species']} species, {size['reactions']} reactions, "
          f"output-oblivious = {crn.is_output_oblivious()}")
    report = verify_stable_computation(
        crn,
        spec.func,
        inputs=[(0, 0), (1, 4), (2, 2), (3, 5)],
        method="simulation",
        trials=5,
        function_name=spec.name,
    )
    print(report.describe())


def main() -> None:
    classify_everything()
    decompose_fig7()
    construct_and_verify()


if __name__ == "__main__":
    main()
