"""FROZEN reference copies of the pre-kernel dict-backed scalar simulators.

These are the original ``GillespieSimulator.run`` / ``FairScheduler.run``
loops, verbatim, from before the scalar simulators were rebased onto
:mod:`repro.sim.kernel`.  They advance an immutable
:class:`~repro.crn.configuration.Configuration` one reaction at a time and
recompute every propensity / applicability flag from scratch at every step.

They exist for exactly two purposes:

* the **equivalence oracle** — ``tests/test_kernel.py`` asserts that seeded
  kernel runs reproduce these loops bit for bit (same draw order, same final
  configuration, same step/time/convergence bookkeeping);
* the **benchmark baseline** — the ``scalar-kernel/`` before/after entries in
  ``BENCH_results.json`` measure the kernel against this implementation.

Do not extend, optimize, or "fix" this module: its value is that it does not
change.  It is not part of the public API (the public classes live in
:mod:`repro.sim.gillespie` / :mod:`repro.sim.fair`, backed by the kernel).
"""

from __future__ import annotations

import math
import random
from typing import Callable, List, Optional, Sequence

from repro.crn.configuration import Configuration
from repro.crn.network import CRN
from repro.crn.reaction import Reaction
from repro.crn.species import Species
from repro.sim.trajectory import Trajectory


class ReferenceGillespieSimulator:
    """The legacy dict-backed Gillespie direct-method loop (frozen)."""

    def __init__(self, crn: CRN, rng: Optional[random.Random] = None) -> None:
        self.crn = crn
        self.rng = rng or random.Random()

    def run(
        self,
        initial: Configuration,
        max_steps: int = 1_000_000,
        max_time: float = math.inf,
        track: Sequence[Species] = (),
        record_every: int = 1,
        stop_when: Optional[Callable[[Configuration], bool]] = None,
    ):
        from repro.sim.gillespie import GillespieResult

        config = initial
        time_now = 0.0
        trajectory = Trajectory(track) if track else None
        if trajectory is not None:
            trajectory.record(time_now, 0, config)

        steps = 0
        silent = False
        while steps < max_steps and time_now < max_time:
            if stop_when is not None and stop_when(config):
                break
            propensities: List[float] = []
            total = 0.0
            for rxn in self.crn.reactions:
                a = rxn.propensity(config)
                propensities.append(a)
                total += a
            if total <= 0.0:
                silent = True
                break
            time_now += self.rng.expovariate(total)
            if time_now > max_time:
                time_now = max_time
                break
            choice = self.rng.random() * total
            cumulative = 0.0
            fired: Optional[Reaction] = None
            for rxn, a in zip(self.crn.reactions, propensities):
                cumulative += a
                if choice <= cumulative:
                    fired = rxn
                    break
            if fired is None:  # numerical edge case: fall back to the last positive one
                fired = next(
                    rxn for rxn, a in zip(reversed(self.crn.reactions), reversed(propensities)) if a > 0
                )
            config = fired.apply(config)
            steps += 1
            if trajectory is not None and steps % record_every == 0:
                trajectory.record(time_now, steps, config)

        if trajectory is not None and (len(trajectory) == 0 or trajectory[-1].step != steps):
            trajectory.record(time_now, steps, config)
        return GillespieResult(
            final_configuration=config,
            final_time=time_now,
            steps=steps,
            silent=silent,
            trajectory=trajectory,
        )

    def run_on_input(self, x: Sequence[int], **kwargs):
        """Simulate from the CRN's initial configuration for input ``x``."""
        return self.run(self.crn.initial_configuration(x), **kwargs)


class ReferenceFairScheduler:
    """The legacy dict-backed fair-scheduler loop (frozen)."""

    def __init__(
        self,
        crn: CRN,
        rng: Optional[random.Random] = None,
        bias: Optional[Callable[[Reaction], float]] = None,
    ) -> None:
        self.crn = crn
        self.rng = rng or random.Random()
        self.bias = bias

    def _choose(self, applicable: List[Reaction]) -> Reaction:
        if self.bias is None:
            return self.rng.choice(applicable)
        weights = [max(self.bias(rxn), 0.0) for rxn in applicable]
        total = sum(weights)
        if total <= 0:
            return self.rng.choice(applicable)
        pick = self.rng.random() * total
        cumulative = 0.0
        for rxn, weight in zip(applicable, weights):
            cumulative += weight
            if pick <= cumulative:
                return rxn
        return applicable[-1]

    def run(
        self,
        initial: Configuration,
        max_steps: int = 1_000_000,
        quiescence_window: int = 0,
        track: Sequence[Species] = (),
        record_every: int = 1,
    ):
        from repro.sim.fair import FairRunResult

        config = initial
        trajectory = Trajectory(track) if track else None
        if trajectory is not None:
            trajectory.record(0.0, 0, config)

        output_species = self.crn.output_species
        max_output = config[output_species]
        steps = 0
        silent = False
        converged = False
        steps_since_output_change = 0
        last_output = config[output_species]

        while steps < max_steps:
            applicable = self.crn.applicable_reactions(config)
            if not applicable:
                silent = True
                break
            rxn = self._choose(applicable)
            config = rxn.apply(config)
            steps += 1
            current_output = config[output_species]
            max_output = max(max_output, current_output)
            if current_output == last_output:
                steps_since_output_change += 1
            else:
                steps_since_output_change = 0
                last_output = current_output
            if trajectory is not None and steps % record_every == 0:
                trajectory.record(float(steps), steps, config)
            if quiescence_window and steps_since_output_change >= quiescence_window:
                converged = True
                break

        if trajectory is not None and (len(trajectory) == 0 or trajectory[-1].step != steps):
            trajectory.record(float(steps), steps, config)
        return FairRunResult(
            final_configuration=config,
            steps=steps,
            silent=silent,
            converged=converged,
            max_output_seen=max_output,
            trajectory=trajectory,
        )

    def run_on_input(self, x: Sequence[int], **kwargs):
        """Run from the CRN's initial configuration for input ``x``."""
        return self.run(self.crn.initial_configuration(x), **kwargs)
