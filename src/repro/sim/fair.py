"""A rate-agnostic fair random scheduler for stable-computation testing.

Stable computation is a reachability property: correctness does not depend on
reaction rates.  The fair scheduler fires a uniformly random applicable
reaction at each step.  Under this scheduler every configuration that remains
reachable infinitely often is eventually reached with probability 1, so a CRN
that stably computes ``f`` converges to the correct stable output on every run
(footnote 2 of the paper lists this as an equivalent definition).

The scheduler also supports *biased* adversarial modes used by the
overproduction-witness search (:mod:`repro.verify.overproduction`), which
prefer reactions that produce the output species in order to surface
overshooting behaviour quickly.

:class:`FairScheduler` is a thin compatibility shim over the shared scalar
kernel (:class:`repro.sim.kernel.SimulatorCore` with
:class:`~repro.sim.kernel.FairPolicy`): same public API, same result type,
and bit-for-bit identical seeded runs (``tests/test_kernel.py`` locks this
against :mod:`repro.sim._reference`).  Subclasses that override the legacy
``_choose`` hook are detected and transparently routed through the frozen
reference loop, so their custom selection still takes effect — see the README
migration note.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.crn.configuration import Configuration
from repro.crn.network import CRN
from repro.crn.reaction import Reaction
from repro.crn.species import Species
from repro.sim.kernel import FairPolicy, SimulatorCore
from repro.sim.trajectory import Trajectory


@dataclass
class FairRunResult:
    """Result of a single fair-scheduler run."""

    final_configuration: Configuration
    steps: int
    silent: bool
    """True if the run stopped because no reaction was applicable."""
    converged: bool
    """True if the run stopped because the output was quiescent for the window."""
    max_output_seen: int
    """The maximum output count observed at any point during the run."""
    trajectory: Optional[Trajectory] = None

    def output_count(self, crn: CRN) -> int:
        """The output count at the end of the run."""
        return crn.output_count(self.final_configuration)


class FairScheduler:
    """Uniform-random (or biased) scheduler over applicable reactions (kernel-backed).

    Parameters
    ----------
    crn:
        The network to run.
    rng:
        Optional random generator for reproducibility.
    bias:
        Optional weighting function mapping a reaction to a positive weight;
        reactions are then chosen proportionally to their weight among the
        applicable ones.  ``None`` means uniform choice.  The kernel evaluates
        the bias once per reaction per run (every in-repo bias is a pure
        function of the reaction, so this is observationally identical).
    """

    def __init__(
        self,
        crn: CRN,
        rng: Optional[random.Random] = None,
        bias: Optional[Callable[[Reaction], float]] = None,
    ) -> None:
        self.crn = crn
        self.rng = rng or random.Random()
        self.bias = bias

    def _choose(self, applicable: List[Reaction]) -> Reaction:
        """Legacy per-step selection hook, kept for subclass compatibility.

        The kernel-backed :meth:`run` no longer calls this for plain
        ``FairScheduler`` instances (selection happens inside
        :class:`~repro.sim.kernel.FairPolicy`); a subclass that overrides it
        is automatically run through the frozen reference loop instead, so
        the override keeps working.
        """
        if self.bias is None:
            return self.rng.choice(applicable)
        weights = [max(self.bias(rxn), 0.0) for rxn in applicable]
        total = sum(weights)
        if total <= 0:
            return self.rng.choice(applicable)
        pick = self.rng.random() * total
        cumulative = 0.0
        for rxn, weight in zip(applicable, weights):
            cumulative += weight
            if pick <= cumulative:
                return rxn
        return applicable[-1]

    def run(
        self,
        initial: Configuration,
        max_steps: int = 1_000_000,
        quiescence_window: int = 0,
        track: Sequence[Species] = (),
        record_every: int = 1,
    ) -> FairRunResult:
        """Run from ``initial`` until silence, quiescence, or the step bound.

        Parameters
        ----------
        quiescence_window:
            If positive, stop once the output count has not changed for this
            many consecutive steps while reactions were still firing.  This is
            a heuristic convergence detector for CRNs that never fall silent
            (e.g. those with catalytic reactions).
        """
        if "_choose" in self.__dict__ or type(self)._choose is not FairScheduler._choose:
            # A subclass (or an instance-level monkey-patch, a common
            # test-double pattern) customized the per-step selection hook:
            # honour it by running the frozen pre-kernel loop, which calls
            # _choose every step.
            from repro.sim._reference import ReferenceFairScheduler

            legacy = ReferenceFairScheduler(self.crn, rng=self.rng, bias=self.bias)
            legacy._choose = self._choose  # type: ignore[method-assign]
            return legacy.run(
                initial,
                max_steps=max_steps,
                quiescence_window=quiescence_window,
                track=track,
                record_every=record_every,
            )
        core = SimulatorCore(self.crn, FairPolicy(bias=self.bias), rng=self.rng)
        result = core.run(
            initial,
            max_steps=max_steps,
            quiescence_window=quiescence_window,
            track=track,
            record_every=record_every,
        )
        return FairRunResult(
            final_configuration=result.final_configuration,
            steps=result.steps,
            silent=result.silent,
            converged=result.converged,
            max_output_seen=result.max_output_seen,
            trajectory=result.trajectory,
        )

    def run_on_input(self, x: Sequence[int], **kwargs) -> FairRunResult:
        """Run from the CRN's initial configuration for input ``x``."""
        return self.run(self.crn.initial_configuration(x), **kwargs)


def output_producing_bias(crn: CRN, strength: float = 20.0) -> Callable[[Reaction], float]:
    """A bias preferring reactions that increase the output count.

    Used by the adversarial overproduction search: a schedule that greedily
    produces output surfaces the overshoot of non-output-oblivious CRNs
    (e.g. the four-reaction ``max`` CRN of Fig. 1) very quickly.
    """
    output = crn.output_species

    def bias(rxn: Reaction) -> float:
        delta = rxn.net_change(output)
        if delta > 0:
            return strength * delta
        if delta < 0:
            return 1.0 / strength
        return 1.0

    return bias


def output_consuming_bias(crn: CRN, strength: float = 20.0) -> Callable[[Reaction], float]:
    """The opposite bias: prefer reactions that consume the output species."""
    output = crn.output_species

    def bias(rxn: Reaction) -> float:
        delta = rxn.net_change(output)
        if delta < 0:
            return strength * (-delta)
        if delta > 0:
            return 1.0 / strength
        return 1.0

    return bias
