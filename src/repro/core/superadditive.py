"""Superadditivity and monotonicity checks (Section 9 and Observation 2.1).

* Observation 2.1: every obliviously-computable function is nondecreasing.
* Observation 9.1: every function obliviously-computable *without a leader* is
  superadditive.
* Theorem 9.2: for 1D functions, semilinear + superadditive characterizes the
  leaderless obliviously-computable functions.
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterable, List, Optional, Sequence, Tuple


IntPoint = Tuple[int, ...]


def _grid(dimension: int, bound: int) -> Iterable[IntPoint]:
    return itertools.product(range(bound), repeat=dimension)


def is_nondecreasing_upto(
    func: Callable[[Sequence[int]], int], dimension: int, bound: int
) -> bool:
    """Check ``x <= y  =>  f(x) <= f(y)`` for all unit steps within ``[0, bound)^d``."""
    for x in _grid(dimension, bound):
        fx = int(func(x))
        for i in range(dimension):
            step = tuple(v + (1 if j == i else 0) for j, v in enumerate(x))
            if max(step) < bound and int(func(step)) < fx:
                return False
    return True


def find_monotonicity_violation(
    func: Callable[[Sequence[int]], int], dimension: int, bound: int
) -> Optional[Tuple[IntPoint, IntPoint]]:
    """A pair ``(x, y)`` with ``x <= y`` and ``f(x) > f(y)``, or None if none exists in the box."""
    for x in _grid(dimension, bound):
        fx = int(func(x))
        for i in range(dimension):
            step = tuple(v + (1 if j == i else 0) for j, v in enumerate(x))
            if max(step) < bound and int(func(step)) < fx:
                return x, step
    return None


def is_superadditive_upto(
    func: Callable[[Sequence[int]], int], dimension: int, bound: int
) -> bool:
    """Check ``f(x) + f(y) <= f(x + y)`` for all ``x, y`` in ``[0, bound)^d``."""
    points = list(_grid(dimension, bound))
    for x in points:
        fx = int(func(x))
        for y in points:
            total = tuple(a + b for a, b in zip(x, y))
            if fx + int(func(y)) > int(func(total)):
                return False
    return True


def find_superadditivity_violation(
    func: Callable[[Sequence[int]], int], dimension: int, bound: int
) -> Optional[Tuple[IntPoint, IntPoint]]:
    """A pair ``(x, y)`` violating superadditivity, or None if none exists in the box."""
    points = list(_grid(dimension, bound))
    for x in points:
        fx = int(func(x))
        for y in points:
            total = tuple(a + b for a, b in zip(x, y))
            if fx + int(func(y)) > int(func(total)):
                return x, y
    return None


def superadditive_implies_nondecreasing(
    func: Callable[[Sequence[int]], int], dimension: int, bound: int
) -> bool:
    """Sanity helper: a superadditive function (with f(0)=0) is nondecreasing.

    Used by tests to confirm the implication the paper states in the proof of
    Theorem 9.2 (``f(x+1) >= f(x) + f(1) >= f(x)``).
    """
    if not is_superadditive_upto(func, dimension, bound):
        return True  # vacuously: the implication only claims something for superadditive f
    return is_nondecreasing_upto(func, dimension, bound)
