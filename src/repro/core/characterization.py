"""The Theorem 5.2 / 5.4 decision procedure and the construction dispatcher.

:func:`check_obliviously_computable` assembles the pieces of the paper's
characterization into a (partially heuristic, but faithful) decision procedure:

* condition (i) — nondecreasing — is checked on a bounded grid (a violation is
  conclusive non-computability by Observation 2.1);
* condition (ii) — eventually a min of quilt-affine functions — is taken from
  the spec when provided, derived by the Section 7 domain decomposition when a
  semilinear representation is available, or recovered by 1D fitting for
  ``d = 1`` (Theorem 3.1);
* condition (iii) — the recursive condition — is checked by recursing into
  the fixed-input restrictions up to the threshold of condition (ii);
* the negative side (Theorem 5.4) is backed by a bounded search for a
  Lemma 4.1 contradiction witness, which is reported whenever it exists.

:func:`build_crn_for` dispatches to the appropriate construction
(Theorem 3.1 for 1D, Lemma 6.2 in general) after deriving the missing
structure, and returns an output-oblivious CRN that stably computes the
function.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.construction_1d import build_1d_crn
from repro.core.construction_general import build_general_crn
from repro.core.construction_leaderless import build_leaderless_1d_crn
from repro.core.construction_quilt import build_quilt_affine_crn
from repro.core.decomposition import DomainDecomposition, decompose
from repro.core.impossibility import ContradictionWitness, find_contradiction_witness
from repro.core.specs import FunctionSpec
from repro.crn.network import CRN
from repro.quilt.eventually_min import EventuallyMin
from repro.quilt.fitting import fit_eventually_quilt_affine_1d


@dataclass
class CharacterizationVerdict:
    """The outcome of checking Theorem 5.2's conditions for one function."""

    name: str
    obliviously_computable: Optional[bool]
    """True / False when the procedure reached a verdict, None when inconclusive."""

    conclusive: bool
    """Whether the verdict is backed by a complete (bounded-but-sufficient) check."""

    reasons: List[str] = field(default_factory=list)
    eventually_min: Optional[EventuallyMin] = None
    decomposition: Optional[DomainDecomposition] = None
    witness: Optional[ContradictionWitness] = None

    def __bool__(self) -> bool:
        return bool(self.obliviously_computable)

    def describe(self) -> str:
        """A multi-line human-readable report."""
        verdict = {True: "obliviously-computable", False: "NOT obliviously-computable", None: "inconclusive"}
        lines = [f"{self.name}: {verdict[self.obliviously_computable]}"]
        for reason in self.reasons:
            lines.append(f"  - {reason}")
        if self.witness is not None:
            lines.append(f"  - Lemma 4.1 witness: {self.witness.describe()}")
        return "\n".join(lines)


def _check_1d(spec: FunctionSpec, monotonicity_bound: int) -> CharacterizationVerdict:
    reasons: List[str] = []
    try:
        structure = fit_eventually_quilt_affine_1d(lambda x: spec((x,)))
    except ValueError as error:
        reasons.append(f"1D fitting failed: {error}")
        return CharacterizationVerdict(
            name=spec.name, obliviously_computable=None, conclusive=False, reasons=reasons
        )
    reasons.append(
        "Theorem 3.1: semilinear nondecreasing 1D functions are obliviously-computable "
        f"(eventually quilt-affine with start={structure.start}, period={structure.period})"
    )
    eventually_min = EventuallyMin(
        [structure.to_quilt_affine()], (structure.start,), name=f"{spec.name}-eventual"
    )
    return CharacterizationVerdict(
        name=spec.name,
        obliviously_computable=True,
        conclusive=True,
        reasons=reasons,
        eventually_min=eventually_min,
    )


def check_obliviously_computable(
    spec: FunctionSpec,
    monotonicity_bound: int = 8,
    witness_terms: int = 5,
    recursion_depth: int = 0,
) -> CharacterizationVerdict:
    """Decide (as far as the bounded checks allow) whether ``spec`` satisfies Theorem 5.2."""
    reasons: List[str] = []

    if spec.dimension == 0:
        return CharacterizationVerdict(
            name=spec.name,
            obliviously_computable=True,
            conclusive=True,
            reasons=["a constant (0-input) function is trivially obliviously-computable"],
        )

    # Condition (i): nondecreasing (Observation 2.1).
    if not spec.is_nondecreasing_upto(monotonicity_bound):
        reasons.append(
            "condition (i) fails: the function is not nondecreasing "
            "(Observation 2.1 rules out oblivious computation)"
        )
        return CharacterizationVerdict(
            name=spec.name, obliviously_computable=False, conclusive=True, reasons=reasons
        )
    reasons.append(f"condition (i) holds on the grid [0, {monotonicity_bound})^d")

    if spec.dimension == 1:
        verdict = _check_1d(spec, monotonicity_bound)
        verdict.reasons = reasons + verdict.reasons
        return verdict

    # Condition (ii): eventually a minimum of quilt-affine functions.
    eventually_min = spec.eventually_min
    decomposition: Optional[DomainDecomposition] = None
    if eventually_min is None and spec.semilinear is not None:
        decomposition = decompose(spec)
        if decomposition.succeeded():
            eventually_min = decomposition.eventually_min
            reasons.append(
                "condition (ii): the Section 7 decomposition produced "
                f"{len(eventually_min.pieces)} quilt-affine pieces with threshold "
                f"{eventually_min.threshold}"
            )
        else:
            reasons.append(f"condition (ii) check failed: {decomposition.failure_reason}")
    elif eventually_min is not None:
        if eventually_min.agrees_with(spec.func):
            reasons.append("condition (ii): the provided eventually-min representation is consistent")
        else:
            reasons.append(
                "the provided eventually-min representation disagrees with the function; ignoring it"
            )
            eventually_min = None

    if eventually_min is None:
        # Negative characterization (Theorem 5.4): look for a contradiction witness.
        witness = find_contradiction_witness(
            spec.func, spec.dimension, terms=witness_terms
        )
        if witness is not None:
            reasons.append(
                "Theorem 5.4: a Lemma 4.1 contradiction sequence exists, so the function "
                "is not obliviously-computable"
            )
            return CharacterizationVerdict(
                name=spec.name,
                obliviously_computable=False,
                conclusive=True,
                reasons=reasons,
                decomposition=decomposition,
                witness=witness,
            )
        reasons.append(
            "no eventually-min representation could be established and no contradiction "
            "witness was found within the search bounds"
        )
        return CharacterizationVerdict(
            name=spec.name,
            obliviously_computable=None,
            conclusive=False,
            reasons=reasons,
            decomposition=decomposition,
        )

    # Condition (iii): recursive restrictions up to the threshold.
    threshold = max(eventually_min.threshold) if eventually_min.threshold else 0
    for index in range(spec.dimension):
        for value in range(threshold):
            restriction = spec.restriction(index, value)
            sub_verdict = check_obliviously_computable(
                restriction,
                monotonicity_bound=monotonicity_bound,
                witness_terms=witness_terms,
                recursion_depth=recursion_depth + 1,
            )
            if sub_verdict.obliviously_computable is False:
                reasons.append(
                    f"condition (iii) fails: restriction x{index + 1}={value} is not "
                    "obliviously-computable"
                )
                return CharacterizationVerdict(
                    name=spec.name,
                    obliviously_computable=False,
                    conclusive=sub_verdict.conclusive,
                    reasons=reasons,
                    eventually_min=eventually_min,
                    decomposition=decomposition,
                )
            if sub_verdict.obliviously_computable is None:
                reasons.append(
                    f"condition (iii) is inconclusive for restriction x{index + 1}={value}"
                )
                return CharacterizationVerdict(
                    name=spec.name,
                    obliviously_computable=None,
                    conclusive=False,
                    reasons=reasons,
                    eventually_min=eventually_min,
                    decomposition=decomposition,
                )
    if threshold > 0:
        reasons.append(
            f"condition (iii) holds: all {spec.dimension * threshold} fixed-input "
            "restrictions below the threshold are obliviously-computable"
        )
    else:
        reasons.append("condition (iii) is vacuous (threshold 0)")

    return CharacterizationVerdict(
        name=spec.name,
        obliviously_computable=True,
        conclusive=True,
        reasons=reasons,
        eventually_min=eventually_min,
        decomposition=decomposition,
    )


CONSTRUCTION_STRATEGIES = ("auto", "known", "1d", "leaderless", "quilt", "general")


def _build_general(spec: FunctionSpec, name: str) -> CRN:
    """The Lemma 6.2 path, deriving the eventually-min structure when missing."""
    working = spec
    if working.dimension >= 2 and working.eventually_min is None:
        if working.semilinear is None:
            raise ValueError(
                f"{spec.name}: building the general construction requires either an "
                "eventually-min representation or a semilinear representation to decompose"
            )
        decomposition = decompose(working)
        if not decomposition.succeeded():
            raise ValueError(
                f"{spec.name}: decomposition failed ({decomposition.failure_reason}); "
                "the function is likely not obliviously-computable"
            )
        working = working.with_eventually_min(decomposition.eventually_min)
    return build_general_crn(working, name=name or spec.name)


def build_crn_for(
    spec: FunctionSpec,
    name: str = "",
    prefer_known: bool = True,
    strategy: str = "auto",
) -> CRN:
    """Build an output-oblivious CRN stably computing ``spec``.

    ``strategy`` selects the construction:

    * ``"auto"`` (default) — the hand-written CRN from the paper if present
      (and ``prefer_known``), the Theorem 3.1 construction for 1D functions,
      and the Lemma 6.2 general construction otherwise (deriving the
      eventually-min representation by decomposition when necessary);
    * ``"known"`` — the hand-written CRN, erroring when the spec has none;
    * ``"1d"`` — Theorem 3.1 (requires ``dimension == 1``);
    * ``"leaderless"`` — Theorem 9.2 (requires ``dimension == 1`` and a
      superadditive function);
    * ``"quilt"`` — Lemma 6.1 (requires an eventually-min representation with
      a single quilt-affine piece that equals the function everywhere);
    * ``"general"`` — Lemma 6.2 directly, skipping the known-CRN shortcut.
    """
    if strategy not in CONSTRUCTION_STRATEGIES:
        raise ValueError(
            f"unknown construction strategy {strategy!r}; "
            f"expected one of {CONSTRUCTION_STRATEGIES}"
        )

    if strategy == "known":
        if spec.known_crn is None:
            raise ValueError(f"{spec.name}: the spec carries no hand-written CRN")
        return spec.known_crn
    if strategy == "1d":
        if spec.dimension != 1:
            raise ValueError(
                f"{spec.name}: the Theorem 3.1 construction is 1D only "
                f"(dimension is {spec.dimension})"
            )
        return build_1d_crn(lambda t: spec((t,)), name=name or spec.name)
    if strategy == "leaderless":
        if spec.dimension != 1:
            raise ValueError(
                f"{spec.name}: the Theorem 9.2 leaderless construction is 1D only "
                f"(dimension is {spec.dimension})"
            )
        return build_leaderless_1d_crn(lambda t: spec((t,)), name=name or spec.name)
    if strategy == "quilt":
        if spec.eventually_min is None or len(spec.eventually_min.pieces) != 1:
            raise ValueError(
                f"{spec.name}: the Lemma 6.1 construction needs an eventually-min "
                "representation with exactly one quilt-affine piece "
                "(use strategy='general' for a genuine min of several pieces)"
            )
        return build_quilt_affine_crn(
            spec.eventually_min.pieces[0], name=name or spec.name
        )
    if strategy == "general":
        return _build_general(spec, name)

    # strategy == "auto" — the known-CRN shortcut runs first (even for
    # dimension-0 specs that carry one, matching the pre-strategy behaviour).
    if prefer_known and spec.known_crn is not None:
        return spec.known_crn
    if spec.dimension == 0:
        raise ValueError("use a 1-input constant function spec to build a constant CRN")
    if spec.dimension == 1:
        return build_1d_crn(lambda t: spec((t,)), name=name or spec.name)
    return _build_general(spec, name)
