"""Run-provenance manifests: what code, seed, and engine produced a result.

The bench-regression gate and the content-addressed cache both depend on
knowing *exactly* which code produced a row; this module packages that
context into one JSON-serializable manifest attached to campaign output
directories (``provenance.json``), traced runs (the trace file's ``meta``
record), and the server's ``/v1/stats`` payload.

Everything here is derived, never authoritative: the cache key
(:func:`repro.lab.cache.cell_cache_key`) remains the single source of truth
for replay identity — the manifest exists so a human (or a dashboard) can
read that identity without recomputing hashes.
"""

from __future__ import annotations

import platform
import sys
import time
from typing import Any, Dict, Iterable, Optional

#: Bump on any backwards-incompatible change to the manifest shape.
PROVENANCE_SCHEMA = "repro-provenance-v1"


def run_manifest(
    engine: Optional[str] = None,
    config: Optional[Any] = None,
    spec_fingerprints: Optional[Dict[str, str]] = None,
    engines: Optional[Iterable[str]] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Build a provenance manifest for one run/campaign/server instance.

    ``config`` may be a :class:`repro.api.config.RunConfig`; its
    ``cache_key()`` (the string hashed into every cell cache address) is
    embedded verbatim.  Imports are deferred so this module stays importable
    from anywhere in the package without cycles.
    """
    from repro import __version__
    from repro.lab.cache import CODE_SALT

    manifest: Dict[str, Any] = {
        "schema": PROVENANCE_SCHEMA,
        "version": __version__,
        "code_salt": CODE_SALT,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "created_unix": round(time.time(), 3),
    }
    if engine is not None:
        manifest["engine"] = str(engine)
    if engines is not None:
        manifest["engines"] = sorted(str(name) for name in engines)
    if config is not None:
        cache_key = getattr(config, "cache_key", None)
        manifest["config_cache_key"] = cache_key() if callable(cache_key) else str(cache_key)
        to_json = getattr(config, "to_json_dict", None)
        if callable(to_json):
            manifest["config"] = to_json()
    if spec_fingerprints:
        manifest["spec_fingerprints"] = dict(sorted(spec_fingerprints.items()))
    if extra:
        manifest.update(extra)
    return manifest
