"""Vectorized batch simulation engine: many trajectories per numpy step.

The scalar simulators (:mod:`repro.sim.gillespie`, :mod:`repro.sim.fair`)
advance one trajectory at a time through the step loop of
:mod:`repro.sim.kernel`.  One trajectory at a time is ideal for adversarial
schedules and trajectory inspection, but kinetic benchmarks and the
repeated-run evidence gathered by :mod:`repro.verify.stable` want many
independent trajectories, which is this module's job.

This module trades the sparse dict representation for a dense one:

* :class:`CompiledCRN` compiles a :class:`~repro.crn.network.CRN` once into
  reactant / product / net stoichiometry matrices (R x S integer arrays over a
  fixed species ordering) plus the rate vector, output-species index,
  per-reaction sparse term lists, and the reaction dependency graph.  It is
  the single IR shared with the scalar kernel (:mod:`repro.sim.kernel`).
* :class:`BatchGillespieEngine` advances ``B`` independent Gillespie
  trajectories simultaneously: propensities are computed as a ``(B, R)``
  matrix using binomial-coefficient mass-action kinetics, exponential waiting
  times and reaction choices are sampled per row, and finished or silent rows
  are masked out of subsequent steps.
* :class:`BatchFairEngine` is the rate-independent counterpart: each row fires
  a uniformly random (or statically biased) applicable reaction, with the same
  per-row quiescence-window convergence detection as
  :class:`~repro.sim.fair.FairScheduler`.
* :class:`BatchTauLeapEngine` compounds the batch layout with tau-leaping:
  every active row advances one Cao–Gillespie–Petzold leap per round (batched
  Poisson firing counts, per-trial rejection/tau-halving, per-trial exact
  fallback under the shared ``n_critical`` rule of :mod:`repro.sim.tau`).

See ``DESIGN.md`` for the architecture and the seeding / reproducibility
policy, ``tests/test_engine.py`` for the scalar-vs-vectorized equivalence
suite, and ``tests/test_kernel.py`` for the kernel-vs-legacy scalar suite.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

import numpy as np

from repro.crn.configuration import Configuration
from repro.crn.species import Species
from repro.obs.stats import RunStats
from repro.obs.trace import get_tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (network imports us lazily)
    from repro.crn.network import CRN
    from repro.crn.reaction import Reaction


class CompiledCRN:
    """A dense, numpy-ready compilation of a :class:`~repro.crn.network.CRN`.

    The compilation fixes the species ordering (sorted by name, matching
    ``CRN.species()``) and materializes:

    ``reactants`` / ``products`` / ``net``
        ``(R, S)`` integer stoichiometry matrices; ``net = products - reactants``.
    ``rates``
        ``(R,)`` float vector of mass-action rate constants.
    ``output_index``
        Column index of the designated output species.
    ``rate_list``
        The rate constants as plain python floats (scalar-kernel hot loop).
    ``reactant_terms``
        Per-reaction sparse ``(species_index, coefficient)`` reactant lists, in
        each reaction's own ``reactants.counts`` iteration order so the scalar
        kernel reproduces :meth:`repro.crn.reaction.Reaction.propensity`
        bit for bit (float multiplication is not associative).
    ``net_terms``
        Per-reaction sparse ``(species_index, delta)`` net-change lists; firing
        a reaction is ``counts[s] += delta`` over its terms.
    ``dependency_graph``
        Gibson–Bruck-style reaction dependency graph: entry ``j`` lists the
        reactions whose reactant multiset shares a species with the species
        *changed* by reaction ``j`` (the net-change support).  After firing
        ``j``, only those propensities / applicability flags can change, so the
        scalar kernel recomputes exactly that set.  A catalytic no-op reaction
        (empty net change) has no dependents — not even itself.

    This is the single IR shared by the scalar kernel
    (:mod:`repro.sim.kernel`) and the vectorized batch engines below.
    Compile once per network and reuse: :meth:`repro.crn.network.CRN.compiled`
    caches the instance on the CRN.
    """

    def __init__(self, crn: "CRN") -> None:
        self.crn = crn
        self.species: Tuple[Species, ...] = crn.species()
        self.index: Dict[Species, int] = {sp: i for i, sp in enumerate(self.species)}
        n_reactions = len(crn.reactions)
        n_species = len(self.species)
        self.reactants = np.zeros((n_reactions, n_species), dtype=np.int64)
        self.products = np.zeros((n_reactions, n_species), dtype=np.int64)
        for r, rxn in enumerate(crn.reactions):
            for sp, count in rxn.reactants.counts.items():
                self.reactants[r, self.index[sp]] = count
            for sp, count in rxn.products.counts.items():
                self.products[r, self.index[sp]] = count
        self.net = self.products - self.reactants
        self.rates = np.array([rxn.rate for rxn in crn.reactions], dtype=np.float64)
        self.rate_list: Tuple[float, ...] = tuple(rxn.rate for rxn in crn.reactions)
        self.output_index = self.index[crn.output_species]
        # Per-reaction sparse term lists.  ``reactant_terms`` preserves the
        # reaction's own dict order (the order Reaction.propensity multiplies
        # in); ``_terms`` is the same content sorted by species index, used by
        # the batch engines, which is much cheaper than broadcasting full
        # (B, R, S) intermediates.
        self.reactant_terms: Tuple[Tuple[Tuple[int, int], ...], ...] = tuple(
            tuple((self.index[sp], count) for sp, count in rxn.reactants.counts.items())
            for rxn in crn.reactions
        )
        self._terms: List[Tuple[Tuple[int, int], ...]] = [
            tuple(sorted(terms)) for terms in self.reactant_terms
        ]
        self.net_terms: Tuple[Tuple[Tuple[int, int], ...], ...] = tuple(
            tuple(
                (s, int(self.net[r, s])) for s in np.flatnonzero(self.net[r]).tolist()
            )
            for r in range(n_reactions)
        )
        changed = [frozenset(s for s, _ in terms) for terms in self.net_terms]
        needs = [frozenset(s for s, _ in terms) for terms in self.reactant_terms]
        self.dependency_graph: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(r for r in range(n_reactions) if needs[r] & changed[j])
            for j in range(n_reactions)
        )

    # -- shape accessors -----------------------------------------------------

    @property
    def n_species(self) -> int:
        """Number of species columns ``S``."""
        return len(self.species)

    @property
    def n_reactions(self) -> int:
        """Number of reaction rows ``R``."""
        return len(self.crn.reactions)

    # -- encoding / decoding ---------------------------------------------------

    def encode(self, config: Configuration) -> np.ndarray:
        """Encode a sparse configuration as a dense ``(S,)`` count vector."""
        vector = np.zeros(self.n_species, dtype=np.int64)
        for sp, count in config.items():
            try:
                vector[self.index[sp]] = count
            except KeyError:
                raise ValueError(
                    f"species {sp.name!r} does not occur in the compiled network"
                ) from None
        return vector

    def encode_batch(self, config: Configuration, batch: int) -> np.ndarray:
        """Tile one configuration into a ``(batch, S)`` matrix of row copies."""
        if batch < 1:
            raise ValueError(f"batch size must be positive, got {batch}")
        return np.tile(self.encode(config), (batch, 1))

    def decode(self, vector: np.ndarray) -> Configuration:
        """Decode one dense ``(S,)`` count vector back into a configuration."""
        return Configuration(
            {sp: int(vector[i]) for sp, i in self.index.items() if vector[i] > 0}
        )

    # -- vectorized kinetics ---------------------------------------------------

    def propensities(self, counts: np.ndarray) -> np.ndarray:
        """Mass-action propensities as a ``(B, R)`` matrix.

        ``counts`` is a ``(B, S)`` batch of configurations.  Row ``b``, column
        ``r`` is ``rate_r * prod_s C(counts[b, s], reactants[r, s])`` — the
        same binomial-coefficient form as
        :meth:`repro.crn.reaction.Reaction.propensity`, zero whenever a
        reactant is under-supplied.
        """
        counts = np.atleast_2d(counts)
        out = np.broadcast_to(self.rates, (counts.shape[0], self.n_reactions)).copy()
        for r, terms in enumerate(self._terms):
            for s, coefficient in terms:
                n = counts[:, s].astype(np.float64)
                if coefficient == 1:
                    out[:, r] *= n
                else:
                    # Falling-factorial form of C(n, k); hits an exact zero
                    # factor whenever n < k, so no clamping is needed.
                    for j in range(coefficient):
                        out[:, r] *= (n - j) / (j + 1)
        return out

    def applicable(self, counts: np.ndarray) -> np.ndarray:
        """Boolean ``(B, R)`` applicability matrix (all reactants present)."""
        counts = np.atleast_2d(counts)
        out = np.ones((counts.shape[0], self.n_reactions), dtype=bool)
        for r, terms in enumerate(self._terms):
            for s, coefficient in terms:
                out[:, r] &= counts[:, s] >= coefficient
        return out

    def __repr__(self) -> str:
        return (
            f"CompiledCRN({self.crn.name or '(unnamed)'}, "
            f"R={self.n_reactions}, S={self.n_species})"
        )


@dataclass
class BatchRunResult:
    """Result of advancing a batch of ``B`` independent trajectories.

    All per-trajectory fields are numpy arrays of length ``B``; ``counts`` is
    the ``(B, S)`` matrix of final configurations in the compiled species
    ordering.  ``times`` is only populated by the clock-bearing engines
    (Gillespie and tau-leap) and ``converged`` only by the engines with a
    quiescence detector (fair and tau-leap); the fields are all-False /
    ``None`` otherwise.  ``stats`` is the uniform whole-batch
    :class:`~repro.obs.stats.RunStats` block, currently populated by the
    tau-leap engine (``None`` for the single-firing engines, whose counters
    are derivable from ``steps``).
    """

    compiled: CompiledCRN
    counts: np.ndarray
    steps: np.ndarray
    silent: np.ndarray
    converged: np.ndarray
    max_output_seen: np.ndarray
    times: Optional[np.ndarray] = None
    stats: Optional[RunStats] = None

    def __len__(self) -> int:
        return self.counts.shape[0]

    @property
    def batch(self) -> int:
        """The number of trajectories ``B``."""
        return self.counts.shape[0]

    def output_counts(self) -> np.ndarray:
        """Final output-species counts, one per trajectory."""
        return self.counts[:, self.compiled.output_index]

    def configuration(self, row: int) -> Configuration:
        """The final configuration of trajectory ``row`` as a sparse object."""
        return self.compiled.decode(self.counts[row])

    def configurations(self) -> List[Configuration]:
        """All final configurations as sparse objects."""
        return [self.configuration(row) for row in range(self.batch)]

    def all_silent_or_converged(self) -> bool:
        """True if every trajectory ended in silence or detected quiescence."""
        return bool(np.all(self.silent | self.converged))

    def total_steps(self) -> int:
        """Total reaction events fired across the whole batch."""
        return int(self.steps.sum())


class _BatchEngineBase:
    """Shared compilation / seeding plumbing for the batch engines."""

    def __init__(
        self,
        crn: "CRN | CompiledCRN",
        seed: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.compiled = crn if isinstance(crn, CompiledCRN) else CompiledCRN(crn)
        self.crn = self.compiled.crn
        if rng is not None and seed is not None:
            raise ValueError("pass either seed or rng, not both")
        self.rng = rng if rng is not None else np.random.default_rng(seed)

    def _initial_counts(self, initial: Configuration, batch: int) -> np.ndarray:
        return self.compiled.encode_batch(initial, batch)


class BatchGillespieEngine(_BatchEngineBase):
    """Vectorized Gillespie direct method over ``B`` independent trajectories.

    Statistically equivalent to running :class:`~repro.sim.gillespie.GillespieSimulator`
    ``B`` times (same CTMC, different random streams); the equivalence suite in
    ``tests/test_engine.py`` checks identical stable outputs and matching step
    statistics against the scalar oracle.

    Parameters
    ----------
    crn:
        The network to simulate, or an already-compiled :class:`CompiledCRN`.
    seed / rng:
        Either an integer seed (fed to :func:`numpy.random.default_rng`) or an
        explicit generator.  Mutually exclusive.
    """

    def run(
        self,
        initial: Configuration,
        batch: int = 1,
        max_steps: int = 1_000_000,
        max_time: float = float("inf"),
    ) -> BatchRunResult:
        """Advance ``batch`` trajectories from ``initial`` until each is done.

        A trajectory finishes when it falls silent (total propensity zero),
        fires ``max_steps`` reactions, or passes ``max_time`` simulated time
        (its clock is then clamped to ``max_time``, mirroring the scalar
        simulator).
        """
        compiled = self.compiled
        counts = self._initial_counts(initial, batch)
        steps = np.zeros(batch, dtype=np.int64)
        times = np.zeros(batch, dtype=np.float64)
        silent = np.zeros(batch, dtype=bool)
        max_output = counts[:, compiled.output_index].copy()
        # A network with no reactions is silent everywhere (the scalar
        # simulator's behaviour); the selection math below assumes R >= 1.
        active = np.full(batch, compiled.n_reactions > 0)
        silent |= ~active

        while True:
            rows = np.flatnonzero(active)
            if rows.size == 0:
                break
            cumulative = np.cumsum(compiled.propensities(counts[rows]), axis=1)
            # Totals are read off the cumulative sum so the inverse-CDF search
            # below can never run past the last column (a separate sum() can
            # disagree with cumsum by an ulp).
            totals = cumulative[:, -1]
            alive = totals > 0.0
            newly_silent = rows[~alive]
            silent[newly_silent] = True
            active[newly_silent] = False
            rows = rows[alive]
            if rows.size == 0:
                continue
            cumulative = cumulative[alive]
            totals = totals[alive]

            waits = self.rng.standard_exponential(rows.size) / totals
            new_times = times[rows] + waits
            overtime = new_times > max_time
            if overtime.any():
                timed_out = rows[overtime]
                times[timed_out] = max_time
                active[timed_out] = False
                rows = rows[~overtime]
                if rows.size == 0:
                    continue
                cumulative = cumulative[~overtime]
                totals = totals[~overtime]
                new_times = new_times[~overtime]

            # Picks are drawn from (0, total]; counting the cumulative entries
            # strictly below the pick therefore always lands on a reaction
            # with positive propensity (never a leading zero column, never
            # past the end), mirroring the scalar simulator's guard.
            picks = (1.0 - self.rng.random(rows.size)) * totals
            chosen = (cumulative < picks[:, None]).sum(axis=1)

            counts[rows] += compiled.net[chosen]
            steps[rows] += 1
            times[rows] = new_times
            max_output[rows] = np.maximum(
                max_output[rows], counts[rows, compiled.output_index]
            )
            exhausted = rows[steps[rows] >= max_steps]
            active[exhausted] = False

        return BatchRunResult(
            compiled=compiled,
            counts=counts,
            steps=steps,
            silent=silent,
            converged=np.zeros(batch, dtype=bool),
            max_output_seen=max_output,
            times=times,
        )

    def run_on_input(self, x: Sequence[int], batch: int = 1, **kwargs) -> BatchRunResult:
        """Advance ``batch`` trajectories from the initial configuration for ``x``."""
        return self.run(self.crn.initial_configuration(x), batch=batch, **kwargs)


class BatchTauLeapEngine(_BatchEngineBase):
    """Vectorized tau-leaping: the whole batch advances one *leap* per round.

    This engine compounds the two biggest speedups in the repo: the batch
    engines' dense numpy kinetics (all trials advance per step) and the
    tau-leap scheduler-iteration collapse (many firings per step).  Each
    round, every active trial gets its own Cao–Gillespie–Petzold tau bound
    (via the shared helpers in :mod:`repro.sim.tau` — the *same* bound the
    scalar ``engine="tau"`` computes), fires a batched Poisson count per
    reaction, and applies the aggregate net change.

    The scalar stepper's safety rails carry over per trial:

    * **negative-population rejection** — a trial whose sampled leap would
      drive any species negative re-samples with its tau halved (other
      trials keep their accepted leaps); after ``max_rejections`` halvings
      it falls back to exact stepping for this round.
    * **exact fallback** (the shared ``n_critical`` rule) — trials whose
      leap would expect fewer than ``n_critical`` firings drop out of the
      leap and instead run a burst of up to ``exact_burst`` single-firing
      exact SSA steps (the :class:`BatchGillespieEngine` inner loop over
      just those rows), while the rest of the batch keeps leaping.  Small
      populations therefore degrade gracefully to the exact batch engine.

    Sampling uses the engine's ``numpy.random.Generator`` (batched
    ``rng.poisson`` / ``standard_exponential``), a stream unrelated to both
    the scalar engines' ``random.Random`` and the hand-rolled scalar Poisson
    sampler — runs are *statistically* (not bit-for-bit) equivalent to the
    exact engines, which ``tests/test_statistical_equivalence.py`` gates
    with two-sample KS tests exactly as it does for ``engine="tau"``.

    Parameters
    ----------
    crn:
        The network to simulate, or an already-compiled :class:`CompiledCRN`.
    seed / rng:
        Integer seed or explicit :class:`numpy.random.Generator` (exclusive).
    epsilon:
        The CGP relative-drift error knob (same default and validation as
        :class:`~repro.sim.kernel.TauLeapPolicy`).
    n_critical / exact_burst / max_rejections:
        The scalar policy's safety-rail knobs, applied per trial.
    """

    def __init__(
        self,
        crn: "CRN | CompiledCRN",
        seed: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
        epsilon: float = 0.03,
        n_critical: float = 10.0,
        exact_burst: int = 100,
        max_rejections: int = 30,
    ) -> None:
        from repro.api.config import validate_epsilon
        from repro.sim.tau import BatchTauSelector, build_g_candidates

        super().__init__(crn, seed=seed, rng=rng)
        epsilon = validate_epsilon(epsilon)
        if n_critical <= 0:
            raise ValueError(f"n_critical must be positive, got {n_critical!r}")
        if exact_burst < 1:
            raise ValueError(f"exact_burst must be >= 1, got {exact_burst!r}")
        if max_rejections < 1:
            raise ValueError(f"max_rejections must be >= 1, got {max_rejections!r}")
        self.epsilon = float(epsilon)
        self.n_critical = float(n_critical)
        self.exact_burst = int(exact_burst)
        self.max_rejections = int(max_rejections)
        # Precompiled tau-selection data (shared math with the scalar stepper).
        self._selector = BatchTauSelector(
            build_g_candidates(self.compiled.reactant_terms),
            self.compiled.net_terms,
            self.compiled.n_species,
        )

    def run(
        self,
        initial: Configuration,
        batch: int = 1,
        max_steps: int = 1_000_000,
        max_time: float = float("inf"),
        quiescence_window: int = 0,
    ) -> BatchRunResult:
        """Advance ``batch`` trajectories until silence, quiescence, or a bound.

        Semantics mirror the scalar tau engine run through
        :class:`~repro.sim.kernel.SimulatorCore`: quiescence is detected at
        *leap* granularity (a leap that fires ``k`` events while the output
        is unchanged advances the window counter by ``k``), a trial may
        overshoot ``max_steps`` by at most one leap, and a trial whose clock
        would cross ``max_time`` has its final leap clamped to land exactly
        on it.
        """
        from repro.sim.tau import critical_mask

        t0_unix = _time.time()
        t0 = _time.perf_counter()
        compiled = self.compiled
        counts = self._initial_counts(initial, batch)
        steps = np.zeros(batch, dtype=np.int64)
        times = np.zeros(batch, dtype=np.float64)
        silent = np.zeros(batch, dtype=bool)
        converged = np.zeros(batch, dtype=bool)
        output_index = compiled.output_index
        max_output = counts[:, output_index].copy()
        last_output = counts[:, output_index].copy()
        unchanged_for = np.zeros(batch, dtype=np.int64)
        active = np.full(batch, compiled.n_reactions > 0)
        silent |= ~active
        stats = RunStats()
        net_int = compiled.net.astype(np.int64)

        while True:
            rows = np.flatnonzero(active)
            if rows.size == 0:
                break
            stats.selections += 1  # one leap round
            props = compiled.propensities(counts[rows])
            stats.propensity_ops += props.size
            totals = props.sum(axis=1)
            alive = totals > 0.0
            newly_silent = rows[~alive]
            silent[newly_silent] = True
            active[newly_silent] = False
            rows = rows[alive]
            if rows.size == 0:
                continue
            props = props[alive]
            totals = totals[alive]

            tau = self._selector.select(props, counts[rows], self.epsilon)
            # Purely catalytic rows (no reactant species ever changes) get an
            # infinite bound; cap the batch so step budgets stay meaningful,
            # mirroring the scalar stepper's 1000-expected-firings cap.
            unbounded = np.isinf(tau)
            if unbounded.any():
                tau[unbounded] = 1000.0 / totals[unbounded]
            crit = critical_mask(tau, totals, self.n_critical)

            # Clamp leaping rows that would cross max_time; a non-positive
            # clamped leap means the row is already at the horizon.
            if np.isfinite(max_time):
                over = ~crit & (times[rows] + tau > max_time)
                if over.any():
                    tau = np.where(over, max_time - times[rows], tau)
                    timed_out = over & (tau <= 0.0)
                    if timed_out.any():
                        expired = rows[timed_out]
                        times[expired] = max_time
                        active[expired] = False
                        keep = ~timed_out
                        rows = rows[keep]
                        props = props[keep]
                        totals = totals[keep]
                        tau = tau[keep]
                        crit = crit[keep]
                        if rows.size == 0:
                            continue

            events = np.zeros(rows.size, dtype=np.int64)

            # --- the leap: batched Poisson counts with per-trial rejection ---
            pending = np.flatnonzero(~crit)
            for _ in range(self.max_rejections):
                if pending.size == 0:
                    break
                lam = props[pending] * tau[pending, None]
                firings = self.rng.poisson(lam)
                stats.rng_draws += lam.size
                delta = firings @ net_int
                proposed = counts[rows[pending]] + delta
                ok = (proposed >= 0).all(axis=1)
                accepted = pending[ok]
                if accepted.size:
                    counts[rows[accepted]] = proposed[ok]
                    times[rows[accepted]] += tau[accepted]
                    events[accepted] = firings[ok].sum(axis=1)
                pending = pending[~ok]
                if pending.size == 0:
                    break
                tau[pending] /= 2.0
                now_critical = critical_mask(
                    tau[pending], totals[pending], self.n_critical
                )
                crit[pending[now_critical]] = True
                pending = pending[~now_critical]
            # Rows still rejecting after max_rejections halvings fall back.
            crit[pending] = True

            # --- exact fallback: single-firing SSA bursts for critical rows ---
            burst = np.flatnonzero(crit)
            if burst.size:
                burst_events, burst_silent, burst_timed = self._exact_burst_rows(
                    counts, times, rows[burst], max_time, stats
                )
                events[burst] = burst_events
                silent[rows[burst[burst_silent]]] = True
                active[rows[burst[burst_silent]]] = False
                active[rows[burst[burst_timed]]] = False

            # --- per-round bookkeeping, at leap granularity like the scalar ---
            steps[rows] += events
            current = counts[rows, output_index]
            max_output[rows] = np.maximum(max_output[rows], current)
            same = current == last_output[rows]
            unchanged_for[rows] = np.where(same, unchanged_for[rows] + events, 0)
            last_output[rows] = current
            if quiescence_window:
                quiescent = rows[unchanged_for[rows] >= quiescence_window]
                converged[quiescent] = True
                active[quiescent] = False
            active[rows[steps[rows] >= max_steps]] = False
            if np.isfinite(max_time):
                active[rows[times[rows] >= max_time]] = False

        stats.events = int(steps.sum())
        stats.wall_s = _time.perf_counter() - t0
        tracer = get_tracer()
        if tracer.enabled:
            tracer.emit_span(
                "engine.batch_tau.run",
                t0_unix,
                stats.wall_s,
                batch=batch,
                events=stats.events,
                selections=stats.selections,
            )
        return BatchRunResult(
            compiled=compiled,
            counts=counts,
            steps=steps,
            silent=silent,
            converged=converged,
            max_output_seen=max_output,
            times=times,
            stats=stats,
        )

    def _exact_burst_rows(
        self,
        counts: np.ndarray,
        times: np.ndarray,
        sub_rows: np.ndarray,
        max_time: float,
        stats: RunStats,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Up to ``exact_burst`` vectorized exact SSA steps over ``sub_rows``.

        Mutates ``counts`` / ``times`` in place for the rows it advances and
        returns ``(events, went_silent, timed_out)`` aligned to ``sub_rows``.
        This is the :class:`BatchGillespieEngine` inner loop restricted to
        the critical subset: cumulative-propensity inverse-CDF selection, one
        firing per row per iteration.
        """
        compiled = self.compiled
        events = np.zeros(sub_rows.size, dtype=np.int64)
        went_silent = np.zeros(sub_rows.size, dtype=bool)
        timed_out = np.zeros(sub_rows.size, dtype=bool)
        live = np.ones(sub_rows.size, dtype=bool)
        for _ in range(self.exact_burst):
            idx = np.flatnonzero(live)
            if idx.size == 0:
                break
            rows = sub_rows[idx]
            cumulative = np.cumsum(compiled.propensities(counts[rows]), axis=1)
            stats.propensity_ops += cumulative.size
            totals = cumulative[:, -1]
            dead = totals <= 0.0
            if dead.any():
                went_silent[idx[dead]] = True
                live[idx[dead]] = False
                idx = idx[~dead]
                rows = sub_rows[idx]
                if rows.size == 0:
                    break
                cumulative = cumulative[~dead]
                totals = totals[~dead]
            waits = self.rng.standard_exponential(rows.size) / totals
            stats.rng_draws += rows.size
            new_times = times[rows] + waits
            over = new_times > max_time
            if over.any():
                times[rows[over]] = max_time
                timed_out[idx[over]] = True
                live[idx[over]] = False
                idx = idx[~over]
                rows = sub_rows[idx]
                if rows.size == 0:
                    continue
                cumulative = cumulative[~over]
                totals = totals[~over]
                new_times = new_times[~over]
            picks = (1.0 - self.rng.random(rows.size)) * totals
            stats.rng_draws += rows.size
            chosen = (cumulative < picks[:, None]).sum(axis=1)
            counts[rows] += compiled.net[chosen]
            times[rows] = new_times
            events[idx] += 1
        return events, went_silent, timed_out

    def run_on_input(self, x: Sequence[int], batch: int = 1, **kwargs) -> BatchRunResult:
        """Advance ``batch`` trajectories from the initial configuration for ``x``."""
        return self.run(self.crn.initial_configuration(x), batch=batch, **kwargs)


class BatchFairEngine(_BatchEngineBase):
    """Vectorized fair scheduler: each row fires a random applicable reaction.

    The rate-independent counterpart of :class:`BatchGillespieEngine`, matching
    the semantics of :class:`~repro.sim.fair.FairScheduler`: uniform choice
    among the applicable reactions (or a static per-reaction bias), optional
    per-row quiescence-window convergence detection for networks that never
    fall silent.

    Parameters
    ----------
    crn:
        The network to run, or an already-compiled :class:`CompiledCRN`.
    seed / rng:
        Integer seed or explicit :class:`numpy.random.Generator` (exclusive).
    bias:
        Optional weighting function mapping a reaction to a nonnegative
        weight, evaluated once per reaction at construction time (the scalar
        scheduler's biases — e.g. :func:`repro.sim.fair.output_producing_bias`
        — are static per reaction, so this loses no generality).
    """

    def __init__(
        self,
        crn: "CRN | CompiledCRN",
        seed: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
        bias: Optional[Callable[["Reaction"], float]] = None,
    ) -> None:
        super().__init__(crn, seed=seed, rng=rng)
        if bias is None:
            self.weights = np.ones(self.compiled.n_reactions, dtype=np.float64)
        else:
            # Rows whose applicable reactions all get zero weight fall back to
            # the uniform choice inside run(), so no normalization is needed.
            self.weights = np.array(
                [max(float(bias(rxn)), 0.0) for rxn in self.crn.reactions],
                dtype=np.float64,
            )

    def run(
        self,
        initial: Configuration,
        batch: int = 1,
        max_steps: int = 1_000_000,
        quiescence_window: int = 0,
    ) -> BatchRunResult:
        """Advance ``batch`` trajectories until silence, quiescence, or the bound.

        ``quiescence_window`` matches :meth:`repro.sim.fair.FairScheduler.run`:
        if positive, a row stops (``converged``) once its output count has been
        unchanged for that many consecutive steps.
        """
        compiled = self.compiled
        counts = self._initial_counts(initial, batch)
        steps = np.zeros(batch, dtype=np.int64)
        silent = np.zeros(batch, dtype=bool)
        converged = np.zeros(batch, dtype=bool)
        output_index = compiled.output_index
        max_output = counts[:, output_index].copy()
        last_output = counts[:, output_index].copy()
        unchanged_for = np.zeros(batch, dtype=np.int64)
        # As in the Gillespie engine: no reactions means silent everywhere.
        active = np.full(batch, compiled.n_reactions > 0)
        silent |= ~active

        while True:
            rows = np.flatnonzero(active)
            if rows.size == 0:
                break
            applicable = compiled.applicable(counts[rows])
            weighted = applicable * self.weights
            # Rows where the bias zeroes out every applicable reaction fall
            # back to the uniform choice, like the scalar scheduler.
            fallback = ~weighted.any(axis=1) & applicable.any(axis=1)
            if fallback.any():
                weighted[fallback] = applicable[fallback].astype(np.float64)
            cumulative = np.cumsum(weighted, axis=1)
            totals = cumulative[:, -1]
            alive = totals > 0.0
            newly_silent = rows[~alive]
            silent[newly_silent] = True
            active[newly_silent] = False
            rows = rows[alive]
            if rows.size == 0:
                continue
            cumulative = cumulative[alive]
            totals = totals[alive]

            # (0, total] picks against the cumulative weights: never selects a
            # zero-weight (inapplicable) reaction and never runs past the end.
            picks = (1.0 - self.rng.random(rows.size)) * totals
            chosen = (cumulative < picks[:, None]).sum(axis=1)

            counts[rows] += compiled.net[chosen]
            steps[rows] += 1
            current = counts[rows, output_index]
            max_output[rows] = np.maximum(max_output[rows], current)
            same = current == last_output[rows]
            unchanged_for[rows] = np.where(same, unchanged_for[rows] + 1, 0)
            last_output[rows] = current
            if quiescence_window:
                quiescent = rows[unchanged_for[rows] >= quiescence_window]
                converged[quiescent] = True
                active[quiescent] = False
            exhausted = steps[rows] >= max_steps
            active[rows[exhausted]] = False

        return BatchRunResult(
            compiled=compiled,
            counts=counts,
            steps=steps,
            silent=silent,
            converged=converged,
            max_output_seen=max_output,
            times=None,
        )

    def run_on_input(self, x: Sequence[int], batch: int = 1, **kwargs) -> BatchRunResult:
        """Advance ``batch`` trajectories from the initial configuration for ``x``."""
        return self.run(self.crn.initial_configuration(x), batch=batch, **kwargs)
