"""Unit tests for the Gillespie simulator, fair scheduler, and runners."""

import random

import pytest

from repro.crn.network import CRN
from repro.crn.species import species
from repro.functions.catalog import maximum_spec, minimum_spec, double_spec
from repro.sim.fair import FairScheduler, output_consuming_bias, output_producing_bias
from repro.sim.gillespie import GillespieSimulator
from repro.sim.runner import estimate_expected_output, run_many, run_to_convergence, sweep_inputs
from repro.sim.trajectory import Trajectory


X, X1, X2, Y = species("X X1 X2 Y")


class TestGillespie:
    def test_double_runs_to_silence(self):
        crn = double_spec().known_crn
        sim = GillespieSimulator(crn, rng=random.Random(1))
        result = sim.run_on_input((5,))
        assert result.silent
        assert result.output_count(crn) == 10
        assert result.steps == 5
        assert result.final_time > 0

    def test_max_steps_bound(self):
        crn = double_spec().known_crn
        sim = GillespieSimulator(crn, rng=random.Random(1))
        result = sim.run_on_input((100,), max_steps=10)
        assert result.steps == 10 and not result.silent

    def test_trajectory_recording(self):
        crn = double_spec().known_crn
        sim = GillespieSimulator(crn, rng=random.Random(2))
        result = sim.run_on_input((4,), track=[Y])
        assert result.trajectory is not None
        assert result.trajectory.counts_of(Y)[-1] == 8

    def test_stop_when_predicate(self):
        crn = double_spec().known_crn
        sim = GillespieSimulator(crn, rng=random.Random(3))
        result = sim.run_on_input((10,), stop_when=lambda c: c[Y] >= 4)
        assert result.output_count(crn) >= 4
        assert result.steps < 10

    def test_expected_completion_time_finite(self):
        crn = minimum_spec().known_crn
        sim = GillespieSimulator(crn, rng=random.Random(4))
        assert sim.expected_completion_time((5, 5), trials=3) < float("inf")


class TestFairScheduler:
    def test_min_converges_to_correct_output(self):
        crn = minimum_spec().known_crn
        scheduler = FairScheduler(crn, rng=random.Random(5))
        result = scheduler.run_on_input((4, 7))
        assert result.silent
        assert result.output_count(crn) == 4

    def test_max_overshoot_with_producing_bias(self):
        crn = maximum_spec().known_crn
        scheduler = FairScheduler(
            crn, rng=random.Random(6), bias=output_producing_bias(crn)
        )
        result = scheduler.run_on_input((4, 4), quiescence_window=500)
        # The adversarial schedule pushes the output above max(4,4)=4 transiently.
        assert result.max_output_seen > 4

    def test_consuming_bias_limits_overshoot(self):
        crn = maximum_spec().known_crn
        producing = FairScheduler(crn, rng=random.Random(7), bias=output_producing_bias(crn))
        consuming = FairScheduler(crn, rng=random.Random(7), bias=output_consuming_bias(crn))
        high = producing.run_on_input((5, 5), quiescence_window=500).max_output_seen
        low = consuming.run_on_input((5, 5), quiescence_window=500).max_output_seen
        assert high >= low

    def test_quiescence_window_terminates_catalytic_network(self):
        # X + Y -> X + Y + Y would never be quiescent; use a catalytic no-op instead.
        crn = CRN([X1 + X2 >> X1 + X2], (X1, X2), Y)
        scheduler = FairScheduler(crn, rng=random.Random(8))
        result = scheduler.run_on_input((2, 2), quiescence_window=50, max_steps=10_000)
        assert result.converged and not result.silent


class TestRunners:
    def test_run_to_convergence(self):
        crn = minimum_spec().known_crn
        result = run_to_convergence(crn, (3, 9), rng=random.Random(9))
        assert crn.output_count(result.final_configuration) == 3

    def test_run_many_unanimous(self):
        crn = minimum_spec().known_crn
        report = run_many(crn, (2, 5), trials=5, seed=10)
        assert report.output_unanimous
        assert report.output_mode == 2
        assert report.all_silent_or_converged
        assert report.max_overshoot == 0

    def test_estimate_expected_output(self):
        crn = double_spec().known_crn
        assert estimate_expected_output(crn, (6,), trials=5, seed=11) == pytest.approx(12.0)

    def test_sweep_inputs(self):
        crn = minimum_spec().known_crn
        reports = sweep_inputs(crn, [(1, 1), (2, 3)], trials=3, seed=12)
        assert [r.output_mode for r in reports] == [1, 2]


class TestTrajectory:
    def test_record_and_query(self):
        trajectory = Trajectory([Y])
        from repro.crn.configuration import Configuration

        trajectory.record(0.0, 0, Configuration({Y: 0}))
        trajectory.record(1.0, 1, Configuration({Y: 2}))
        assert len(trajectory) == 2
        assert trajectory.counts_of(Y) == [0, 2]
        assert trajectory.max_count_of(Y) == 2
        assert trajectory.final().counts[Y] == 2
        assert trajectory.as_dict()["time"] == [0.0, 1.0]

    def test_untracked_species_rejected(self):
        trajectory = Trajectory([Y])
        with pytest.raises(KeyError):
            trajectory.counts_of(X)
