"""Theorem 3.1: the 1D construction with a leader.

Every semilinear nondecreasing ``f : N -> N`` is eventually quilt-affine
(Fig. 5): there are ``n``, a period ``p``, and periodic finite differences
``δ_0, ..., δ_{p-1}`` such that ``f(x+1) - f(x) = δ_{x mod p}`` for ``x >= n``.
The construction uses a leader that counts the inputs it has consumed —
exactly below ``n`` and modulo ``p`` beyond ``n`` — and releases the correct
finite difference at each step:

    L            ->  f(0) Y + L_0
    L_i + X      ->  [f(i+1) - f(i)] Y + L_{i+1}      (i = 0, ..., n-2)
    L_{n-1} + X  ->  [f(n) - f(n-1)] Y + P_{n mod p}
    P_a + X      ->  δ_a Y + P_{a+1 mod p}
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.crn.network import CRN
from repro.crn.reaction import Reaction
from repro.crn.species import Expression, Species
from repro.quilt.fitting import EventuallyPeriodic1D, fit_eventually_quilt_affine_1d


def build_1d_crn(
    func: Callable[[int], int] | EventuallyPeriodic1D,
    input_name: str = "X",
    output_name: str = "Y",
    leader_name: str = "L",
    prefix: str = "",
    name: str = "",
    max_start: int = 200,
    max_period: int = 36,
) -> CRN:
    """Build the Theorem 3.1 output-oblivious CRN for a 1D semilinear nondecreasing function.

    ``func`` may be either a callable (in which case the eventually-periodic
    structure is recovered by :func:`fit_eventually_quilt_affine_1d`) or an
    already-fitted :class:`EventuallyPeriodic1D`.
    """
    if isinstance(func, EventuallyPeriodic1D):
        structure = func
    else:
        structure = fit_eventually_quilt_affine_1d(
            lambda x: int(func(x)), max_start=max_start, max_period=max_period
        )

    start = structure.start
    period = structure.period
    deltas = structure.deltas
    values = structure.initial_values

    input_species = Species(prefix + input_name if prefix else input_name)
    output = Species(prefix + output_name if prefix else output_name)
    leader = Species(prefix + leader_name if prefix else leader_name)

    counting_states: Dict[int, Species] = {
        i: Species(f"{prefix}L{i}") for i in range(start)
    }
    periodic_states: Dict[int, Species] = {
        a: Species(f"{prefix}P{a}") for a in range(period)
    }

    def state_after(count: int) -> Species:
        """The leader state after consuming ``count`` inputs."""
        if count < start:
            return counting_states[count]
        return periodic_states[count % period]

    reactions: List[Reaction] = []

    # Initial reaction: release f(0) outputs and enter the state for count 0.
    initial_products: Dict[Species, int] = {state_after(0): 1}
    if values[0] > 0:
        initial_products[output] = values[0]
    reactions.append(Reaction(leader, Expression(initial_products), name="init"))

    # Counting phase: exact differences f(i+1) - f(i) for i < start.
    for i in range(start):
        difference = structure.value(i + 1) - structure.value(i)
        if difference < 0:
            raise ValueError("the function is not nondecreasing")
        products: Dict[Species, int] = {state_after(i + 1): 1}
        if difference > 0:
            products[output] = difference
        reactions.append(
            Reaction(
                Expression({counting_states[i]: 1, input_species: 1}),
                Expression(products),
                name=f"count-{i}",
            )
        )

    # Periodic phase: differences δ_a for counts >= start.
    for a in range(period):
        delta = deltas[a]
        if delta < 0:
            raise ValueError("the function is not nondecreasing")
        products = {periodic_states[(a + 1) % period]: 1}
        if delta > 0:
            products[output] = delta
        reactions.append(
            Reaction(
                Expression({periodic_states[a]: 1, input_species: 1}),
                Expression(products),
                name=f"period-{a}",
            )
        )

    return CRN(
        reactions,
        (input_species,),
        output,
        leader=leader,
        name=name or "theorem-3.1",
    )


def construction_size_1d(structure: EventuallyPeriodic1D) -> Dict[str, int]:
    """Species and reaction counts of the Theorem 3.1 construction (Θ(n + p))."""
    return {
        "species": 3 + structure.start + structure.period,
        "reactions": 1 + structure.start + structure.period,
        "start": structure.start,
        "period": structure.period,
    }
