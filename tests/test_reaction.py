"""Unit tests for Reaction semantics, propensities, and parsing."""

import pytest

from repro.crn.configuration import Configuration
from repro.crn.reaction import Reaction, parse_reaction
from repro.crn.species import Species, species


A, B, C, Y = species("A B C Y")


class TestSemantics:
    def test_applicable_requires_all_reactants(self):
        rxn = A + 2 * B >> C
        assert rxn.applicable(Configuration({A: 1, B: 2}))
        assert not rxn.applicable(Configuration({A: 1, B: 1}))

    def test_apply_updates_counts(self):
        rxn = A + B >> 2 * C
        result = rxn.apply(Configuration({A: 2, B: 1}))
        assert (result[A], result[B], result[C]) == (1, 0, 2)

    def test_apply_not_applicable_raises(self):
        rxn = A >> C
        with pytest.raises(ValueError):
            rxn.apply(Configuration({B: 1}))

    def test_net_change(self):
        rxn = 2 * A + B >> A + 3 * C
        assert rxn.net_change(A) == -1
        assert rxn.net_change(B) == -1
        assert rxn.net_change(C) == 3
        assert rxn.net_changes() == {A: -1, B: -1, C: 3}

    def test_catalyst_detection(self):
        rxn = A + B >> A + C
        assert rxn.is_catalyst(A)
        assert not rxn.is_catalyst(B)

    def test_consumes_and_produces(self):
        rxn = A + Y >> C
        assert rxn.consumes(Y) and not rxn.produces(Y)
        assert rxn.produces(C)

    def test_order(self):
        assert (3 * A >> C).order() == 3
        assert (A >> C).is_unimolecular()
        assert (A + B >> C).is_bimolecular()

    def test_empty_reaction_rejected(self):
        with pytest.raises(ValueError):
            Reaction({}, {})

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            Reaction(A, C, rate=0)
        with pytest.raises(ValueError):
            Reaction(A, C, rate=-1.0)


class TestPropensity:
    def test_unimolecular_propensity(self):
        rxn = Reaction(A, C, rate=2.0)
        assert rxn.propensity(Configuration({A: 5})) == pytest.approx(10.0)

    def test_bimolecular_distinct_propensity(self):
        rxn = Reaction(A + B, C, rate=1.0)
        assert rxn.propensity(Configuration({A: 3, B: 4})) == pytest.approx(12.0)

    def test_bimolecular_same_species_propensity(self):
        rxn = Reaction(2 * A, C, rate=1.0)
        # C(4, 2) = 6 unordered pairs.
        assert rxn.propensity(Configuration({A: 4})) == pytest.approx(6.0)

    def test_zero_when_not_applicable(self):
        rxn = Reaction(2 * A, C)
        assert rxn.propensity(Configuration({A: 1})) == 0.0


class TestTransformations:
    def test_renamed(self):
        rxn = (A + B >> C).renamed({A: Y})
        assert rxn.reactant_count(Y) == 1 and rxn.reactant_count(A) == 0

    def test_renamed_can_merge_species(self):
        rxn = (A + B >> C).renamed({A: B})
        assert rxn.reactant_count(B) == 2

    def test_reversed(self):
        rxn = (A >> 2 * C).reversed()
        assert rxn.reactant_count(C) == 2 and rxn.product_count(A) == 1

    def test_with_rate(self):
        assert (A >> C).with_rate(5.0).rate == 5.0

    def test_equality_ignores_rate(self):
        assert Reaction(A, C, rate=1.0) == Reaction(A, C, rate=9.0)


class TestParsing:
    def test_parse_simple(self):
        rxn = parse_reaction("A + 2B -> C")
        assert rxn.reactant_count(A) == 1
        assert rxn.reactant_count(B) == 2
        assert rxn.product_count(C) == 1

    def test_parse_empty_product(self):
        rxn = parse_reaction("A + Y -> 0")
        assert rxn.products.is_empty()

    def test_parse_unicode_arrow(self):
        rxn = parse_reaction("A → B")
        assert rxn.product_count(B) == 1

    def test_parse_missing_arrow_raises(self):
        with pytest.raises(ValueError):
            parse_reaction("A + B")

    def test_parse_garbage_term_raises(self):
        with pytest.raises(ValueError):
            parse_reaction("A ++ -> B")

    def test_roundtrip_str(self):
        rxn = parse_reaction("2A + B -> 3C")
        assert str(rxn) == "2A + B -> 3C"
