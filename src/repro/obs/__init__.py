"""repro.obs — unified tracing, metrics, and run-provenance (DESIGN.md §9).

The stack's single observability substrate, dependency-free by construction:

* :class:`RunStats` — the per-run counter block every engine fills in
  (events, selections, propensity_ops, rng_draws, wall_s);
* :class:`Tracer` / :class:`JsonlTraceSink` — schema-versioned JSONL span
  traces, off by default with a no-op disabled path benched at ≤ 2% overhead
  on the scalar kernel (``benchmarks/test_bench_obs.py``);
* :class:`MetricsRegistry` — named counters/gauges/histograms behind both
  the ``/v1/stats`` JSON snapshot and the ``GET /v1/metrics`` Prometheus
  endpoint;
* :func:`run_manifest` — the provenance record (version, ``CODE_SALT``,
  config cache key, spec fingerprints) attached to campaign stores, traces,
  and server stats.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    PROMETHEUS_CONTENT_TYPE,
    global_registry,
    render_prometheus,
)
from repro.obs.provenance import PROVENANCE_SCHEMA, run_manifest
from repro.obs.report import format_self_time_table, format_span_tree
from repro.obs.stats import RunStats
from repro.obs.trace import (
    TRACE_SCHEMA,
    JsonlTraceSink,
    Span,
    Tracer,
    get_tracer,
    install_tracer,
    merge_trace_files,
    read_trace,
    validate_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PROMETHEUS_CONTENT_TYPE",
    "global_registry",
    "render_prometheus",
    "PROVENANCE_SCHEMA",
    "run_manifest",
    "format_self_time_table",
    "format_span_tree",
    "RunStats",
    "TRACE_SCHEMA",
    "JsonlTraceSink",
    "Span",
    "Tracer",
    "get_tracer",
    "install_tracer",
    "merge_trace_files",
    "read_trace",
    "validate_trace",
]
