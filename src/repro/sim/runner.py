"""High-level simulation runners and convergence reporting.

Every repeated-run entry point takes an ``engine`` selector:

* ``"python"`` (default) — the scalar, dict-per-step simulators.  Seeded runs
  reproduce the historical behaviour bit for bit.
* ``"vectorized"`` — the numpy batch engines of :mod:`repro.sim.engine`, which
  advance all trials simultaneously and are the only practical option for
  populations beyond ~10^3.  Seeded runs are reproducible, but draw from a
  numpy random stream distinct from the python engine's (see DESIGN.md).
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.crn.configuration import Configuration
from repro.crn.network import CRN
from repro.sim.fair import FairRunResult, FairScheduler
from repro.sim.gillespie import GillespieSimulator

ENGINES = ("python", "vectorized")


def check_engine(engine: str) -> None:
    """Raise ``ValueError`` unless ``engine`` is a valid ``engine=`` selector."""
    if engine not in ENGINES:
        raise ValueError(f"unknown simulation engine {engine!r}; expected one of {ENGINES}")


def default_quiescence_window(x: Sequence[int]) -> int:
    """The default quiescence window, scaled with the input population.

    Catalytic CRNs never fall silent, so convergence is detected by the output
    count staying unchanged for this many consecutive steps.
    """
    population = sum(int(v) for v in x) + 2
    return max(200, 50 * population)


@dataclass
class ConvergenceReport:
    """Aggregate statistics over repeated runs of one CRN on one input."""

    input_value: Tuple[int, ...]
    outputs: List[int]
    max_outputs: List[int]
    steps: List[int]
    all_silent_or_converged: bool

    @property
    def output_mode(self) -> int:
        """The most frequent final output (ties broken by smallest value)."""
        counts: Dict[int, int] = {}
        for value in self.outputs:
            counts[value] = counts.get(value, 0) + 1
        best = max(counts.values())
        return min(value for value, count in counts.items() if count == best)

    @property
    def output_unanimous(self) -> bool:
        """True if every run ended with the same output count."""
        return len(set(self.outputs)) == 1

    @property
    def mean_steps(self) -> float:
        """Mean number of reactions fired per run."""
        return statistics.fmean(self.steps) if self.steps else 0.0

    @property
    def max_overshoot(self) -> int:
        """The largest amount by which any run's peak output exceeded its final output."""
        return max(
            (peak - final for peak, final in zip(self.max_outputs, self.outputs)),
            default=0,
        )


def run_to_convergence(
    crn: CRN,
    x: Sequence[int],
    max_steps: int = 1_000_000,
    quiescence_window: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> FairRunResult:
    """Run the fair scheduler once on input ``x`` until silence or quiescence.

    The quiescence window defaults to a value scaled with the input size so
    that catalytic CRNs (which never fall silent) still terminate.
    """
    if quiescence_window is None:
        quiescence_window = default_quiescence_window(x)
    scheduler = FairScheduler(crn, rng=rng)
    return scheduler.run_on_input(
        x, max_steps=max_steps, quiescence_window=quiescence_window
    )


def run_many(
    crn: CRN,
    x: Sequence[int],
    trials: int = 10,
    max_steps: int = 1_000_000,
    quiescence_window: Optional[int] = None,
    seed: Optional[int] = None,
    engine: str = "python",
) -> ConvergenceReport:
    """Run the fair scheduler several times on input ``x`` and aggregate results.

    With ``engine="vectorized"`` all trials advance simultaneously as one batch
    through :class:`repro.sim.engine.BatchFairEngine`; the report fields are
    identical in shape and meaning.
    """
    check_engine(engine)
    if engine == "vectorized":
        return _run_many_vectorized(
            crn,
            x,
            trials=trials,
            max_steps=max_steps,
            quiescence_window=quiescence_window,
            seed=seed,
        )
    rng = random.Random(seed)
    outputs: List[int] = []
    max_outputs: List[int] = []
    steps: List[int] = []
    all_done = True
    for _ in range(trials):
        result = run_to_convergence(
            crn,
            x,
            max_steps=max_steps,
            quiescence_window=quiescence_window,
            rng=random.Random(rng.getrandbits(64)),
        )
        outputs.append(crn.output_count(result.final_configuration))
        max_outputs.append(result.max_output_seen)
        steps.append(result.steps)
        if not (result.silent or result.converged):
            all_done = False
    return ConvergenceReport(
        input_value=tuple(x),
        outputs=outputs,
        max_outputs=max_outputs,
        steps=steps,
        all_silent_or_converged=all_done,
    )


def _run_many_vectorized(
    crn: CRN,
    x: Sequence[int],
    trials: int,
    max_steps: int,
    quiescence_window: Optional[int],
    seed: Optional[int],
) -> ConvergenceReport:
    """``run_many`` through the numpy batch fair engine (one trial per row)."""
    from repro.sim.engine import BatchFairEngine

    if quiescence_window is None:
        quiescence_window = default_quiescence_window(x)
    batch_engine = BatchFairEngine(crn.compiled(), seed=seed)
    result = batch_engine.run_on_input(
        x, batch=trials, max_steps=max_steps, quiescence_window=quiescence_window
    )
    return ConvergenceReport(
        input_value=tuple(int(v) for v in x),
        outputs=[int(v) for v in result.output_counts()],
        max_outputs=[int(v) for v in result.max_output_seen],
        steps=[int(v) for v in result.steps],
        all_silent_or_converged=result.all_silent_or_converged(),
    )


def estimate_expected_output(
    crn: CRN,
    x: Sequence[int],
    trials: int = 20,
    max_steps: int = 500_000,
    seed: Optional[int] = None,
    engine: str = "python",
) -> float:
    """Monte-Carlo estimate of the expected final output under Gillespie kinetics."""
    check_engine(engine)
    if engine == "vectorized":
        from repro.sim.engine import BatchGillespieEngine

        batch_engine = BatchGillespieEngine(crn.compiled(), seed=seed)
        result = batch_engine.run_on_input(x, batch=trials, max_steps=max_steps)
        return float(result.output_counts().mean())
    rng = random.Random(seed)
    total = 0.0
    for _ in range(trials):
        simulator = GillespieSimulator(crn, rng=random.Random(rng.getrandbits(64)))
        result = simulator.run_on_input(x, max_steps=max_steps)
        total += crn.output_count(result.final_configuration)
    return total / trials


def sweep_inputs(
    crn: CRN,
    inputs: Iterable[Sequence[int]],
    trials: int = 5,
    seed: Optional[int] = None,
    **kwargs,
) -> List[ConvergenceReport]:
    """Run :func:`run_many` over a collection of inputs."""
    return [run_many(crn, x, trials=trials, seed=seed, **kwargs) for x in inputs]
