"""Human-readable rendering of JSONL traces (``python -m repro trace``).

Two views over one trace file:

* :func:`format_span_tree` — spans nested by parent id, ordered by start
  time, with durations and the most useful attrs inline;
* :func:`format_self_time_table` — per-span-name totals with *self* time
  (duration minus child durations), answering "where did this campaign
  spend its time" without a profiler rerun.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, List, Optional, Tuple

_TREE_ATTRS = ("cell", "spec", "engine", "policy", "worker", "events", "cells")


def _span_records(records: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    return [record for record in records if record.get("type") == "span"]


def _self_times(spans: List[Dict[str, Any]]) -> Dict[Optional[str], float]:
    """Span id -> duration minus the summed durations of its direct children."""
    child_total: Dict[Optional[str], float] = defaultdict(float)
    for span in spans:
        child_total[span.get("parent")] += float(span.get("dur_s") or 0.0)
    return {
        span.get("id"): max(
            0.0, float(span.get("dur_s") or 0.0) - child_total.get(span.get("id"), 0.0)
        )
        for span in spans
    }


def _fmt_duration(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    return f"{seconds * 1000:.2f}ms"


def _attr_suffix(attrs: Dict[str, Any]) -> str:
    shown = [f"{key}={attrs[key]}" for key in _TREE_ATTRS if key in attrs]
    return f"  [{' '.join(shown)}]" if shown else ""


def format_span_tree(records: List[Dict[str, Any]], max_children: int = 40) -> str:
    """The trace's spans as an indented tree (one line per span)."""
    spans = _span_records(records)
    if not spans:
        return "(no spans in trace)"
    spans.sort(key=lambda span: float(span.get("t0") or 0.0))
    children: Dict[Optional[str], List[Dict[str, Any]]] = defaultdict(list)
    ids = {span.get("id") for span in spans}
    for span in spans:
        parent = span.get("parent")
        children[parent if parent in ids else None].append(span)

    lines: List[str] = []

    def walk(span: Dict[str, Any], depth: int) -> None:
        attrs = span.get("attrs") or {}
        lines.append(
            f"{'  ' * depth}{span.get('name')}  {_fmt_duration(float(span.get('dur_s') or 0.0))}"
            f"{_attr_suffix(attrs)}"
        )
        kids = children.get(span.get("id"), [])
        for child in kids[:max_children]:
            walk(child, depth + 1)
        if len(kids) > max_children:
            lines.append(f"{'  ' * (depth + 1)}... ({len(kids) - max_children} more)")

    for root in children[None]:
        walk(root, 0)
    events = sum(1 for record in records if record.get("type") == "event")
    if events:
        lines.append(f"({events} point events not shown; {len(spans)} spans total)")
    return "\n".join(lines)


def format_self_time_table(records: List[Dict[str, Any]], top: int = 10) -> str:
    """Top-``top`` span names by total self time, as an aligned text table."""
    spans = _span_records(records)
    if not spans:
        return "(no spans in trace)"
    self_times = _self_times(spans)
    by_name: Dict[str, Tuple[int, float, float]] = {}
    for span in spans:
        name = str(span.get("name"))
        count, total, self_total = by_name.get(name, (0, 0.0, 0.0))
        by_name[name] = (
            count + 1,
            total + float(span.get("dur_s") or 0.0),
            self_total + self_times.get(span.get("id"), 0.0),
        )
    rows = sorted(by_name.items(), key=lambda item: item[1][2], reverse=True)[:top]
    name_width = max([len("span")] + [len(name) for name, _ in rows])
    header = f"{'span':<{name_width}}  {'count':>7}  {'total':>10}  {'self':>10}"
    lines = [header, "-" * len(header)]
    for name, (count, total, self_total) in rows:
        lines.append(
            f"{name:<{name_width}}  {count:>7}  {_fmt_duration(total):>10}  "
            f"{_fmt_duration(self_total):>10}"
        )
    return "\n".join(lines)
