"""Tests for :mod:`repro.obs` — tracing, metrics, provenance, RunStats.

The contracts pinned down here:

* **zero-cost disabled path** — the global tracer is off by default and its
  disabled spans are a shared no-op singleton (the kernel's hot loop never
  pays for observability it didn't ask for; the *overhead* ceiling itself is
  benched in ``benchmarks/test_bench_obs.py``);
* **trace schema** — ``JsonlTraceSink`` output round-trips through
  ``read_trace`` and passes ``validate_trace``; malformed files are loud;
* **registry exposition** — ``/v1/stats``-style JSON reads and the
  Prometheus text rendering are two views of the same series;
* **RunStats invariants** — every policy (Gillespie, NRM, fair, tau) over
  every construction strategy (known / 1d / leaderless / quilt / general)
  reports events/selections/propensity_ops/rng_draws that satisfy the
  cross-engine algebra, and seeded stats are reproducible bit for bit;
* **traced campaigns** — ``run_campaign(trace=True)`` writes a schema-valid
  ``trace.jsonl`` whose per-cell spans sum-check against the campaign span,
  plus a ``provenance.json`` manifest (written even when tracing is off).
"""

import json
import random

import pytest

from repro.api.config import RunConfig
from repro.core.characterization import build_crn_for
from repro.functions.catalog import (
    double_spec,
    minimum_spec,
    quilt_2d_fig3b_spec,
    threshold_capped_spec,
)
from repro.lab.cache import CODE_SALT, ResultCache
from repro.lab.campaign import (
    PROVENANCE_NAME,
    TRACE_NAME,
    Campaign,
    run_campaign,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    render_prometheus,
)
from repro.obs.provenance import PROVENANCE_SCHEMA, run_manifest
from repro.obs.report import format_self_time_table, format_span_tree
from repro.obs.stats import RunStats
from repro.obs.trace import (
    NOOP_SPAN,
    TRACE_SCHEMA,
    JsonlTraceSink,
    Tracer,
    get_tracer,
    install_tracer,
    read_trace,
    validate_trace,
)
from repro.sim.kernel import (
    FairPolicy,
    GillespiePolicy,
    NextReactionPolicy,
    SimulatorCore,
    TauLeapPolicy,
)


# ---------------------------------------------------------------------------
# RunStats
# ---------------------------------------------------------------------------


class TestRunStats:
    def test_merge_accumulates_every_field(self):
        a = RunStats(events=2, selections=2, propensity_ops=5, rng_draws=4, wall_s=0.5)
        b = RunStats(events=1, selections=1, propensity_ops=3, rng_draws=2, wall_s=0.25)
        a.merge(b)
        assert a.to_dict() == {
            "events": 3,
            "selections": 3,
            "propensity_ops": 8,
            "rng_draws": 6,
            "wall_s": 0.75,
        }

    def test_equality_is_by_value(self):
        assert RunStats(events=1) == RunStats(events=1)
        assert RunStats(events=1) != RunStats(events=2)


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------


class TestTracerDisabled:
    def test_disabled_tracer_hands_out_the_noop_singleton(self):
        tracer = Tracer()
        assert not tracer.enabled
        span = tracer.span("anything", key="value")
        assert span is NOOP_SPAN
        with span as inner:
            inner.set(more="attrs")  # must be inert, not raise
        tracer.event("nothing")  # inert
        tracer.emit_span("nothing", 0.0, 0.0)  # inert

    def test_global_tracer_is_disabled_by_default(self):
        assert not get_tracer().enabled


class TestTracerEnabled:
    def test_spans_nest_events_interleave_and_validate(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        sink = JsonlTraceSink(path, manifest={"purpose": "test"})
        tracer = Tracer(sink)
        assert tracer.enabled
        with tracer.span("outer", label="o"):
            tracer.event("ping", n=1)
            with tracer.span("inner") as span:
                span.set(status="ok")
        sink.close()

        records = list(read_trace(path))
        assert validate_trace(records) == []
        meta = records[0]
        assert meta["type"] == "meta"
        assert meta["schema"] == TRACE_SCHEMA
        assert meta["manifest"] == {"purpose": "test"}

        spans = {r["name"]: r for r in records if r["type"] == "span"}
        events = [r for r in records if r["type"] == "event"]
        assert spans["inner"]["parent"] == spans["outer"]["id"]
        assert spans["outer"]["parent"] is None
        assert spans["inner"]["attrs"]["status"] == "ok"
        assert spans["outer"]["dur_s"] >= spans["inner"]["dur_s"] >= 0.0
        assert [e["name"] for e in events] == ["ping"]
        assert events[0]["attrs"] == {"n": 1}

    def test_install_tracer_swaps_and_restores_the_global(self, tmp_path):
        sink = JsonlTraceSink(str(tmp_path / "t.jsonl"))
        mine = Tracer(sink)
        previous = install_tracer(mine)
        try:
            assert get_tracer() is mine
        finally:
            install_tracer(previous)
            sink.close()
        assert get_tracer() is previous

    def test_read_trace_rejects_malformed_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "meta", "schema": "%s"}\nnot json\n' % TRACE_SCHEMA)
        with pytest.raises(ValueError, match=r":2: malformed trace line"):
            list(read_trace(str(path)))

    def test_validate_trace_flags_schema_violations(self):
        good_meta = {"type": "meta", "schema": TRACE_SCHEMA, "pid": 1}
        span = {
            "type": "span", "name": "s", "t0": 1.0, "dur_s": 0.1,
            "pid": 1, "tid": 1, "id": "1-1", "parent": None, "attrs": {},
        }
        assert validate_trace([good_meta, span]) == []
        # no meta first
        assert validate_trace([span]) != []
        # wrong schema version
        bad_meta = dict(good_meta, schema="someone-elses-v9")
        assert validate_trace([bad_meta, span]) != []
        # orphan parent reference
        orphan = dict(span, parent="1-999")
        assert validate_trace([good_meta, orphan]) != []
        # negative duration
        negative = dict(span, dur_s=-0.5)
        assert validate_trace([good_meta, negative]) != []


# ---------------------------------------------------------------------------
# MetricsRegistry + Prometheus rendering
# ---------------------------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_semantics(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_test_total", "help", labels=("kind",))
        counter.labels(kind="a").inc()
        counter.labels(kind="a").inc(2)
        counter.labels(kind="b").inc(0)
        assert counter.value_of(("a",)) == 3
        assert counter.series() == {("a",): 3.0, ("b",): 0.0}
        with pytest.raises(ValueError):
            counter.labels(kind="a").inc(-1)
        with pytest.raises(TypeError):
            counter.labels(kind="a").set(5)

    def test_gauge_set_and_dec(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("repro_test_gauge", "help")
        gauge.set(10)
        gauge.dec(3)
        assert gauge.value == 7.0

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_test_seconds", "help", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            hist.observe(value)
        snap = hist.snapshot_of(())
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(5.55)
        bounds = [bound for bound, _ in snap["buckets"]]
        cumulative = [count for _, count in snap["buckets"]]
        assert bounds[:2] == [0.1, 1.0] and bounds[2] == float("inf")
        assert cumulative == [1, 2, 3]

    def test_getters_are_idempotent_but_reject_kind_mismatch(self):
        registry = MetricsRegistry()
        first = registry.counter("repro_test_total", "help")
        assert registry.counter("repro_test_total") is first
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("repro_test_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.counter("repro_test_total", labels=("other",))

    def test_label_names_are_validated(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_test_total", labels=("kind",))
        with pytest.raises(ValueError, match="expected labels"):
            counter.labels(wrong="x")
        with pytest.raises(ValueError, match="invalid metric name"):
            registry.counter("bad name")

    def test_prometheus_rendering(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_test_total", "things counted", labels=("kind",))
        counter.labels(kind='we"ird\n').inc(2)
        hist = registry.histogram("repro_test_seconds", buckets=(0.5,))
        hist.observe(0.1)
        text = render_prometheus(registry)
        assert "# HELP repro_test_total things counted" in text
        assert "# TYPE repro_test_total counter" in text
        assert 'repro_test_total{kind="we\\"ird\\n"} 2' in text
        assert 'repro_test_seconds_bucket{le="0.5"} 1' in text
        assert 'repro_test_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_test_seconds_count 1" in text
        assert text.endswith("\n")

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


# ---------------------------------------------------------------------------
# Provenance manifests
# ---------------------------------------------------------------------------


class TestProvenance:
    def test_manifest_core_fields(self):
        from repro import __version__

        manifest = run_manifest(
            engine="python",
            config=RunConfig(trials=3, seed=7),
            spec_fingerprints={"minimum": "abc123"},
            extra={"campaign": "t"},
        )
        assert manifest["schema"] == PROVENANCE_SCHEMA
        assert manifest["version"] == __version__
        assert manifest["code_salt"] == CODE_SALT
        assert manifest["engine"] == "python"
        assert manifest["spec_fingerprints"] == {"minimum": "abc123"}
        assert manifest["config"]["trials"] == 3
        assert manifest["config_cache_key"] == RunConfig(trials=3, seed=7).cache_key()
        assert manifest["campaign"] == "t"
        assert manifest["created_unix"] > 0
        json.dumps(manifest)  # must be JSON-serializable as-is


# ---------------------------------------------------------------------------
# ResultCache metrics
# ---------------------------------------------------------------------------


class TestCacheMetrics:
    def test_get_put_report_into_the_registry(self, tmp_path):
        registry = MetricsRegistry()
        cache = ResultCache(str(tmp_path / "cache"), registry=registry)
        key = "ab" + "0" * 62
        assert cache.get(key) is None
        cache.put(key, {"payload": 1})
        assert cache.get(key) == {"payload": 1}

        requests = registry.get("repro_result_cache_requests_total")
        assert requests.value_of(("miss",)) == 1
        assert requests.value_of(("hit",)) == 1
        assert registry.get("repro_result_cache_get_seconds").snapshot_of(())["count"] == 2
        assert registry.get("repro_result_cache_put_seconds").snapshot_of(())["count"] == 1


# ---------------------------------------------------------------------------
# RunStats invariants across policies x construction strategies
# ---------------------------------------------------------------------------


def _strategy_crns():
    """One CRN per construction strategy family (mirrors test_kernel.py)."""
    return [
        ("known", minimum_spec().known_crn, (4, 7)),
        ("1d", build_crn_for(threshold_capped_spec(), strategy="1d"), (5,)),
        ("leaderless", build_crn_for(double_spec(), strategy="leaderless"), (4,)),
        ("quilt", build_crn_for(quilt_2d_fig3b_spec(), strategy="quilt"), (3, 2)),
        ("general", build_crn_for(minimum_spec(), strategy="general"), (3, 4)),
    ]


_STRATEGY_CRNS = _strategy_crns()

_POLICIES = [
    ("gillespie", GillespiePolicy),
    ("nrm", NextReactionPolicy),
    ("fair", FairPolicy),
    ("tau", TauLeapPolicy),
]


class TestRunStatsInvariants:
    @pytest.mark.parametrize(
        "strategy,crn,x", _STRATEGY_CRNS, ids=[s for s, _, _ in _STRATEGY_CRNS]
    )
    @pytest.mark.parametrize("policy_name,policy_cls", _POLICIES)
    def test_every_policy_reports_consistent_stats(
        self, strategy, crn, x, policy_name, policy_cls
    ):
        core = SimulatorCore(crn, policy_cls(), rng=random.Random(11))
        result = core.run(crn.initial_configuration(x), max_steps=5_000)
        stats = result.stats
        assert stats is not None
        assert stats.events == result.steps
        assert stats.wall_s > 0.0
        # start() always evaluates the full propensity/applicability vector
        assert stats.propensity_ops >= len(crn.reactions)
        if policy_name == "tau":
            # tau collapses many firings into few selection rounds
            assert stats.selections <= stats.events or stats.events == 0
        else:
            assert stats.selections == stats.events
        if stats.events > 0:
            assert stats.rng_draws > 0

    def test_seeded_stats_are_reproducible(self):
        crn = minimum_spec().known_crn
        runs = []
        for _ in range(2):
            core = SimulatorCore(crn, GillespiePolicy(), rng=random.Random(23))
            runs.append(core.run(crn.initial_configuration((6, 9)), max_steps=5_000))
        first, second = (r.stats.to_dict() for r in runs)
        first.pop("wall_s"), second.pop("wall_s")
        assert first == second

    def test_gillespie_counts_selection_and_firing_work(self):
        crn = minimum_spec().known_crn
        core = SimulatorCore(crn, GillespiePolicy(), rng=random.Random(5))
        result = core.run(crn.initial_configuration((5, 5)), max_steps=5_000)
        stats = result.stats
        # two draws per step (waiting time + choice) on the direct method
        assert stats.rng_draws == 2 * stats.events
        # beyond the start() full vector, each firing recomputes >= 1 dependent
        assert stats.propensity_ops >= len(crn.reactions) + stats.events


# ---------------------------------------------------------------------------
# Traced campaigns
# ---------------------------------------------------------------------------


def _tiny_campaign(name="obs-t"):
    return Campaign(
        name=name,
        specs=["minimum"],
        inputs=[(1, 2), (2, 1)],
        engines=("python",),
        configs=(RunConfig(trials=2),),
        seed=9,
    )


class TestTracedCampaign:
    def test_trace_and_provenance_artifacts(self, tmp_path):
        out = str(tmp_path / "out")
        run = run_campaign(_tiny_campaign(), out, cache_dir=None, trace=True)
        assert run.executed == 2

        records = list(read_trace(str(tmp_path / "out" / TRACE_NAME)))
        assert validate_trace(records) == []
        assert records[0]["manifest"]["schema"] == PROVENANCE_SCHEMA

        spans = [r for r in records if r["type"] == "span"]
        by_name = {}
        for record in spans:
            by_name.setdefault(record["name"], []).append(record)
        campaign_span = by_name["campaign.run"][0]
        cell_spans = by_name["lab.cell"]
        assert len(cell_spans) == 2
        assert {s["attrs"]["cell"] for s in cell_spans} == {
            r.cell_id for r in run.results
        }
        # serial in-process cells nest under the campaign, and their summed
        # wall time cannot exceed the campaign span that contains them
        assert all(s["parent"] == campaign_span["id"] for s in cell_spans)
        assert sum(s["dur_s"] for s in cell_spans) <= campaign_span["dur_s"] + 1e-6
        # per-trial kernel spans nest under their cell
        kernel_parents = {s["parent"] for s in by_name["kernel.run"]}
        assert kernel_parents <= {s["id"] for s in cell_spans}
        assert campaign_span["attrs"]["executed"] == 2

        with open(str(tmp_path / "out" / PROVENANCE_NAME)) as handle:
            provenance = json.load(handle)
        assert provenance["schema"] == PROVENANCE_SCHEMA
        assert provenance["campaign"] == "obs-t"
        assert provenance["total_cells"] == 2
        assert provenance["engines"] == ["python"]
        assert list(provenance["spec_fingerprints"]) == ["minimum"]

    def test_rows_carry_cpu_and_worker_provenance(self, tmp_path):
        run = run_campaign(_tiny_campaign(), str(tmp_path / "out"), cache_dir=None)
        for row in run.results:
            assert row.cpu_time is not None and row.cpu_time >= 0.0
            assert isinstance(row.worker, int)

    def test_untraced_campaign_writes_no_trace_but_keeps_provenance(self, tmp_path):
        out = tmp_path / "out"
        run_campaign(_tiny_campaign(), str(out), cache_dir=None)
        assert not (out / TRACE_NAME).exists()
        assert (out / PROVENANCE_NAME).exists()

    def test_global_tracer_is_restored_after_a_traced_campaign(self, tmp_path):
        before = get_tracer()
        run_campaign(_tiny_campaign(), str(tmp_path / "out"), cache_dir=None, trace=True)
        assert get_tracer() is before


# ---------------------------------------------------------------------------
# Rendering helpers
# ---------------------------------------------------------------------------


class TestTraceReport:
    def _records(self, tmp_path):
        sink = JsonlTraceSink(str(tmp_path / "t.jsonl"))
        tracer = Tracer(sink)
        with tracer.span("campaign.run", cells=2):
            with tracer.span("lab.cell", cell="c1"):
                tracer.event("worker.heartbeat")
            with tracer.span("lab.cell", cell="c2"):
                pass
        sink.close()
        return list(read_trace(str(tmp_path / "t.jsonl")))

    def test_span_tree_nests_and_counts_events(self, tmp_path):
        text = format_span_tree(self._records(tmp_path))
        lines = text.splitlines()
        assert lines[0].startswith("campaign.run")
        assert sum(1 for l in lines if l.strip().startswith("lab.cell")) == 2
        assert "1 point event" in text

    def test_self_time_table_lists_every_span_name(self, tmp_path):
        text = format_self_time_table(self._records(tmp_path))
        assert "campaign.run" in text
        assert "lab.cell" in text
