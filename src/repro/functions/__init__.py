"""Ready-made function specifications, including every example used in the paper.

:mod:`repro.functions.catalog` contains the elementary building-block functions
(Fig. 1, Fig. 2, Fig. 3) and a handful of standard semilinear functions used by
tests and benchmarks.  :mod:`repro.functions.paper_examples` contains the more
structured examples: the three-region function of Fig. 7, the depressed-diagonal
counterexample of Eq. (2), and a concrete function with the Fig. 4a shape
(finite irregular behaviour, 1D quilt-affine edges, and an eventual min of
quilt-affine pieces).
"""

from repro.functions.catalog import (
    double_spec,
    identity_spec,
    constant_spec,
    add_spec,
    minimum_spec,
    maximum_spec,
    min_one_spec,
    min_one_leaderless_crn,
    floor_3x_over_2_spec,
    quilt_2d_fig3b_spec,
    threshold_capped_spec,
    all_catalog_specs,
)
from repro.functions.paper_examples import (
    fig7_spec,
    eq2_counterexample_spec,
    fig4a_style_spec,
    interior_min_plus_one_spec,
    all_paper_example_specs,
)
from repro.functions.extended import (
    minimum_3d_spec,
    weighted_floor_spec,
    capped_sum_spec,
    tropical_polynomial_spec,
    min3_with_offset_spec,
    all_extended_specs,
)

__all__ = [
    "double_spec",
    "identity_spec",
    "constant_spec",
    "add_spec",
    "minimum_spec",
    "maximum_spec",
    "min_one_spec",
    "min_one_leaderless_crn",
    "floor_3x_over_2_spec",
    "quilt_2d_fig3b_spec",
    "threshold_capped_spec",
    "all_catalog_specs",
    "fig7_spec",
    "eq2_counterexample_spec",
    "fig4a_style_spec",
    "interior_min_plus_one_spec",
    "all_paper_example_specs",
    "minimum_3d_spec",
    "weighted_floor_spec",
    "capped_sum_spec",
    "tropical_polynomial_spec",
    "min3_with_offset_spec",
    "all_extended_specs",
]
