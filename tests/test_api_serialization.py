"""JSON round-trips for the API value objects (:mod:`repro.api.serialization`).

These are the helpers the serve wire protocol is built on: specs travel by
registered name (+ content fingerprint), configs travel as strict field
dicts, and every validation failure names the offending field so an HTTP
handler can surface the message verbatim.
"""

import pytest

from repro.api import (
    RunConfig,
    Workbench,
    registered_name_for,
    run_config_from_json_dict,
    run_config_to_json_dict,
    spec_from_json_dict,
    spec_to_json_dict,
)
from repro.lab.campaign import resolve_spec


class TestRunConfigRoundTrip:
    def test_round_trip_is_identity(self):
        config = RunConfig(trials=7, max_steps=123, seed=42, engine="nrm", epsilon=0.05)
        assert RunConfig.from_json_dict(config.to_json_dict()) == config
        # and via the module-level spellings
        assert run_config_from_json_dict(run_config_to_json_dict(config)) == config

    def test_partial_payload_merges_over_default(self):
        default = RunConfig(trials=9, seed=3, engine="vectorized")
        merged = RunConfig.from_json_dict({"trials": 2}, default=default)
        assert merged == default.replace(trials=2)

    def test_partial_payload_without_default_uses_field_defaults(self):
        config = RunConfig.from_json_dict({"seed": 5})
        assert config == RunConfig(seed=5)

    def test_unknown_field_is_rejected_by_name(self):
        with pytest.raises(ValueError) as excinfo:
            RunConfig.from_json_dict({"trails": 3})  # the typo must not be silent
        message = str(excinfo.value)
        assert "'trails'" in message
        assert "'trials'" in message  # the known fields are listed

    @pytest.mark.parametrize(
        "payload, field",
        [
            ({"seed": "abc"}, "seed"),
            ({"seed": True}, "seed"),
            ({"trials": 0}, "trials"),
            ({"trials": "many"}, "trials"),
            ({"max_steps": -1}, "max_steps"),
            ({"quiescence_window": 0}, "quiescence_window"),
            ({"engine": ""}, "engine"),
            ({"epsilon": 1.5}, "epsilon"),
        ],
    )
    def test_invalid_values_name_the_field(self, payload, field):
        with pytest.raises(ValueError, match=field):
            RunConfig.from_json_dict(payload)

    def test_non_mapping_payload_rejected(self):
        with pytest.raises(ValueError, match="JSON object"):
            RunConfig.from_json_dict([1, 2, 3])

    def test_to_json_dict_matches_to_dict(self):
        config = RunConfig(trials=4, seed=1)
        assert config.to_json_dict() == config.to_dict()


class TestSpecRoundTrip:
    def test_round_trip_resolves_the_same_registered_spec(self):
        spec = resolve_spec("minimum")
        payload = spec_to_json_dict(spec)
        assert payload["name"] == "minimum"
        assert payload["dimension"] == 2
        assert len(payload["fingerprint"]) == 64
        assert spec_from_json_dict(payload) is spec

    def test_registered_name_differs_from_display_name(self):
        # The catalog spec registered as "minimum" is *named* "min"; the wire
        # form must carry the registry key, because the receiver resolves by it.
        spec = resolve_spec("minimum")
        assert spec.name == "min"
        assert registered_name_for(spec) == "minimum"

    def test_bare_name_payload_resolves(self):
        assert spec_from_json_dict({"name": "add"}) is resolve_spec("add")

    def test_unknown_name_lists_the_registry(self):
        with pytest.raises(ValueError) as excinfo:
            spec_from_json_dict({"name": "nope"})
        assert "nope" in str(excinfo.value)
        assert "minimum" in str(excinfo.value)  # registered names are listed

    @pytest.mark.parametrize(
        "payload, field",
        [
            ({"name": ""}, "name"),
            ({"name": 7}, "name"),
            ({}, "name"),
            ({"name": "minimum", "dimension": 3}, "dimension"),
            ({"name": "minimum", "fingerprint": "00" * 32}, "fingerprint"),
        ],
    )
    def test_invalid_payloads_name_the_field(self, payload, field):
        with pytest.raises(ValueError, match=field):
            spec_from_json_dict(payload)

    def test_non_mapping_payload_rejected(self):
        with pytest.raises(ValueError, match="JSON object"):
            spec_from_json_dict("minimum")

    def test_fingerprint_can_be_omitted_from_the_wire_form(self):
        payload = spec_to_json_dict(resolve_spec("add"), include_fingerprint=False)
        assert "fingerprint" not in payload
        assert spec_from_json_dict(payload) is resolve_spec("add")


class TestWorkbenchCompileJson:
    """The serve seam: compile straight from a wire-form request body."""

    def test_compile_json_with_bare_name(self):
        compiled = Workbench().compile_json({"spec": "minimum"})
        assert compiled.spec is resolve_spec("minimum")
        assert compiled((4, 9)) == 4

    def test_compile_json_merges_request_config_over_default(self):
        wb = Workbench(RunConfig(trials=9, seed=3))
        compiled = wb.compile_json(
            {"spec": "minimum", "config": {"trials": 2, "engine": "vectorized"}}
        )
        assert compiled.config == RunConfig(trials=2, seed=3, engine="vectorized")

    def test_compile_json_validation_errors_name_the_field(self):
        with pytest.raises(ValueError, match="'trails'"):
            Workbench().compile_json({"spec": "minimum", "config": {"trails": 1}})
        with pytest.raises(ValueError, match="name"):
            Workbench().compile_json({})
