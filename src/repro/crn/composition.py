"""Composition of CRNs by concatenation (Section 2.3 of the paper).

The primitive is :func:`concatenate`: rename the upstream CRN's output species
to match the downstream CRN's input species, make every other species name
disjoint, and add a reaction ``L -> L_f + L_g`` that splits the global leader
into one leader per component.  Observation 2.2 states that the concatenation
stably computes the composition ``g ∘ f`` whenever the upstream CRN is
output-oblivious.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.crn.network import CRN
from repro.crn.reaction import Reaction
from repro.crn.species import Expression, Species


def rename_disjoint(upstream: CRN, downstream: CRN, shared: Sequence[Species] = ()) -> Tuple[CRN, CRN]:
    """Rename species so the two networks share only the species in ``shared``.

    Both networks get a prefix (``up_`` / ``down_``) on every species except
    the explicitly shared ones.  Returns the renamed pair.
    """
    shared_set = set(shared)
    return (
        upstream.with_prefix("up_", keep=shared_set),
        downstream.with_prefix("down_", keep=shared_set),
    )


def concatenate(
    upstream: CRN,
    downstream: CRN,
    downstream_input_index: int = 0,
    name: str = "",
    require_output_oblivious: bool = True,
    extra_upstream: Sequence[CRN] = (),
) -> CRN:
    """Concatenate CRNs: feed ``upstream``'s output into ``downstream``'s input.

    Implements the construction of Section 2.3: the output species of the
    upstream CRN is identified with the chosen input species of the downstream
    CRN, all other species names are made disjoint, and a leader-splitting
    reaction ``L -> L_f + L_g`` is added so each component has its own leader.

    Parameters
    ----------
    upstream:
        The CRN computing ``f``.  Must be output-oblivious for the composition
        to be guaranteed correct (Observation 2.2); pass
        ``require_output_oblivious=False`` to build the (possibly incorrect)
        concatenation anyway, e.g. to demonstrate the failure mode in the
        paper's Section 1.2.
    downstream:
        The CRN computing ``g``.
    downstream_input_index:
        Which input of the downstream CRN receives the upstream output.
    extra_upstream:
        Additional output-oblivious upstream CRNs feeding the *other* inputs of
        the downstream CRN (general feed-forward composition).  The i-th extra
        upstream feeds downstream input ``i`` skipping ``downstream_input_index``.

    Returns
    -------
    CRN
        The concatenated network.  Its input species are the concatenation of
        all upstream input tuples; its output species is the downstream output.
    """
    if require_output_oblivious and not upstream.is_output_oblivious():
        raise ValueError(
            "the upstream CRN is not output-oblivious; the concatenation is not "
            "guaranteed to stably compute the composition (pass "
            "require_output_oblivious=False to build it anyway)"
        )
    if not 0 <= downstream_input_index < downstream.dimension:
        raise ValueError(
            f"downstream_input_index {downstream_input_index} out of range for a "
            f"downstream CRN with {downstream.dimension} inputs"
        )
    remaining_inputs = [
        i for i in range(downstream.dimension) if i != downstream_input_index
    ]
    if len(extra_upstream) > len(remaining_inputs):
        raise ValueError(
            f"too many extra upstream CRNs ({len(extra_upstream)}) for "
            f"{len(remaining_inputs)} remaining downstream inputs"
        )
    for extra in extra_upstream:
        if require_output_oblivious and not extra.is_output_oblivious():
            raise ValueError("every upstream CRN must be output-oblivious")

    upstreams: List[Tuple[CRN, int]] = [(upstream, downstream_input_index)]
    for extra, index in zip(extra_upstream, remaining_inputs):
        upstreams.append((extra, index))

    # Make all component species disjoint, then identify wires.
    renamed_upstreams: List[Tuple[CRN, int]] = []
    for position, (component, index) in enumerate(upstreams):
        renamed_upstreams.append((component.with_prefix(f"u{position}_"), index))
    renamed_downstream = downstream.with_prefix("d_")

    # Wire each upstream output to the corresponding downstream input.
    wire_map: Dict[Species, Species] = {}
    for component, index in renamed_upstreams:
        wire_map[component.output_species] = renamed_downstream.input_species[index]
    wired_upstreams = [
        (component.renamed(wire_map), index) for component, index in renamed_upstreams
    ]

    # Assemble the global network.
    global_leader = Species("L")
    fed_indices = {index for _, index in wired_upstreams}
    global_inputs: List[Species] = []
    for component, _ in wired_upstreams:
        global_inputs.extend(component.input_species)
    # Downstream inputs not fed by an upstream stay as free global inputs.
    for i, sp in enumerate(renamed_downstream.input_species):
        if i not in fed_indices:
            global_inputs.append(sp)

    reactions: List[Reaction] = []
    leader_products: Dict[Species, int] = {}
    for component, _ in wired_upstreams:
        reactions.extend(component.reactions)
        if component.leader is not None:
            leader_products[component.leader] = leader_products.get(component.leader, 0) + 1
    reactions.extend(renamed_downstream.reactions)
    if renamed_downstream.leader is not None:
        leader_products[renamed_downstream.leader] = (
            leader_products.get(renamed_downstream.leader, 0) + 1
        )

    leader: Optional[Species]
    if leader_products:
        leader = global_leader
        reactions.append(Reaction(global_leader, Expression(leader_products), name="leader-split"))
    else:
        leader = None

    return CRN(
        reactions,
        tuple(global_inputs),
        renamed_downstream.output_species,
        leader=leader,
        name=name or f"{downstream.name or 'g'}∘{upstream.name or 'f'}",
    )


def parallel_composition(components: Sequence[CRN], name: str = "") -> CRN:
    """Run several CRNs side by side on disjoint species, sharing nothing.

    The result has the concatenation of all input tuples and the output species
    of the *first* component (parallel composition is mostly useful as a
    building block: footnote 6 of the paper notes a function with vector output
    is computable iff each component is, by parallel CRNs).
    """
    if not components:
        raise ValueError("parallel_composition requires at least one component")
    renamed = [component.with_prefix(f"p{i}_") for i, component in enumerate(components)]
    global_leader = Species("L")
    reactions: List[Reaction] = []
    leader_products: Dict[Species, int] = {}
    inputs: List[Species] = []
    for component in renamed:
        reactions.extend(component.reactions)
        inputs.extend(component.input_species)
        if component.leader is not None:
            leader_products[component.leader] = leader_products.get(component.leader, 0) + 1
    leader: Optional[Species]
    if leader_products:
        leader = global_leader
        reactions.append(Reaction(global_leader, Expression(leader_products), name="leader-split"))
    else:
        leader = None
    return CRN(
        reactions,
        tuple(inputs),
        renamed[0].output_species,
        leader=leader,
        name=name or "parallel(" + ",".join(c.name or "?" for c in components) + ")",
    )


def fan_out_network(source: Species, copies: Sequence[Species]) -> List[Reaction]:
    """Reactions duplicating each copy of ``source`` into one copy of each species.

    This is the "fan out" operation used in the proof of Lemma 6.2: a reaction
    ``X -> X^1 + ... + X^m`` lets ``m`` downstream modules each receive an
    independent copy of the input.
    """
    if not copies:
        raise ValueError("fan_out_network requires at least one target species")
    products: Dict[Species, int] = {}
    for sp in copies:
        products[sp] = products.get(sp, 0) + 1
    return [Reaction(source, Expression(products), name=f"fanout-{source.name}")]
