"""Population protocols and conversions between CRNs and protocols.

Population protocols are the restricted CRNs in which every reaction has two
reactants and two products (Section 1 of the paper frames the work in both
models; the computable function classes coincide).  This package provides:

* :class:`PopulationProtocol` — the agent-based model with a random pairwise
  scheduler;
* :func:`crn_to_population_protocol` — conversion of a CRN whose reactions are
  all 2-reactant/2-product into a protocol;
* :func:`to_at_most_bimolecular` — footnote 5's reduction of higher-order
  reactions to reactions with at most two reactants.
"""

from repro.protocols.population import PopulationProtocol, crn_to_population_protocol
from repro.protocols.conversion import to_at_most_bimolecular
from repro.protocols.predicate_protocols import (
    OpinionProtocol,
    majority_protocol,
    threshold_protocol,
)

__all__ = [
    "PopulationProtocol",
    "crn_to_population_protocol",
    "to_at_most_bimolecular",
    "OpinionProtocol",
    "majority_protocol",
    "threshold_protocol",
]
