"""Campaign summaries: convergence / correctness rates and engine throughput.

:func:`summarize` folds :class:`~repro.lab.store.CellResult` rows into a
:class:`CampaignSummary`; :func:`format_report` renders it for humans.
Rates are over *ok* rows; error rows are counted but never averaged in.
Throughput is computed only from rows that actually simulated in this run —
cache replays carry no wall time and would otherwise fake an infinite
steps/sec.

Both :func:`summarize` and :func:`format_profile` are **single-pass streaming
folds**: they consume their row iterable exactly once and hold O(engines) /
O(top) state, never the row list — a million-cell ``report`` reads
``ResultStore.iter_rows()`` straight off disk without materializing anything.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.lab.store import CellResult


@dataclass
class EngineStats:
    """Per-engine slice of a campaign."""

    engine: str
    cells: int = 0
    errors: int = 0
    cache_hits: int = 0
    converged: int = 0
    correct: int = 0
    total_steps: int = 0
    wall_time: float = 0.0
    steps_per_sec: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "engine": self.engine,
            "cells": self.cells,
            "errors": self.errors,
            "cache_hits": self.cache_hits,
            "converged": self.converged,
            "correct": self.correct,
            "total_steps": self.total_steps,
            "wall_time_s": round(self.wall_time, 6),
            "steps_per_sec": self.steps_per_sec,
        }


@dataclass
class CampaignSummary:
    """The aggregate view written to ``summary.json`` and printed by ``report``."""

    campaign: str
    total_cells: int
    ok: int
    errors: int
    cache_hits: int
    convergence_rate: float
    correct_rate: float
    mean_steps: float
    wall_time: float
    engines: Dict[str, EngineStats] = field(default_factory=dict)
    corrupt_lines_skipped: int = 0
    """Interior store lines that failed to parse (see
    :class:`~repro.lab.store.StoreScanStats`); nonzero means the store was
    damaged and the affected cells were recovered by a re-run."""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "campaign": self.campaign,
            "total_cells": self.total_cells,
            "ok": self.ok,
            "errors": self.errors,
            "cache_hits": self.cache_hits,
            "convergence_rate": round(self.convergence_rate, 6),
            "correct_rate": round(self.correct_rate, 6),
            "mean_steps": round(self.mean_steps, 3),
            "wall_time_s": round(self.wall_time, 6),
            "engines": {name: stats.to_dict() for name, stats in self.engines.items()},
            "corrupt_lines_skipped": self.corrupt_lines_skipped,
        }


def summarize(results: Iterable[CellResult], campaign: str = "") -> CampaignSummary:
    """Fold rows into a :class:`CampaignSummary` (empty input yields zero rates).

    One streaming pass with O(engines) state: ``results`` may be a plain list
    or a one-shot iterator straight off ``ResultStore.iter_rows()`` — the rows
    are never materialized here.
    """
    per_engine: Dict[str, EngineStats] = {}
    # only freshly simulated steps count toward throughput; a cached row's
    # steps were earned in some earlier run
    fresh_steps: Dict[str, int] = {}
    total = ok = errors = cache_hits = converged = correct = 0
    steps_sum = 0.0
    wall_time = 0.0

    for row in results:
        total += 1
        stats = per_engine.setdefault(row.engine, EngineStats(engine=row.engine))
        stats.cells += 1
        if row.cached:
            cache_hits += 1
            stats.cache_hits += 1
        if not row.ok:
            errors += 1
            stats.errors += 1
            continue
        ok += 1
        if row.converged:
            converged += 1
            stats.converged += 1
        if row.correct:
            correct += 1
            stats.correct += 1
        steps_sum += row.mean_steps or 0.0
        if row.total_steps:
            stats.total_steps += row.total_steps
            if not row.cached:
                fresh_steps[row.engine] = fresh_steps.get(row.engine, 0) + row.total_steps
        if not row.cached:
            wall_time += row.wall_time
            stats.wall_time += row.wall_time

    for name, stats in per_engine.items():
        if stats.wall_time > 0:
            stats.steps_per_sec = round(fresh_steps.get(name, 0) / stats.wall_time, 1)

    return CampaignSummary(
        campaign=campaign,
        total_cells=total,
        ok=ok,
        errors=errors,
        cache_hits=cache_hits,
        convergence_rate=(converged / ok) if ok else 0.0,
        correct_rate=(correct / ok) if ok else 0.0,
        mean_steps=(steps_sum / ok) if ok else 0.0,
        wall_time=wall_time,
        engines=per_engine,
    )


#: Schema tag for machine-readable benchmark output (BENCH_results.json).
BENCH_SCHEMA = "repro-bench-v1"

#: Canonical benchmark-output filename (repository root).
BENCH_FILENAME = "BENCH_results.json"


def default_bench_path(start: Optional[str] = None) -> str:
    """The default ``BENCH_results.json`` location: the repository root.

    Walks upward from ``start`` (default: the working directory) looking for a
    repository marker (``.git`` / ``ROADMAP.md`` / ``setup.py``), so both the
    pytest benchmark suite and ``python -m repro bench`` land their records in
    the same tracked file regardless of the directory they were launched from.
    Falls back to ``start`` itself when no marker is found.
    """
    import os

    current = os.path.abspath(start if start is not None else os.getcwd())
    probe = current
    while True:
        if any(
            os.path.exists(os.path.join(probe, marker))
            for marker in (".git", "ROADMAP.md", "setup.py")
        ):
            return os.path.join(probe, BENCH_FILENAME)
        parent = os.path.dirname(probe)
        if parent == probe:
            return os.path.join(current, BENCH_FILENAME)
        probe = parent


def load_bench_json(path: str) -> Optional[Dict[str, Any]]:
    """Load a ``BENCH_results.json`` payload (``None`` if absent or unreadable)."""
    import json

    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return None
    return payload if isinstance(payload, dict) else None


def make_bench_record(
    name: str, population: int, wall_time_s: Optional[float], steps: int, **extra
) -> Dict[str, Any]:
    """One ``BENCH_results.json`` record; the single place the shape is defined.

    ``steps_per_sec`` is derived; an unknown or zero wall time yields ``None``
    for both timing fields.  Extra keyword arguments pass through (``batch``,
    ``workers``, ``cells``, ...).
    """
    record = {
        "name": str(name),
        "population": int(population),
        "wall_time_s": round(float(wall_time_s), 6) if wall_time_s else None,
        "steps": int(steps),
        "steps_per_sec": round(steps / wall_time_s, 1) if wall_time_s else None,
    }
    record.update(extra)
    return record


def write_bench_json(
    path: str, records: List[Dict[str, Any]], source: str, merge: bool = False
) -> None:
    """Write benchmark records in the shared ``BENCH_results.json`` schema.

    Each record carries ``name``, ``population``, ``wall_time_s``, ``steps``
    and ``steps_per_sec`` (extra keys pass through).  Both the pytest
    benchmark suite and ``python -m repro bench`` emit this schema, so the
    perf trajectory is comparable across PRs regardless of which producer ran.

    With ``merge=True`` the new records are folded into whatever the file
    already holds: records are keyed by ``name``, fresh measurements replace
    stale ones, and untouched names survive.  This is what keeps the perf
    trajectory *cumulative* — a partial benchmark run (one family, one test)
    no longer wipes every other family's record.
    """
    import json

    if merge:
        existing = load_bench_json(path)
        if existing is not None:
            by_name = {
                str(record.get("name", "")): record
                for record in existing.get("results", [])
                if isinstance(record, dict)
            }
            for record in records:
                by_name[str(record.get("name", ""))] = record
            records = list(by_name.values())
    payload = {
        "schema": BENCH_SCHEMA,
        "source": source,
        "results": sorted(records, key=lambda r: str(r.get("name", ""))),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _is_regression(ratio: float, max_regression: float) -> bool:
    """Whether a current/baseline throughput ratio counts as a regression.

    The one definition shared by the plain ``bench-compare`` diff (exit code)
    and the ``--markdown`` trend table, so the two can never disagree about a
    record's status.
    """
    return ratio < 1.0 - max_regression


def _throughput_by_name(payload: Dict[str, Any]) -> Dict[str, float]:
    """Record name -> positive ``steps_per_sec``, the comparable slice of a
    ``BENCH_results.json`` payload (shared by the plain and markdown diffs)."""
    out: Dict[str, float] = {}
    for record in payload.get("results", []):
        if not isinstance(record, dict):
            continue
        value = record.get("steps_per_sec")
        if isinstance(value, (int, float)) and value > 0:
            out[str(record.get("name", ""))] = float(value)
    return out


def compare_bench_results(
    previous: Dict[str, Any],
    current: Dict[str, Any],
    max_regression: float = 0.30,
    name_filter: str = "",
) -> Tuple[List[str], List[str]]:
    """Compare two ``BENCH_results.json`` payloads by per-record throughput.

    Returns ``(regressions, report_lines)``: one human-readable line per
    record name present in *both* payloads with a positive ``steps_per_sec``
    (optionally restricted to names containing ``name_filter``), and a list of
    failure descriptions for every record whose throughput dropped by more
    than ``max_regression`` (e.g. ``0.30`` = fail on >30% slower).  Records
    missing from either side are skipped — a renamed or newly added benchmark
    is not a regression.
    """
    if not 0.0 <= max_regression < 1.0:
        raise ValueError(
            f"max_regression must be a fraction in [0, 1), got {max_regression!r}"
        )

    old = _throughput_by_name(previous)
    new = _throughput_by_name(current)
    regressions: List[str] = []
    lines: List[str] = []
    for name in sorted(set(old) & set(new)):
        if name_filter and name_filter not in name:
            continue
        ratio = new[name] / old[name]
        line = (
            f"{name}: {old[name]:,.0f} -> {new[name]:,.0f} steps/s "
            f"({ratio:.0%} of baseline)"
        )
        if _is_regression(ratio, max_regression):
            regressions.append(
                f"{name}: throughput fell {1.0 - ratio:.0%} "
                f"({old[name]:,.0f} -> {new[name]:,.0f} steps/s; "
                f"limit is {max_regression:.0%})"
            )
            line += "  << REGRESSION"
        lines.append(line)
    return regressions, lines


def format_markdown_trend(
    previous: Dict[str, Any],
    current: Dict[str, Any],
    max_regression: float = 0.30,
    name_filter: str = "",
) -> str:
    """A GitHub-flavoured markdown trend table for two benchmark payloads.

    One row per record name present in both payloads (same matching rules as
    :func:`compare_bench_results`); names only in one side are listed beneath
    the table so added or retired benchmarks stay visible in the job summary.
    Intended for ``python -m repro bench-compare --markdown`` and the CI
    bench-regression job's ``$GITHUB_STEP_SUMMARY``.
    """

    def keep(name: str) -> bool:
        return not name_filter or name_filter in name

    old = _throughput_by_name(previous)
    new = _throughput_by_name(current)
    shared = sorted(name for name in set(old) & set(new) if keep(name))
    lines = [
        "### Benchmark trend"
        + (f" (filter: `{name_filter}`)" if name_filter else ""),
        "",
        "| benchmark | baseline steps/s | current steps/s | ratio | status |",
        "|---|---:|---:|---:|---|",
    ]
    for name in shared:
        ratio = new[name] / old[name]
        if _is_regression(ratio, max_regression):
            status = ":x: regression"
        elif ratio > 1.0 + max_regression:
            status = ":rocket: faster"
        else:
            status = ":white_check_mark: stable"
        lines.append(
            f"| `{name}` | {old[name]:,.0f} | {new[name]:,.0f} | {ratio:.0%} | {status} |"
        )
    if not shared:
        lines.append("| _no overlapping records_ | | | | |")
    added = sorted(name for name in set(new) - set(old) if keep(name))
    removed = sorted(name for name in set(old) - set(new) if keep(name))
    if added:
        lines += ["", "New records (no baseline): " + ", ".join(f"`{n}`" for n in added)]
    if removed:
        lines += ["", "Retired records: " + ", ".join(f"`{n}`" for n in removed)]
    return "\n".join(lines)


def format_profile(rows: Iterable[CellResult], top: int = 10) -> str:
    """A where-did-the-time-go profile over campaign rows (``report --profile``).

    Uses the execution provenance the executors record on every row —
    ``wall_time``, ``cpu_time`` (``time.process_time``), and the worker PID —
    so it works on any ``results.jsonl``, no rerun or tracing required.
    Cached rows carry no execution time and are excluded beyond the headline
    count.  A wall/CPU gap on a cell is the signature of an oversubscribed or
    I/O-starved worker.  Streams ``rows`` in one pass holding only running
    totals and a ``top``-sized heap.
    """
    executed = 0
    wall = 0.0
    cpu = 0.0
    workers: set = set()
    # bounded min-heap of the top-N slowest rows; one pass, O(top) memory
    heap: List[Tuple[float, int, CellResult]] = []
    for row in rows:
        if row.cached:
            continue
        executed += 1
        wall += row.wall_time
        cpu += row.cpu_time or 0.0
        if row.worker is not None:
            workers.add(row.worker)
        if top <= 0:
            continue
        entry = (row.wall_time, -executed, row)
        if len(heap) < top:
            heapq.heappush(heap, entry)
        elif entry[:2] > heap[0][:2]:
            heapq.heappushpop(heap, entry)
    if not executed:
        return "profile: no executed cells (everything cached or recorded earlier)"
    lines = [
        f"profile       : {executed} executed cells, "
        f"{wall:.3f}s wall, {cpu:.3f}s cpu"
        + (f", {len(workers)} workers" if workers else ""),
    ]
    slowest = [entry[2] for entry in sorted(heap, key=lambda e: e[:2], reverse=True)]
    if slowest:
        lines.append(f"slowest cells (top {len(slowest)} by wall time):")
        for row in slowest:
            cpu_part = f" cpu {row.cpu_time:.3f}s" if row.cpu_time is not None else ""
            worker_part = f" worker {row.worker}" if row.worker is not None else ""
            lines.append(
                f"  {row.cell_id}  {row.wall_time:.3f}s{cpu_part}  "
                f"{row.spec}/{row.engine} input={list(row.input)}{worker_part}"
            )
    return "\n".join(lines)


def format_report(summary: CampaignSummary) -> str:
    """A compact human-readable rendering of a summary."""
    lines = [
        f"campaign      : {summary.campaign or '(unnamed)'}",
        f"cells         : {summary.total_cells} "
        f"(ok {summary.ok}, errors {summary.errors}, cache hits {summary.cache_hits})",
        f"convergence   : {summary.convergence_rate:.1%}",
        f"correct       : {summary.correct_rate:.1%}",
        f"mean steps    : {summary.mean_steps:,.1f}",
        f"sim wall time : {summary.wall_time:.3f}s",
    ]
    if summary.corrupt_lines_skipped:
        lines.append(
            f"store warnings: {summary.corrupt_lines_skipped} corrupt interior "
            "line(s) skipped (affected cells re-run on resume)"
        )
    if summary.engines:
        lines.append("per engine    :")
        for name in sorted(summary.engines):
            stats = summary.engines[name]
            throughput = (
                f"{stats.steps_per_sec:,.0f} steps/s"
                if stats.steps_per_sec is not None
                else "throughput n/a (all cached)"
            )
            lines.append(
                f"  {name:<12} {stats.cells} cells, {stats.errors} errors, "
                f"{stats.cache_hits} cached, {throughput}"
            )
    return "\n".join(lines)
