"""Unit tests for eventually-min representations and quilt-affine fitting."""

from fractions import Fraction

import pytest

from repro.quilt.eventually_min import EventuallyMin
from repro.quilt.fitting import (
    detect_period_1d,
    fit_eventually_quilt_affine_1d,
    fit_quilt_affine,
)
from repro.quilt.quilt_affine import QuiltAffine


class TestEventuallyMin:
    def make_min_rep(self):
        return EventuallyMin(
            [QuiltAffine.affine((1, 0), 0), QuiltAffine.affine((0, 1), 0)], (0, 0), name="min"
        )

    def test_evaluation(self):
        rep = self.make_min_rep()
        assert rep((3, 5)) == 3 and rep((7, 2)) == 2

    def test_minimizing_piece(self):
        rep = self.make_min_rep()
        assert rep.minimizing_piece((1, 9)).gradient == (Fraction(1), Fraction(0))

    def test_agrees_with(self):
        rep = self.make_min_rep()
        assert rep.agrees_with(lambda x: min(x))
        assert not rep.agrees_with(lambda x: max(x))

    def test_threshold_respected_in_agreement(self):
        # f equals the min only beyond the threshold (1,1); below it f is 0.
        rep = EventuallyMin(
            [QuiltAffine.affine((1, 0), 1), QuiltAffine.affine((0, 1), 1)], (1, 1)
        )

        def func(x):
            if x[0] == 0 or x[1] == 0:
                return 0
            return min(x) + 1

        assert rep.agrees_with(func)
        assert rep.in_eventual_region((1, 1)) and not rep.in_eventual_region((0, 5))

    def test_dominates(self):
        rep = self.make_min_rep()
        assert rep.dominates(lambda x: min(x))
        assert not rep.dominates(lambda x: max(x))

    def test_common_period(self):
        rep = EventuallyMin(
            [QuiltAffine.floor_linear((3,), 2), QuiltAffine.floor_linear((2,), 3)], (0,)
        )
        assert rep.common_period() == 6

    def test_translated_pieces_nonnegative(self):
        rep = EventuallyMin(
            [QuiltAffine((1, 1), 2, {(0, 0): -2, (1, 1): -2, (1, 0): -1, (0, 1): -1}, validate=False)],
            (2, 2),
        )
        assert rep.nonnegative_after_translation()

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            EventuallyMin([QuiltAffine.affine((1,), 0)], (0, 0))

    def test_empty_pieces_rejected(self):
        with pytest.raises(ValueError):
            EventuallyMin([], (0,))


class Test1DFitting:
    def test_fit_linear(self):
        structure = fit_eventually_quilt_affine_1d(lambda x: 2 * x)
        assert structure.start == 0 and structure.period == 1
        assert structure.deltas == (2,)

    def test_fit_floor_function(self):
        structure = fit_eventually_quilt_affine_1d(lambda x: (3 * x) // 2)
        assert structure.period == 2
        assert sorted(structure.deltas) == [1, 2]
        assert structure.gradient() == Fraction(3, 2)
        for x in range(12):
            assert structure.value(x) == (3 * x) // 2

    def test_fit_with_irregular_prefix(self):
        def func(x):
            table = [0, 0, 1, 5]
            if x < len(table):
                return table[x]
            return 5 + 2 * (x - 3)

        structure = fit_eventually_quilt_affine_1d(func)
        for x in range(20):
            assert structure.value(x) == func(x)

    def test_fit_capped_function(self):
        structure = fit_eventually_quilt_affine_1d(lambda x: min(x, 3))
        assert structure.deltas == (0,)
        assert structure.start <= 3 + 1

    def test_decreasing_function_rejected(self):
        with pytest.raises(ValueError):
            fit_eventually_quilt_affine_1d(lambda x: max(0, 5 - x))

    def test_non_semilinear_function_rejected(self):
        with pytest.raises(ValueError):
            fit_eventually_quilt_affine_1d(lambda x: x * x, max_start=10, max_period=5)

    def test_to_quilt_affine_matches_eventually(self):
        structure = fit_eventually_quilt_affine_1d(lambda x: (3 * x) // 2 + (1 if x > 4 else 0))
        quilt = structure.to_quilt_affine()
        for x in range(structure.start, structure.start + 10):
            assert quilt((x,)) == structure.value(x)

    def test_detect_period(self):
        assert detect_period_1d(lambda x: (3 * x) // 2, start=0) == 2
        assert detect_period_1d(lambda x: x * x, start=0, max_period=4) is None


class TestMultidimensionalFitting:
    def test_fit_quilt_affine_2d(self):
        original = QuiltAffine((1, 2), 3, {(1, 2): -1, (2, 2): -1, (2, 1): -1})
        recovered = fit_quilt_affine(original, 2, 3)
        assert recovered == original

    def test_fit_rejects_wrong_period(self):
        original = QuiltAffine.floor_linear((1, 1), 3)
        with pytest.raises(ValueError):
            fit_quilt_affine(original, 2, 2)
