"""Composition benchmark (Sections 1.2 and 2.3): who wins and by how much.

Regenerates the paper's motivating comparison: concatenating a doubling CRN
after ``min`` computes ``2·min`` correctly, while the same concatenation after
``max`` locks in part of the transient overshoot — the locked-in excess grows
roughly like the input (up to ``2(x1 + x2)`` total output).  Also measures a
three-stage pipeline to show composition depth scaling.
"""

import pytest

from repro.crn.composition import concatenate
from repro.crn.species import species
from repro.crn.network import CRN
from repro.functions.catalog import double_spec, maximum_spec, minimum_spec
from repro.sim.fair import FairScheduler, output_producing_bias
from repro.verify.composition import verify_composition


def test_composition_min_then_double(benchmark):
    def run():
        return verify_composition(
            minimum_spec().known_crn,
            double_spec().known_crn,
            lambda x: min(x),
            lambda w: 2 * w[0],
            inputs=[(1, 2), (2, 2), (3, 1)],
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.passed
    print("\n[composition] 2·min by concatenation: PASS (upstream output-oblivious)")


def test_composition_max_then_double_locks_in_excess(benchmark):
    composed = concatenate(
        maximum_spec().known_crn, double_spec().known_crn, require_output_oblivious=False
    )

    def run():
        rows = {}
        for size in (2, 4, 8):
            scheduler = FairScheduler(composed, bias=output_producing_bias(composed))
            result = scheduler.run_on_input((size, size), quiescence_window=60 * size, max_steps=200_000)
            target = 2 * size
            rows[size] = result.output_count(composed) - target
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n[composition] 2·max by naive concatenation — locked-in excess output per input size:")
    for size, excess in rows.items():
        print(f"  input ({size},{size}): final output exceeds 2·max by {excess}")
    # The adversarial schedule locks in a positive excess that grows with the input.
    assert rows[8] >= rows[2]
    assert max(rows.values()) > 0


def test_three_stage_pipeline_depth(benchmark):
    W, Y, Z = species("W Y Z")
    floor_crn = CRN([W >> 3 * Z, 2 * Z >> Y], (W,), Y, name="floor(3w/2)")

    def run():
        stage2 = concatenate(minimum_spec().known_crn, double_spec().known_crn)
        stage3 = concatenate(stage2, floor_crn)
        return stage3

    pipeline = benchmark(run)
    assert pipeline.is_output_oblivious()
    print(f"\n[composition] three-stage pipeline floor(3·(2·min)/2): size {pipeline.size()}")
