"""Unit tests for semilinear functions and predicates (Definition 2.6)."""

from fractions import Fraction

import pytest

from repro.semilinear.functions import AffinePiece, SemilinearFunction
from repro.semilinear.predicates import (
    coordinate_exceeds,
    majority_predicate,
    parity_predicate,
    threshold_predicate,
)
from repro.semilinear.sets import ModSet, ThresholdSet, UniversalSet


class TestAffinePiece:
    def test_value_and_domain(self):
        piece = AffinePiece(ThresholdSet((1,), 2), (Fraction(2),), Fraction(1))
        assert piece.applies_to((3,)) and not piece.applies_to((1,))
        assert piece.value((3,)) == 7

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            AffinePiece(UniversalSet(2), (Fraction(1),), Fraction(0))


class TestSemilinearFunction:
    def make_min(self):
        return SemilinearFunction(
            [
                AffinePiece(ThresholdSet((-1, 1), 0), (Fraction(1), Fraction(0)), Fraction(0)),
                AffinePiece(UniversalSet(2), (Fraction(0), Fraction(1)), Fraction(0)),
            ],
            name="min",
        )

    def test_evaluation_matches_min(self):
        func = self.make_min()
        for x in [(0, 0), (2, 5), (5, 2), (3, 3)]:
            assert func(x) == min(x)

    def test_affine_constructor(self):
        func = SemilinearFunction.affine((2, 1), 3)
        assert func((1, 1)) == 6

    def test_floor_function_via_mod_domains(self):
        # floor(3x/2) as two affine pieces with parity domains.
        even = ModSet((1,), 0, 2)
        odd = ModSet((1,), 1, 2)
        func = SemilinearFunction(
            [
                AffinePiece(even, (Fraction(3, 2),), Fraction(0)),
                AffinePiece(odd, (Fraction(3, 2),), Fraction(-1, 2)),
            ],
            name="floor(3x/2)",
        )
        assert [func((x,)) for x in range(6)] == [0, 1, 3, 4, 6, 7]
        assert func.global_period() == 2

    def test_non_integer_value_rejected(self):
        func = SemilinearFunction([AffinePiece(UniversalSet(1), (Fraction(1, 2),), Fraction(0))])
        with pytest.raises(ValueError):
            func((1,))

    def test_negative_value_rejected(self):
        func = SemilinearFunction([AffinePiece(UniversalSet(1), (Fraction(1),), Fraction(-5))])
        with pytest.raises(ValueError):
            func((1,))

    def test_uncovered_point_rejected(self):
        func = SemilinearFunction([AffinePiece(ThresholdSet((1,), 5), (Fraction(1),), Fraction(0))])
        with pytest.raises(ValueError):
            func((1,))
        assert not func.is_total_upto(3)

    def test_nondecreasing_check(self):
        assert self.make_min().is_nondecreasing_upto(5)
        decreasing = SemilinearFunction(
            [
                AffinePiece(ThresholdSet((1,), 3), (Fraction(0),), Fraction(0)),
                AffinePiece(UniversalSet(1), (Fraction(0),), Fraction(2)),
            ]
        )
        assert not decreasing.is_nondecreasing_upto(6)

    def test_agrees_with_upto(self):
        assert self.make_min().agrees_with_upto(lambda x: min(x), 5)
        assert not self.make_min().agrees_with_upto(lambda x: max(x), 5)

    def test_threshold_and_mod_atom_collection(self):
        func = self.make_min()
        assert len(func.threshold_atoms()) == 1
        assert func.global_period() == 1

    def test_mismatched_piece_dimensions_rejected(self):
        with pytest.raises(ValueError):
            SemilinearFunction(
                [
                    AffinePiece(UniversalSet(1), (Fraction(1),), Fraction(0)),
                    AffinePiece(UniversalSet(2), (Fraction(1), Fraction(1)), Fraction(0)),
                ]
            )

    def test_empty_pieces_rejected(self):
        with pytest.raises(ValueError):
            SemilinearFunction([])


class TestPredicates:
    def test_majority(self):
        pred = majority_predicate()
        assert pred((3, 2)) == 1 and pred((2, 3)) == 0

    def test_threshold(self):
        pred = threshold_predicate((1, 1), 4)
        assert pred((2, 2)) == 1 and pred((1, 2)) == 0

    def test_parity(self):
        pred = parity_predicate(dimension=2, modulus=2, residue=1)
        assert pred((1, 2)) == 1 and pred((1, 1)) == 0

    def test_coordinate_exceeds(self):
        pred = coordinate_exceeds(dimension=3, index=1, threshold=2)
        assert pred((0, 3, 0)) == 1 and pred((5, 2, 5)) == 0

    def test_boolean_combinations(self):
        pred = majority_predicate().conjunction(parity_predicate(dimension=2))
        assert pred((3, 1)) == 1          # majority and even sum
        assert pred((3, 2)) == 0          # odd sum
        negated = majority_predicate().negation()
        assert negated((1, 5)) == 1

    def test_coordinate_exceeds_bounds_checked(self):
        with pytest.raises(ValueError):
            coordinate_exceeds(dimension=2, index=5, threshold=0)
