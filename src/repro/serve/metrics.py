"""Server-side observability for :mod:`repro.serve`.

One :class:`ServerMetrics` instance lives on the server state and is mutated
only from the event-loop thread.  Since PR 8 it is a *view* over a shared
:class:`repro.obs.metrics.MetricsRegistry` rather than a pile of ad-hoc dict
counters: every ``record_*`` call increments a named registry series, the
``GET /v1/stats`` JSON snapshot reads those series back, and
``GET /v1/metrics`` renders the very same registry as Prometheus text — the
two endpoints cannot drift apart.  The server passes its registry to its
:class:`~repro.lab.cache.ResultCache`, so cache get/put latency histograms
land in the same exposition.

What the ``/v1/stats`` contract promises:

* **cache memo effectiveness** — hits vs. misses across simulate /
  expected-output requests and job cells, plus the derived hit rate (this is
  the number that tells an operator the memo is actually absorbing repeat
  traffic);
* **per-engine demand** — how many requests *named* each engine vs. how many
  actually *executed* on it (requests minus executed = requests the cache
  absorbed);
* **latency percentiles** — p50/p90/p99 and mean per endpoint over a bounded
  sliding window (:class:`LatencyWindow`, which also reports its lifetime
  ``total_count`` so long-running servers don't under-report traffic), so a
  hot cache path and a cold simulate path are visible as separate
  distributions.  Percentile windows are not a Prometheus-native shape; the
  registry carries a parallel latency *histogram* for scraping;
* **job lifecycle counters** — submitted / completed / cancelled / failed /
  rejected (backpressure 429s), and cell-level executed vs. from-cache.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any, Deque, Dict, Optional

from repro.obs.metrics import MetricsRegistry

#: The job-lifecycle events /v1/stats always reports, even at zero.
JOB_EVENTS = (
    "submitted",
    "completed",
    "cancelled",
    "failed",
    "rejected",
    "cells_executed",
    "cells_from_cache",
)


def percentile(sorted_values, fraction: float) -> float:
    """Nearest-rank percentile of an already-sorted nonempty sequence."""
    if not sorted_values:
        raise ValueError("percentile of an empty sequence is undefined")
    rank = max(0, min(len(sorted_values) - 1, round(fraction * (len(sorted_values) - 1))))
    return float(sorted_values[rank])


class LatencyWindow:
    """A bounded sliding window of request durations (seconds).

    ``count``/``total`` are lifetime aggregates; the deque keeps only the
    last ``size`` samples for the percentile view, so after wrap-around
    ``snapshot_ms()['window'] < snapshot_ms()['total_count']``.
    """

    def __init__(self, size: int = 512) -> None:
        self._samples: Deque[float] = deque(maxlen=size)
        self.count = 0
        self.total = 0.0

    def record(self, seconds: float) -> None:
        self._samples.append(float(seconds))
        self.count += 1
        self.total += float(seconds)

    def snapshot_ms(self) -> Dict[str, float]:
        """Percentiles (in milliseconds) over the current window.

        ``window`` is the number of samples the percentiles were computed
        from; ``total_count`` is the lifetime number of recordings (they
        diverge once the window wraps).  Empty windows return ``{}``.
        """
        window = sorted(self._samples)
        if not window:
            return {}
        return {
            "p50_ms": round(percentile(window, 0.50) * 1000, 3),
            "p90_ms": round(percentile(window, 0.90) * 1000, 3),
            "p99_ms": round(percentile(window, 0.99) * 1000, 3),
            "mean_ms": round(sum(window) / len(window) * 1000, 3),
            "window": len(window),
            "total_count": self.count,
        }


class ServerMetrics:
    """All counters behind ``GET /v1/stats`` and ``GET /v1/metrics``.

    Mutation happens on the event-loop thread only; the registry's own lock
    additionally makes cross-thread reads (tests, the cache's worker-side
    updates) safe.  Each instance owns a private registry unless one is
    passed in, so parallel test servers never cross-count.
    """

    def __init__(
        self,
        latency_window: int = 512,
        registry: Optional[MetricsRegistry] = None,
        version: str = "",
    ) -> None:
        self.started_at = time.time()
        self.version = version
        self._latency_window = latency_window
        self.registry = registry if registry is not None else MetricsRegistry()
        self.latencies: Dict[str, LatencyWindow] = {}

        self._requests = self.registry.counter(
            "repro_http_requests_total",
            "HTTP requests served, by endpoint template and status code.",
            labels=("endpoint", "status"),
        )
        self._request_seconds = self.registry.histogram(
            "repro_http_request_seconds",
            "HTTP request handling latency, by endpoint template.",
            labels=("endpoint",),
        )
        self._cache = self.registry.counter(
            "repro_cache_requests_total",
            "Server-side memo lookups, by result (hit/miss).",
            labels=("result",),
        )
        self._engine_requests = self.registry.counter(
            "repro_engine_requests_total",
            "Requests that named each engine (before the cache absorbed any).",
            labels=("engine",),
        )
        self._engine_executed = self.registry.counter(
            "repro_engine_executed_total",
            "Simulations that actually executed on each engine.",
            labels=("engine",),
        )
        self._jobs = self.registry.counter(
            "repro_job_events_total",
            "Job lifecycle events (submitted/completed/cancelled/failed/"
            "rejected) and cell outcomes (cells_executed/cells_from_cache).",
            labels=("event",),
        )
        self._uptime = self.registry.gauge(
            "repro_server_uptime_seconds", "Seconds since the server booted."
        )
        # Pre-touch the series /v1/stats always reports, so a fresh server
        # exposes them at zero instead of omitting them.
        self._cache.labels(result="hit").inc(0)
        self._cache.labels(result="miss").inc(0)
        for event in JOB_EVENTS:
            self._jobs.labels(event=event).inc(0)

    # -- recording --------------------------------------------------------------

    def record_request(self, endpoint: str, status: int, seconds: float) -> None:
        self._requests.labels(endpoint=endpoint, status=str(int(status))).inc()
        self._request_seconds.labels(endpoint=endpoint).observe(seconds)
        self.latencies.setdefault(
            endpoint, LatencyWindow(self._latency_window)
        ).record(seconds)

    def record_cache(self, hit: bool) -> None:
        self._cache.labels(result="hit" if hit else "miss").inc()

    def record_engine_request(self, engine: str) -> None:
        self._engine_requests.labels(engine=str(engine)).inc()
        self._engine_executed.labels(engine=str(engine)).inc(0)

    def record_engine_executed(self, engine: str) -> None:
        self._engine_requests.labels(engine=str(engine)).inc(0)
        self._engine_executed.labels(engine=str(engine)).inc(0)
        self._engine_executed.labels(engine=str(engine)).inc()

    def record_job_event(self, event: str, count: int = 1) -> None:
        self._jobs.labels(event=str(event)).inc(count)

    # -- reporting --------------------------------------------------------------

    @property
    def cache_hits(self) -> int:
        return int(self._cache.value_of(("hit",)))

    @property
    def cache_misses(self) -> int:
        return int(self._cache.value_of(("miss",)))

    @property
    def cache_hit_rate(self) -> Optional[float]:
        total = self.cache_hits + self.cache_misses
        return (self.cache_hits / total) if total else None

    def touch(self) -> None:
        """Refresh derived gauges (uptime) before a registry render."""
        self._uptime.set(round(time.time() - self.started_at, 3))

    def snapshot(self) -> Dict[str, Any]:
        """The ``/v1/stats`` payload body (JSON-serializable, stable keys).

        Everything here is read back *from the registry*, so this JSON view
        and the Prometheus text of ``GET /v1/metrics`` can never disagree.
        """
        requests: Dict[str, Dict[str, Any]] = {}
        for (endpoint, status), value in sorted(self._requests.series().items()):
            entry = requests.setdefault(endpoint, {"count": 0, "by_status": {}})
            entry["count"] += int(value)
            entry["by_status"][status] = entry["by_status"].get(status, 0) + int(value)
        for endpoint, entry in requests.items():
            window = self.latencies.get(endpoint)
            entry["latency"] = window.snapshot_ms() if window is not None else {}

        engines: Dict[str, Dict[str, int]] = {}
        for (engine,), value in self._engine_requests.series().items():
            engines.setdefault(engine, {"requests": 0, "executed": 0})["requests"] = int(value)
        for (engine,), value in self._engine_executed.series().items():
            engines.setdefault(engine, {"requests": 0, "executed": 0})["executed"] = int(value)

        jobs = {event: int(self._jobs.value_of((event,))) for event in JOB_EVENTS}
        for (event,), value in self._jobs.series().items():
            jobs[event] = int(value)

        uptime = round(time.time() - self.started_at, 3)
        hit_rate = self.cache_hit_rate
        snapshot: Dict[str, Any] = {
            "uptime_seconds": uptime,
            "uptime_s": uptime,
            "cache": {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "hit_rate": round(hit_rate, 6) if hit_rate is not None else None,
            },
            "engines": engines,
            "requests": requests,
            "jobs": jobs,
        }
        if self.version:
            snapshot["version"] = self.version
        return snapshot
