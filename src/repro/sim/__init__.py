"""Simulators for discrete CRNs: one scalar kernel + a numpy batch engine.

Two scheduling semantics are provided, each in a scalar and a vectorized form:

* **Gillespie** — the exact stochastic simulation algorithm (Gillespie 1977),
  sampling the continuous-time Markov process the paper describes.  Used for
  kinetic experiments and throughput benchmarks.
* **Fair** — a rate-agnostic scheduler that repeatedly fires a uniformly
  random applicable reaction.  Stable computation is defined purely by
  reachability, so a fair random scheduler converges to the stable output with
  probability 1; this is the workhorse of the empirical verification harness
  for inputs too large for exhaustive search.

Both forms run over the single :class:`~repro.sim.engine.CompiledCRN` IR.
The scalar side is the kernel (:mod:`repro.sim.kernel`): one
:class:`~repro.sim.kernel.SimulatorCore` step loop with pluggable
:class:`~repro.sim.kernel.StepPolicy` strategies and Gibson–Bruck
dependency-graph propensity updates; ``GillespieSimulator`` / ``FairScheduler``
are thin compatibility shims over it.  The batch engines
(:mod:`repro.sim.engine`) advance ``B`` trajectories per numpy step and are
selected via ``engine="vectorized"`` in the runner helpers.  Engines are
looked up in the pluggable registry (:mod:`repro.sim.registry`) — register a
new backend with ``@register_engine("name")`` and it becomes addressable
everywhere an ``engine=`` selector is accepted.  See ``DESIGN.md`` §5 for the
kernel architecture and seeding policy.

API
---

======================================  =======================================================
Symbol                                  Purpose
======================================  =======================================================
``GillespieSimulator`` / ``..Result``   Scalar exact SSA over one trajectory (kernel shim).
``FairScheduler`` / ``FairRunResult``   Scalar rate-independent scheduler (kernel shim).
``output_producing_bias``               Adversarial bias: prefer output-producing reactions.
``output_consuming_bias``               Adversarial bias: prefer output-consuming reactions.
``SimulatorCore``                       The scalar step loop over the compiled IR.
``StepPolicy``                          Base class for pluggable scheduling strategies.
``GillespiePolicy`` / ``FairPolicy``    The two original exact built-in step policies.
``NextReactionPolicy``                  Exact SSA, Gibson–Bruck next-reaction method:
                                        putative times in an indexed heap (``engine="nrm"``).
``IndexedPriorityQueue``                Binary min-heap with O(log n) key updates (NRM core).
``TauLeapPolicy``                       Approximate SSA: Poisson firing batches per leap
                                        (``engine="tau"``, ``RunConfig.epsilon`` knob).
``KernelRunResult``                     Raw result of one ``SimulatorCore.run``.
``CompiledCRN``                         The shared IR: dense stoichiometry + sparse terms +
                                        reaction dependency graph.
``BatchGillespieEngine``                Vectorized SSA: B independent trajectories per step.
``BatchTauLeapEngine``                  Vectorized tau-leaping: the whole batch advances one
                                        CGP leap per round (``engine="tau-vec"``).
``BatchFairEngine``                     Vectorized fair scheduler with quiescence windows.
``BatchRunResult``                      Array-valued result of a batch run.
``Trajectory`` / ``TrajectoryPoint``    Recorded species counts along a scalar run.
``ConvergenceReport``                   Aggregate statistics over repeated runs.
``run_to_convergence``                  One fair run until silence / quiescence.
``run_many``                            Repeated runs
                                        (``engine="python"|"vectorized"|"nrm"|"tau"|"tau-vec"``).
``estimate_expected_output``            Monte-Carlo mean output under Gillespie kinetics.
``sweep_inputs``                        ``run_many`` over a collection of inputs (per-input seeds).
``default_quiescence_window``           Population-scaled convergence-detection window.
``register_engine`` / ``EngineInfo``    Pluggable engine registry (capability metadata).
``get_engine`` / ``engine_names``       Registry lookup / the registered selector values.
``check_engine``                        Validate an ``engine=`` selector against the registry.
``ENGINES``                             Live tuple of registered engine names (back-compat).
======================================  =======================================================
"""

from repro.sim.gillespie import GillespieSimulator, GillespieResult
from repro.sim.fair import (
    FairScheduler,
    FairRunResult,
    output_consuming_bias,
    output_producing_bias,
)
from repro.sim.engine import (
    BatchFairEngine,
    BatchGillespieEngine,
    BatchRunResult,
    BatchTauLeapEngine,
    CompiledCRN,
)
from repro.sim.kernel import (
    FairPolicy,
    GillespiePolicy,
    IndexedPriorityQueue,
    KernelRunResult,
    NextReactionPolicy,
    SimulatorCore,
    StepPolicy,
    TauLeapPolicy,
    default_quiescence_window,
)
from repro.sim.trajectory import Trajectory, TrajectoryPoint
from repro.sim.registry import (
    EngineInfo,
    check_engine,
    engine_names,
    get_engine,
    register_engine,
    registered_engines,
    unregister_engine,
)
from repro.sim.runner import (
    ConvergenceReport,
    run_to_convergence,
    run_many,
    estimate_expected_output,
    sweep_inputs,
)


def __getattr__(name: str):
    # ``ENGINES`` used to be a hard-coded tuple; it is now a live view of the
    # engine registry so runtime registrations show up too.
    if name == "ENGINES":
        return engine_names()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "GillespieSimulator",
    "GillespieResult",
    "FairScheduler",
    "FairRunResult",
    "output_producing_bias",
    "output_consuming_bias",
    "CompiledCRN",
    "BatchGillespieEngine",
    "BatchTauLeapEngine",
    "BatchFairEngine",
    "BatchRunResult",
    "SimulatorCore",
    "StepPolicy",
    "GillespiePolicy",
    "FairPolicy",
    "NextReactionPolicy",
    "IndexedPriorityQueue",
    "TauLeapPolicy",
    "KernelRunResult",
    "Trajectory",
    "TrajectoryPoint",
    "ConvergenceReport",
    "run_to_convergence",
    "run_many",
    "estimate_expected_output",
    "sweep_inputs",
    "default_quiescence_window",
    "EngineInfo",
    "register_engine",
    "registered_engines",
    "unregister_engine",
    "get_engine",
    "engine_names",
    "check_engine",
    "ENGINES",
]
