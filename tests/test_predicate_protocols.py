"""Tests for the classical predicate-computing population protocols."""

import pytest

from repro.protocols.predicate_protocols import (
    OpinionProtocol,
    majority_protocol,
    threshold_protocol,
)


class TestMajorityProtocol:
    def test_structure(self):
        protocol = majority_protocol()
        assert set(protocol.input_states) == {"A", "B"}
        assert protocol.leader_state is None
        assert protocol.opinions["A"] is True and protocol.opinions["B"] is False

    @pytest.mark.parametrize("a, b, expected", [(6, 2, True), (2, 6, False), (7, 3, True), (1, 5, False)])
    def test_clear_majorities(self, a, b, expected):
        protocol = majority_protocol()
        consensus, _ = protocol.run((a, b), seed=42)
        assert consensus is expected

    def test_tie_reports_true(self):
        protocol = majority_protocol()
        consensus, _ = protocol.run((4, 4), seed=7)
        assert consensus is True

    def test_empty_population(self):
        protocol = majority_protocol()
        consensus, interactions = protocol.run((0, 0), seed=1)
        assert interactions == 0

    def test_input_arity_checked(self):
        with pytest.raises(ValueError):
            majority_protocol().run((1, 2, 3))


class TestThresholdProtocol:
    def test_structure(self):
        protocol = threshold_protocol(3)
        assert protocol.leader_state == "L0"
        assert protocol.opinions["L3"] is True

    @pytest.mark.parametrize("count, k, expected", [(0, 2, False), (1, 2, False), (2, 2, True), (5, 2, True), (3, 4, False), (4, 4, True)])
    def test_threshold_decisions(self, count, k, expected):
        protocol = threshold_protocol(k)
        consensus, _ = protocol.run((count,), seed=11)
        assert consensus is expected

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            threshold_protocol(0)


class TestOpinionProtocolBasics:
    def test_consensus_helper(self):
        protocol = majority_protocol()
        assert protocol.consensus(["A", "a"]) is True
        assert protocol.consensus(["A", "b"]) is None
        assert protocol.consensus(["B", "b"]) is False

    def test_initial_population_includes_leader(self):
        protocol = threshold_protocol(2)
        agents = protocol.initial_population((3,))
        assert agents.count("A") == 3 and agents.count("L0") == 1
