"""Tests for the Lemma 6.2 general construction and Observation 5.3 restrictions."""

import pytest

from repro.core.construction_general import build_general_crn, construction_size_general
from repro.core.restrictions import hardcode_input
from repro.core.specs import FunctionSpec
from repro.crn.reachability import stably_computes_exhaustive
from repro.functions.catalog import min_one_spec, minimum_spec
from repro.functions.paper_examples import (
    fig4a_style_spec,
    fig7_spec,
    interior_min_plus_one_spec,
)
from repro.verify.stable import verify_stable_computation


class TestDispatch:
    def test_1d_delegates_to_theorem_31(self):
        spec = FunctionSpec("cap", 1, lambda x: min(x[0], 2))
        crn = build_general_crn(spec)
        verdicts = stably_computes_exhaustive(crn, lambda x: min(x[0], 2), [(v,) for v in range(5)])
        assert all(v.holds and v.conclusive for v in verdicts)

    def test_requires_eventually_min_in_2d(self):
        spec = FunctionSpec("min", 2, lambda x: min(x))
        with pytest.raises(ValueError):
            build_general_crn(spec)

    def test_zero_dimension_rejected(self):
        spec = FunctionSpec("const", 0, lambda x: 3)
        with pytest.raises(ValueError):
            build_general_crn(spec)


class TestThresholdZero:
    def test_min_via_general_construction(self):
        spec = minimum_spec()
        crn = build_general_crn(spec)
        assert crn.is_output_oblivious()
        verdicts = stably_computes_exhaustive(
            crn, lambda x: min(x), [(0, 0), (1, 0), (2, 1), (2, 3)], max_configurations=40_000
        )
        assert all(v.holds and v.conclusive for v in verdicts), [
            (v.input_value, v.failure_reason) for v in verdicts if not v.holds
        ]

    def test_fig7_function_via_general_construction(self):
        spec = fig7_spec()
        crn = build_general_crn(spec)
        assert crn.is_output_oblivious()
        report = verify_stable_computation(
            crn,
            spec.func,
            inputs=[(0, 0), (1, 1), (1, 2), (2, 1), (2, 2)],
            exhaustive_limit=8_000,
            trials=4,
        )
        assert report.passed, report.describe()


class TestNonzeroThreshold:
    def test_interior_min_plus_one(self):
        spec = interior_min_plus_one_spec()
        crn = build_general_crn(spec)
        assert crn.is_output_oblivious()
        report = verify_stable_computation(
            crn,
            spec.func,
            inputs=[(0, 0), (0, 2), (1, 1), (2, 1), (2, 2)],
            exhaustive_limit=6_000,
            trials=4,
        )
        assert report.passed, report.describe()

    def test_fig4a_style_function(self):
        spec = fig4a_style_spec()
        crn = build_general_crn(spec)
        assert crn.is_output_oblivious()
        report = verify_stable_computation(
            crn,
            spec.func,
            inputs=[(0, 0), (1, 3), (2, 2), (3, 2), (3, 4)],
            method="simulation",
            trials=4,
        )
        assert report.passed, report.describe()

    def test_size_grows_with_threshold(self):
        small = construction_size_general(minimum_spec())
        large = construction_size_general(fig4a_style_spec())
        assert large["reactions"] > small["reactions"]
        assert large["species"] > small["species"]


class TestHardcodeInput:
    def test_restriction_of_min(self):
        spec = min_one_spec()
        crn = hardcode_input(spec.known_crn, index=0, value=3)
        # f(x) = min(1, x) with x hard-coded to 3 is the constant 1.
        verdicts = stably_computes_exhaustive(crn, lambda x: 1, [(0,), (2,), (5,)])
        assert all(v.holds and v.conclusive for v in verdicts)

    def test_hardcode_requires_leader(self):
        spec = minimum_spec()
        with pytest.raises(ValueError):
            hardcode_input(spec.known_crn, index=0, value=1)

    def test_hardcoded_crn_stays_output_oblivious(self):
        spec = min_one_spec()
        crn = hardcode_input(spec.known_crn, index=0, value=2)
        assert crn.is_output_oblivious()
