"""Server-side observability for :mod:`repro.serve`.

One :class:`ServerMetrics` instance lives on the server state and is mutated
only from the event-loop thread, so no locks are needed.  It tracks exactly
what the ``GET /v1/stats`` contract promises:

* **cache memo effectiveness** — hits vs. misses across simulate /
  expected-output requests and job cells, plus the derived hit rate (this is
  the number that tells an operator the memo is actually absorbing repeat
  traffic);
* **per-engine demand** — how many requests *named* each engine vs. how many
  actually *executed* on it (requests minus executed = requests the cache
  absorbed);
* **latency percentiles** — p50/p90/p99 and mean per endpoint over a bounded
  sliding window (:class:`LatencyWindow`), so a hot cache path and a cold
  simulate path are visible as separate distributions;
* **job lifecycle counters** — submitted / completed / cancelled / failed /
  rejected (backpressure 429s), and cell-level executed vs. from-cache.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any, Deque, Dict, Optional


def percentile(sorted_values, fraction: float) -> float:
    """Nearest-rank percentile of an already-sorted nonempty sequence."""
    if not sorted_values:
        raise ValueError("percentile of an empty sequence is undefined")
    rank = max(0, min(len(sorted_values) - 1, round(fraction * (len(sorted_values) - 1))))
    return float(sorted_values[rank])


class LatencyWindow:
    """A bounded sliding window of request durations (seconds)."""

    def __init__(self, size: int = 512) -> None:
        self._samples: Deque[float] = deque(maxlen=size)
        self.count = 0
        self.total = 0.0

    def record(self, seconds: float) -> None:
        self._samples.append(float(seconds))
        self.count += 1
        self.total += float(seconds)

    def snapshot_ms(self) -> Dict[str, float]:
        """Percentiles (in milliseconds) over the current window."""
        window = sorted(self._samples)
        if not window:
            return {}
        return {
            "p50_ms": round(percentile(window, 0.50) * 1000, 3),
            "p90_ms": round(percentile(window, 0.90) * 1000, 3),
            "p99_ms": round(percentile(window, 0.99) * 1000, 3),
            "mean_ms": round(sum(window) / len(window) * 1000, 3),
            "window": len(window),
        }


class ServerMetrics:
    """All counters behind ``GET /v1/stats``; event-loop-thread only."""

    def __init__(self, latency_window: int = 512) -> None:
        self.started_at = time.time()
        self._latency_window = latency_window
        self.requests: Dict[str, Dict[str, Any]] = {}
        self.latencies: Dict[str, LatencyWindow] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        self.engines: Dict[str, Dict[str, int]] = {}
        self.jobs = {
            "submitted": 0,
            "completed": 0,
            "cancelled": 0,
            "failed": 0,
            "rejected": 0,
            "cells_executed": 0,
            "cells_from_cache": 0,
        }

    # -- recording --------------------------------------------------------------

    def record_request(self, endpoint: str, status: int, seconds: float) -> None:
        entry = self.requests.setdefault(endpoint, {"count": 0, "by_status": {}})
        entry["count"] += 1
        key = str(int(status))
        entry["by_status"][key] = entry["by_status"].get(key, 0) + 1
        self.latencies.setdefault(
            endpoint, LatencyWindow(self._latency_window)
        ).record(seconds)

    def record_cache(self, hit: bool) -> None:
        if hit:
            self.cache_hits += 1
        else:
            self.cache_misses += 1

    def record_engine_request(self, engine: str) -> None:
        self._engine_entry(engine)["requests"] += 1

    def record_engine_executed(self, engine: str) -> None:
        self._engine_entry(engine)["executed"] += 1

    def record_job_event(self, event: str, count: int = 1) -> None:
        self.jobs[event] = self.jobs.get(event, 0) + count

    def _engine_entry(self, engine: str) -> Dict[str, int]:
        return self.engines.setdefault(str(engine), {"requests": 0, "executed": 0})

    # -- reporting --------------------------------------------------------------

    @property
    def cache_hit_rate(self) -> Optional[float]:
        total = self.cache_hits + self.cache_misses
        return (self.cache_hits / total) if total else None

    def snapshot(self) -> Dict[str, Any]:
        """The ``/v1/stats`` payload body (JSON-serializable, stable keys)."""
        requests = {}
        for endpoint, entry in self.requests.items():
            requests[endpoint] = dict(entry)
            requests[endpoint]["latency"] = self.latencies[endpoint].snapshot_ms()
        hit_rate = self.cache_hit_rate
        return {
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "cache": {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "hit_rate": round(hit_rate, 6) if hit_rate is not None else None,
            },
            "engines": {name: dict(entry) for name, entry in self.engines.items()},
            "requests": requests,
            "jobs": dict(self.jobs),
        }
