"""Figure 8 benchmark: hyperplane arrangements, regions, and recession cones.

Regenerates the classification tables behind Fig. 8: the 2D arrangement of
three threshold hyperplanes (Fig. 8a/8b) and the 3D arrangement of two pairs of
parallel hyperplanes (Fig. 8c/8d), listing each eventual region with the
dimension of its recession cone, its determined/under-determined status, and
(for under-determined regions) its determined neighbors.
"""

import pytest

from repro.geometry.hyperplanes import Hyperplane
from repro.geometry.regions import enumerate_regions


def classify(planes, dimension, bound):
    regions = enumerate_regions(planes, dimension, bound=bound)
    rows = []
    for region in regions:
        cone = region.recession_cone()
        rows.append(
            {
                "signs": region.signs,
                "eventual": region.is_eventual(),
                "cone_dim": cone.dim(),
                "determined": region.is_determined(),
            }
        )
    return regions, rows


def test_fig8a_two_dimensional_arrangement(benchmark):
    planes = [Hyperplane((1, -1), 1), Hyperplane((-1, 1), 1), Hyperplane((1, 0), 4)]

    def run():
        return classify(planes, 2, bound=12)

    regions, rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n[Fig. 8a/8b] 2D arrangement (3 hyperplanes):")
    for row in rows:
        print(f"  signs={row['signs']} eventual={row['eventual']} "
              f"recc-dim={row['cone_dim']} determined={row['determined']}")
    eventual = [row for row in rows if row["eventual"]]
    assert any(row["determined"] for row in eventual)
    assert any(not row["determined"] for row in eventual)


def test_fig8c_three_dimensional_arrangement(benchmark):
    planes = [
        Hyperplane((1, -1, 0), 1),
        Hyperplane((-1, 1, 0), 1),
        Hyperplane((0, 1, -1), 1),
        Hyperplane((0, -1, 1), 1),
    ]

    def run():
        return classify(planes, 3, bound=6)

    regions, rows = benchmark.pedantic(run, rounds=1, iterations=1)
    eventual_rows = [row for row in rows if row["eventual"]]
    print(f"\n[Fig. 8c/8d] 3D arrangement: {len(rows)} realized regions, {len(eventual_rows)} eventual")
    dims = sorted({row["cone_dim"] for row in eventual_rows})
    histogram = {dim: sum(1 for row in eventual_rows if row["cone_dim"] == dim) for dim in dims}
    print(f"  recession-cone dimension histogram over eventual regions: {histogram}")
    # Fig. 8c: 9 eventual regions — 4 determined (3D cones), 4 with 2D cones, 1 with a 1D cone.
    assert histogram.get(3, 0) == 4
    assert histogram.get(2, 0) == 4
    assert histogram.get(1, 0) == 1


def test_fig8_neighbor_structure(benchmark):
    planes = [
        Hyperplane((1, -1, 0), 1),
        Hyperplane((-1, 1, 0), 1),
        Hyperplane((0, 1, -1), 1),
        Hyperplane((0, -1, 1), 1),
    ]

    def run():
        regions = enumerate_regions(planes, 3, bound=6)
        eventual = [r for r in regions if r.is_eventual()]
        center = next(r for r in eventual if r.recession_cone().dim() == 1)
        determined = [r for r in eventual if r.is_determined()]
        neighbors = [r for r in determined if r.is_neighbor_of(center)]
        return center, determined, neighbors

    center, determined, neighbors = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n[Fig. 8d] the 1D-cone region has {len(neighbors)} determined neighbors "
          f"out of {len(determined)} determined regions")
    # Corollary 7.19: at least two determined neighbors exist.
    assert len(neighbors) >= 2
