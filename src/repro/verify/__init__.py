"""Empirical verification harness.

Stable computation is a reachability property, checked here two ways:

* exhaustively, by exploring the full reachability graph for small inputs
  (:mod:`repro.crn.reachability`), and
* statistically, by running the fair random scheduler repeatedly and checking
  that every run converges to the expected output
  (:func:`repro.verify.stable.verify_stable_computation`).

The package also audits output-obliviousness, searches for overproduction
witnesses (the failure mode of composing non-output-oblivious CRNs,
Section 1.2), and checks compositions end to end.
"""

from repro.verify.oblivious import ObliviousnessReport, audit_output_oblivious
from repro.verify.stable import InputVerification, VerificationReport, verify_stable_computation
from repro.verify.overproduction import OverproductionWitness, find_overproduction, measure_overshoot
from repro.verify.composition import CompositionReport, verify_composition

__all__ = [
    "ObliviousnessReport",
    "audit_output_oblivious",
    "InputVerification",
    "VerificationReport",
    "verify_stable_computation",
    "OverproductionWitness",
    "find_overproduction",
    "measure_overshoot",
    "CompositionReport",
    "verify_composition",
]
