#!/usr/bin/env python3
"""Composable computation: feed-forward pipelines of output-oblivious CRNs.

Reproduces Section 1.2 of the paper: computing ``2·min(x1, x2)`` by renaming
the output of the ``min`` CRN into the input of the doubling CRN works because
``min`` is output-oblivious — while the same concatenation applied to the
``max`` CRN can lock in up to ``2(x1 + x2)`` outputs, so it does *not* stably
compute ``2·max(x1, x2)``.

Run with::

    python examples/composition_pipeline.py
"""

from repro import concatenate, species, CRN
from repro.functions.catalog import double_spec, maximum_spec, minimum_spec
from repro.verify import verify_composition
from repro.verify.stable import verify_stable_computation


def correct_pipeline() -> None:
    print("=== 2·min(x1, x2) by concatenation (works: min is output-oblivious) ===")
    report = verify_composition(
        minimum_spec().known_crn,
        double_spec().known_crn,
        lambda x: min(x),
        lambda w: 2 * w[0],
        inputs=[(0, 0), (1, 2), (2, 2), (3, 1)],
    )
    print(report.describe())
    print()


def broken_pipeline() -> None:
    print("=== 2·max(x1, x2) by naive concatenation (fails: max consumes its output) ===")
    report = verify_composition(
        maximum_spec().known_crn,
        double_spec().known_crn,
        lambda x: max(x),
        lambda w: 2 * w[0],
        inputs=[(1, 1), (2, 1), (2, 2)],
        require_output_oblivious=False,
    )
    print(report.describe())
    print()
    print("The failing inputs show schedules where the doubling reaction consumed the")
    print("transient excess output of the max CRN before it could be retracted —")
    print("exactly the failure mode that motivates output-oblivious composition.")
    print()


def three_stage_pipeline() -> None:
    print("=== A three-stage pipeline: floor(3·min(x1, x2) / 2) ===")
    # Stage 1: min (output-oblivious).  Stage 2: floor(3w/2) via W -> 3Z, 2Z -> Y.
    W, Y, Z = species("W Y Z")
    floor_crn = CRN([W >> 3 * Z, 2 * Z >> Y], (W,), Y, name="floor(3w/2)")
    pipeline = concatenate(minimum_spec().known_crn, floor_crn, name="floor(3·min/2)")
    print(pipeline.describe())
    report = verify_stable_computation(
        pipeline,
        lambda x: (3 * min(x)) // 2,
        inputs=[(0, 0), (1, 3), (2, 2), (4, 3), (5, 2)],
        function_name="floor(3·min/2)",
    )
    print(report.describe())


def main() -> None:
    correct_pipeline()
    broken_pipeline()
    three_stage_pipeline()


if __name__ == "__main__":
    main()
