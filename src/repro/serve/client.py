"""A minimal blocking client for :mod:`repro.serve` (stdlib ``http.client``).

Used by the test suite and the CI smoke job, and handy from notebooks; it
deliberately mirrors the wire protocol one-to-one so a ``curl`` transcript
and a :class:`ServeClient` session are interchangeable.  Every method returns
the parsed JSON payload; non-2xx responses raise :class:`ServeError` carrying
the status and the server's error body.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Dict, Iterator, Optional, Sequence, Tuple

from repro.serve.protocol import canonical_json


class ServeError(Exception):
    """A non-2xx response: ``status`` plus the decoded error payload."""

    def __init__(self, status: int, payload: Any) -> None:
        message = payload.get("error") if isinstance(payload, dict) else str(payload)
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = payload


class ServeClient:
    """Blocking JSON client for one server address."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8421, timeout: float = 60.0) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = timeout

    # -- transport ---------------------------------------------------------------

    def request(
        self, method: str, path: str, payload: Any = None
    ) -> Tuple[int, Dict[str, str], bytes]:
        """One HTTP exchange; returns ``(status, headers, raw body bytes)``.

        The raw-bytes return is deliberate: the cache-memo contract is
        *byte*-identity of repeated simulate bodies, and tests assert it here.
        """
        connection = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            body = canonical_json(payload) if payload is not None else None
            headers = {"Content-Type": "application/json"} if body is not None else {}
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            return response.status, {k.lower(): v for k, v in response.getheaders()}, raw
        finally:
            connection.close()

    def _json(self, method: str, path: str, payload: Any = None) -> Any:
        status, _headers, raw = self.request(method, path, payload)
        decoded = json.loads(raw.decode("utf-8")) if raw else None
        if status >= 300:
            raise ServeError(status, decoded)
        return decoded

    # -- endpoints ---------------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return self._json("GET", "/v1/health")

    def engines(self) -> Any:
        return self._json("GET", "/v1/engines")["engines"]

    def stats(self) -> Dict[str, Any]:
        return self._json("GET", "/v1/stats")

    def compile(self, spec: str, strategy: str = "auto") -> Dict[str, Any]:
        return self._json("POST", "/v1/compile", {"spec": spec, "strategy": strategy})

    def simulate(
        self,
        spec: str,
        x: Sequence[int],
        strategy: str = "auto",
        config: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"spec": spec, "strategy": strategy, "input": list(x)}
        if config is not None:
            payload["config"] = config
        return self._json("POST", "/v1/simulate", payload)

    def expected_output(
        self,
        spec: str,
        x: Sequence[int],
        strategy: str = "auto",
        config: Optional[Dict[str, Any]] = None,
    ) -> float:
        payload: Dict[str, Any] = {"spec": spec, "strategy": strategy, "input": list(x)}
        if config is not None:
            payload["config"] = config
        return self._json("POST", "/v1/expected_output", payload)["expected_output"]

    def verify(self, spec: str, strategy: str = "auto", **fields: Any) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"spec": spec, "strategy": strategy}
        payload.update(fields)
        return self._json("POST", "/v1/verify", payload)

    # -- jobs --------------------------------------------------------------------

    def submit_job(self, **fields: Any) -> Dict[str, Any]:
        return self._json("POST", "/v1/jobs", fields)

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._json("GET", f"/v1/jobs/{job_id}")

    def cancel_job(self, job_id: str) -> Dict[str, Any]:
        return self._json("DELETE", f"/v1/jobs/{job_id}")

    def job_results(
        self, job_id: str, deterministic: bool = False
    ) -> Iterator[Dict[str, Any]]:
        """Stream the job's result rows off the NDJSON endpoint, one at a time.

        The rows are parsed line by line as the close-delimited stream
        arrives; neither the client nor the server ever holds the full result
        set in memory.  With ``deterministic=True`` the server strips the
        provenance fields from every row.
        """
        connection = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            headers = {"X-Repro-Deterministic": "1"} if deterministic else {}
            connection.request("GET", f"/v1/jobs/{job_id}/results", headers=headers)
            response = connection.getresponse()
            if response.status >= 300:
                raw = response.read()
                decoded = json.loads(raw.decode("utf-8")) if raw else None
                raise ServeError(response.status, decoded)
            for line in response:
                line = line.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))
        finally:
            connection.close()

    def wait_for_job(
        self, job_id: str, timeout: float = 120.0, poll_interval: float = 0.05
    ) -> Dict[str, Any]:
        """Poll until the job reaches a terminal state (or raise TimeoutError)."""
        deadline = time.monotonic() + timeout
        while True:
            payload = self.job(job_id)
            if payload["state"] in ("done", "cancelled", "failed"):
                return payload
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {payload['state']!r} after {timeout}s "
                    f"({payload['progress']})"
                )
            time.sleep(poll_interval)
