"""Semilinear sets, predicates, and semilinear (piecewise-affine) functions.

This package implements Definition 2.5 (semilinear sets as finite Boolean
combinations of threshold sets and mod sets) and Definition 2.6 (semilinear
functions as finite unions of affine partial functions with disjoint semilinear
domains), which together characterize the functions stably computable by any
CRN (Lemma 2.7).
"""

from repro.semilinear.sets import (
    SemilinearSet,
    ThresholdSet,
    ModSet,
    UniversalSet,
    EmptySet,
    Union,
    Intersection,
    Complement,
)
from repro.semilinear.functions import AffinePiece, SemilinearFunction
from repro.semilinear.predicates import (
    SemilinearPredicate,
    majority_predicate,
    threshold_predicate,
    parity_predicate,
)

__all__ = [
    "SemilinearSet",
    "ThresholdSet",
    "ModSet",
    "UniversalSet",
    "EmptySet",
    "Union",
    "Intersection",
    "Complement",
    "AffinePiece",
    "SemilinearFunction",
    "SemilinearPredicate",
    "majority_predicate",
    "threshold_predicate",
    "parity_predicate",
]
