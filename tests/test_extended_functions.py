"""Tests for the extended function catalog (3D functions, weighted floors, tropical polynomials)."""

import pytest

from repro.core.characterization import check_obliviously_computable
from repro.core.construction_general import build_general_crn
from repro.core.construction_quilt import build_quilt_affine_crn
from repro.core.scaling import scaling_of_eventually_min
from repro.crn.reachability import stably_computes_exhaustive
from repro.functions.extended import (
    all_extended_specs,
    capped_sum_spec,
    min3_with_offset_spec,
    minimum_3d_spec,
    tropical_polynomial_spec,
    weighted_floor_spec,
)
from repro.verify.stable import verify_stable_computation


class TestSpecConsistency:
    @pytest.mark.parametrize("spec", all_extended_specs(), ids=lambda s: s.name)
    def test_eventually_min_agrees(self, spec):
        assert spec.agrees_with_eventually_min()

    @pytest.mark.parametrize("spec", all_extended_specs(), ids=lambda s: s.name)
    def test_nondecreasing(self, spec):
        assert spec.is_nondecreasing_upto(4)

    @pytest.mark.parametrize("spec", all_extended_specs(), ids=lambda s: s.name)
    def test_characterization_positive(self, spec):
        verdict = check_obliviously_computable(spec, monotonicity_bound=4)
        assert verdict.obliviously_computable is True, verdict.describe()


class TestThreeInputFunctions:
    def test_min3_known_crn(self):
        spec = minimum_3d_spec()
        verdicts = stably_computes_exhaustive(
            spec.known_crn, spec.func, [(0, 1, 2), (2, 2, 2), (3, 1, 4)]
        )
        assert all(v.holds and v.conclusive for v in verdicts)

    def test_min3_general_construction(self):
        spec = minimum_3d_spec()
        crn = build_general_crn(spec)
        assert crn.is_output_oblivious()
        report = verify_stable_computation(
            crn, spec.func, inputs=[(0, 1, 1), (1, 1, 1), (2, 1, 3)], exhaustive_limit=30_000, trials=3
        )
        assert report.passed, report.describe()

    def test_min3_with_average_cap_values(self):
        spec = min3_with_offset_spec()
        assert spec((0, 0, 0)) == 1
        assert spec((3, 3, 3)) == 4
        assert spec((1, 5, 5)) == 2
        assert spec((2, 3, 4)) == 3   # ceil(9/3)+1 = 4 vs min+1 = 3

    def test_min3_with_average_cap_simulation(self):
        spec = min3_with_offset_spec()
        crn = build_general_crn(spec)
        report = verify_stable_computation(
            crn, spec.func, inputs=[(1, 1, 1), (2, 3, 4)], method="simulation", trials=3
        )
        assert report.passed, report.describe()


class TestTwoInputExtensions:
    def test_weighted_floor_lemma61(self):
        spec = weighted_floor_spec()
        crn = build_quilt_affine_crn(spec.eventually_min.pieces[0])
        report = verify_stable_computation(
            crn, spec.func, inputs=[(0, 0), (1, 1), (3, 2), (2, 3)], exhaustive_limit=10_000, trials=3
        )
        assert report.passed, report.describe()

    def test_capped_sum_general_construction(self):
        spec = capped_sum_spec(4)
        crn = build_general_crn(spec)
        verdicts = stably_computes_exhaustive(
            crn, spec.func, [(0, 0), (2, 1), (3, 3)], max_configurations=30_000
        )
        assert all(v.holds and v.conclusive for v in verdicts)

    def test_tropical_polynomial_general_construction(self):
        spec = tropical_polynomial_spec()
        crn = build_general_crn(spec)
        report = verify_stable_computation(
            crn, spec.func, inputs=[(0, 0), (1, 2), (3, 1)], exhaustive_limit=20_000, trials=3
        )
        assert report.passed, report.describe()

    def test_scaling_limits(self):
        spec = tropical_polynomial_spec()
        assert scaling_of_eventually_min(spec.eventually_min, (1, 1)) == 2
        # The constant offsets vanish in the limit: min(2·1, 1+4, 2·4) = 2.
        assert scaling_of_eventually_min(spec.eventually_min, (1, 4)) == 2

    def test_capped_sum_validation(self):
        with pytest.raises(ValueError):
            capped_sum_spec(-1)
