"""Integration tests: each test reproduces the content of one figure of the paper end to end."""

import pytest

from repro.core.characterization import build_crn_for, check_obliviously_computable
from repro.core.construction_1d import build_1d_crn
from repro.core.construction_quilt import build_quilt_affine_crn
from repro.core.decomposition import decompose
from repro.core.impossibility import max_contradiction_witness, verify_witness
from repro.core.scaling import infinity_scaling, scaling_of_eventually_min
from repro.crn.composition import concatenate
from repro.crn.reachability import stably_computes_exhaustive
from repro.functions.catalog import (
    double_spec,
    floor_3x_over_2_spec,
    maximum_spec,
    min_one_leaderless_crn,
    min_one_spec,
    minimum_spec,
    quilt_2d_fig3b_spec,
)
from repro.functions.paper_examples import fig4a_style_spec, fig7_spec
from repro.quilt.fitting import fit_eventually_quilt_affine_1d
from repro.verify.overproduction import find_overproduction
from repro.verify.stable import verify_stable_computation


class TestFigure1:
    """Fig. 1: the CRNs for 2x, min, and max, and their structural difference."""

    def test_all_three_crns_compute_their_functions(self):
        for spec, inputs in [
            (double_spec(), [(0,), (3,)]),
            (minimum_spec(), [(2, 3), (3, 2)]),
            (maximum_spec(), [(2, 3), (3, 2)]),
        ]:
            verdicts = stably_computes_exhaustive(spec.known_crn, spec.func, inputs)
            assert all(v.holds for v in verdicts)

    def test_only_max_consumes_its_output(self):
        assert double_spec().known_crn.is_output_oblivious()
        assert minimum_spec().known_crn.is_output_oblivious()
        assert not maximum_spec().known_crn.is_output_oblivious()


class TestFigure2:
    """Fig. 2: min(1, x) leaderless (not output-oblivious) vs. with a leader (output-oblivious)."""

    def test_both_crns_compute_min1(self):
        leaderless = min_one_leaderless_crn()
        with_leader = min_one_spec().known_crn
        for crn in (leaderless, with_leader):
            verdicts = stably_computes_exhaustive(crn, lambda x: min(1, x[0]), [(0,), (1,), (4,)])
            assert all(v.holds for v in verdicts)

    def test_obliviousness_requires_the_leader(self):
        assert not min_one_leaderless_crn().is_output_oblivious()
        assert min_one_spec().known_crn.is_output_oblivious()


class TestFigure3:
    """Fig. 3: the 1D and 2D quilt-affine examples and their Lemma 6.1 CRNs."""

    def test_floor_3x_over_2_structure(self):
        spec = floor_3x_over_2_spec()
        quilt = spec.eventually_min.pieces[0]
        assert quilt.period == 2
        assert float(quilt.gradient[0]) == 1.5
        assert quilt.offset((1,)) == -0.5

    def test_2d_quilt_crn(self):
        spec = quilt_2d_fig3b_spec()
        crn = build_quilt_affine_crn(spec.eventually_min.pieces[0])
        report = verify_stable_computation(
            crn, spec.func, inputs=[(0, 0), (1, 2), (3, 4)], exhaustive_limit=4_000, trials=3
        )
        assert report.passed


class TestFigure4:
    """Fig. 4: an obliviously-computable 2D function and its scaling limit."""

    def test_characterization_and_construction(self):
        spec = fig4a_style_spec()
        verdict = check_obliviously_computable(spec)
        assert verdict.obliviously_computable is True
        crn = build_crn_for(spec, prefer_known=False)
        assert crn.is_output_oblivious()

    def test_scaling_limit_is_min_of_linear(self):
        spec = fig4a_style_spec()
        exact = scaling_of_eventually_min(spec.eventually_min, (1, 1))
        numeric = infinity_scaling(spec.func, (1.0, 1.0), scale=4_000)
        assert numeric == pytest.approx(float(exact), abs=1e-2)


class TestFigure5:
    """Fig. 5: the eventually quilt-affine structure behind Theorem 3.1."""

    def test_fitted_structure_and_construction(self):
        def staircase(x):
            return min(x, 2) + (3 * max(0, x - 2)) // 2

        structure = fit_eventually_quilt_affine_1d(staircase)
        assert structure.period == 2
        crn = build_1d_crn(structure)
        verdicts = stably_computes_exhaustive(
            crn, lambda x: staircase(x[0]), [(v,) for v in range(7)]
        )
        assert all(v.holds for v in verdicts)


class TestFigure6:
    """Fig. 6: the Lemma 4.1 contradiction sequence for max and the induced overshoot."""

    def test_witness_and_overproduction(self):
        witness = max_contradiction_witness()
        assert verify_witness(lambda x: max(x), witness, terms=6)
        spec = maximum_spec()
        overshoot = find_overproduction(spec.known_crn, spec.func, (3, 3), trials=10, seed=1)
        assert overshoot is not None and overshoot.overshoot >= 1

    def test_doubling_downstream_locks_in_the_overshoot(self):
        composed = concatenate(
            maximum_spec().known_crn, double_spec().known_crn, require_output_oblivious=False
        )
        verdicts = stably_computes_exhaustive(composed, lambda x: 2 * max(x), [(1, 1)])
        assert not all(v.holds for v in verdicts)


class TestFigure7:
    """Fig. 7: domain decomposition of the three-region function."""

    def test_full_pipeline(self):
        spec = fig7_spec()
        decomposition = decompose(spec)
        assert decomposition.succeeded()
        assert len(decomposition.determined) == 2
        assert len(decomposition.under_determined_eventual) == 1
        crn = build_crn_for(spec, prefer_known=False)
        report = verify_stable_computation(
            crn, spec.func, inputs=[(1, 1), (1, 2), (2, 1)], exhaustive_limit=6_000, trials=3
        )
        assert report.passed


class TestFigure8:
    """Fig. 8: hyperplane arrangements, regions and recession cones in 2D and 3D."""

    def test_2d_arrangement_from_fig8a(self):
        from repro.geometry.hyperplanes import Hyperplane
        from repro.geometry.regions import enumerate_regions

        planes = [Hyperplane((1, -1), 1), Hyperplane((-1, 1), 1), Hyperplane((1, 0), 3)]
        regions = enumerate_regions(planes, 2, bound=12)
        eventual = [r for r in regions if r.is_eventual()]
        determined = [r for r in eventual if r.is_determined()]
        under = [r for r in eventual if r.is_under_determined()]
        assert len(determined) >= 2
        assert len(under) >= 1

    def test_3d_arrangement_from_fig8c(self):
        from repro.geometry.hyperplanes import Hyperplane
        from repro.geometry.regions import enumerate_regions

        planes = [
            Hyperplane((1, -1, 0), 1),
            Hyperplane((-1, 1, 0), 1),
            Hyperplane((0, 1, -1), 1),
            Hyperplane((0, -1, 1), 1),
        ]
        regions = enumerate_regions(planes, 3, bound=6)
        eventual = [r for r in regions if r.is_eventual()]
        dims = sorted({r.recession_cone().dim() for r in eventual})
        # Fig. 8c/d: regions with 1D, 2D, and 3D recession cones all appear.
        assert dims == [1, 2, 3]
