"""Tests for the continuous CRN substrate and the Theorem 8.2 correspondence."""

from fractions import Fraction

import pytest

from repro.continuous.construction import build_min_of_linear_continuous_crn
from repro.continuous.crn import ContinuousCRN, ContinuousReaction
from repro.continuous.functions import LinearFunction, MinOfLinear, PiecewiseRationalLinear
from repro.core.scaling import scaling_of_eventually_min
from repro.crn.species import Species
from repro.functions.paper_examples import fig7_spec


class TestFunctions:
    def test_linear_function(self):
        linear = LinearFunction((Fraction(1, 2), Fraction(2)))
        assert linear((2, 1)) == Fraction(3)
        assert linear.is_nonnegative()

    def test_min_of_linear(self):
        target = MinOfLinear.from_gradients([(1, 0), (0, 1)])
        assert target((3, 5)) == 3
        assert target.is_superadditive_on([((1, 2), (2, 1)), ((0, 1), (1, 0))])

    def test_min_of_linear_validation(self):
        with pytest.raises(ValueError):
            MinOfLinear(())
        with pytest.raises(ValueError):
            MinOfLinear((LinearFunction((1,)), LinearFunction((1, 1))))

    def test_piecewise_rational_linear_faces(self):
        func = PiecewiseRationalLinear(
            2,
            {
                frozenset(): MinOfLinear.from_gradients([(1, 0), (0, 1)]),
                frozenset({0}): MinOfLinear.from_gradients([(0,)]),
                frozenset({1}): MinOfLinear.from_gradients([(0,)]),
            },
            name="min-like",
        )
        assert func((2, 3)) == 2
        assert func((0, 5)) == 0
        assert func((0, 0)) == 0
        assert func.is_superadditive_on([((1, 1), (2, 2)), ((0, 1), (1, 0))])
        assert func.is_positive_continuous_on_rays([(1, 2), (0, 3)])

    def test_undefined_face_rejected(self):
        func = PiecewiseRationalLinear(2, {frozenset(): MinOfLinear.from_gradients([(1, 1)])})
        with pytest.raises(ValueError):
            func((0, 1))

    def test_face_dimension_validation(self):
        with pytest.raises(ValueError):
            PiecewiseRationalLinear(2, {frozenset({0}): MinOfLinear.from_gradients([(1, 1)])})


class TestContinuousCRN:
    def test_min_reaction_lp(self):
        x1, x2, y = Species("X1"), Species("X2"), Species("Y")
        crn = ContinuousCRN(
            [ContinuousReaction.build({x1: 1, x2: 1}, {y: 1})], (x1, x2), y, name="min"
        )
        assert crn.is_output_oblivious()
        assert crn.max_output((2.0, 5.0)) == pytest.approx(2.0)

    def test_doubling_lp(self):
        x, y = Species("X"), Species("Y")
        crn = ContinuousCRN([ContinuousReaction.build({x: 1}, {y: 2})], (x,), y)
        assert crn.max_output((3.0,)) == pytest.approx(6.0)

    def test_output_consuming_network_detected(self):
        x, y = Species("X"), Species("Y")
        crn = ContinuousCRN(
            [ContinuousReaction.build({x: 1}, {y: 1}), ContinuousReaction.build({y: 2}, {y: 1})],
            (x,),
            y,
        )
        assert not crn.is_output_oblivious()


class TestMinOfLinearConstruction:
    def test_matches_target_function(self):
        target = MinOfLinear.from_gradients([(1, 0), (0, 1), (Fraction(1, 2), Fraction(1, 2))])
        crn = build_min_of_linear_continuous_crn(target)
        assert crn.is_output_oblivious()
        for point in [(2.0, 2.0), (1.0, 4.0), (6.0, 2.0)]:
            assert crn.max_output(point) == pytest.approx(float(target(point)))

    def test_rejects_negative_gradients(self):
        with pytest.raises(ValueError):
            build_min_of_linear_continuous_crn(MinOfLinear.from_gradients([(1, -1)]))

    def test_scaling_limit_correspondence_for_fig7(self):
        # Theorem 8.2: the ∞-scaling of the Fig. 7 function is computable by a
        # continuous output-oblivious CRN built from the piece gradients.
        spec = fig7_spec()
        gradients = [piece.gradient for piece in spec.eventually_min.pieces]
        continuous = build_min_of_linear_continuous_crn(MinOfLinear.from_gradients(gradients))
        for point in [(1.0, 1.0), (1.0, 3.0), (4.0, 2.0)]:
            expected = float(scaling_of_eventually_min(spec.eventually_min, [Fraction(v) for v in point]))
            assert continuous.max_output(point) == pytest.approx(expected, abs=1e-6)
