"""Wire protocol for :mod:`repro.serve`: HTTP/1.1 framing and JSON schemas.

Two halves, both dependency-free:

* **HTTP framing** — :func:`read_request` / :class:`Response` implement the
  minimal HTTP/1.1 subset the server needs over ``asyncio`` streams: request
  line, headers, ``Content-Length`` bodies, keep-alive.  No chunked encoding,
  no TLS — run behind a real proxy if you need those; the point is that the
  core package never grows a web-framework dependency.
* **JSON schemas** — ``parse_*_request`` validate request payloads into typed
  values, with errors that name the offending field (the
  :class:`~repro.api.serialization` helpers do the spec/config halves).  All
  validation failures raise :class:`ApiError`, which the server renders as a
  JSON error body with the right status code.

Response bodies are rendered with :func:`canonical_json` (sorted keys, no
whitespace), which is what makes the cache memo observable at the HTTP layer:
a cache hit and the original miss produce **byte-identical** bodies, because
both are the canonical rendering of the same deterministic payload.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from http import HTTPStatus
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.api.config import RunConfig
from repro.api.serialization import run_config_from_json_dict, spec_from_json_dict

#: Hard request limits — a public-facing simulation service must bound what a
#: client can make it buffer.
MAX_HEADER_LINES = 100
MAX_BODY_BYTES = 8 * 1024 * 1024

JSON_CONTENT_TYPE = "application/json; charset=utf-8"


def canonical_json(payload: Any) -> bytes:
    """The canonical rendering: sorted keys, compact separators, UTF-8.

    Deterministic for a given payload, so equal payloads always produce
    byte-identical HTTP bodies — the property the cache-memo end-to-end test
    asserts.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


class ApiError(Exception):
    """A client-visible failure: HTTP status plus a JSON-rendered message."""

    def __init__(self, status: int, message: str, **extra: Any) -> None:
        super().__init__(message)
        self.status = int(status)
        self.message = str(message)
        self.extra = extra

    def to_payload(self) -> Dict[str, Any]:
        payload = {"error": self.message, "status": self.status}
        payload.update(self.extra)
        return payload


# ---------------------------------------------------------------------------
# HTTP framing
# ---------------------------------------------------------------------------


@dataclass
class HttpRequest:
    """One parsed request: method, path, lower-cased headers, raw body."""

    method: str
    path: str
    headers: Dict[str, str]
    body: bytes = b""

    def json(self) -> Any:
        """The body parsed as JSON (empty body reads as ``{}``)."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ApiError(400, f"request body is not valid JSON: {exc}") from None

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "keep-alive").lower() != "close"


async def read_request(reader: asyncio.StreamReader) -> Optional[HttpRequest]:
    """Read one HTTP/1.1 request off the stream.

    Returns ``None`` on a clean EOF before the request line (the client hung
    up between keep-alive requests).  Malformed or oversized input raises
    :class:`ApiError` (400/413/431), which the caller turns into an error
    response before closing the connection.
    """
    try:
        line = await reader.readline()
    except (ValueError, asyncio.LimitOverrunError):
        raise ApiError(431, "request line too long") from None
    if not line:
        return None
    try:
        method, target, _version = line.decode("latin-1").split(None, 2)
    except ValueError:
        raise ApiError(400, f"malformed request line {line!r}") from None

    headers: Dict[str, str] = {}
    for _ in range(MAX_HEADER_LINES):
        try:
            raw = await reader.readline()
        except (ValueError, asyncio.LimitOverrunError):
            raise ApiError(431, "header line too long") from None
        if raw in (b"\r\n", b"\n", b""):
            break
        text = raw.decode("latin-1").rstrip("\r\n")
        name, sep, value = text.partition(":")
        if not sep:
            raise ApiError(400, f"malformed header line {text!r}")
        headers[name.strip().lower()] = value.strip()
    else:
        raise ApiError(431, f"more than {MAX_HEADER_LINES} header lines")

    body = b""
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise ApiError(400, f"invalid Content-Length {length_text!r}") from None
    if length < 0:
        raise ApiError(400, f"invalid Content-Length {length}")
    if length > MAX_BODY_BYTES:
        raise ApiError(413, f"request body exceeds {MAX_BODY_BYTES} bytes")
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            return None  # client died mid-body; nothing to answer

    # strip any query string / fragment — the API routes on the bare path
    path = target.split("?", 1)[0].split("#", 1)[0]
    return HttpRequest(method=method.upper(), path=path, headers=headers, body=body)


@dataclass
class Response:
    """A response-to-be: status, JSON payload (or raw body), extra headers.

    A response may instead carry a ``stream`` — an iterator of byte chunks
    written incrementally with no ``Content-Length`` and ``Connection:
    close`` framing (close-delimited HTTP/1.1, the chunked-encoding-free way
    to stream).  Streaming responses never buffer the full body server-side;
    the job-results NDJSON endpoint uses this so million-cell results flow
    row by row.
    """

    status: int = 200
    payload: Any = None
    headers: Dict[str, str] = field(default_factory=dict)
    body: Optional[bytes] = None
    #: Byte-chunk iterator for close-delimited streaming (see class docs).
    stream: Optional[Any] = None
    #: Route template label (e.g. ``"GET /v1/jobs/{id}"``) for metrics.
    endpoint: str = ""

    def encode_stream_head(self) -> bytes:
        """The header block for a streaming response (no body bytes)."""
        reason = HTTPStatus(self.status).phrase if self.status in HTTPStatus._value2member_map_ else ""
        lines = [f"HTTP/1.1 {self.status} {reason}"]
        base = {
            "Content-Type": JSON_CONTENT_TYPE,
            "Connection": "close",
        }
        base.update(self.headers)
        lines.extend(f"{name}: {value}" for name, value in base.items())
        return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")

    def encode(self, keep_alive: bool = True) -> bytes:
        if self.stream is not None:
            raise ValueError("streaming responses are written by the server loop")
        body = self.body if self.body is not None else canonical_json(self.payload)
        reason = HTTPStatus(self.status).phrase if self.status in HTTPStatus._value2member_map_ else ""
        lines = [f"HTTP/1.1 {self.status} {reason}"]
        base = {
            "Content-Type": JSON_CONTENT_TYPE,
            "Content-Length": str(len(body)),
            "Connection": "keep-alive" if keep_alive else "close",
        }
        base.update(self.headers)
        lines.extend(f"{name}: {value}" for name, value in base.items())
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        return head + body

    @staticmethod
    def from_error(exc: ApiError, endpoint: str = "") -> "Response":
        headers = {}
        retry_after = exc.extra.get("retry_after")
        if retry_after is not None:
            headers["Retry-After"] = str(retry_after)
        return Response(
            status=exc.status, payload=exc.to_payload(), headers=headers, endpoint=endpoint
        )


# ---------------------------------------------------------------------------
# Request schemas
# ---------------------------------------------------------------------------


def _require_object(data: Any) -> Mapping[str, Any]:
    if not isinstance(data, Mapping):
        raise ApiError(400, f"request body must be a JSON object, got {type(data).__name__}")
    return data


def _reject_unknown(data: Mapping[str, Any], allowed: Sequence[str]) -> None:
    unknown = sorted(set(data) - set(allowed))
    if unknown:
        raise ApiError(
            400,
            f"unknown field(s) {', '.join(repr(k) for k in unknown)}; "
            f"allowed: {', '.join(repr(k) for k in allowed)}",
        )


def parse_spec_ref(data: Mapping[str, Any]) -> Tuple[str, Any, str]:
    """The ``spec`` / ``strategy`` pair shared by every compute endpoint.

    ``spec`` is a registered spec name (or a ``{"name": ...}`` object from
    :func:`repro.api.serialization.spec_to_json_dict`); resolution and
    fingerprint checking are delegated to
    :func:`repro.api.serialization.spec_from_json_dict`.  Returns
    ``(registered name, resolved spec, strategy)`` — the registered name, not
    ``spec.name``, is what campaign cells and worker tasks key on (a catalog
    spec's display name may differ from its registry name).
    """
    raw = data.get("spec")
    if raw is None:
        raise ApiError(400, "field 'spec' is required (a registered spec name)")
    if isinstance(raw, str):
        raw = {"name": raw}
    if not isinstance(raw, Mapping):
        raise ApiError(400, f"field 'spec' must be a name or an object, got {raw!r}")
    try:
        spec = spec_from_json_dict(raw)
    except ValueError as exc:
        raise ApiError(400, str(exc)) from None
    strategy = data.get("strategy", "auto")
    if not isinstance(strategy, str) or not strategy:
        raise ApiError(400, f"field 'strategy' must be a nonempty string, got {strategy!r}")
    return str(raw["name"]), spec, strategy


def parse_config(data: Mapping[str, Any], default: RunConfig) -> RunConfig:
    """The optional ``config`` object, merged over the server default."""
    raw = data.get("config")
    if raw is None:
        return default
    if not isinstance(raw, Mapping):
        raise ApiError(400, f"field 'config' must be a JSON object, got {type(raw).__name__}")
    try:
        return run_config_from_json_dict(raw, default=default)
    except ValueError as exc:
        raise ApiError(400, str(exc)) from None


def parse_input(data: Mapping[str, Any], dimension: int, field_name: str = "input") -> Tuple[int, ...]:
    raw = data.get(field_name)
    if raw is None:
        raise ApiError(400, f"field {field_name!r} is required (a list of {dimension} counts)")
    if not isinstance(raw, (list, tuple)):
        raise ApiError(400, f"field {field_name!r} must be a list of integers, got {raw!r}")
    values: List[int] = []
    for position, value in enumerate(raw):
        if isinstance(value, bool) or not isinstance(value, int) or value < 0:
            raise ApiError(
                400,
                f"field {field_name!r}[{position}] must be a nonnegative integer, got {value!r}",
            )
        values.append(int(value))
    if len(values) != dimension:
        raise ApiError(
            400,
            f"field {field_name!r} has {len(values)} coordinates but the spec takes {dimension}",
        )
    return tuple(values)
