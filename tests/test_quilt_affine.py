"""Unit tests for quilt-affine functions (Definition 5.1)."""

from fractions import Fraction

import pytest

from repro.quilt.quilt_affine import QuiltAffine, all_residues, residue_of


class TestResidues:
    def test_residue_of(self):
        assert residue_of((5, 7), 3) == (2, 1)

    def test_all_residues_count(self):
        assert len(list(all_residues(2, 3))) == 9

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            residue_of((1,), 0)


class TestFloorExample:
    def test_fig3a_floor_3x_over_2(self):
        quilt = QuiltAffine.floor_linear((3,), 2)
        assert [quilt((x,)) for x in range(8)] == [(3 * x) // 2 for x in range(8)]
        assert quilt.gradient == (Fraction(3, 2),)
        assert quilt.period == 2
        assert quilt.offset((1,)) == Fraction(-1, 2)

    def test_floor_2d(self):
        quilt = QuiltAffine.floor_linear((1, 1), 2)
        for x1 in range(5):
            for x2 in range(5):
                assert quilt((x1, x2)) == (x1 + x2) // 2


class TestValidation:
    def test_negative_gradient_rejected(self):
        with pytest.raises(ValueError):
            QuiltAffine((-1,), 1, {})

    def test_non_integer_values_rejected(self):
        with pytest.raises(ValueError):
            QuiltAffine((Fraction(1, 2),), 1, {})

    def test_decreasing_offsets_rejected(self):
        # Offsets that drop by more than the gradient step make the function decreasing.
        with pytest.raises(ValueError):
            QuiltAffine((1,), 2, {(0,): 0, (1,): -5})

    def test_valid_fig3b_quilt(self):
        quilt = QuiltAffine((1, 2), 3, {(1, 2): -1, (2, 2): -1, (2, 1): -1})
        assert quilt.is_nondecreasing()
        assert quilt((1, 2)) == 1 + 4 - 1
        assert quilt((4, 5)) == 4 + 10 - 1  # same congruence class as (1, 2)


class TestFiniteDifferences:
    def test_differences_match_definition(self):
        quilt = QuiltAffine.floor_linear((3,), 2)
        for residue in range(2):
            for x in (residue, residue + 2, residue + 4):
                assert quilt((x + 1,)) - quilt((x,)) == quilt.finite_difference(0, (x,))

    def test_difference_table_integer(self):
        quilt = QuiltAffine((1, 2), 3, {(1, 2): -1, (2, 2): -1, (2, 1): -1})
        table = quilt.finite_difference_table()
        assert len(table) == 2 * 9
        assert all(value >= 0 for value in table.values())


class TestAlgebra:
    def test_translate(self):
        quilt = QuiltAffine.floor_linear((3,), 2)
        shifted = quilt.translate((3,))
        for x in range(6):
            assert shifted((x,)) == quilt((x + 3,))

    def test_add_constant(self):
        quilt = QuiltAffine.affine((1,), 0)
        assert quilt.add_constant(5)((3,)) == 8

    def test_with_period_preserves_values(self):
        quilt = QuiltAffine.floor_linear((3,), 2)
        widened = quilt.with_period(6)
        for x in range(12):
            assert widened((x,)) == quilt((x,))

    def test_with_period_requires_multiple(self):
        with pytest.raises(ValueError):
            QuiltAffine.floor_linear((3,), 2).with_period(3)

    def test_restrict_input(self):
        quilt = QuiltAffine((1, 2), 3, {(1, 2): -1, (2, 2): -1, (2, 1): -1})
        restricted = quilt.restrict_input(1, 2)
        for x in range(6):
            assert restricted((x,)) == quilt((x, 2))

    def test_restrict_only_input_rejected(self):
        with pytest.raises(ValueError):
            QuiltAffine.affine((1,), 0).restrict_input(0, 1)

    def test_equality_across_periods(self):
        affine = QuiltAffine.affine((1,), 2)
        widened = affine.with_period(4)
        assert affine == widened
        assert affine != QuiltAffine.affine((1,), 3)


class TestFromCallable:
    def test_recovers_floor_function(self):
        recovered = QuiltAffine.from_callable(lambda x: (3 * x[0]) // 2, 1, 2)
        assert recovered == QuiltAffine.floor_linear((3,), 2)

    def test_recovers_2d_quilt(self):
        original = QuiltAffine((1, 2), 3, {(1, 2): -1, (2, 2): -1, (2, 1): -1})
        recovered = QuiltAffine.from_callable(original, 2, 3)
        assert recovered == original

    def test_rejects_non_quilt_function(self):
        with pytest.raises(ValueError):
            QuiltAffine.from_callable(lambda x: x[0] ** 2, 1, 2)


class TestDominationHelpers:
    def test_agrees_and_dominates(self):
        quilt = QuiltAffine.affine((1, 0), 1)
        points = [(x1, x2) for x1 in range(4) for x2 in range(4)]
        assert quilt.dominates(lambda x: min(x), points)
        assert not quilt.agrees_with(lambda x: min(x), points)

    def test_nonnegative_range_check(self):
        negative = QuiltAffine((1,), 2, {(0,): -3, (1,): -3}, validate=False)
        assert not negative.has_nonnegative_range_upto(2)
        assert QuiltAffine.affine((1,), 0).has_nonnegative_range_upto(1)
