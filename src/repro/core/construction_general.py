"""Lemma 6.2: the general construction for obliviously-computable functions.

Given a function ``f : N^d -> N`` satisfying the three conditions of
Theorem 5.2, the paper expresses ``f`` as the composition (Equation 1)

    f(x) = min[ f(x ∨ n),
                f_[x(i)->j](x) + 1_{x(i)>j}(x) · f(x ∨ n)   (i=1..d, j=0..n-1) ]

and builds an output-oblivious CRN for each piece:

* ``f(x ∨ n) = min_k g_k((x - n)^+ + n)`` — for each quilt-affine piece, a
  per-coordinate truncated-subtraction module ``(n+1)X -> nX + W`` feeds the
  Lemma 6.1 CRN for the translated (nonnegative) piece ``g_k(x + n)``, and a
  single ``min`` reaction combines the piece outputs;
* ``f_[x(i)->j]`` — the recursive construction on the restriction (Theorem 3.1
  when the restriction is one-dimensional);
* ``c(a, b, x) = a + 1_{x(i)>j}(x)·b`` — the two-reaction indicator gadget
  ``A -> T`` and ``(j+1)X_i + B -> (j+1)X_i + T``;
* a final ``min`` reaction over all the terms, and a fan-out reaction per
  input so every module receives its own copy of the input.

The whole network is output-oblivious because every module is, and the global
leader splits into one leader per module.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.construction_1d import build_1d_crn
from repro.core.construction_quilt import build_quilt_affine_crn
from repro.core.specs import FunctionSpec
from repro.crn.network import CRN
from repro.crn.reaction import Reaction
from repro.crn.species import Expression, Species
from repro.quilt.eventually_min import EventuallyMin


class _ModuleParts:
    """Reactions plus wiring information for one sub-module of the construction."""

    def __init__(
        self,
        reactions: List[Reaction],
        input_copies: List[List[Species]],
        output: Species,
        leaders: List[Species],
    ) -> None:
        self.reactions = reactions
        self.input_copies = input_copies
        self.output = output
        self.leaders = leaders


def _build_eventual_module(
    eventually_min: EventuallyMin,
    n: int,
    prefix: str,
) -> _ModuleParts:
    """A module computing ``f(x ∨ n) = min_k g_k((x - n)^+ + n)``."""
    dimension = eventually_min.dimension
    shift = tuple([n] * dimension)
    reactions: List[Reaction] = []
    input_copies: List[List[Species]] = [[] for _ in range(dimension)]
    leaders: List[Species] = []
    piece_outputs: List[Species] = []

    for k, piece in enumerate(eventually_min.pieces):
        translated = piece.translate(shift)
        quilt_prefix = f"{prefix}g{k}_"
        quilt_input_names = [f"{quilt_prefix}W{i + 1}" for i in range(dimension)]
        quilt = build_quilt_affine_crn(
            translated,
            input_names=quilt_input_names,
            output_name="O",
            leader_name="QL",
            prefix=quilt_prefix,
            name=f"{quilt_prefix}quilt",
        )
        reactions.extend(quilt.reactions)
        leaders.append(quilt.leader)
        piece_outputs.append(quilt.output_species)

        for i, quilt_input in enumerate(quilt.input_species):
            if n == 0:
                # x ∨ 0 = x: wire the input copy straight into the quilt module.
                input_copies[i].append(quilt_input)
            else:
                # Truncated subtraction (x - n)^+ via (n+1)V -> nV + W.
                copy = Species(f"{prefix}g{k}_V{i + 1}")
                input_copies[i].append(copy)
                reactions.append(
                    Reaction(
                        Expression({copy: n + 1}),
                        Expression({copy: n, quilt_input: 1}),
                        name=f"{prefix}sub{k}_{i + 1}",
                    )
                )

    module_output = Species(f"{prefix}OUT")
    reactions.append(
        Reaction(
            Expression({sp: 1 for sp in piece_outputs}),
            module_output,
            name=f"{prefix}min",
        )
    )
    return _ModuleParts(reactions, input_copies, module_output, leaders)


def _build_restriction_module(
    spec: FunctionSpec,
    index: int,
    value: int,
    prefix: str,
) -> _ModuleParts:
    """A module computing the fixed-input restriction ``f_[x(index) -> value]``.

    The module's input copies cover only the coordinates other than ``index``
    (the restriction ignores that coordinate); the corresponding entry of
    ``input_copies`` is left empty.
    """
    restriction = spec.restriction(index, value)
    if restriction.dimension == 0:
        # Constant function: a single leader-driven reaction emits the value.
        constant = restriction(())
        output = Species(f"{prefix}ROUT")
        leader = Species(f"{prefix}RL")
        products: Dict[Species, int] = {}
        if constant > 0:
            products[output] = constant
        if not products:
            # The reaction must produce something; re-emit the leader as a sink.
            products[Species(f"{prefix}RDONE")] = 1
        reactions = [Reaction(leader, Expression(products), name=f"{prefix}const")]
        return _ModuleParts(reactions, [[] for _ in range(spec.dimension)], output, [leader])

    if restriction.dimension == 1:
        crn = build_1d_crn(
            lambda t: restriction((t,)),
            prefix=prefix,
            name=f"{prefix}restriction",
        )
    else:
        crn = build_general_crn(restriction, name=f"{prefix}restriction", _prefix=prefix)

    input_copies: List[List[Species]] = [[] for _ in range(spec.dimension)]
    remaining = [i for i in range(spec.dimension) if i != index]
    for coordinate, input_sp in zip(remaining, crn.input_species):
        input_copies[coordinate].append(input_sp)
    leaders = [crn.leader] if crn.leader is not None else []
    return _ModuleParts(list(crn.reactions), input_copies, crn.output_species, leaders)


def build_general_crn(
    spec: FunctionSpec,
    name: str = "",
    _prefix: str = "",
) -> CRN:
    """Build the Lemma 6.2 output-oblivious CRN for a function satisfying Theorem 5.2.

    Requirements on ``spec``:

    * ``dimension >= 1``;
    * for ``dimension == 1`` the callable alone suffices (Theorem 3.1 is used);
    * for ``dimension >= 2`` an :class:`EventuallyMin` representation must be
      attached (``spec.eventually_min``); use
      :func:`repro.core.characterization.build_crn_for` to derive it
      automatically from a semilinear representation first.
    * restrictions of dimension >= 2 must either carry their own eventually-min
      structure (via ``spec.restriction_specs``) or be one-dimensional.
    """
    if spec.dimension < 1:
        raise ValueError("the construction needs at least one input")
    if spec.dimension == 1:
        crn = build_1d_crn(lambda t: spec((t,)), prefix=_prefix, name=name or spec.name)
        return crn
    if spec.eventually_min is None:
        raise ValueError(
            f"{spec.name}: the general construction needs an eventually-min "
            "representation (Theorem 5.2 condition (ii)); attach one or call "
            "repro.core.build_crn_for to derive it"
        )

    dimension = spec.dimension
    eventually_min = spec.eventually_min
    n = max(eventually_min.threshold) if eventually_min.threshold else 0
    prefix = _prefix or "m_"

    inputs = tuple(Species(f"{prefix}X{i + 1}") for i in range(dimension))
    output = Species(f"{prefix}Y" if _prefix else "Y")
    global_leader = Species(f"{prefix}L" if _prefix else "L")

    reactions: List[Reaction] = []
    module_leaders: List[Species] = []
    demands: List[List[Species]] = [[] for _ in range(dimension)]
    term_outputs: List[Species] = []

    # -- term 0: f(x ∨ n) -------------------------------------------------------------
    term0 = _build_eventual_module(eventually_min, n, prefix=f"{prefix}t0_")
    reactions.extend(term0.reactions)
    module_leaders.extend(term0.leaders)
    for i in range(dimension):
        demands[i].extend(term0.input_copies[i])
    term_outputs.append(term0.output)

    # -- terms (i, j): f_[x(i)->j](x) + 1_{x(i)>j}(x) · f(x ∨ n) ------------------------
    for index in range(dimension):
        for value in range(n):
            term_prefix = f"{prefix}t{index + 1}_{value}_"

            restriction = _build_restriction_module(spec, index, value, prefix=f"{term_prefix}r_")
            reactions.extend(restriction.reactions)
            module_leaders.extend(restriction.leaders)
            for i in range(dimension):
                demands[i].extend(restriction.input_copies[i])

            eventual = _build_eventual_module(eventually_min, n, prefix=f"{term_prefix}e_")
            reactions.extend(eventual.reactions)
            module_leaders.extend(eventual.leaders)
            for i in range(dimension):
                demands[i].extend(eventual.input_copies[i])

            # Indicator gadget c(a, b, x) = a + 1_{x(index) > value} · b.
            term_output = Species(f"{term_prefix}T")
            gate_copy = Species(f"{term_prefix}GATE")
            demands[index].append(gate_copy)
            reactions.append(
                Reaction(restriction.output, term_output, name=f"{term_prefix}pass_a")
            )
            reactions.append(
                Reaction(
                    Expression({gate_copy: value + 1, eventual.output: 1}),
                    Expression({gate_copy: value + 1, term_output: 1}),
                    name=f"{term_prefix}gate_b",
                )
            )
            term_outputs.append(term_output)

    # -- final min over all terms --------------------------------------------------------
    reactions.append(
        Reaction(
            Expression({sp: 1 for sp in term_outputs}),
            output,
            name=f"{prefix}final_min",
        )
    )

    # -- fan-out of each input into every module copy -------------------------------------
    for i in range(dimension):
        copies = demands[i]
        if not copies:
            continue
        products: Dict[Species, int] = {}
        for sp in copies:
            products[sp] = products.get(sp, 0) + 1
        reactions.append(
            Reaction(inputs[i], Expression(products), name=f"{prefix}fanout_{i + 1}")
        )

    # -- leader split ----------------------------------------------------------------------
    if module_leaders:
        leader_products: Dict[Species, int] = {}
        for sp in module_leaders:
            leader_products[sp] = leader_products.get(sp, 0) + 1
        reactions.append(
            Reaction(global_leader, Expression(leader_products), name=f"{prefix}leader_split")
        )

    return CRN(
        reactions,
        inputs,
        output,
        leader=global_leader,
        name=name or f"lemma-6.2[{spec.name}]",
    )


def construction_size_general(spec: FunctionSpec) -> Dict[str, int]:
    """Species / reaction counts of the Lemma 6.2 construction for ``spec``."""
    crn = build_general_crn(spec)
    return crn.size()
