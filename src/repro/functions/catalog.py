"""Elementary function specs and the hand-written CRNs of Figs. 1-3.

Each factory returns a fresh :class:`~repro.core.specs.FunctionSpec`; the known
CRNs are exactly the reaction systems printed in the paper.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Sequence

from repro.core.specs import FunctionSpec
from repro.crn.network import CRN
from repro.crn.reaction import Reaction
from repro.crn.species import Expression, Species, species
from repro.quilt.eventually_min import EventuallyMin
from repro.quilt.quilt_affine import QuiltAffine
from repro.semilinear.functions import AffinePiece, SemilinearFunction
from repro.semilinear.sets import ThresholdSet, UniversalSet


# ---------------------------------------------------------------------------
# Fig. 1: f(x) = 2x, min, max
# ---------------------------------------------------------------------------


def double_spec() -> FunctionSpec:
    """``f(x) = 2x`` with the one-reaction CRN ``X -> 2Y`` (Fig. 1, left)."""
    x, y = species("X Y")
    crn = CRN([x >> 2 * y], (x,), y, leader=None, name="double")
    quilt = QuiltAffine.affine((2,), 0, name="2x")
    return FunctionSpec(
        name="2x",
        dimension=1,
        func=lambda v: 2 * int(v[0]),
        semilinear=SemilinearFunction.affine((2,), 0, name="2x"),
        eventually_min=EventuallyMin([quilt], (0,), name="2x"),
        known_crn=crn,
        expected_obliviously_computable=True,
    )


def identity_spec() -> FunctionSpec:
    """``f(x) = x`` with the CRN ``X -> Y``."""
    x, y = species("X Y")
    crn = CRN([x >> y], (x,), y, leader=None, name="identity")
    return FunctionSpec(
        name="identity",
        dimension=1,
        func=lambda v: int(v[0]),
        semilinear=SemilinearFunction.affine((1,), 0, name="identity"),
        eventually_min=EventuallyMin([QuiltAffine.affine((1,), 0)], (0,), name="identity"),
        known_crn=crn,
        expected_obliviously_computable=True,
    )


def constant_spec(value: int, dimension: int = 1) -> FunctionSpec:
    """The constant function ``f(x) = value`` with the leader-driven CRN ``L -> value·Y``."""
    if value < 0:
        raise ValueError("constants must be nonnegative")
    inputs = species(" ".join(f"X{i + 1}" for i in range(dimension)))
    y = Species("Y")
    leader = Species("L")
    products = Expression({y: value}) if value > 0 else Expression({Species("Done"): 1})
    crn = CRN([Reaction(leader, products)], inputs, y, leader=leader, name=f"const{value}")
    gradient = tuple([0] * dimension)
    return FunctionSpec(
        name=f"const{value}",
        dimension=dimension,
        func=lambda v: value,
        semilinear=SemilinearFunction.affine(gradient, value, name=f"const{value}"),
        eventually_min=EventuallyMin(
            [QuiltAffine.affine(gradient, value)], tuple([0] * dimension), name=f"const{value}"
        ),
        known_crn=crn,
        expected_obliviously_computable=True,
    )


def add_spec() -> FunctionSpec:
    """``f(x1, x2) = x1 + x2`` with the CRN ``X1 -> Y, X2 -> Y``."""
    x1, x2, y = species("X1 X2 Y")
    crn = CRN([x1 >> y, x2 >> y], (x1, x2), y, leader=None, name="add")
    return FunctionSpec(
        name="x1+x2",
        dimension=2,
        func=lambda v: int(v[0]) + int(v[1]),
        semilinear=SemilinearFunction.affine((1, 1), 0, name="x1+x2"),
        eventually_min=EventuallyMin([QuiltAffine.affine((1, 1), 0)], (0, 0), name="x1+x2"),
        known_crn=crn,
        expected_obliviously_computable=True,
    )


def minimum_spec(dimension: int = 2) -> FunctionSpec:
    """``min(x1, ..., xd)`` with the single-reaction CRN ``X1 + ... + Xd -> Y`` (Fig. 1, middle)."""
    if dimension < 2:
        raise ValueError("minimum needs at least two inputs")
    inputs = species(" ".join(f"X{i + 1}" for i in range(dimension)))
    y = Species("Y")
    crn = CRN(
        [Reaction(Expression({sp: 1 for sp in inputs}), y)],
        inputs,
        y,
        leader=None,
        name="min",
    )
    pieces = [
        QuiltAffine.affine(tuple(1 if j == i else 0 for j in range(dimension)), 0)
        for i in range(dimension)
    ]
    dominant = tuple([1] + [-1] * (dimension - 1))
    semilinear = SemilinearFunction(
        [
            AffinePiece(
                ThresholdSet(tuple(-v for v in dominant), 0),
                tuple(Fraction(1) if i == 0 else Fraction(0) for i in range(dimension)),
                Fraction(0),
            ),
            AffinePiece(
                UniversalSet(dimension),
                tuple(Fraction(0) if i == 0 else (Fraction(1) if i == 1 else Fraction(0)) for i in range(dimension)),
                Fraction(0),
            ),
        ],
        name="min",
    ) if dimension == 2 else None
    return FunctionSpec(
        name="min",
        dimension=dimension,
        func=lambda v: min(int(value) for value in v),
        semilinear=semilinear,
        eventually_min=EventuallyMin(pieces, tuple([0] * dimension), name="min"),
        known_crn=crn,
        expected_obliviously_computable=True,
    )


def maximum_spec(dimension: int = 2) -> FunctionSpec:
    """``max(x1, x2)`` with the paper's four-reaction CRN (Fig. 1, right).

    The CRN stably computes ``max`` but is *not* output-oblivious (it consumes
    ``Y``), and Section 4 proves no output-oblivious CRN exists for it.
    """
    if dimension != 2:
        raise ValueError("the catalog max spec is the two-input one from Fig. 1")
    x1, x2, y, z1, z2, k = species("X1 X2 Y Z1 Z2 K")
    crn = CRN(
        [
            x1 >> z1 + y,
            x2 >> z2 + y,
            z1 + z2 >> k,
            k + y >> 0,
        ],
        (x1, x2),
        y,
        leader=None,
        name="max",
    )
    semilinear = SemilinearFunction(
        [
            AffinePiece(ThresholdSet((1, -1), 1), (Fraction(1), Fraction(0)), Fraction(0)),
            AffinePiece(UniversalSet(2), (Fraction(0), Fraction(1)), Fraction(0)),
        ],
        name="max",
    )
    return FunctionSpec(
        name="max",
        dimension=2,
        func=lambda v: max(int(v[0]), int(v[1])),
        semilinear=semilinear,
        known_crn=crn,
        expected_obliviously_computable=False,
    )


# ---------------------------------------------------------------------------
# Fig. 2: min(1, x) with and without a leader
# ---------------------------------------------------------------------------


def min_one_spec() -> FunctionSpec:
    """``f(x) = min(1, x)`` with the output-oblivious leader CRN ``L + X -> Y`` (Fig. 2, right)."""
    x, y, leader = species("X Y L")
    crn = CRN([leader + x >> y], (x,), y, leader=leader, name="min(1,x)-leader")
    semilinear = SemilinearFunction(
        [
            AffinePiece(ThresholdSet((1,), 1), (Fraction(0),), Fraction(1)),
            AffinePiece(UniversalSet(1), (Fraction(0),), Fraction(0)),
        ],
        name="min(1,x)",
    )
    quilt = QuiltAffine.affine((0,), 1, name="one")
    return FunctionSpec(
        name="min(1,x)",
        dimension=1,
        func=lambda v: min(1, int(v[0])),
        semilinear=semilinear,
        eventually_min=EventuallyMin([quilt], (1,), name="min(1,x)"),
        known_crn=crn,
        expected_obliviously_computable=True,
    )


def min_one_leaderless_crn() -> CRN:
    """The leaderless but non-output-oblivious CRN for ``min(1, x)`` (Fig. 2, left).

    Reactions ``X -> Y`` and ``2Y -> Y``: every input becomes an output, and
    excess outputs annihilate each other down to one.
    """
    x, y = species("X Y")
    return CRN([x >> y, 2 * y >> y], (x,), y, leader=None, name="min(1,x)-leaderless")


# ---------------------------------------------------------------------------
# Fig. 3: quilt-affine examples
# ---------------------------------------------------------------------------


def floor_3x_over_2_spec() -> FunctionSpec:
    """``f(x) = ⌊3x/2⌋`` (Fig. 3a) with the CRN ``X -> 3Z, 2Z -> Y`` from Section 1.4."""
    x, y, z = species("X Y Z")
    crn = CRN([x >> 3 * z, 2 * z >> y], (x,), y, leader=None, name="floor(3x/2)")
    quilt = QuiltAffine.floor_linear((3,), 2, name="floor(3x/2)")
    return FunctionSpec(
        name="floor(3x/2)",
        dimension=1,
        func=lambda v: (3 * int(v[0])) // 2,
        eventually_min=EventuallyMin([quilt], (0,), name="floor(3x/2)"),
        known_crn=crn,
        expected_obliviously_computable=True,
    )


def quilt_2d_fig3b_spec() -> FunctionSpec:
    """The 2D quilt-affine function of Fig. 3b: ``g(x) = (1,2)·x + B(x mod 3)``.

    ``B`` is zero except on the classes ``(1,2), (2,2), (2,1)`` where it is
    ``-1`` (the paper leaves the nonzero values unspecified; ``-1`` keeps the
    function nondecreasing and integer-valued, giving the pictured "bumpy
    quilt").
    """
    offsets = {(1, 2): -1, (2, 2): -1, (2, 1): -1}
    quilt = QuiltAffine((1, 2), 3, offsets, name="fig3b")

    def evaluate(v: Sequence[int]) -> int:
        return quilt((int(v[0]), int(v[1])))

    return FunctionSpec(
        name="fig3b-quilt",
        dimension=2,
        func=evaluate,
        eventually_min=EventuallyMin([quilt], (0, 0), name="fig3b-quilt"),
        expected_obliviously_computable=True,
    )


def threshold_capped_spec(cap: int = 3) -> FunctionSpec:
    """``f(x) = min(x, cap)`` — a 1D nondecreasing semilinear function with a plateau."""
    if cap < 0:
        raise ValueError("the cap must be nonnegative")
    semilinear = SemilinearFunction(
        [
            AffinePiece(ThresholdSet((1,), cap), (Fraction(0),), Fraction(cap)),
            AffinePiece(UniversalSet(1), (Fraction(1),), Fraction(0)),
        ],
        name=f"min(x,{cap})",
    )
    return FunctionSpec(
        name=f"min(x,{cap})",
        dimension=1,
        func=lambda v: min(int(v[0]), cap),
        semilinear=semilinear,
        expected_obliviously_computable=True,
    )


def all_catalog_specs() -> List[FunctionSpec]:
    """Every catalog spec (used by sweep-style tests and benchmarks)."""
    return [
        double_spec(),
        identity_spec(),
        constant_spec(2),
        add_spec(),
        minimum_spec(),
        maximum_spec(),
        min_one_spec(),
        floor_3x_over_2_spec(),
        quilt_2d_fig3b_spec(),
        threshold_capped_spec(),
    ]
