"""Section 8: the ∞-scaling limit and the continuous-CRN correspondence.

Definition 8.1: the ∞-scaling of ``f : N^d -> N`` is
``f̂(z) = lim_{c -> ∞} f(⌊cz⌋)/c`` for ``z ∈ R^d_{>=0}``.  Theorem 8.2 shows
that the ∞-scaling of an obliviously-computable discrete function is exactly a
function obliviously-computable by a *continuous* CRN in the sense of Chalk,
Kornerup, Reeves and Soloveichik: superadditive, positive-continuous, and
piecewise rational-linear — and conversely every such continuous function is
the scaling of some obliviously-computable discrete function.

For an eventually-min representation the scaling limit is exact and rational:
the periodic offsets vanish in the limit, so ``f̂(z) = min_k ∇g_k · z`` on the
strictly positive orthant, and on each face (some coordinates fixed to zero)
the same formula applies to the corresponding restriction.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.specs import FunctionSpec
from repro.quilt.eventually_min import EventuallyMin


def infinity_scaling(
    func: Callable[[Sequence[int]], int],
    z: Sequence[float],
    scale: int = 10_000,
) -> float:
    """A numerical estimate of the ∞-scaling ``f̂(z) ≈ f(⌊scale·z⌋)/scale``."""
    point = tuple(int(scale * value) for value in z)
    return int(func(point)) / scale


def scaling_of_eventually_min(eventually_min: EventuallyMin, z: Sequence) -> Fraction:
    """The exact scaling limit ``min_k ∇g_k · z`` for strictly positive ``z``."""
    z = tuple(Fraction(value) for value in z)
    if len(z) != eventually_min.dimension:
        raise ValueError("dimension mismatch")
    if any(value <= 0 for value in z):
        raise ValueError(
            "the closed-form scaling limit min_k ∇g_k·z only applies on the strictly "
            "positive orthant; use scaling_on_face for boundary points"
        )
    best: Optional[Fraction] = None
    for piece in eventually_min.pieces:
        value = sum((g * v for g, v in zip(piece.gradient, z)), start=Fraction(0))
        if best is None or value < best:
            best = value
    return best


def scaling_on_face(
    spec: FunctionSpec,
    z: Sequence,
    zero_coordinates: FrozenSet[int] = frozenset(),
    scale: int = 10_000,
) -> Fraction:
    """The scaling limit on a face ``D_S`` where the coordinates in ``S`` are zero.

    If the relevant restriction of ``spec`` carries an eventually-min
    representation the limit is computed exactly; otherwise it falls back to
    the numerical estimate (as an exact Fraction of the sampled value).
    """
    z = tuple(Fraction(value) for value in z)
    for index in zero_coordinates:
        if z[index] != 0:
            raise ValueError(f"coordinate {index} must be zero on this face")

    current = spec
    # Repeatedly fix the zero coordinates (highest index first so indices stay valid).
    for index in sorted(zero_coordinates, reverse=True):
        current = current.restriction(index, 0)
    remaining = [value for index, value in enumerate(z) if index not in zero_coordinates]

    if current.dimension == 0:
        return Fraction(0)
    if current.eventually_min is not None and all(value > 0 for value in remaining):
        return scaling_of_eventually_min(current.eventually_min, remaining)
    point = tuple(int(scale * value) for value in remaining)
    return Fraction(int(current(point)), scale)


def scaling_is_superadditive(
    func: Callable[[Sequence[int]], int],
    dimension: int,
    samples: Sequence[Tuple[Sequence[float], Sequence[float]]],
    scale: int = 2_000,
    tolerance: float = 1e-2,
) -> bool:
    """Numerically check superadditivity of the ∞-scaling on sample pairs.

    Theorem 8.2 guarantees this holds for obliviously-computable ``f``; the
    check is used by tests and the Fig. 4b benchmark.
    """
    for a, b in samples:
        total = tuple(x + y for x, y in zip(a, b))
        fa = infinity_scaling(func, a, scale)
        fb = infinity_scaling(func, b, scale)
        fab = infinity_scaling(func, total, scale)
        if fa + fb > fab + tolerance:
            return False
    return True


def scaling_gradient_table(eventually_min: EventuallyMin) -> List[Tuple[Fraction, ...]]:
    """The gradients of all quilt-affine pieces — the linear pieces of the scaling limit."""
    return [piece.gradient for piece in eventually_min.pieces]
