"""The :class:`CRN` class: a chemical reaction network set up to compute a function.

Following Section 2.2 of the paper, a CRN designated to compute a function
``f : N^d -> N`` has an ordered tuple of input species ``X_1, ..., X_d``, an
output species ``Y``, and (optionally) a leader species ``L``.  The initial
configuration for input ``x`` has ``x(i)`` copies of ``X_i``, one copy of the
leader (if any), and nothing else.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.crn.configuration import Configuration
from repro.crn.reaction import Reaction, parse_reaction
from repro.crn.species import Species


class CRN:
    """A chemical reaction network with designated input/output/leader species.

    Parameters
    ----------
    reactions:
        The reactions of the network (as :class:`Reaction` objects or strings
        parseable by :func:`repro.crn.reaction.parse_reaction`).
    input_species:
        Ordered input species ``(X_1, ..., X_d)``.
    output_species:
        The single output species ``Y``.
    leader:
        Optional leader species ``L`` present with count 1 initially.
    name:
        Optional human-readable name for the network.
    """

    def __init__(
        self,
        reactions: Iterable[Reaction | str],
        input_species: Sequence[Species],
        output_species: Species,
        leader: Optional[Species] = None,
        name: str = "",
    ) -> None:
        parsed: List[Reaction] = []
        for rxn in reactions:
            if isinstance(rxn, str):
                parsed.append(parse_reaction(rxn))
            elif isinstance(rxn, Reaction):
                parsed.append(rxn)
            else:
                raise TypeError(f"reactions must be Reaction or str, got {type(rxn).__name__}")
        self._reactions: Tuple[Reaction, ...] = tuple(parsed)
        self._input_species: Tuple[Species, ...] = tuple(input_species)
        self._output_species = output_species
        self._leader = leader
        self.name = name
        self._compiled = None
        self._validate()

    # -- validation ----------------------------------------------------------

    def _validate(self) -> None:
        if len(set(self._input_species)) != len(self._input_species):
            raise ValueError("input species must be distinct")
        if self._output_species in self._input_species:
            raise ValueError("the output species may not also be an input species")
        if self._leader is not None:
            if self._leader in self._input_species:
                raise ValueError("the leader may not be an input species")
            if self._leader == self._output_species:
                raise ValueError("the leader may not be the output species")
        if not isinstance(self._output_species, Species):
            raise TypeError("output_species must be a Species")
        for sp in self._input_species:
            if not isinstance(sp, Species):
                raise TypeError("input species must be Species instances")

    # -- basic accessors -----------------------------------------------------

    @property
    def reactions(self) -> Tuple[Reaction, ...]:
        """The reactions of the network."""
        return self._reactions

    @property
    def input_species(self) -> Tuple[Species, ...]:
        """The ordered input species ``(X_1, ..., X_d)``."""
        return self._input_species

    @property
    def output_species(self) -> Species:
        """The output species ``Y``."""
        return self._output_species

    @property
    def leader(self) -> Optional[Species]:
        """The leader species ``L``, or ``None`` for a leaderless network."""
        return self._leader

    @property
    def dimension(self) -> int:
        """The input arity ``d`` of the function this CRN computes."""
        return len(self._input_species)

    def species(self) -> Tuple[Species, ...]:
        """Every species mentioned anywhere in the network, sorted by name."""
        seen = set(self._input_species) | {self._output_species}
        if self._leader is not None:
            seen.add(self._leader)
        for rxn in self._reactions:
            seen.update(rxn.species())
        return tuple(sorted(seen, key=lambda s: s.name))

    def auxiliary_species(self) -> Tuple[Species, ...]:
        """Species that are neither inputs, the output, nor the leader."""
        special = set(self._input_species) | {self._output_species}
        if self._leader is not None:
            special.add(self._leader)
        return tuple(sp for sp in self.species() if sp not in special)

    def size(self) -> Dict[str, int]:
        """Summary of the network size (species count, reaction count, max order)."""
        return {
            "species": len(self.species()),
            "reactions": len(self._reactions),
            "max_order": max((r.order() for r in self._reactions), default=0),
        }

    # -- structural properties (Section 2.3) ----------------------------------

    def is_leaderless(self) -> bool:
        """True if the network has no leader species."""
        return self._leader is None

    def is_output_oblivious(self) -> bool:
        """True if the output species never appears as a reactant.

        This is the paper's central structural property: output-oblivious CRNs
        are exactly the CRNs composable by concatenation (Section 2.3).
        """
        return not any(rxn.consumes(self._output_species) for rxn in self._reactions)

    def is_output_monotonic(self) -> bool:
        """True if no reaction strictly decreases the count of the output species.

        Output-monotonic CRNs compute the same class of functions as
        output-oblivious ones (Observation 2.4).
        """
        return all(rxn.net_change(self._output_species) >= 0 for rxn in self._reactions)

    def output_consuming_reactions(self) -> Tuple[Reaction, ...]:
        """The reactions that use the output species as a reactant."""
        return tuple(rxn for rxn in self._reactions if rxn.consumes(self._output_species))

    def make_output_oblivious(self, catalyst_name: str = "Z_cat") -> "CRN":
        """Convert an output-monotonic CRN into an output-oblivious one.

        Implements the transformation of Observation 2.4: every occurrence of
        the output species ``Y`` as a catalyst is replaced by a fresh catalyst
        species that is produced alongside ``Y``.  Raises ``ValueError`` if the
        network is not output-monotonic (in which case no such transformation
        exists in general).
        """
        if self.is_output_oblivious():
            return self
        if not self.is_output_monotonic():
            raise ValueError("only output-monotonic CRNs can be made output-oblivious")
        y = self._output_species
        catalyst = Species(self._fresh_name(catalyst_name))
        new_reactions: List[Reaction] = []
        for rxn in self._reactions:
            consumed = rxn.reactant_count(y)
            if consumed == 0:
                produced = rxn.product_count(y)
                if produced > 0:
                    # Produce the catalyst alongside Y so it is available later.
                    new_products = rxn.products + catalyst * produced
                    new_reactions.append(
                        Reaction(rxn.reactants, new_products, rate=rxn.rate, name=rxn.name)
                    )
                else:
                    new_reactions.append(rxn)
                continue
            # Output-monotonic + consumes Y means Y acts as a catalyst here.
            reactant_counts = rxn.reactants.counts
            product_counts = rxn.products.counts
            reactant_counts[catalyst] = reactant_counts.pop(y)
            net_extra = rxn.product_count(y) - consumed
            product_counts[catalyst] = product_counts.get(y, 0)
            if net_extra >= 0:
                product_counts[y] = net_extra
                product_counts[catalyst] = consumed + net_extra
            from repro.crn.species import Expression

            new_reactions.append(
                Reaction(Expression(reactant_counts), Expression(product_counts), rate=rxn.rate, name=rxn.name)
            )
        return CRN(
            new_reactions,
            self._input_species,
            self._output_species,
            leader=self._leader,
            name=self.name + "+oblivious" if self.name else "oblivious",
        )

    def _fresh_name(self, base: str) -> str:
        """Return a species name not already used in the network."""
        existing = {sp.name for sp in self.species()}
        if base not in existing:
            return base
        index = 1
        while f"{base}{index}" in existing:
            index += 1
        return f"{base}{index}"

    # -- initial configurations ------------------------------------------------

    def initial_configuration(self, x: Sequence[int]) -> Configuration:
        """The initial configuration ``I_x`` encoding input ``x``.

        Contains ``x(i)`` copies of input species ``X_i`` and one leader copy.
        """
        x = tuple(x)
        if len(x) != self.dimension:
            raise ValueError(
                f"input has dimension {len(x)} but the CRN expects {self.dimension}"
            )
        if any(value < 0 for value in x):
            raise ValueError(f"input values must be nonnegative, got {x}")
        counts: Dict[Species, int] = {}
        for sp, value in zip(self._input_species, x):
            if value > 0:
                counts[sp] = counts.get(sp, 0) + value
        if self._leader is not None:
            counts[self._leader] = counts.get(self._leader, 0) + 1
        return Configuration(counts)

    def output_count(self, config: Configuration) -> int:
        """The count of the output species in ``config``."""
        return config[self._output_species]

    def applicable_reactions(self, config: Configuration) -> List[Reaction]:
        """All reactions applicable in ``config``."""
        return [rxn for rxn in self._reactions if rxn.applicable(config)]

    def is_silent(self, config: Configuration) -> bool:
        """True if no reaction is applicable in ``config``."""
        return not any(rxn.applicable(config) for rxn in self._reactions)

    def compiled(self):
        """The dense :class:`repro.sim.engine.CompiledCRN` view of this network.

        Compiled lazily on first use and cached (reactions and species are
        immutable after construction, so the compilation never goes stale).
        The numpy-backed batch engines consume this representation.
        """
        if self._compiled is None:
            from repro.sim.engine import CompiledCRN

            self._compiled = CompiledCRN(self)
        return self._compiled

    # -- transformations -------------------------------------------------------

    def renamed(self, mapping: Mapping[Species, Species], name: str = "") -> "CRN":
        """Rename species throughout the network according to ``mapping``."""
        new_inputs = tuple(mapping.get(sp, sp) for sp in self._input_species)
        new_output = mapping.get(self._output_species, self._output_species)
        new_leader = mapping.get(self._leader, self._leader) if self._leader else None
        new_reactions = [rxn.renamed(mapping) for rxn in self._reactions]
        return CRN(new_reactions, new_inputs, new_output, leader=new_leader, name=name or self.name)

    def with_prefix(self, prefix: str, keep: Iterable[Species] = ()) -> "CRN":
        """Prefix every species name, except those listed in ``keep``.

        This is the standard way to make the species of two networks disjoint
        before composing them.
        """
        keep_set = set(keep)
        mapping = {
            sp: sp.with_prefix(prefix)
            for sp in self.species()
            if sp not in keep_set
        }
        return self.renamed(mapping, name=self.name)

    def with_output(self, new_output: Species) -> "CRN":
        """Rename the output species (the concatenation primitive of Section 2.3)."""
        return self.renamed({self._output_species: new_output}, name=self.name)

    def without_output_consuming_reactions(self) -> "CRN":
        """Drop every reaction that consumes the output species (Lemma 2.3)."""
        kept = [rxn for rxn in self._reactions if not rxn.consumes(self._output_species)]
        return CRN(
            kept,
            self._input_species,
            self._output_species,
            leader=self._leader,
            name=self.name,
        )

    def add_reactions(self, extra: Iterable[Reaction | str]) -> "CRN":
        """Return a new CRN with additional reactions appended."""
        return CRN(
            list(self._reactions) + list(extra),
            self._input_species,
            self._output_species,
            leader=self._leader,
            name=self.name,
        )

    # -- display ---------------------------------------------------------------

    def describe(self) -> str:
        """A multi-line human-readable description of the network."""
        lines = [f"CRN {self.name or '(unnamed)'}"]
        lines.append(f"  inputs : {', '.join(sp.name for sp in self._input_species) or '(none)'}")
        lines.append(f"  output : {self._output_species.name}")
        lines.append(f"  leader : {self._leader.name if self._leader else '(leaderless)'}")
        lines.append(f"  output-oblivious: {self.is_output_oblivious()}")
        lines.append("  reactions:")
        for rxn in self._reactions:
            lines.append(f"    {rxn}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"CRN(name={self.name!r}, d={self.dimension}, "
            f"|species|={len(self.species())}, |reactions|={len(self._reactions)})"
        )
