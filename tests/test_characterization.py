"""Tests for the Theorem 5.2 / 5.4 decision procedure and the construction dispatcher."""

import pytest

from repro.core.characterization import build_crn_for, check_obliviously_computable
from repro.core.specs import FunctionSpec
from repro.functions.catalog import (
    add_spec,
    double_spec,
    floor_3x_over_2_spec,
    maximum_spec,
    min_one_spec,
    minimum_spec,
    threshold_capped_spec,
)
from repro.functions.paper_examples import (
    eq2_counterexample_spec,
    fig4a_style_spec,
    fig7_spec,
    interior_min_plus_one_spec,
)
from repro.verify.stable import verify_stable_computation


class TestPositiveVerdicts:
    @pytest.mark.parametrize(
        "spec_factory",
        [double_spec, min_one_spec, floor_3x_over_2_spec, threshold_capped_spec],
        ids=lambda f: f.__name__,
    )
    def test_1d_catalog_functions(self, spec_factory):
        verdict = check_obliviously_computable(spec_factory())
        assert verdict.obliviously_computable is True
        assert verdict.conclusive

    @pytest.mark.parametrize(
        "spec_factory",
        [minimum_spec, add_spec, fig7_spec, fig4a_style_spec, interior_min_plus_one_spec],
        ids=lambda f: f.__name__,
    )
    def test_2d_obliviously_computable_functions(self, spec_factory):
        verdict = check_obliviously_computable(spec_factory())
        assert verdict.obliviously_computable is True, verdict.describe()
        assert verdict.eventually_min is not None

    def test_constant_zero_dimension(self):
        verdict = check_obliviously_computable(FunctionSpec("c", 0, lambda x: 5))
        assert verdict.obliviously_computable is True


class TestNegativeVerdicts:
    def test_max_is_not_obliviously_computable(self):
        verdict = check_obliviously_computable(maximum_spec())
        assert verdict.obliviously_computable is False
        assert verdict.conclusive
        assert verdict.witness is not None

    def test_eq2_counterexample(self):
        verdict = check_obliviously_computable(eq2_counterexample_spec())
        assert verdict.obliviously_computable is False
        assert verdict.witness is not None

    def test_decreasing_function_rejected_by_condition_i(self):
        spec = FunctionSpec("dec", 1, lambda x: max(0, 3 - x[0]))
        verdict = check_obliviously_computable(spec)
        assert verdict.obliviously_computable is False
        assert any("condition (i)" in reason for reason in verdict.reasons)

    def test_describe_mentions_verdict(self):
        text = check_obliviously_computable(maximum_spec()).describe()
        assert "NOT obliviously-computable" in text


class TestInconclusive:
    def test_bare_2d_spec_without_structure(self):
        # min has no contradiction witness and we give the checker no structure to
        # establish condition (ii), so the verdict must be inconclusive.
        bare = FunctionSpec("bare-min", 2, lambda x: min(x))
        verdict = check_obliviously_computable(bare, witness_terms=3)
        assert verdict.obliviously_computable is None
        assert not verdict.conclusive


class TestBuildCrnFor:
    def test_prefers_known_crn(self):
        spec = minimum_spec()
        assert build_crn_for(spec) is spec.known_crn

    def test_general_construction_from_semilinear_only(self):
        # Strip the explicit eventually-min and known CRN: the builder must decompose.
        base = fig7_spec()
        spec = FunctionSpec(
            name=base.name, dimension=2, func=base.func, semilinear=base.semilinear
        )
        crn = build_crn_for(spec)
        assert crn.is_output_oblivious()
        report = verify_stable_computation(
            crn, spec.func, inputs=[(0, 0), (1, 1), (2, 1), (1, 2)], exhaustive_limit=6_000, trials=4
        )
        assert report.passed, report.describe()

    def test_1d_dispatch(self):
        spec = FunctionSpec("cap", 1, lambda x: min(x[0], 2))
        crn = build_crn_for(spec)
        assert crn.dimension == 1 and crn.is_output_oblivious()

    def test_failure_for_non_computable_function(self):
        with pytest.raises(ValueError):
            build_crn_for(
                FunctionSpec(
                    name="eq2",
                    dimension=2,
                    func=eq2_counterexample_spec().func,
                    semilinear=eq2_counterexample_spec().semilinear,
                ),
                prefer_known=False,
            )

    def test_requires_some_structure_in_2d(self):
        with pytest.raises(ValueError):
            build_crn_for(FunctionSpec("bare", 2, lambda x: min(x)), prefer_known=False)
