"""Tests for population protocols and the bimolecular conversion (footnote 5)."""

import pytest

from repro.crn.network import CRN
from repro.crn.reachability import stably_computes_exhaustive
from repro.crn.species import species
from repro.functions.catalog import minimum_spec
from repro.protocols.conversion import to_at_most_bimolecular
from repro.protocols.population import PopulationProtocol, crn_to_population_protocol


X, X1, X2, Y, Z = species("X X1 X2 Y Z")


class TestBimolecularConversion:
    def test_footnote5_example(self):
        # 3X -> Y becomes 2X <-> X2 and X + X2 -> Y.
        crn = CRN([3 * X >> Y], (X,), Y)
        converted = to_at_most_bimolecular(crn)
        assert all(rxn.order() <= 2 for rxn in converted.reactions)
        assert len(converted.reactions) == 3

    def test_converted_crn_computes_same_function(self):
        crn = CRN([3 * X >> Y], (X,), Y)
        converted = to_at_most_bimolecular(crn)
        verdicts = stably_computes_exhaustive(
            converted, lambda x: x[0] // 3, [(0,), (2,), (3,), (7,)]
        )
        assert all(v.holds and v.conclusive for v in verdicts)

    def test_low_order_reactions_untouched(self):
        crn = minimum_spec().known_crn
        assert to_at_most_bimolecular(crn).reactions == crn.reactions

    def test_output_obliviousness_preserved(self):
        crn = CRN([4 * X >> Y + Z], (X,), Y)
        converted = to_at_most_bimolecular(crn)
        assert converted.is_output_oblivious()
        verdicts = stably_computes_exhaustive(converted, lambda x: x[0] // 4, [(4,), (6,)])
        assert all(v.holds and v.conclusive for v in verdicts)


class TestPopulationProtocol:
    def make_min_protocol(self) -> PopulationProtocol:
        return crn_to_population_protocol(minimum_spec().known_crn)

    def test_conversion_structure(self):
        protocol = self.make_min_protocol()
        assert protocol.dimension == 2
        assert ("X1", "X2") in protocol.transitions
        assert protocol.leader_state is None

    def test_initial_population(self):
        protocol = self.make_min_protocol()
        agents = protocol.initial_population((2, 1))
        assert sorted(agents) == ["X1", "X1", "X2"]

    def test_run_computes_min(self):
        protocol = self.make_min_protocol()
        agents, _ = protocol.run((3, 5), seed=1)
        assert protocol.output_count(agents) == 3

    def test_unimolecular_reaction_rejected(self):
        crn = CRN([X >> Y], (X,), Y)
        with pytest.raises(ValueError):
            crn_to_population_protocol(crn)

    def test_too_many_products_rejected(self):
        crn = CRN([X1 + X2 >> Y + Z + Z], (X1, X2), Y)
        with pytest.raises(ValueError):
            crn_to_population_protocol(crn)

    def test_padding_with_inert_state(self):
        protocol = self.make_min_protocol()
        # X1 + X2 -> Y has one product; the second slot is padded with the inert state.
        assert protocol.transitions[("X1", "X2")][1] == "F"

    def test_unknown_state_validation(self):
        with pytest.raises(ValueError):
            PopulationProtocol(
                states=("a",),
                transitions={("a", "b"): ("a", "a")},
                input_states=("a",),
                output_states=frozenset({"a"}),
            )
