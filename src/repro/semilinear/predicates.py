"""Semilinear predicates (Boolean-valued semilinear functions).

Predicate computation is the population-protocol setting the paper builds on
(Angluin et al.): the stably computable predicates are exactly the semilinear
ones.  Predicates are included as a substrate because the indicator functions
``1_{x(i) > j}`` used in the general construction of Lemma 6.2 are (very
simple) semilinear predicates, and because the examples and tests exercise the
CRN model on the classical predicate workloads (majority, threshold, parity).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, Tuple

from repro.semilinear.sets import ModSet, SemilinearSet, ThresholdSet


@dataclass(frozen=True)
class SemilinearPredicate:
    """A predicate ``N^d -> {0, 1}`` defined by membership in a semilinear set."""

    accepting_set: SemilinearSet
    name: str = ""

    @property
    def dimension(self) -> int:
        """The input dimension of the predicate."""
        return self.accepting_set.dimension

    def __call__(self, x: Sequence[int]) -> int:
        return 1 if self.accepting_set.contains(x) else 0

    def as_indicator(self) -> Callable[[Sequence[int]], int]:
        """The predicate as a 0/1-valued callable."""
        return self.__call__

    def negation(self) -> "SemilinearPredicate":
        """The complementary predicate."""
        return SemilinearPredicate(self.accepting_set.complement(), name=f"not-{self.name}")

    def conjunction(self, other: "SemilinearPredicate") -> "SemilinearPredicate":
        """The conjunction (AND) of two predicates."""
        return SemilinearPredicate(
            self.accepting_set.intersection(other.accepting_set),
            name=f"({self.name} and {other.name})",
        )

    def disjunction(self, other: "SemilinearPredicate") -> "SemilinearPredicate":
        """The disjunction (OR) of two predicates."""
        return SemilinearPredicate(
            self.accepting_set.union(other.accepting_set),
            name=f"({self.name} or {other.name})",
        )


def threshold_predicate(coefficients: Sequence[int], bound: int, name: str = "") -> SemilinearPredicate:
    """The predicate ``a·x >= b``."""
    coefficients = tuple(int(c) for c in coefficients)
    return SemilinearPredicate(
        ThresholdSet(coefficients, bound),
        name=name or f"threshold({coefficients}, {bound})",
    )


def majority_predicate(dimension: int = 2) -> SemilinearPredicate:
    """The majority predicate ``x1 >= x2`` (for dimension 2).

    For higher dimensions this compares the first coordinate against the sum of
    the rest.
    """
    if dimension < 2:
        raise ValueError("majority requires at least two inputs")
    coefficients = tuple([1] + [-1] * (dimension - 1))
    return SemilinearPredicate(ThresholdSet(coefficients, 0), name="majority")


def parity_predicate(dimension: int = 1, modulus: int = 2, residue: int = 0) -> SemilinearPredicate:
    """The parity predicate ``sum(x) ≡ residue (mod modulus)``."""
    coefficients = tuple([1] * dimension)
    return SemilinearPredicate(
        ModSet(coefficients, residue, modulus),
        name=f"parity(mod {modulus} == {residue})",
    )


def coordinate_exceeds(dimension: int, index: int, threshold: int) -> SemilinearPredicate:
    """The indicator predicate ``1_{x(index) > threshold}`` used in Lemma 6.2."""
    if not 0 <= index < dimension:
        raise ValueError(f"index {index} out of range for dimension {dimension}")
    coefficients = tuple(1 if i == index else 0 for i in range(dimension))
    return SemilinearPredicate(
        ThresholdSet(coefficients, threshold + 1),
        name=f"x{index + 1}>{threshold}",
    )
