"""Unit tests for the CRN class: structure, properties, transformations."""

import pytest

from repro.crn.network import CRN
from repro.crn.species import Species, species
from repro.functions.catalog import maximum_spec, minimum_spec


X1, X2, Y, L, Z = species("X1 X2 Y L Z")


def min_crn() -> CRN:
    return CRN([X1 + X2 >> Y], (X1, X2), Y, name="min")


class TestConstructionValidation:
    def test_reactions_from_strings(self):
        crn = CRN(["X1 + X2 -> Y"], (X1, X2), Y)
        assert len(crn.reactions) == 1

    def test_duplicate_inputs_rejected(self):
        with pytest.raises(ValueError):
            CRN([X1 >> Y], (X1, X1), Y)

    def test_output_cannot_be_input(self):
        with pytest.raises(ValueError):
            CRN([X1 >> Y], (X1, Y), Y)

    def test_leader_cannot_be_input_or_output(self):
        with pytest.raises(ValueError):
            CRN([X1 >> Y], (X1,), Y, leader=X1)
        with pytest.raises(ValueError):
            CRN([X1 >> Y], (X1,), Y, leader=Y)

    def test_species_collection(self):
        crn = CRN([X1 + X2 >> Y + Z], (X1, X2), Y, leader=L)
        names = {sp.name for sp in crn.species()}
        assert names == {"X1", "X2", "Y", "Z", "L"}
        assert {sp.name for sp in crn.auxiliary_species()} == {"Z"}

    def test_size_summary(self):
        size = min_crn().size()
        assert size == {"species": 3, "reactions": 1, "max_order": 2}


class TestStructuralProperties:
    def test_min_is_output_oblivious(self):
        assert min_crn().is_output_oblivious()

    def test_max_is_not_output_oblivious(self):
        crn = maximum_spec().known_crn
        assert not crn.is_output_oblivious()
        assert not crn.is_output_monotonic()
        assert len(crn.output_consuming_reactions()) == 1

    def test_leaderless_detection(self):
        assert min_crn().is_leaderless()
        with_leader = CRN([L + X1 >> Y], (X1,), Y, leader=L)
        assert not with_leader.is_leaderless()

    def test_output_monotonic_but_not_oblivious(self):
        # Y catalyzes production of more Y: monotonic, not oblivious.
        crn = CRN([X1 + Y >> Y + Y], (X1,), Y)
        assert crn.is_output_monotonic()
        assert not crn.is_output_oblivious()

    def test_make_output_oblivious_on_catalytic_network(self):
        crn = CRN([X1 >> Y, X1 + Y >> Y + Y + Z], (X1,), Y)
        converted = crn.make_output_oblivious()
        assert converted.is_output_oblivious()

    def test_make_output_oblivious_rejects_nonmonotonic(self):
        crn = maximum_spec().known_crn
        with pytest.raises(ValueError):
            crn.make_output_oblivious()


class TestInitialConfigurations:
    def test_counts_and_leader(self):
        crn = CRN([L + X1 >> Y], (X1,), Y, leader=L)
        init = crn.initial_configuration((3,))
        assert init[X1] == 3 and init[L] == 1 and init[Y] == 0

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            min_crn().initial_configuration((1,))

    def test_negative_input_rejected(self):
        with pytest.raises(ValueError):
            min_crn().initial_configuration((1, -1))

    def test_applicable_reactions_and_silence(self):
        crn = min_crn()
        init = crn.initial_configuration((1, 1))
        assert len(crn.applicable_reactions(init)) == 1
        assert not crn.is_silent(init)
        assert crn.is_silent(crn.initial_configuration((1, 0)))


class TestTransformations:
    def test_renamed_output(self):
        crn = min_crn().with_output(Z)
        assert crn.output_species == Z
        assert crn.reactions[0].product_count(Z) == 1

    def test_with_prefix_keeps_shared(self):
        crn = min_crn().with_prefix("up_", keep=[Y])
        assert Species("up_X1") in crn.species()
        assert crn.output_species == Y

    def test_without_output_consuming_reactions(self):
        crn = maximum_spec().known_crn.without_output_consuming_reactions()
        assert crn.is_output_oblivious()
        assert len(crn.reactions) == 3

    def test_add_reactions(self):
        crn = min_crn().add_reactions(["Y -> Z"])
        assert len(crn.reactions) == 2

    def test_describe_contains_reactions(self):
        text = min_crn().describe()
        assert "X1 + X2 -> Y" in text
        assert "output-oblivious: True" in text
