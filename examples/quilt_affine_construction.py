#!/usr/bin/env python3
"""Quilt-affine functions and the Lemma 6.1 construction (Fig. 3).

Builds the output-oblivious CRNs for the paper's quilt-affine examples —
``⌊3x/2⌋`` (Fig. 3a) and the 2D "bumpy quilt" ``g(x) = (1,2)·x + B(x mod 3)``
(Fig. 3b) — directly from their gradient / periodic-offset data, and verifies
them against the functions.

Run with::

    python examples/quilt_affine_construction.py
"""

from repro import QuiltAffine, build_quilt_affine_crn, verify_stable_computation
from repro.quilt.fitting import fit_eventually_quilt_affine_1d


def fig3a() -> None:
    print("=== Fig. 3a: floor(3x/2) ===")
    quilt = QuiltAffine.floor_linear((3,), 2, name="floor(3x/2)")
    print(f"gradient = {quilt.gradient}, period = {quilt.period}, "
          f"offsets = {{0: {quilt.offset((0,))}, 1: {quilt.offset((1,))}}}")
    print("values:", [quilt((x,)) for x in range(10)])
    crn = build_quilt_affine_crn(quilt)
    print(crn.describe())
    report = verify_stable_computation(crn, quilt, inputs=[(x,) for x in range(6)])
    print(report.describe())
    print()


def fig3b() -> None:
    print("=== Fig. 3b: the 2D bumpy quilt (1,2)·x + B(x mod 3) ===")
    quilt = QuiltAffine((1, 2), 3, {(1, 2): -1, (2, 2): -1, (2, 1): -1}, name="fig3b")
    print("a 6x6 patch of values:")
    for x2 in range(5, -1, -1):
        print("  " + " ".join(f"{quilt((x1, x2)):3d}" for x1 in range(6)))
    crn = build_quilt_affine_crn(quilt)
    size = crn.size()
    print(f"Lemma 6.1 CRN: {size['species']} species, {size['reactions']} reactions "
          f"(1 init + d·p^d = 1 + 2·9)")
    report = verify_stable_computation(
        crn, quilt, inputs=[(0, 0), (1, 2), (2, 2), (3, 1)], exhaustive_limit=4_000, trials=3
    )
    print(report.describe())
    print()


def fitted_from_black_box() -> None:
    print("=== Fitting the quilt-affine structure of a black-box 1D function (Fig. 5) ===")

    def staircase(x: int) -> int:
        return min(x, 3) + 2 * max(0, (x - 3) // 2)

    structure = fit_eventually_quilt_affine_1d(staircase)
    print(f"recovered start n = {structure.start}, period p = {structure.period}, "
          f"finite differences = {structure.deltas}")
    print(f"eventual gradient = {structure.gradient()}")
    print("fitted values match:", all(structure.value(x) == staircase(x) for x in range(20)))


def main() -> None:
    fig3a()
    fig3b()
    fitted_from_black_box()


if __name__ == "__main__":
    main()
