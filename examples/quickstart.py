#!/usr/bin/env python3
"""Quickstart: build CRNs, simulate them, and check output-obliviousness.

Reproduces the Fig. 1 examples of the paper: ``f(x) = 2x``, ``min(x1, x2)``
and ``max(x1, x2)``, showing that the first two are output-oblivious (and
therefore composable by concatenation) while ``max`` necessarily consumes its
output and transiently overshoots.

Run with::

    python examples/quickstart.py
"""

from repro import CRN, species, verify_stable_computation
from repro.sim import GillespieSimulator, run_many
from repro.verify import audit_output_oblivious, find_overproduction


def build_fig1_crns():
    """The three CRNs of Fig. 1."""
    X, X1, X2, Y, Z1, Z2, K = species("X X1 X2 Y Z1 Z2 K")

    double = CRN([X >> 2 * Y], (X,), Y, name="2x")
    minimum = CRN([X1 + X2 >> Y], (X1, X2), Y, name="min")
    maximum = CRN(
        [
            X1 >> Z1 + Y,
            X2 >> Z2 + Y,
            Z1 + Z2 >> K,
            K + Y >> 0,
        ],
        (X1, X2),
        Y,
        name="max",
    )
    return double, minimum, maximum


def main() -> None:
    double, minimum, maximum = build_fig1_crns()

    print("=== Fig. 1 CRNs ===")
    for crn in (double, minimum, maximum):
        print(crn.describe())
        print()

    print("=== Stable computation (exhaustive verification on small inputs) ===")
    print(verify_stable_computation(double, lambda x: 2 * x[0], function_name="2x").describe())
    print(verify_stable_computation(minimum, lambda x: min(x), function_name="min").describe())
    print(verify_stable_computation(maximum, lambda x: max(x), function_name="max").describe())
    print()

    print("=== Output-obliviousness audit (Section 2.3) ===")
    for crn in (double, minimum, maximum):
        print(audit_output_oblivious(crn).describe())
        print()

    print("=== Stochastic (Gillespie) simulation of min on input (30, 50) ===")
    simulator = GillespieSimulator(minimum)
    result = simulator.run_on_input((30, 50))
    print(f"final output count: {result.output_count(minimum)} after {result.steps} reactions "
          f"(simulated time {result.final_time:.3f})")
    print()

    print("=== max overshoots transiently, min never does ===")
    for crn, func in ((maximum, lambda x: max(x)), (minimum, lambda x: min(x))):
        witness = find_overproduction(crn, func, (10, 10), trials=10)
        if witness is None:
            print(f"{crn.name}: no schedule ever exceeded the target (output-oblivious behaviour)")
        else:
            print(
                f"{crn.name}: output climbed to {witness.max_output_seen} "
                f"(target {witness.target}, overshoot {witness.overshoot}) before settling at "
                f"{witness.final_output}"
            )
    print()

    print("=== Repeated fair-scheduler runs agree on the stable output ===")
    report = run_many(minimum, (7, 11), trials=10, seed=0)
    print(f"min(7, 11): outputs across runs = {sorted(set(report.outputs))}, "
          f"mean reactions = {report.mean_steps:.1f}")


if __name__ == "__main__":
    main()
