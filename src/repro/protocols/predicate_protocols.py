"""Classical predicate-computing population protocols (the Section 1 substrate).

The paper builds on the population-protocol literature in which agents compute
*predicates* by reaching consensus on a yes/no opinion.  Two standard examples
are provided, both with the usual correctness convention (every agent's state
carries an opinion and, once the protocol stabilizes, all opinions agree with
the predicate):

* the **4-state majority** protocol deciding ``#A >= #B`` (approximate/exact on
  ties depending on the tie-breaking convention; here ties report True, i.e.
  the predicate is ``#A >= #B``), and
* the **threshold-k** protocol deciding ``#A >= k`` for a constant ``k``, using
  a leader that counts up to ``k``.

These protocols complement the function-computing CRNs elsewhere in the
library and are exercised by the protocol tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


State = str


@dataclass
class OpinionProtocol:
    """A population protocol whose states carry a Boolean opinion."""

    states: Tuple[State, ...]
    transitions: Dict[Tuple[State, State], Tuple[State, State]]
    input_states: Tuple[State, ...]
    opinions: Dict[State, bool]
    leader_state: Optional[State] = None
    name: str = ""

    def initial_population(self, counts: Sequence[int]) -> List[State]:
        """Agents encoding the input counts (plus the leader when present)."""
        if len(counts) != len(self.input_states):
            raise ValueError(
                f"expected {len(self.input_states)} input counts, got {len(counts)}"
            )
        agents: List[State] = []
        for state, count in zip(self.input_states, counts):
            agents.extend([state] * int(count))
        if self.leader_state is not None:
            agents.append(self.leader_state)
        return agents

    def consensus(self, agents: Sequence[State]) -> Optional[bool]:
        """The common opinion of all agents, or ``None`` if they disagree."""
        opinions = {self.opinions[state] for state in agents}
        if len(opinions) == 1:
            return next(iter(opinions))
        return None

    def run(
        self,
        counts: Sequence[int],
        max_interactions: int = 500_000,
        quiescence_window: int = 5_000,
        seed: Optional[int] = None,
    ) -> Tuple[Optional[bool], int]:
        """Run random pairwise interactions until the opinion profile is quiescent.

        Returns the consensus opinion (or ``None`` if the budget ran out before
        consensus) and the number of interactions used.
        """
        rng = random.Random(seed)
        agents = self.initial_population(counts)
        if len(agents) < 2:
            return (self.consensus(agents) if agents else True), 0
        stable_for = 0
        interactions = 0
        last_profile = tuple(sorted(agents))
        while interactions < max_interactions and stable_for < quiescence_window:
            i, j = rng.sample(range(len(agents)), 2)
            key = (agents[i], agents[j])
            if key in self.transitions:
                agents[i], agents[j] = self.transitions[key]
            interactions += 1
            profile = tuple(sorted(agents))
            if profile == last_profile:
                stable_for += 1
            else:
                stable_for = 0
                last_profile = profile
        return self.consensus(agents), interactions


def majority_protocol() -> OpinionProtocol:
    """The classical 4-state majority protocol deciding ``#A >= #B``.

    States: strong opinions ``A`` / ``B`` and weak (converted) opinions
    ``a`` / ``b``.  Strong opposites annihilate into weak opinions; strong
    states convert weak opposites; weak states adopt any strong opinion.
    """
    transitions: Dict[Tuple[State, State], Tuple[State, State]] = {}

    def both(x: State, y: State, nx: State, ny: State) -> None:
        transitions[(x, y)] = (nx, ny)
        transitions[(y, x)] = (ny, nx)

    both("A", "B", "a", "b")
    both("A", "b", "A", "a")
    both("B", "a", "B", "b")
    # Weak agents adopt the opinion of any strong agent they meet (covered above);
    # weak-weak interactions resolve the tie toward the positive answer so that
    # an exact tie (all agents weak) reports #A >= #B as True.
    both("a", "b", "a", "a")

    return OpinionProtocol(
        states=("A", "B", "a", "b"),
        transitions=transitions,
        input_states=("A", "B"),
        opinions={"A": True, "a": True, "B": False, "b": False},
        name="majority",
    )


def threshold_protocol(k: int) -> OpinionProtocol:
    """A leader-driven protocol deciding ``#A >= k`` for a constant ``k >= 1``.

    The leader walks through counting states ``L0, ..., Lk``, absorbing one
    input token at a time; every absorbed token becomes a follower ``F``.  The
    leader's opinion flips to True at ``Lk`` and it then converts every agent
    it meets to the accepting follower state ``T``.
    """
    if k < 1:
        raise ValueError("the threshold must be at least 1")
    counting = [f"L{i}" for i in range(k + 1)]
    states = tuple(counting + ["A", "F", "T"])
    transitions: Dict[Tuple[State, State], Tuple[State, State]] = {}

    for i in range(k):
        transitions[(counting[i], "A")] = (counting[i + 1], "F")
        transitions[("A", counting[i])] = ("F", counting[i + 1])
    # Once the leader reaches Lk it converts everything it meets to T.
    for other in ["A", "F"]:
        transitions[(counting[k], other)] = (counting[k], "T")
        transitions[(other, counting[k])] = ("T", counting[k])

    opinions = {state: False for state in states}
    opinions[counting[k]] = True
    opinions["T"] = True

    return OpinionProtocol(
        states=states,
        transitions=transitions,
        input_states=("A",),
        opinions=opinions,
        leader_state="L0",
        name=f"threshold>={k}",
    )
