"""A minimal continuous (rate-independent) CRN substrate.

In the continuous model species have nonnegative *real* amounts and a reaction
can fire by any nonnegative real extent as long as no species goes negative.
For the feed-forward, output-oblivious constructions used in Section 8 the
stable output is simply the maximum amount of output producible subject to
those nonnegativity constraints, which is a linear program over the reaction
extents.  That LP view is the documented substitution for the full
rate-independent semantics of [9]; it coincides with it on every network built
by :mod:`repro.continuous.construction` (each species is produced before it is
consumed along the feed-forward order, so the LP optimum is reachable by a
finite sequence of segments).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from repro.crn.species import Species


@dataclass(frozen=True)
class ContinuousReaction:
    """A reaction with integer stoichiometry fired by real-valued extents."""

    reactants: Tuple[Tuple[Species, int], ...]
    products: Tuple[Tuple[Species, int], ...]

    @staticmethod
    def build(reactants: Dict[Species, int], products: Dict[Species, int]) -> "ContinuousReaction":
        """Build a reaction from reactant/product coefficient dictionaries."""
        return ContinuousReaction(
            tuple(sorted(reactants.items(), key=lambda kv: kv[0].name)),
            tuple(sorted(products.items(), key=lambda kv: kv[0].name)),
        )

    def net_change(self, sp: Species) -> int:
        """Net stoichiometric change of ``sp`` per unit extent."""
        produced = sum(count for species_, count in self.products if species_ == sp)
        consumed = sum(count for species_, count in self.reactants if species_ == sp)
        return produced - consumed

    def species(self) -> Tuple[Species, ...]:
        """All species mentioned by the reaction."""
        seen = {sp for sp, _ in self.reactants} | {sp for sp, _ in self.products}
        return tuple(sorted(seen, key=lambda s: s.name))

    def __str__(self) -> str:
        def side(pairs: Tuple[Tuple[Species, int], ...]) -> str:
            if not pairs:
                return "(nothing)"
            return " + ".join(f"{count}{sp.name}" if count != 1 else sp.name for sp, count in pairs)

        return f"{side(self.reactants)} -> {side(self.products)}"


class ContinuousCRN:
    """A continuous CRN with designated input and output species."""

    def __init__(
        self,
        reactions: Sequence[ContinuousReaction],
        input_species: Sequence[Species],
        output_species: Species,
        name: str = "",
    ) -> None:
        self.reactions: Tuple[ContinuousReaction, ...] = tuple(reactions)
        self.input_species: Tuple[Species, ...] = tuple(input_species)
        self.output_species = output_species
        self.name = name

    @property
    def dimension(self) -> int:
        """The number of inputs."""
        return len(self.input_species)

    def species(self) -> Tuple[Species, ...]:
        """Every species in the network, sorted by name."""
        seen = set(self.input_species) | {self.output_species}
        for rxn in self.reactions:
            seen.update(rxn.species())
        return tuple(sorted(seen, key=lambda s: s.name))

    def is_output_oblivious(self) -> bool:
        """True if no reaction consumes the output species."""
        return all(
            all(sp != self.output_species for sp, _ in rxn.reactants) for rxn in self.reactions
        )

    def max_output(self, x: Sequence[float]) -> float:
        """The maximum amount of output producible from input amounts ``x``.

        Solves ``max Y(final)`` over reaction extents ``u >= 0`` subject to
        ``final = initial + M u >= 0`` componentwise, where ``M`` is the
        stoichiometry matrix.  For the feed-forward output-oblivious networks
        built in this package this equals the stably computed output.
        """
        from scipy.optimize import linprog

        species_list = list(self.species())
        index = {sp: i for i, sp in enumerate(species_list)}
        if len(x) != self.dimension:
            raise ValueError("dimension mismatch")

        initial = [0.0] * len(species_list)
        for sp, amount in zip(self.input_species, x):
            if amount < 0:
                raise ValueError("input amounts must be nonnegative")
            initial[index[sp]] += float(amount)

        # final = initial + M u >= 0  <=>  -M u <= initial
        num_reactions = len(self.reactions)
        a_ub = []
        b_ub = []
        for sp in species_list:
            row = [-float(rxn.net_change(sp)) for rxn in self.reactions]
            a_ub.append(row)
            b_ub.append(initial[index[sp]])

        # Objective: maximize Y(final) = initial_Y + sum_j net_change_Y(j) * u_j.
        output_row = [float(rxn.net_change(self.output_species)) for rxn in self.reactions]
        objective = [-value for value in output_row]
        bounds = [(0.0, None)] * num_reactions
        result = linprog(objective, A_ub=a_ub, b_ub=b_ub, bounds=bounds, method="highs")
        if result.status != 0:
            raise RuntimeError(f"continuous CRN LP failed: {result.message}")
        return initial[index[self.output_species]] + float(-result.fun)

    def describe(self) -> str:
        """A human-readable description of the network."""
        lines = [f"Continuous CRN {self.name or '(unnamed)'}"]
        lines.append(f"  inputs : {', '.join(sp.name for sp in self.input_species)}")
        lines.append(f"  output : {self.output_species.name}")
        lines.append(f"  output-oblivious: {self.is_output_oblivious()}")
        for rxn in self.reactions:
            lines.append(f"    {rxn}")
        return "\n".join(lines)
