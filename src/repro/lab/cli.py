"""The ``python -m repro`` command-line front end.

Subcommands::

    run            expand and execute a campaign (spec x grid x engines) into --out
                   (--trace writes a schema-versioned trace.jsonl next to the rows;
                   --backend shared-dir shards the cells over a work-queue
                   directory any number of `worker` processes can serve)
    resume         finish an interrupted campaign from its manifest
    worker         serve a shared-dir work queue (`--queue-dir`) until it drains;
                   start any number of these, locally or on hosts sharing the
                   filesystem, against one `run --backend shared-dir` campaign
    report         re-aggregate and print a finished (or partial) campaign
                   (--profile adds executed-cell wall/CPU totals and the slowest cells)
    trace          validate and pretty-print a trace.jsonl: span tree + top
                   self-time table (nonzero exit when the file violates the schema)
    bench          run the benchmark family through the executor -> BENCH_results.json
    bench-compare  diff two BENCH_results.json files; fail on throughput
                   regression (--markdown emits a trend table for CI summaries)
    specs          list the registered function specs
    engines        list the registered simulation engines (--json for the
                   EngineInfo serialization shared with GET /v1/engines)
    serve          HTTP simulation-as-a-service front end (repro.serve)

``python -m repro --version`` prints the package version (kept in sync with
``setup.py``; a tier-1 test enforces it).

Every command is plumbing over :mod:`repro.lab` — anything the CLI does is
one function call away in Python, and the CLI never talks to the simulators
directly.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
from typing import List, Optional, Sequence, Tuple

from repro.api.config import RunConfig
from repro.lab.aggregate import (
    compare_bench_results,
    default_bench_path,
    format_markdown_trend,
    format_profile,
    format_report,
    load_bench_json,
    make_bench_record,
    summarize,
    write_bench_json,
)
from repro.lab.cache import DEFAULT_CACHE_DIR
from repro.lab.campaign import (
    MANIFEST_NAME,
    RESULTS_NAME,
    Campaign,
    CampaignRun,
    SweepGrid,
    resolve_spec,
    run_campaign,
    spec_factory_names,
)
from repro.lab.store import ResultStore
from repro.sim.registry import registered_engines


def build_parser() -> argparse.ArgumentParser:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Campaign runner for the CRN reproduction (repro.lab).",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="expand and execute a campaign")
    run.add_argument(
        "--spec",
        action="append",
        required=True,
        metavar="NAME",
        help="spec to sweep (repeatable; see `specs` for the catalog)",
    )
    run.add_argument(
        "--strategy",
        default="auto",
        help="construction strategy for every spec (default: auto)",
    )
    group = run.add_mutually_exclusive_group()
    group.add_argument(
        "--grid",
        metavar="AXES",
        help='input grid, e.g. "0:5" (square), "0:5,0:3", or "1;2;7" values',
    )
    group.add_argument(
        "--input",
        action="append",
        metavar="X",
        help='explicit input tuple, e.g. "3,4" (repeatable)',
    )
    run.add_argument(
        "--engine",
        action="append",
        metavar="NAME",
        help="engine selector (repeatable; 'auto' picks per cell; default: auto)",
    )
    run.add_argument("--trials", type=int, default=5)
    run.add_argument("--max-steps", type=int, default=1_000_000)
    run.add_argument("--quiescence-window", type=int, default=None)
    run.add_argument("--seed", type=int, default=None, help="campaign master seed")
    run.add_argument("--name", default=None, help="campaign name (default: from specs)")
    run.add_argument("--out", default=None, help="output directory (default: runs/<name>)")
    _add_execution_arguments(run)

    resume = sub.add_parser("resume", help="finish an interrupted campaign")
    resume.add_argument("out_dir", help="directory holding manifest.json")
    _add_execution_arguments(resume)

    worker = sub.add_parser(
        "worker", help="serve a shared-dir campaign work queue until it drains"
    )
    worker.add_argument(
        "--queue-dir",
        required=True,
        help="the queue directory a `run --backend shared-dir` campaign populates",
    )
    worker.add_argument(
        "--worker-id",
        default=None,
        help="stable worker identity (default: <host>-<pid>)",
    )
    worker.add_argument(
        "--timeout", type=float, default=None, help="per-cell wall-clock budget (s)"
    )
    worker.add_argument(
        "--lease-ttl",
        type=float,
        default=60.0,
        help="seconds a claimed cell stays exclusive without renewal (default: 60)",
    )
    worker.add_argument(
        "--poll",
        type=float,
        default=0.2,
        help="seconds between claim attempts when the queue is empty (default: 0.2)",
    )
    worker.add_argument(
        "--max-idle",
        type=float,
        default=60.0,
        help="exit after this many seconds without claiming a cell (default: 60)",
    )
    worker.add_argument(
        "--max-cells",
        type=int,
        default=None,
        help="exit after completing this many cells (default: unlimited)",
    )
    worker.add_argument(
        "--trace",
        action="store_true",
        help="write a per-worker trace shard into <queue-dir>/traces/",
    )

    report = sub.add_parser("report", help="print the aggregate for a campaign dir")
    report.add_argument("out_dir")
    report.add_argument("--json", action="store_true", help="print summary as JSON")
    report.add_argument(
        "--profile",
        action="store_true",
        help="also print executed-cell wall/CPU totals and the slowest cells",
    )
    report.add_argument(
        "--top",
        type=int,
        default=10,
        metavar="N",
        help="rows in the --profile slowest-cells table (default: 10)",
    )

    trace = sub.add_parser(
        "trace", help="validate + pretty-print a trace.jsonl (span tree, self-time)"
    )
    trace.add_argument("trace_file", help="path to a trace.jsonl (see run --trace)")
    trace.add_argument(
        "--top",
        type=int,
        default=10,
        metavar="N",
        help="rows in the self-time table (default: 10)",
    )
    trace.add_argument(
        "--no-tree", action="store_true", help="skip the span tree, print only totals"
    )

    bench = sub.add_parser(
        "bench", help="benchmark family through the campaign executor"
    )
    bench.add_argument(
        "--out",
        default=None,
        help="output file (default: BENCH_results.json at the repository root)",
    )
    bench.add_argument("--workers", type=int, default=2)
    bench.add_argument(
        "--populations",
        default="100,500",
        help="comma-separated per-species input counts (default: 100,500)",
    )
    bench.add_argument("--trials", type=int, default=3)

    compare = sub.add_parser(
        "bench-compare",
        help="diff two BENCH_results.json files; nonzero exit on regression",
    )
    compare.add_argument("previous", help="baseline BENCH_results.json")
    compare.add_argument("current", help="candidate BENCH_results.json")
    compare.add_argument(
        "--max-regression",
        type=float,
        default=0.30,
        help="fail when a record's steps/sec drops by more than this fraction "
        "(default: 0.30)",
    )
    compare.add_argument(
        "--filter",
        default="",
        metavar="SUBSTRING",
        help="only compare records whose name contains this substring "
        '(e.g. "scalar" for the scalar-simulator family)',
    )
    compare.add_argument(
        "--markdown",
        action="store_true",
        help="emit a GitHub-flavoured markdown trend table (for CI job "
        "summaries) instead of the plain per-record lines",
    )

    sub.add_parser("specs", help="list registered function specs")

    engines = sub.add_parser("engines", help="list registered simulation engines")
    engines.add_argument(
        "--json",
        action="store_true",
        help="machine-readable output (the same EngineInfo serialization as "
        "the serve API's GET /v1/engines)",
    )

    serve = sub.add_parser(
        "serve",
        help="HTTP simulation service over the workbench (repro.serve)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8421, help="bind port (0 picks a free port)"
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=2,
        help="simulation worker processes (0 = in-process thread fallback)",
    )
    serve.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help="shared ResultCache root (the server-side memo)",
    )
    serve.add_argument(
        "--no-cache", action="store_true", help="disable the result-cache memo"
    )
    serve.add_argument(
        "--queue-limit",
        type=int,
        default=10_000,
        help="max unfinished job cells before POST /v1/jobs answers 429",
    )
    serve.add_argument("--trials", type=int, default=10, help="default config: trials")
    serve.add_argument(
        "--max-steps", type=int, default=1_000_000, help="default config: max_steps"
    )
    serve.add_argument(
        "--engine", default="python", help="default config: engine (default: python)"
    )
    return parser


def _add_execution_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workers", type=int, default=1, help="worker processes")
    parser.add_argument("--chunksize", type=int, default=None)
    parser.add_argument(
        "--timeout", type=float, default=None, help="per-cell wall-clock budget (s)"
    )
    parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR)
    parser.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    parser.add_argument(
        "--retry-errors",
        action="store_true",
        help="re-execute cells whose recorded row is an error",
    )
    parser.add_argument("--json", action="store_true", help="print summary as JSON")
    parser.add_argument("--quiet", action="store_true", help="no per-cell progress")
    parser.add_argument(
        "--trace",
        action="store_true",
        help="record a span/event trace to <out>/trace.jsonl "
        "(inspect with `python -m repro trace`)",
    )
    parser.add_argument(
        "--backend",
        choices=("local", "shared-dir"),
        default="local",
        help="execution backend: 'local' (in-process pool, the default) or "
        "'shared-dir' (a work-queue directory served by `repro worker` "
        "processes)",
    )
    parser.add_argument(
        "--queue-dir",
        default=None,
        help="shared-dir backend: the queue directory (default: <out>/queue)",
    )
    parser.add_argument(
        "--no-participate",
        action="store_true",
        help="shared-dir backend: only coordinate; leave every cell to "
        "external workers",
    )
    parser.add_argument(
        "--lease-ttl",
        type=float,
        default=60.0,
        help="shared-dir backend: seconds a claimed cell stays exclusive "
        "without renewal (default: 60)",
    )


def _progress_printer(total: int, quiet: bool):
    state = {"count": 0}

    def on_result(result, source: str) -> None:
        state["count"] += 1
        if quiet:
            return
        tag = {"cache": "cached", "run": result.status, "done": "done"}[source]
        print(
            f"[{state['count']}/{total}] {tag:>6} {result.spec}{list(result.input)} "
            f"engine={result.engine}",
            file=sys.stderr,
        )

    return on_result


def _finish(run: CampaignRun, as_json: bool) -> int:
    if as_json:
        payload = run.summary.to_dict()
        payload["provenance"] = {
            "total_cells": run.total_cells,
            "already_done": run.already_done,
            "from_cache": run.from_cache,
            "executed": run.executed,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(format_report(run.summary))
        print(
            f"provenance    : {run.already_done} already done, "
            f"{run.from_cache} from cache, {run.executed} executed"
        )
        print(f"artifacts     : {run.out_dir}")
    return 0 if run.summary.errors == 0 else 3


def _execution_kwargs(args, out_dir: str) -> dict:
    kwargs = {
        "workers": args.workers,
        "chunksize": args.chunksize,
        "timeout": args.timeout,
        "cache_dir": None if args.no_cache else args.cache_dir,
        "retry_errors": args.retry_errors,
        "trace": args.trace,
    }
    if getattr(args, "backend", "local") == "shared-dir":
        from repro.lab.backends import SharedDirBackend

        kwargs["executor"] = SharedDirBackend(
            queue_dir=args.queue_dir or os.path.join(out_dir, "queue"),
            participate=not args.no_participate,
            lease_ttl=args.lease_ttl,
            timeout=args.timeout,
            trace=args.trace,
        )
    return kwargs


def _command_run(args) -> int:
    specs: List[Tuple[str, str]] = [(name, args.strategy) for name in args.spec]
    dimensions = {name: resolve_spec(name).dimension for name, _ in specs}
    if args.input:
        inputs = [tuple(int(v) for v in text.split(",")) for text in args.input]
    else:
        distinct = set(dimensions.values())
        if len(distinct) > 1:
            raise SystemExit(
                f"specs have different dimensions ({dimensions}); use explicit "
                f"--input tuples or run one campaign per dimension"
            )
        dimension = distinct.pop()
        inputs = list(SweepGrid.parse(args.grid or "0:4", dimension=dimension).points())

    name = args.name or "-".join(args.spec)
    campaign = Campaign(
        name=name,
        specs=specs,
        inputs=inputs,
        engines=tuple(args.engine) if args.engine else ("auto",),
        configs=(
            RunConfig(
                trials=args.trials,
                max_steps=args.max_steps,
                quiescence_window=args.quiescence_window,
            ),
        ),
        seed=args.seed,
    )
    out_dir = args.out or os.path.join("runs", name)
    cells = campaign.expand()
    run = run_campaign(
        campaign,
        out_dir,
        cells=cells,
        progress=_progress_printer(len(cells), args.quiet),
        **_execution_kwargs(args, out_dir),
    )
    return _finish(run, args.json)


def _command_resume(args) -> int:
    manifest = os.path.join(args.out_dir, MANIFEST_NAME)
    if not os.path.exists(manifest):
        print(f"error: no {MANIFEST_NAME} in {args.out_dir!r}", file=sys.stderr)
        return 2
    campaign = Campaign.load(manifest)
    cells = campaign.expand()
    run = run_campaign(
        campaign,
        args.out_dir,
        cells=cells,
        progress=_progress_printer(len(cells), args.quiet),
        **_execution_kwargs(args, args.out_dir),
    )
    return _finish(run, args.json)


def _command_worker(args) -> int:
    from repro.lab.backends import worker_loop

    stats = worker_loop(
        args.queue_dir,
        worker_id=args.worker_id,
        lease_ttl=args.lease_ttl,
        timeout=args.timeout,
        poll=args.poll,
        max_idle=args.max_idle,
        max_cells=args.max_cells,
        trace=args.trace,
    )
    print(
        f"worker {stats['worker']}: {stats['executed']} cells "
        f"({stats['errors']} errors), {stats['wall_s']:.3f}s sim wall time",
        file=sys.stderr,
    )
    return 0


def _command_report(args) -> int:
    manifest = os.path.join(args.out_dir, MANIFEST_NAME)
    store = ResultStore(os.path.join(args.out_dir, RESULTS_NAME))
    if not store.exists():
        print(f"error: no {RESULTS_NAME} in {args.out_dir!r}", file=sys.stderr)
        return 2
    name = Campaign.load(manifest).name if os.path.exists(manifest) else ""
    # Stream: summarize/format_profile each fold store.iter_rows() in one
    # pass with O(engines)/O(top) state — the row list is never materialized,
    # so a million-row store reports in constant memory.
    summary = summarize(store.iter_rows(), campaign=name)
    summary.corrupt_lines_skipped = store.last_scan.corrupt_interior
    if args.json:
        payload = summary.to_dict()
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(format_report(summary))
        if args.profile:
            print()
            print(format_profile(store.iter_rows(), top=args.top))
    return 0


def _command_trace(args) -> int:
    from repro.obs.report import format_self_time_table, format_span_tree
    from repro.obs.trace import read_trace, validate_trace

    try:
        records = list(read_trace(args.trace_file))
    except OSError as exc:
        print(f"error: cannot read {args.trace_file!r}: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {args.trace_file!r} is not a trace: {exc}", file=sys.stderr)
        return 2
    problems = validate_trace(records)
    if problems:
        print(f"error: {args.trace_file!r} violates the trace schema:", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 2
    if not args.no_tree:
        print(format_span_tree(records))
        print()
    print(format_self_time_table(records, top=args.top))
    return 0


def _command_bench(args) -> int:
    out = args.out if args.out is not None else default_bench_path()
    populations = [int(v) for v in str(args.populations).split(",") if v.strip()]
    campaign = Campaign(
        name="bench-minimum",
        specs=[("minimum", "known")],
        inputs=[(p, p) for p in populations],
        engines=("python", "vectorized", "nrm", "tau"),
        configs=(RunConfig(trials=args.trials, max_steps=10_000_000),),
        seed=1,
    )
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as out_dir:
        # cache off: a benchmark that replays cached results measures nothing
        run = run_campaign(
            campaign, out_dir, workers=args.workers, cache_dir=None
        )
    records = []
    for row in run.results:
        if not row.ok:
            continue
        population = sum(row.input)
        records.append(
            make_bench_record(
                f"campaign/{row.spec}/{row.engine}/pop{population}",
                population,
                row.wall_time,
                row.total_steps,
            )
        )
    # merge=True: refresh the campaign records, keep every other family's
    # entry so the root BENCH_results.json stays a cumulative trajectory.
    write_bench_json(out, records, source="repro.lab.cli bench", merge=True)
    print(format_report(run.summary))
    print(f"wrote {out} ({len(records)} records)")
    return 0 if run.summary.errors == 0 else 3


def _command_bench_compare(args) -> int:
    current = load_bench_json(args.current)
    if current is None:
        print(f"error: cannot read current results {args.current!r}", file=sys.stderr)
        return 2
    previous = load_bench_json(args.previous)
    if previous is None:
        # First run (or lost artifact): nothing to compare against is not a
        # regression — report and succeed so CI bootstraps cleanly.
        print(
            f"no baseline at {args.previous!r}; skipping comparison "
            f"({len(current.get('results', []))} current records accepted)"
        )
        return 0
    regressions, lines = compare_bench_results(
        previous,
        current,
        max_regression=args.max_regression,
        name_filter=args.filter,
    )
    if args.markdown:
        print(
            format_markdown_trend(
                previous,
                current,
                max_regression=args.max_regression,
                name_filter=args.filter,
            )
        )
    else:
        for line in lines:
            print(line)
        if not lines:
            print(
                f"no overlapping records"
                + (f" matching {args.filter!r}" if args.filter else "")
                + "; nothing to compare"
            )
    if regressions:
        print(
            f"\n{len(regressions)} throughput regression(s) beyond "
            f"{args.max_regression:.0%}:",
            file=sys.stderr,
        )
        for failure in regressions:
            print(f"  {failure}", file=sys.stderr)
        return 4
    return 0


def _command_specs(args) -> int:
    for name in spec_factory_names():
        spec = resolve_spec(name)
        print(f"{name:<24} d={spec.dimension}  {spec!r}")
    return 0


def _command_engines(args) -> int:
    if args.json:
        print(
            json.dumps(
                {"engines": [info.to_dict() for info in registered_engines()]},
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    for info in registered_engines():
        if info.min_recommended_population and info.max_recommended_population:
            bound = f"{info.min_recommended_population}..{info.max_recommended_population}"
        elif info.min_recommended_population:
            bound = f">= {info.min_recommended_population}"
        elif info.max_recommended_population:
            bound = f"<= {info.max_recommended_population}"
        else:
            bound = "unbounded"
        kind = "approximate" if info.approximate else "exact"
        shape = "batch" if info.batch_capable else "scalar"
        print(
            f"{info.name:<12} {kind:<12} {shape:<7} pop {bound:<12} {info.description}"
        )
    return 0


def _command_serve(args) -> int:
    # Imported lazily: the serve subsystem is optional at runtime and must
    # not tax `python -m repro specs` et al. with its asyncio machinery.
    from repro.serve.server import ReproServer

    server = ReproServer(
        host=args.host,
        port=args.port,
        workers=args.workers,
        cache_dir=None if args.no_cache else args.cache_dir,
        config=RunConfig(
            trials=args.trials, max_steps=args.max_steps, engine=args.engine
        ),
        queue_limit=args.queue_limit,
    )
    return server.run()


_COMMANDS = {
    "run": _command_run,
    "resume": _command_resume,
    "worker": _command_worker,
    "report": _command_report,
    "trace": _command_trace,
    "bench": _command_bench,
    "bench-compare": _command_bench_compare,
    "specs": _command_specs,
    "engines": _command_engines,
    "serve": _command_serve,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except KeyboardInterrupt:
        print(
            "\ninterrupted — rerun `python -m repro resume <out-dir>` to finish",
            file=sys.stderr,
        )
        return 130
    except (ValueError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # The reader went away (e.g. `... | head`).  Point stdout at devnull
        # so the interpreter's exit-time flush doesn't raise a second time.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 141  # 128 + SIGPIPE, matching shell convention
