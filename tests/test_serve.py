"""End-to-end tests for :mod:`repro.serve` — the HTTP simulation service.

Everything here drives a real server over real sockets: the in-process tests
use :class:`~repro.serve.server.ServerThread` (a live asyncio server on a
daemon thread, port 0), and the lifecycle test boots ``python -m repro serve``
as a subprocess and SIGTERMs it.

The two contracts the suite pins down:

* **the cache memo** — two identical ``POST /v1/simulate`` requests return
  byte-identical bodies, the second without invoking any engine (the hit is
  visible in ``/v1/stats`` and the ``X-Repro-Cache`` header);
* **serve/lab equivalence** — a job submitted over HTTP produces rows
  deterministically identical to an in-process ``Workbench.campaign`` run of
  the same grid (same cell ids, same derived per-cell seeds, same outputs).
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.api.config import RunConfig
from repro.api.workbench import Workbench
from repro.lab.store import PROVENANCE_FIELDS
from repro.serve.client import ServeClient, ServeError
from repro.serve.metrics import LatencyWindow, ServerMetrics, percentile
from repro.serve.protocol import canonical_json
from repro.serve.server import ReproServer, ServerThread

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")

#: A cheap, deterministic request config used throughout.
FAST_CONFIG = {"trials": 3, "seed": 11, "engine": "python", "max_steps": 200_000}


@pytest.fixture()
def server(tmp_path):
    with ServerThread(port=0, workers=1, cache_dir=str(tmp_path / "cache")) as srv:
        yield srv


@pytest.fixture()
def client(server):
    return ServeClient("127.0.0.1", server.port)


class TestBasicEndpoints:
    def test_health_reports_version(self, client):
        from repro import __version__

        payload = client.health()
        assert payload["status"] == "ok"
        assert payload["version"] == __version__

    def test_engines_matches_registry(self, client):
        from repro.sim.registry import registered_engines

        over_http = client.engines()
        in_process = [info.to_dict() for info in registered_engines()]
        assert over_http == in_process
        # capability metadata rides through the shared to_dict serialization
        by_name = {entry["name"]: entry for entry in over_http}
        assert by_name["tau-vec"]["batch_capable"] is True
        assert by_name["tau-vec"]["approximate"] is True
        assert by_name["python"]["batch_capable"] is False

    def test_compile_reports_crn_shape(self, client):
        payload = client.compile("minimum")
        assert payload["spec"] == "minimum"
        assert payload["dimension"] == 2
        assert payload["reactions"] >= 1
        assert payload["species"] >= 2
        assert len(payload["fingerprint"]) == 64

    def test_compile_unbuildable_spec_is_422(self, client):
        status, _, body = client.request(
            "POST", "/v1/compile", {"spec": "eq2_counterexample"}
        )
        assert status == 422
        assert "eq2_counterexample" in json.loads(body)["error"]

    def test_simulate_returns_a_correct_deterministic_row(self, client):
        row = client.simulate("minimum", [8, 5], config=FAST_CONFIG)
        assert row["expected"] == 5
        assert row["output_mode"] == 5
        assert row["correct"] is True
        assert row["status"] == "ok"
        # deterministic view: no provenance fields in the body
        assert "wall_time" not in row
        assert "cached" not in row

    def test_expected_output_close_to_spec_value(self, client):
        value = client.expected_output("minimum", [6, 9], config=FAST_CONFIG)
        assert value == pytest.approx(6.0, abs=1.5)

    def test_simulate_runs_tau_vec_with_epsilon(self, client):
        # The approximate batch engine is addressable over the wire with its
        # error knob, through the same config plumbing as every engine.
        row = client.simulate(
            "minimum",
            [3000, 4000],
            config={"trials": 3, "seed": 7, "engine": "tau-vec", "epsilon": 0.05},
        )
        assert row["expected"] == 3000
        assert row["output_mode"] == 3000
        assert row["correct"] is True
        assert row["status"] == "ok"

    def test_verify_exhaustive_passes(self, client):
        report = client.verify("double", method="exhaustive", config={"seed": 3})
        assert report["passed"] is True
        assert all(r["passed"] for r in report["results"])
        assert all(r["method"] == "exhaustive" for r in report["results"])


class TestCacheMemo:
    """The headline contract: repeats short-circuit before touching an engine."""

    def test_repeat_simulate_is_byte_identical_and_engine_free(self, client):
        request = {"spec": "minimum", "input": [8, 5], "config": FAST_CONFIG}
        status1, headers1, body1 = client.request("POST", "/v1/simulate", request)
        stats_between = client.stats()
        status2, headers2, body2 = client.request("POST", "/v1/simulate", request)
        stats_after = client.stats()

        assert status1 == status2 == 200
        assert headers1["x-repro-cache"] == "miss"
        assert headers2["x-repro-cache"] == "hit"
        assert body1 == body2  # byte identity, not just JSON equality

        # the second request never invoked an engine …
        executed = lambda stats: stats["engines"]["python"]["executed"]  # noqa: E731
        assert executed(stats_after) == executed(stats_between) == 1
        # … and the hit is counted in /v1/stats
        assert stats_after["cache"]["hits"] == stats_between["cache"]["hits"] + 1
        assert stats_after["cache"]["hit_rate"] == pytest.approx(0.5)

    def test_unseeded_requests_never_cache(self, client):
        config = {k: v for k, v in FAST_CONFIG.items() if k != "seed"}
        request = {"spec": "minimum", "input": [4, 6], "config": config}
        _, headers1, _ = client.request("POST", "/v1/simulate", request)
        _, headers2, _ = client.request("POST", "/v1/simulate", request)
        assert headers1["x-repro-cache"] == headers2["x-repro-cache"] == "miss"

    def test_different_inputs_do_not_collide(self, client):
        row1 = client.simulate("minimum", [8, 5], config=FAST_CONFIG)
        row2 = client.simulate("minimum", [2, 9], config=FAST_CONFIG)
        assert row1["expected"] == 5 and row2["expected"] == 2

    def test_simulate_memo_is_shared_with_campaign_cells(self, server, client, tmp_path):
        """A serve hit can be produced by an in-process campaign and vice versa."""
        from repro.lab.campaign import Campaign, run_campaign

        config = RunConfig(
            trials=FAST_CONFIG["trials"],
            seed=FAST_CONFIG["seed"],
            engine="python",
            max_steps=FAST_CONFIG["max_steps"],
        )
        # master seed None = "the config's own seed is the cell seed", which
        # is exactly what a simulate request denotes
        campaign = Campaign(
            name="local",  # cell identity is campaign-name-independent
            specs=[("minimum", "auto")],
            inputs=[(7, 3)],
            engines=("python",),
            configs=(config,),
            seed=None,
        )
        run_campaign(campaign, str(tmp_path / "runs"), cache_dir=str(tmp_path / "cache"))
        _, headers, body = client.request(
            "POST", "/v1/simulate", {"spec": "minimum", "input": [7, 3], "config": FAST_CONFIG}
        )
        assert headers["x-repro-cache"] == "hit"
        assert json.loads(body)["output_mode"] == 3

    def test_expected_output_repeat_hits_cache(self, client):
        first = client.expected_output("minimum", [6, 9], config=FAST_CONFIG)
        before = client.stats()["cache"]["hits"]
        second = client.expected_output("minimum", [6, 9], config=FAST_CONFIG)
        assert second == first
        assert client.stats()["cache"]["hits"] == before + 1


class TestJobs:
    def test_job_round_trip_matches_in_process_campaign(self, tmp_path):
        """The 3-request acceptance: submit, poll, compare against Workbench."""
        inputs = [(3, 7), (9, 2), (5, 5)]
        config = RunConfig(trials=5, seed=None, engine="python", max_steps=200_000)

        with ServerThread(port=0, workers=2, cache_dir=str(tmp_path / "cache")) as srv:
            client = ServeClient("127.0.0.1", srv.port)
            job = client.submit_job(
                name="acceptance",
                specs=["minimum"],
                inputs=[list(x) for x in inputs],
                engines=["python"],
                config={"trials": 5, "engine": "python", "max_steps": 200_000},
                seed=99,
            )
            assert job["state"] == "queued" and job["total"] == 3
            done = client.wait_for_job(job["id"])

        assert done["state"] == "done"
        assert done["progress"] == {
            "total": 3, "done": 3, "from_cache": 0, "executed": 3, "errors": 0,
        }

        run = Workbench(config).campaign(
            "acceptance",
            ["minimum"],
            inputs,
            engines=["python"],
            configs=[config],
            seed=99,
            out_dir=str(tmp_path / "runs"),
            cache_dir=None,
        )
        local = sorted(
            (r.deterministic_dict() for r in run.results), key=lambda r: r["cell_id"]
        )
        over_http = sorted(
            (
                {k: v for k, v in row.items() if k not in PROVENANCE_FIELDS}
                for row in done["results"]
            ),
            key=lambda r: r["cell_id"],
        )
        # Deterministic identity: same cell ids, same derived per-cell seeds,
        # same outputs — a serve job and a local campaign are the same run.
        assert canonical_json(over_http) == canonical_json(local)

    def test_job_repeat_is_served_from_cache(self, client):
        fields = dict(
            name="memo",
            specs=["minimum"],
            inputs=[[1, 4], [6, 2]],
            engines=["python"],
            config=FAST_CONFIG,
            seed=7,
        )
        first = client.wait_for_job(client.submit_job(**fields)["id"])
        second = client.wait_for_job(client.submit_job(**fields)["id"])
        assert first["progress"]["executed"] == 2
        assert second["progress"]["from_cache"] == 2
        assert second["progress"]["executed"] == 0
        strip = lambda rows: [  # noqa: E731
            {k: v for k, v in r.items() if k not in PROVENANCE_FIELDS} for r in rows
        ]
        assert strip(second["results"]) == strip(first["results"])

    def test_job_over_a_grid(self, client):
        job = client.submit_job(
            name="grid",
            specs=["minimum"],
            grid="0:3",
            engines=["python"],
            config=FAST_CONFIG,
            seed=5,
        )
        done = client.wait_for_job(job["id"])
        assert done["state"] == "done"
        assert done["progress"]["total"] == 9
        assert all(row["correct"] for row in done["results"])

    def test_job_results_can_be_suppressed_when_polling(self, client):
        import http.client

        job = client.submit_job(
            name="quiet", specs=["minimum"], inputs=[[2, 2]],
            engines=["python"], config=FAST_CONFIG, seed=1,
        )
        client.wait_for_job(job["id"])
        connection = http.client.HTTPConnection(client.host, client.port, timeout=30)
        try:
            connection.request(
                "GET", f"/v1/jobs/{job['id']}", headers={"X-Repro-Results": "0"}
            )
            response = connection.getresponse()
            assert response.status == 200
            assert "results" not in json.loads(response.read())
        finally:
            connection.close()

    def test_cancel_keeps_partial_results_and_settles_cancelled(self, client):
        job = client.submit_job(
            name="cancelme",
            specs=["minimum"],
            inputs=[[4000 + i, 4000] for i in range(6)],  # ~minutes of work
            engines=["python"],
            config={"trials": 10, "seed": 1, "engine": "python", "max_steps": 100_000_000},
        )
        reply = client.cancel_job(job["id"])
        assert reply["state"] in ("running", "queued", "cancelled")
        final = client.wait_for_job(job["id"])
        assert final["state"] == "cancelled"
        assert final["progress"]["done"] < final["progress"]["total"]
        # cancelling a settled job is a no-op, not an error
        assert client.cancel_job(job["id"])["state"] == "cancelled"

    def test_queue_backpressure_is_429_with_retry_after(self, tmp_path):
        with ServerThread(
            port=0, workers=1, cache_dir=str(tmp_path / "cache"), queue_limit=1
        ) as srv:
            client = ServeClient("127.0.0.1", srv.port)
            slow = client.submit_job(
                name="occupier",
                specs=["minimum"],
                inputs=[[5000, 5000]],
                engines=["python"],
                config={"trials": 10, "seed": 1, "engine": "python", "max_steps": 100_000_000},
            )
            status, headers, body = client.request(
                "POST",
                "/v1/jobs",
                {"name": "rejected", "specs": ["minimum"], "inputs": [[1, 2]],
                 "engines": ["python"], "config": FAST_CONFIG},
            )
            assert status == 429
            assert "retry-after" in headers
            assert "queue is full" in json.loads(body)["error"]
            assert client.stats()["jobs"]["rejected"] == 1
            client.cancel_job(slow["id"])
            client.wait_for_job(slow["id"])

    def test_unknown_job_is_404(self, client):
        for method, path in (
            ("GET", "/v1/jobs/nope"),
            ("DELETE", "/v1/jobs/nope"),
            ("POST", "/v1/jobs/nope/cancel"),
        ):
            status, _, _ = client.request(method, path)
            assert status == 404


class TestJobResultsStreaming:
    """``GET /v1/jobs/{id}/results`` — close-delimited NDJSON, row by row."""

    def submit_and_wait(self, client, **overrides):
        fields = dict(
            name="ndjson",
            specs=["minimum"],
            grid="0:3",
            engines=["python"],
            config=FAST_CONFIG,
            seed=5,
        )
        fields.update(overrides)
        job = client.submit_job(**fields)
        client.wait_for_job(job["id"])
        return job["id"]

    def test_stream_yields_one_row_per_cell(self, client):
        job_id = self.submit_and_wait(client)
        rows = list(client.job_results(job_id))
        assert len(rows) == 9
        assert all(row["correct"] for row in rows)
        # same rows (and order) as the buffered job payload
        assert rows == client.job(job_id)["results"]

    def test_stream_is_framed_without_content_length(self, client):
        import http.client

        job_id = self.submit_and_wait(client)
        connection = http.client.HTTPConnection(client.host, client.port, timeout=30)
        try:
            connection.request("GET", f"/v1/jobs/{job_id}/results")
            response = connection.getresponse()
            assert response.status == 200
            headers = {k.lower(): v for k, v in response.getheaders()}
            assert headers["content-type"] == "application/x-ndjson"
            assert headers["connection"] == "close"
            assert "content-length" not in headers  # close-delimited: no buffering
            assert headers["x-repro-job-state"] == "done"
            lines = [line for line in response.read().split(b"\n") if line]
            assert len(lines) == 9
            for line in lines:
                json.loads(line)
        finally:
            connection.close()

    def test_deterministic_stream_matches_local_campaign(self, client, tmp_path):
        from repro.lab.campaign import Campaign, run_campaign

        config = RunConfig(
            trials=FAST_CONFIG["trials"],
            seed=FAST_CONFIG["seed"],
            engine="python",
            max_steps=FAST_CONFIG["max_steps"],
        )
        campaign = Campaign(
            name="ndjson",
            specs=[("minimum", "auto")],
            inputs=[(2, 6), (8, 1)],
            engines=("python",),
            configs=(config,),
            seed=13,
        )
        local = run_campaign(campaign, str(tmp_path / "runs"), cache_dir=None)
        job_id = self.submit_and_wait(
            client, grid=None, inputs=[[2, 6], [8, 1]], seed=13
        )
        streamed = list(client.job_results(job_id, deterministic=True))
        assert [canonical_json(row) for row in streamed] == [
            canonical_json(r.deterministic_dict()) for r in local.results
        ]

    def test_unknown_job_stream_is_404(self, client):
        with pytest.raises(ServeError) as excinfo:
            list(client.job_results("nope"))
        assert excinfo.value.status == 404


class TestSharedDirJobs:
    """Jobs with ``backend: shared-dir`` fan out to external worker processes."""

    def test_shared_dir_job_completes_via_external_worker(self, tmp_path):
        import threading

        from repro.lab.backends import worker_loop

        queue_dir = str(tmp_path / "queue")
        # workers=0: the server has no pool of its own — every cell must be
        # executed by the external worker serving the queue directory
        with ServerThread(port=0, workers=0, cache_dir=str(tmp_path / "cache")) as srv:
            client = ServeClient("127.0.0.1", srv.port)
            job = client.submit_job(
                name="sharded",
                specs=["minimum"],
                grid="0:3",
                engines=["python"],
                config=FAST_CONFIG,
                seed=5,
                backend="shared-dir",
                queue_dir=queue_dir,
            )
            assert job["backend"] == "shared-dir"
            worker = threading.Thread(
                target=worker_loop,
                kwargs=dict(queue_dir=queue_dir, worker_id="ext", max_idle=60.0),
                daemon=True,
            )
            worker.start()
            done = client.wait_for_job(job["id"], timeout=120)
            worker.join(timeout=120)
            streamed = list(client.job_results(job["id"], deterministic=True))

        assert done["state"] == "done"
        assert done["progress"]["executed"] == 9
        assert done["backend"]["queue_dir"] == queue_dir
        assert done["backend"]["workers"]["ext"]["executed"] == 9
        assert len(streamed) == 9

        # deterministic identity with an in-process run of the same grid
        from repro.lab.campaign import Campaign, SweepGrid, run_campaign

        config = RunConfig(
            trials=FAST_CONFIG["trials"],
            seed=FAST_CONFIG["seed"],
            engine="python",
            max_steps=FAST_CONFIG["max_steps"],
        )
        campaign = Campaign(
            name="sharded",
            specs=[("minimum", "auto")],
            inputs=SweepGrid.parse("0:3", dimension=2),
            engines=("python",),
            configs=(config,),
            seed=5,
        )
        local = run_campaign(campaign, str(tmp_path / "runs"), cache_dir=None)
        assert [canonical_json(row) for row in streamed] == [
            canonical_json(r.deterministic_dict()) for r in local.results
        ]

    @pytest.mark.parametrize(
        "payload, fragment",
        [
            ({"backend": "shared-dir"}, "queue_dir"),
            ({"backend": "warp", "queue_dir": "/tmp/q"}, "'backend'"),
            ({"backend": "local", "queue_dir": "/tmp/q"}, "queue_dir"),
            ({"queue_dir": ""}, "queue_dir"),
        ],
    )
    def test_backend_rejections_name_the_field(self, client, payload, fragment):
        body_fields = {
            "name": "bad", "specs": ["minimum"], "inputs": [[1, 2]],
            "engines": ["python"], "config": FAST_CONFIG,
        }
        body_fields.update(payload)
        status, _, body = client.request("POST", "/v1/jobs", body_fields)
        assert status == 400, body
        assert fragment in json.loads(body)["error"]


class TestValidation:
    """Every bad request is a 400 whose message names the offending field."""

    @pytest.mark.parametrize(
        "payload, fragment",
        [
            ({"input": [1, 2]}, "'spec'"),
            ({"spec": "nope", "input": [1]}, "unknown spec 'nope'"),
            ({"spec": "minimum"}, "'input'"),
            ({"spec": "minimum", "input": [1]}, "2"),  # wrong arity names the dimension
            ({"spec": "minimum", "input": [1, -2]}, "'input'[1]"),
            ({"spec": "minimum", "input": [1, "x"]}, "'input'[1]"),
            ({"spec": "minimum", "input": [1, 2], "config": {"bogus": 1}}, "'bogus'"),
            ({"spec": "minimum", "input": [1, 2], "config": {"trials": 0}}, "trials"),
            ({"spec": "minimum", "input": [1, 2], "config": {"seed": "x"}}, "seed"),
            ({"spec": "minimum", "input": [1, 2], "strategy": ""}, "'strategy'"),
            ({"spec": "minimum", "input": [1, 2], "config": {"engine": "warp"}}, "warp"),
            ({"spec": {"name": "minimum", "dimension": 3}, "input": [1, 2]}, "'dimension'"),
            ({"spec": {"name": "minimum", "fingerprint": "00"}, "input": [1, 2]}, "'fingerprint'"),
        ],
    )
    def test_simulate_rejections_name_the_field(self, client, payload, fragment):
        status, _, body = client.request("POST", "/v1/simulate", payload)
        assert status == 400, body
        assert fragment in json.loads(body)["error"]

    @pytest.mark.parametrize(
        "payload, fragment",
        [
            ({"specs": ["minimum"], "inputs": [[1, 2]], "grid": "0:2"}, "exactly one"),
            ({"specs": ["minimum"]}, "inputs"),
            ({"specs": [], "inputs": [[1, 2]]}, "'specs'"),
            ({"specs": ["minimum"], "inputs": [[1, 2]], "engines": ["warp"]}, "warp"),
        ],
    )
    def test_job_rejections_name_the_field(self, client, payload, fragment):
        status, _, body = client.request("POST", "/v1/jobs", payload)
        assert status == 400, body
        assert fragment in json.loads(body)["error"]

    def test_body_must_be_json(self, client):
        import http.client

        connection = http.client.HTTPConnection(client.host, client.port, timeout=30)
        try:
            connection.request(
                "POST", "/v1/simulate", body=b"not json",
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            assert response.status == 400
            assert "not valid JSON" in json.loads(response.read())["error"]
        finally:
            connection.close()

    def test_unknown_path_is_404_and_wrong_method_405(self, client):
        assert client.request("GET", "/v1/nowhere")[0] == 404
        assert client.request("PATCH", "/v1/stats")[0] == 405
        assert client.request("GET", "/v1/simulate")[0] == 405

    def test_client_raises_typed_errors(self, client):
        with pytest.raises(ServeError) as excinfo:
            client.simulate("nope", [1])
        assert excinfo.value.status == 400


class TestStats:
    def test_stats_shape(self, client):
        client.simulate("minimum", [2, 3], config=FAST_CONFIG)
        stats = client.stats()
        assert set(stats) >= {"uptime_seconds", "cache", "engines", "requests", "jobs", "server"}
        assert stats["server"]["workers"] == 1
        assert stats["cache"]["enabled"] is True
        simulate = stats["requests"]["POST /v1/simulate"]
        assert simulate["count"] == 1
        assert simulate["by_status"] == {"200": 1}
        assert simulate["latency"]["p50_ms"] > 0

    def test_latency_percentiles_are_sane(self):
        window = LatencyWindow(size=8)
        for value in (0.001, 0.002, 0.003, 0.004):
            window.record(value)
        snap = window.snapshot_ms()
        assert snap["p99_ms"] == pytest.approx(4.0)
        assert snap["mean_ms"] == pytest.approx(2.5)
        assert snap["window"] == 4
        assert percentile([1.0, 2.0, 3.0], 0.5) == 2.0
        assert percentile([5.0], 0.99) == 5.0
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_metrics_snapshot_empty(self):
        snap = ServerMetrics().snapshot()
        assert snap["cache"] == {"hits": 0, "misses": 0, "hit_rate": None}
        assert snap["requests"] == {}

    def test_snapshot_has_uptime_s_version_and_all_job_events(self):
        from repro.serve.metrics import JOB_EVENTS

        snap = ServerMetrics(version="9.9.9").snapshot()
        assert snap["uptime_s"] == snap["uptime_seconds"] >= 0
        assert snap["version"] == "9.9.9"
        assert set(snap["jobs"]) == set(JOB_EVENTS)
        assert all(count == 0 for count in snap["jobs"].values())

    def test_stats_includes_provenance_manifest(self, client):
        from repro import __version__
        from repro.lab.cache import CODE_SALT

        stats = client.stats()
        provenance = stats["provenance"]
        assert provenance["schema"] == "repro-provenance-v1"
        assert provenance["version"] == __version__
        assert provenance["code_salt"] == CODE_SALT
        assert stats["version"] == __version__

    def test_latency_window_empty_and_single_sample(self):
        assert LatencyWindow().snapshot_ms() == {}
        window = LatencyWindow()
        window.record(0.002)
        snap = window.snapshot_ms()
        assert snap["p50_ms"] == snap["p99_ms"] == pytest.approx(2.0)
        assert snap["window"] == 1
        assert snap["total_count"] == 1

    def test_latency_window_wraparound_keeps_lifetime_count(self):
        window = LatencyWindow(size=4)
        for i in range(10):
            window.record(0.001 * (i + 1))
        snap = window.snapshot_ms()
        assert snap["window"] == 4
        assert snap["total_count"] == 10
        # only the last 4 samples (7..10 ms) remain in the percentile window
        assert snap["p50_ms"] >= 7.0
        assert window.total == pytest.approx(sum(0.001 * (i + 1) for i in range(10)))


class TestPrometheusEndpoint:
    def test_metrics_text_parses_and_matches_stats(self, client):
        request = {"spec": "minimum", "input": [3, 5], "config": FAST_CONFIG}
        client.request("POST", "/v1/simulate", request)  # miss, populates memo
        client.request("POST", "/v1/simulate", request)  # hit
        status, headers, body = client.request("GET", "/v1/metrics")
        assert status == 200
        assert headers["content-type"].startswith("text/plain; version=0.0.4")
        text = body.decode("utf-8")

        # every non-comment line must parse as `name{labels} value`
        parsed = {}
        for line in text.splitlines():
            if not line or line.startswith("#"):
                continue
            name_and_labels, _, value = line.rpartition(" ")
            float(value)  # must be a number (or would raise)
            parsed[name_and_labels] = value
        assert 'repro_result_cache_requests_total{result="hit"}' in parsed
        assert parsed['repro_result_cache_requests_total{result="hit"}'] == "1"
        assert (
            parsed['repro_http_requests_total{endpoint="POST /v1/simulate",status="200"}']
            == "2"
        )
        assert "repro_server_uptime_seconds" in parsed

        # same registry as /v1/stats: the JSON view must agree
        stats = client.stats()
        assert stats["cache"]["hits"] >= 1
        assert stats["requests"]["POST /v1/simulate"]["count"] == 2

    def test_metrics_rejects_other_methods(self, client):
        assert client.request("POST", "/v1/metrics")[0] == 405


class TestServerModes:
    def test_workers_zero_uses_thread_executor(self, tmp_path):
        with ServerThread(port=0, workers=0, cache_dir=str(tmp_path / "cache")) as srv:
            client = ServeClient("127.0.0.1", srv.port)
            row = client.simulate("minimum", [4, 6], config=FAST_CONFIG)
            assert row["output_mode"] == 4
            assert client.stats()["server"]["workers"] == 0

    def test_cache_disabled_still_serves_identical_bodies(self):
        with ServerThread(port=0, workers=0, cache_dir=None) as srv:
            client = ServeClient("127.0.0.1", srv.port)
            request = {"spec": "minimum", "input": [4, 6], "config": FAST_CONFIG}
            _, headers1, body1 = client.request("POST", "/v1/simulate", request)
            _, headers2, body2 = client.request("POST", "/v1/simulate", request)
            # no cache: both are misses, but seeded determinism still yields
            # byte-identical bodies
            assert headers1["x-repro-cache"] == headers2["x-repro-cache"] == "miss"
            assert body1 == body2
            assert client.stats()["cache"]["enabled"] is False

    def test_keep_alive_reuses_one_connection(self, server):
        import http.client

        connection = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
        try:
            for _ in range(3):
                connection.request("GET", "/v1/health")
                response = connection.getresponse()
                assert response.status == 200
                response.read()
        finally:
            connection.close()

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            ReproServer(workers=-1)


class TestCliServe:
    def test_serve_boots_answers_and_drains_on_sigterm(self, tmp_path):
        import urllib.request

        env = dict(os.environ)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = SRC + (os.pathsep + existing if existing else "")
        env["PYTHONUNBUFFERED"] = "1"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0", "--workers", "1",
             "--cache-dir", str(tmp_path / "cache")],
            cwd=str(tmp_path),
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            announce = proc.stdout.readline()
            assert "repro.serve listening on http://127.0.0.1:" in announce
            port = int(announce.split("http://127.0.0.1:")[1].split(" ")[0])
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/v1/health", timeout=30
            ) as response:
                assert json.loads(response.read())["status"] == "ok"
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=60) == 0
            assert "draining" in proc.stdout.read()
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)
