"""Eventually-min representations: ``f(x) = min_k g_k(x)`` for ``x >= n``.

This is condition (ii) of the paper's main Theorem 5.2.  An
:class:`EventuallyMin` bundles the finitely many quilt-affine pieces together
with the threshold vector ``n`` beyond which the representation is exact, and
provides the verification helpers used by the characterization checker and the
general construction (Lemma 6.2).
"""

from __future__ import annotations

import itertools
from fractions import Fraction
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.quilt.quilt_affine import QuiltAffine


class EventuallyMin:
    """``min`` of finitely many quilt-affine functions, valid for ``x >= threshold``.

    Parameters
    ----------
    pieces:
        The quilt-affine functions ``g_1, ..., g_m``.
    threshold:
        The vector ``n``; the representation claims ``f(x) = min_k g_k(x)``
        whenever ``x >= n`` componentwise.
    name:
        Optional label.
    """

    def __init__(
        self,
        pieces: Sequence[QuiltAffine],
        threshold: Sequence[int],
        name: str = "",
    ) -> None:
        if not pieces:
            raise ValueError("an eventually-min representation needs at least one piece")
        dims = {g.dimension for g in pieces}
        if len(dims) != 1:
            raise ValueError(f"all quilt-affine pieces must share a dimension, got {dims}")
        self.pieces: Tuple[QuiltAffine, ...] = tuple(pieces)
        self.dimension: int = pieces[0].dimension
        self.threshold: Tuple[int, ...] = tuple(int(v) for v in threshold)
        if len(self.threshold) != self.dimension:
            raise ValueError(
                f"threshold dimension {len(self.threshold)} does not match piece dimension {self.dimension}"
            )
        if any(v < 0 for v in self.threshold):
            raise ValueError("threshold components must be nonnegative")
        self.name = name

    # -- evaluation --------------------------------------------------------------

    def in_eventual_region(self, x: Sequence[int]) -> bool:
        """True if ``x >= threshold`` componentwise."""
        return all(int(v) >= t for v, t in zip(x, self.threshold))

    def value(self, x: Sequence[int]) -> Fraction:
        """The exact rational value ``min_k g_k(x)`` (defined for every x)."""
        return min(g.value(x) for g in self.pieces)

    def __call__(self, x: Sequence[int]) -> int:
        value = self.value(x)
        if value.denominator != 1:
            raise ValueError(f"eventually-min value at {tuple(x)} is not an integer: {value}")
        return int(value)

    def minimizing_piece(self, x: Sequence[int]) -> QuiltAffine:
        """A piece achieving the minimum at ``x``."""
        return min(self.pieces, key=lambda g: g.value(x))

    def common_period(self) -> int:
        """The least common multiple of all piece periods."""
        import math

        period = 1
        for g in self.pieces:
            period = period * g.period // math.gcd(period, g.period)
        return period

    # -- verification ---------------------------------------------------------------

    def eventual_points(self, width: int) -> Iterable[Tuple[int, ...]]:
        """Integer points ``x`` with ``threshold <= x < threshold + width`` componentwise."""
        ranges = [range(t, t + width) for t in self.threshold]
        return itertools.product(*ranges)

    def agrees_with(self, func: Callable[[Sequence[int]], int], width: Optional[int] = None) -> bool:
        """Check ``min_k g_k(x) == func(x)`` on the eventual region, up to ``width`` past the threshold.

        ``width`` defaults to twice the common period plus one so that at least
        two full periods in every direction are covered.
        """
        if width is None:
            width = 2 * self.common_period() + 1
        return all(self(x) == int(func(x)) for x in self.eventual_points(width))

    def dominates(self, func: Callable[[Sequence[int]], int], width: Optional[int] = None) -> bool:
        """Check every piece dominates ``func`` on the eventual region (Lemma 7.9 behaviour)."""
        if width is None:
            width = 2 * self.common_period() + 1
        points = list(self.eventual_points(width))
        return all(g.dominates(func, points) for g in self.pieces)

    def nonnegative_after_translation(self) -> bool:
        """Check that every piece translated by the threshold has nonnegative values.

        This mirrors the observation in the proof of Lemma 6.2 that
        ``g_k(x + n) >= f(x + n) >= 0``, which is what makes the translated
        pieces directly constructible by Lemma 6.1.
        """
        for g in self.pieces:
            translated = g.translate(self.threshold)
            if not translated.has_nonnegative_range_upto(translated.period):
                return False
        return True

    def translated_pieces(self) -> List[QuiltAffine]:
        """The pieces ``g_k(x + n)``, used by the Lemma 6.2 construction."""
        return [g.translate(self.threshold) for g in self.pieces]

    # -- display ----------------------------------------------------------------------

    def __str__(self) -> str:
        label = self.name or "f"
        lines = [f"{label}(x) = min of {len(self.pieces)} quilt-affine pieces for x >= {self.threshold}"]
        for g in self.pieces:
            lines.append(f"  {g}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"EventuallyMin(pieces={len(self.pieces)}, threshold={self.threshold}, "
            f"name={self.name!r})"
        )
