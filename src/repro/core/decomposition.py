"""Section 7: domain decomposition of a semilinear function.

Given a semilinear nondecreasing function ``f`` in explicit piecewise-affine
form, this module reconstructs the data that Theorem 7.1 guarantees exists when
``f`` is obliviously-computable:

1. the threshold hyperplanes of the representation and the induced regions
   (Definition 7.2), classified into determined / under-determined by the
   dimension of their recession cones (Section 7.3);
2. the unique quilt-affine extension from each determined eventual region
   (Lemma 7.7), recovered by sampling ``f`` deep inside the region;
3. a quilt-affine extension from each under-determined eventual region,
   obtained by the gradient-averaging construction of Lemma 7.16 (with the
   offset-maximization rule for congruence classes that miss the region) or,
   when all neighbor gradients agree orthogonally to the region, by reusing a
   neighbor's extension as in Lemma 7.20;
4. the eventually-min representation ``f(x) = min_k g_k(x)`` for ``x >= n``
   (Theorem 7.1), verified on a sampled grid.

When step 3 fails — no candidate extension both agrees with ``f`` on the
region and eventually dominates ``f`` — the decomposition reports failure,
which is exactly the behaviour of non-obliviously-computable functions such as
the depressed-diagonal example of Equation (2).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.specs import FunctionSpec
from repro.geometry.hyperplanes import Hyperplane
from repro.geometry.regions import Region, enumerate_regions
from repro.quilt.eventually_min import EventuallyMin
from repro.quilt.quilt_affine import QuiltAffine, all_residues, residue_of
from repro.semilinear.functions import SemilinearFunction


IntPoint = Tuple[int, ...]


@dataclass
class RegionExtension:
    """A region together with the quilt-affine extension of ``f`` from it."""

    region: Region
    extension: QuiltAffine
    determined: bool


@dataclass
class DomainDecomposition:
    """The result of decomposing a semilinear function (Section 7)."""

    name: str
    dimension: int
    hyperplanes: List[Hyperplane]
    period: int
    regions: List[Region]
    determined: List[Region]
    under_determined_eventual: List[Region]
    extensions: List[RegionExtension]
    eventually_min: Optional[EventuallyMin]
    failure_reason: str = ""

    def succeeded(self) -> bool:
        """True if an eventually-min representation was found and verified."""
        return self.eventually_min is not None

    def summary(self) -> Dict[str, object]:
        """A compact dictionary summary used by benchmarks and reports."""
        return {
            "function": self.name,
            "hyperplanes": len(self.hyperplanes),
            "period": self.period,
            "regions": len(self.regions),
            "determined": len(self.determined),
            "under_determined_eventual": len(self.under_determined_eventual),
            "pieces": len(self.eventually_min.pieces) if self.eventually_min else 0,
            "threshold": self.eventually_min.threshold if self.eventually_min else None,
            "succeeded": self.succeeded(),
            "failure_reason": self.failure_reason,
        }


# ---------------------------------------------------------------------------
# Extension fitting helpers
# ---------------------------------------------------------------------------


def _deep_base_point(region: Region, period: int, margin: int, search_bound: int = 60) -> Optional[IntPoint]:
    """A point of the region whose surrounding box of side ``margin`` stays in the region."""
    cone = region.recession_cone()
    direction = cone.interior_vector() or cone.positive_vector()
    base = region.sample_point(search_bound)
    if base is None:
        return None
    if direction is None:
        return base

    def box_inside(point: IntPoint) -> bool:
        for delta in itertools.product(range(0, margin + 1, max(1, margin // 2)), repeat=len(point)):
            if not region.contains(tuple(p + d for p, d in zip(point, delta))):
                return False
        return True

    candidate = base
    for _ in range(80):
        if box_inside(candidate):
            return candidate
        candidate = tuple(c + period * d for c, d in zip(candidate, direction))
    return None


def _fit_determined_extension(
    region: Region,
    func: Callable[[Sequence[int]], int],
    period: int,
) -> Optional[QuiltAffine]:
    """The unique quilt-affine extension from a determined region (Lemma 7.7)."""
    dimension = region.dimension
    margin = 2 * period * max(1, dimension)
    base = _deep_base_point(region, period, margin)
    if base is None:
        return None

    gradient: List[Fraction] = []
    for i in range(dimension):
        step = tuple(v + (period if j == i else 0) for j, v in enumerate(base))
        if not region.contains(step):
            return None
        gradient.append(Fraction(int(func(step)) - int(func(base)), period))
    gradient_tuple = tuple(gradient)

    offsets: Dict[Tuple[int, ...], Fraction] = {}
    for residue in all_residues(dimension, period):
        point = tuple(b + ((r - b) % period) for b, r in zip(base, residue))
        if not region.contains(point):
            return None
        linear = sum((g * v for g, v in zip(gradient_tuple, point)), start=Fraction(0))
        offsets[residue_of(point, period)] = Fraction(int(func(point))) - linear

    return QuiltAffine(gradient_tuple, period, offsets, name="determined-extension", validate=False)


def _region_points_by_residue(
    region: Region,
    period: int,
    scan_bound: int,
    deep_count: int = 4,
) -> Dict[Tuple[int, ...], List[IntPoint]]:
    """Region points grouped by congruence class mod ``period``."""
    groups: Dict[Tuple[int, ...], List[IntPoint]] = {}
    for point in region.integer_points_upto(scan_bound):
        groups.setdefault(residue_of(point, period), []).append(point)
    # Add points deeper along the recession cone so the affine behaviour is sampled
    # away from the finite irregularities near the origin.
    cone = region.recession_cone()
    direction = cone.positive_vector() or cone.interior_vector()
    if direction is not None:
        for point in list(itertools.chain.from_iterable(groups.values())):
            current = point
            for _ in range(deep_count):
                current = tuple(c + period * d for c, d in zip(current, direction))
                if region.contains(current):
                    groups.setdefault(residue_of(current, period), []).append(current)
    return groups


def _fit_under_determined_extension(
    region: Region,
    func: Callable[[Sequence[int]], int],
    period: int,
    neighbor_extensions: List[QuiltAffine],
    eventual_probe: Callable[[QuiltAffine], bool],
    max_period_multiplier: int = 4,
    scan_bound: int = 24,
) -> Optional[QuiltAffine]:
    """An extension from an under-determined eventual region (Lemmas 7.16 / 7.20)."""
    dimension = region.dimension
    if not neighbor_extensions:
        return None

    # Lemma 7.20 case first: a determined neighbor's extension may already agree
    # with f on the region (this also covers the case where all neighbor
    # gradients coincide orthogonally to the region).
    region_points = list(region.integer_points_upto(scan_bound))
    for neighbor in neighbor_extensions:
        if region_points and all(neighbor(x) == int(func(x)) for x in region_points):
            if eventual_probe(neighbor):
                return neighbor

    # Lemma 7.16: average the neighbor gradients and fit periodic offsets.
    count = len(neighbor_extensions)
    average = tuple(
        sum((g.gradient[i] for g in neighbor_extensions), start=Fraction(0)) / count
        for i in range(dimension)
    )

    for multiplier in range(1, max_period_multiplier + 1):
        star_period = period * multiplier
        if any((g * star_period).denominator != 1 for g in average):
            continue
        groups = _region_points_by_residue(region, star_period, scan_bound)
        if not groups:
            continue
        offsets: Dict[Tuple[int, ...], Fraction] = {}
        consistent = True
        for residue, points in groups.items():
            values = {
                Fraction(int(func(x)))
                - sum((g * v for g, v in zip(average, x)), start=Fraction(0))
                for x in points
            }
            if len(values) != 1:
                consistent = False
                break
            offsets[residue] = next(iter(values))
        if not consistent:
            continue

        # Offsets for congruence classes that miss the region: as large as
        # possible while keeping the function nondecreasing (the
        # offset-maximization rule in the proof of Lemma 7.16).
        defined = dict(offsets)
        for residue in all_residues(dimension, star_period):
            if residue in defined:
                continue
            best: Optional[Fraction] = None
            for known_residue, known_offset in defined.items():
                displacement = tuple(
                    (k - r) % star_period for k, r in zip(known_residue, residue)
                )
                candidate = known_offset + sum(
                    (g * d for g, d in zip(average, displacement)), start=Fraction(0)
                )
                if best is None or candidate < best:
                    best = candidate
            offsets[residue] = best if best is not None else Fraction(0)

        try:
            extension = QuiltAffine(
                average, star_period, offsets, name="averaged-extension", validate=False
            )
        except ValueError:
            continue
        if eventual_probe(extension):
            return extension
    return None


# ---------------------------------------------------------------------------
# The decomposition driver
# ---------------------------------------------------------------------------


def _collect_hyperplanes(semilinear: SemilinearFunction) -> List[Hyperplane]:
    seen = {}
    for atom in semilinear.threshold_atoms():
        key = (atom.coefficients, atom.bound)
        if key not in seen:
            seen[key] = Hyperplane(atom.coefficients, atom.bound)
    return list(seen.values())


def _probe_points(dimension: int, far: int = 137, near: int = 4) -> List[IntPoint]:
    """Probe points mixing small and large coordinates so far-out regions are discovered."""
    values = list(range(near)) + [far + offset for offset in range(near)]
    return list(itertools.product(values, repeat=dimension))


def decompose(
    target: FunctionSpec | SemilinearFunction,
    scan_bound: int = 10,
    verification_width: Optional[int] = None,
    max_threshold: int = 12,
) -> DomainDecomposition:
    """Decompose a semilinear function and extract its eventually-min representation.

    ``target`` is either a :class:`FunctionSpec` with a semilinear
    representation attached, or a bare :class:`SemilinearFunction`.
    """
    if isinstance(target, FunctionSpec):
        if target.semilinear is None:
            raise ValueError(
                f"{target.name}: decomposition needs an explicit semilinear representation"
            )
        semilinear = target.semilinear
        func: Callable[[Sequence[int]], int] = target.func
        name = target.name
    else:
        semilinear = target
        func = semilinear.as_callable()
        name = semilinear.name or "semilinear"

    dimension = semilinear.dimension
    period = semilinear.global_period()
    hyperplanes = _collect_hyperplanes(semilinear)
    regions = enumerate_regions(
        hyperplanes, dimension, bound=scan_bound, extra_points=_probe_points(dimension)
    )
    eventual_regions = [region for region in regions if region.is_eventual()]
    determined = [region for region in eventual_regions if region.is_determined()]
    under_eventual = [region for region in eventual_regions if region.is_under_determined()]

    extensions: List[RegionExtension] = []
    failure = ""

    def eventual_probe(extension: QuiltAffine) -> bool:
        """Check that ``extension`` dominates ``f`` on a sampled eventual grid."""
        width = verification_width or (2 * extension.period + 2)
        start = max(max_threshold, 2 * period)
        points = itertools.product(range(start, start + width), repeat=dimension)
        return all(extension.value(x) >= int(func(x)) for x in points)

    determined_extensions: Dict[int, QuiltAffine] = {}
    for i, region in enumerate(determined):
        extension = _fit_determined_extension(region, func, period)
        if extension is None:
            failure = f"could not fit the unique extension from determined region {region}"
            break
        if not eventual_probe(extension):
            # Lemma 7.9: the unique extension from a determined region must
            # eventually dominate f; if it does not, f has a contradiction
            # sequence (Lemma 4.1) and is not obliviously-computable.
            failure = (
                f"the unique extension from determined region {region} does not "
                "eventually dominate f (Lemma 7.9 fails); f is not obliviously-computable"
            )
            break
        determined_extensions[i] = extension
        extensions.append(RegionExtension(region, extension, determined=True))

    if not failure:
        for region in under_eventual:
            neighbor_extensions = [
                determined_extensions[i]
                for i, det_region in enumerate(determined)
                if det_region.recession_cone().contains_cone(region.recession_cone())
            ]
            extension = _fit_under_determined_extension(
                region,
                func,
                period,
                neighbor_extensions,
                eventual_probe,
                scan_bound=max(scan_bound * 2, 4 * period),
            )
            if extension is None:
                failure = (
                    "no quilt-affine extension from under-determined region "
                    f"{region} eventually dominates f (Lemma 7.16/7.20 both fail); "
                    "f is likely not obliviously-computable"
                )
                break
            extensions.append(RegionExtension(region, extension, determined=False))

    eventually_min: Optional[EventuallyMin] = None
    if not failure and extensions:
        pieces = [item.extension for item in extensions]
        candidate_widths = verification_width or None
        for threshold in range(0, max_threshold + 1):
            candidate = EventuallyMin(
                pieces, tuple([threshold] * dimension), name=f"{name}-eventual-min"
            )
            width = candidate_widths or (candidate.common_period() + 3)
            if candidate.agrees_with(func, width=width):
                eventually_min = candidate
                break
        if eventually_min is None:
            failure = (
                "the fitted extensions never agree with f as a minimum within the "
                f"threshold bound {max_threshold}"
            )
    elif not failure:
        failure = "no eventual regions were found (is the representation total?)"

    return DomainDecomposition(
        name=name,
        dimension=dimension,
        hyperplanes=hyperplanes,
        period=period,
        regions=regions,
        determined=determined,
        under_determined_eventual=under_eventual,
        extensions=extensions,
        eventually_min=eventually_min,
        failure_reason=failure,
    )
