"""The structured examples of Sections 5-7: Fig. 4a, Fig. 7, and Equation (2).

These are the functions the paper uses to illustrate the shape of
obliviously-computable functions (Fig. 4a, Fig. 7) and the behaviour the
characterization must rule out (Eq. (2), the affine function depressed along
the diagonal).
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import List, Sequence

from repro.core.specs import FunctionSpec
from repro.quilt.eventually_min import EventuallyMin
from repro.quilt.quilt_affine import QuiltAffine
from repro.semilinear.functions import AffinePiece, SemilinearFunction
from repro.semilinear.sets import ThresholdSet, UniversalSet


def _diagonal_pieces(
    above_gradient, above_offset, below_gradient, below_offset, diagonal_gradient, diagonal_offset, name
) -> SemilinearFunction:
    """A 2D semilinear function with separate behaviour above / below / on the diagonal."""
    above = ThresholdSet((-1, 1), 1)   # x2 - x1 >= 1, i.e. x1 < x2
    below = ThresholdSet((1, -1), 1)   # x1 - x2 >= 1, i.e. x1 > x2
    return SemilinearFunction(
        [
            AffinePiece(above, above_gradient, above_offset),
            AffinePiece(below, below_gradient, below_offset),
            AffinePiece(UniversalSet(2), diagonal_gradient, diagonal_offset),
        ],
        name=name,
    )


def fig7_spec() -> FunctionSpec:
    """The three-region example of Fig. 7 / Section 7.1.

    ``f(x1, x2) = x1 + 1`` for ``x1 < x2`` (region D1), ``x2 + 1`` for
    ``x1 > x2`` (region D2), and ``x1`` on the diagonal (region U).  The
    decomposition recovers the unique extensions ``g1 = x1 + 1``,
    ``g2 = x2 + 1`` from the determined regions and the averaged extension
    ``gU = ⌈(x1 + x2)/2⌉`` from the under-determined diagonal.
    """
    def evaluate(v: Sequence[int]) -> int:
        x1, x2 = int(v[0]), int(v[1])
        if x1 < x2:
            return x1 + 1
        if x1 > x2:
            return x2 + 1
        return x1

    semilinear = _diagonal_pieces(
        (Fraction(1), Fraction(0)), Fraction(1),
        (Fraction(0), Fraction(1)), Fraction(1),
        (Fraction(1), Fraction(0)), Fraction(0),
        name="fig7",
    )

    g1 = QuiltAffine.affine((1, 0), 1, name="g1=x1+1")
    g2 = QuiltAffine.affine((0, 1), 1, name="g2=x2+1")
    ceil_avg = QuiltAffine(
        (Fraction(1, 2), Fraction(1, 2)),
        2,
        {(0, 0): 0, (1, 1): 0, (0, 1): Fraction(1, 2), (1, 0): Fraction(1, 2)},
        name="gU=ceil((x1+x2)/2)",
    )
    eventually_min = EventuallyMin([g1, g2, ceil_avg], (0, 0), name="fig7")

    return FunctionSpec(
        name="fig7",
        dimension=2,
        func=evaluate,
        semilinear=semilinear,
        eventually_min=eventually_min,
        expected_obliviously_computable=True,
    )


def eq2_counterexample_spec() -> FunctionSpec:
    """Equation (2): ``x1 + x2 + 1`` off the diagonal, ``x1 + x2`` on it.

    Semilinear and nondecreasing, but the depressed diagonal admits no
    quilt-affine extension that eventually dominates ``f``, so the function is
    *not* obliviously-computable (shown directly via Lemma 4.1 with
    ``a_i = (i, 0)`` and ``Δ_ij = (0, j)``).
    """
    def evaluate(v: Sequence[int]) -> int:
        x1, x2 = int(v[0]), int(v[1])
        return x1 + x2 + (0 if x1 == x2 else 1)

    semilinear = _diagonal_pieces(
        (Fraction(1), Fraction(1)), Fraction(1),
        (Fraction(1), Fraction(1)), Fraction(1),
        (Fraction(1), Fraction(1)), Fraction(0),
        name="eq2",
    )
    return FunctionSpec(
        name="eq2-depressed-diagonal",
        dimension=2,
        func=evaluate,
        semilinear=semilinear,
        expected_obliviously_computable=False,
    )


def fig4a_style_spec() -> FunctionSpec:
    """A concrete function with the Fig. 4a shape.

    * arbitrary (plateau) behaviour in the finite region ``x < (2,2)``:
      ``f = min(x1, x2)`` there (values 0 and 1);
    * eventually (for ``x >= (2,2)``) the minimum of three quilt-affine pieces
      ``x1``, ``x2``, and ``⌈(x1+x2)/2⌉ - 1``;
    * 1D quilt-affine behaviour along the lines ``x_i ∈ {0, 1}`` (the
      restrictions are ``0`` and ``min(1, x)``).
    """
    ceil_avg_minus_one = QuiltAffine(
        (Fraction(1, 2), Fraction(1, 2)),
        2,
        {(0, 0): -1, (1, 1): -1, (0, 1): Fraction(-1, 2), (1, 0): Fraction(-1, 2)},
        name="ceil((x1+x2)/2)-1",
    )
    g1 = QuiltAffine.affine((1, 0), 0, name="x1")
    g2 = QuiltAffine.affine((0, 1), 0, name="x2")
    eventually_min = EventuallyMin([g1, g2, ceil_avg_minus_one], (2, 2), name="fig4a")

    def evaluate(v: Sequence[int]) -> int:
        x1, x2 = int(v[0]), int(v[1])
        if x1 < 2 or x2 < 2:
            return min(x1, x2, 1)
        return min(x1, x2, math.ceil((x1 + x2) / 2) - 1)

    return FunctionSpec(
        name="fig4a-style",
        dimension=2,
        func=evaluate,
        eventually_min=eventually_min,
        expected_obliviously_computable=True,
    )


def interior_min_plus_one_spec() -> FunctionSpec:
    """``f(x) = min(x1, x2) + 1`` when both inputs are positive, else 0.

    A small nonzero-threshold example exercising the full Lemma 6.2 recursion:
    the eventual region (``x >= (1,1)``) is a min of two quilt-affine pieces
    and the boundary restrictions are the constant 0.
    """
    g1 = QuiltAffine.affine((1, 0), 1, name="x1+1")
    g2 = QuiltAffine.affine((0, 1), 1, name="x2+1")
    eventually_min = EventuallyMin([g1, g2], (1, 1), name="interior-min-plus-one")

    def evaluate(v: Sequence[int]) -> int:
        x1, x2 = int(v[0]), int(v[1])
        if x1 == 0 or x2 == 0:
            return 0
        return min(x1, x2) + 1

    return FunctionSpec(
        name="interior-min-plus-one",
        dimension=2,
        func=evaluate,
        eventually_min=eventually_min,
        expected_obliviously_computable=True,
    )


def all_paper_example_specs() -> List[FunctionSpec]:
    """All structured paper examples (Fig. 4a, Fig. 7, Eq. (2), and the interior-min example)."""
    return [
        fig7_spec(),
        eq2_counterexample_spec(),
        fig4a_style_spec(),
        interior_min_plus_one_spec(),
    ]
