"""Pluggable simulation-engine registry.

The repeated-run entry points (:func:`repro.sim.runner.run_many`,
:func:`repro.sim.runner.estimate_expected_output`,
:func:`repro.verify.stable.verify_stable_computation`) dispatch through this
registry instead of a hard-coded ``if engine == ...`` ladder.  An engine is a
class (or instance) exposing two methods::

    run_many(crn, x, config: RunConfig) -> ConvergenceReport
    estimate_expected_output(crn, x, config: RunConfig) -> float

and is registered under a name with capability metadata::

    from repro.sim.registry import register_engine

    @register_engine(
        "my-backend",
        supports_gillespie=True,
        supports_fair=False,
        max_recommended_population=10**6,
        description="FFI bridge to ...",
    )
    class MyBackend:
        def run_many(self, crn, x, config): ...
        def estimate_expected_output(self, crn, x, config): ...

After registration, ``engine="my-backend"`` works everywhere an ``engine=``
selector or :class:`~repro.api.config.RunConfig` is accepted — no dispatch
code needs to change.  The built-in ``"python"`` and ``"vectorized"`` engines
are registered the same way in :mod:`repro.sim.runner`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

_REQUIRED_METHODS = ("run_many", "estimate_expected_output")


@dataclass(frozen=True)
class EngineInfo:
    """A registered engine: its implementation plus capability metadata.

    Attributes
    ----------
    name:
        The ``engine=`` selector value.
    implementation:
        The object whose ``run_many`` / ``estimate_expected_output`` methods
        perform the work.
    supports_gillespie / supports_fair:
        Which scheduling semantics the backend implements.  Plain ``run_many``
        dispatch does not enforce these (an engine may raise its own errors),
        but contract-sensitive callers consult them:
        :func:`repro.verify.stable.verify_stable_computation` rejects
        ``supports_fair=False`` engines for its randomized path, and campaign
        ``"auto"`` resolution only considers fair-capable engines.
    max_recommended_population:
        Soft guidance on the population size beyond which the engine becomes
        impractical (``None`` = no practical limit).
    min_recommended_population:
        Soft guidance on the population size *below* which the engine buys
        nothing over the exact reference (``None`` = useful at any size).
        Approximate engines such as ``"tau"`` publish a floor: under it they
        degrade to exact stepping and a caller may as well use ``"python"``.
    approximate:
        True when the engine samples the kinetics approximately rather than
        exactly (results are statistically, not bit-for-bit, equivalent to
        the exact engines; see ``tests/test_statistical_equivalence.py``).
    batch_capable:
        True when the engine advances all trials simultaneously through a
        dense batch representation (numpy rows) rather than one trajectory
        at a time — the throughput shape serve clients and the lab's
        ``"auto"`` resolution prefer at scale, published as metadata so they
        never have to string-match engine names.
    description:
        One-line human-readable summary.
    """

    name: str
    implementation: Any
    supports_gillespie: bool = True
    supports_fair: bool = True
    max_recommended_population: Optional[int] = None
    min_recommended_population: Optional[int] = None
    approximate: bool = False
    batch_capable: bool = False
    description: str = ""

    def to_dict(self) -> Dict[str, Any]:
        """Capability metadata as a JSON-serializable dict (no implementation).

        The single serialization shared by ``python -m repro engines --json``
        and the serve API's ``GET /v1/engines``, so the two surfaces can
        never drift.
        """
        return {
            "name": self.name,
            "supports_gillespie": self.supports_gillespie,
            "supports_fair": self.supports_fair,
            "max_recommended_population": self.max_recommended_population,
            "min_recommended_population": self.min_recommended_population,
            "approximate": self.approximate,
            "batch_capable": self.batch_capable,
            "description": self.description,
        }

    def run_many(self, crn, x, config):
        """Dispatch ``run_many`` to the implementation."""
        return self.implementation.run_many(crn, x, config)

    def estimate_expected_output(self, crn, x, config):
        """Dispatch ``estimate_expected_output`` to the implementation."""
        return self.implementation.estimate_expected_output(crn, x, config)


_REGISTRY: Dict[str, EngineInfo] = {}


def _ensure_builtin_engines() -> None:
    import repro.sim.runner as runner

    # Importing the runner registers the built-ins; re-register any that a
    # caller (e.g. a test) unregistered, so the defaults are always
    # restorable.  Only the missing names are touched — a deliberate
    # replace=True override of the other built-ins must survive.
    missing = {"python", "vectorized", "nrm", "tau", "tau-vec"} - set(_REGISTRY)
    if missing:
        runner.register_builtin_engines(missing)


def register_engine(
    name: str,
    *,
    supports_gillespie: bool = True,
    supports_fair: bool = True,
    max_recommended_population: Optional[int] = None,
    min_recommended_population: Optional[int] = None,
    approximate: bool = False,
    batch_capable: bool = False,
    description: str = "",
    replace: bool = False,
):
    """Class decorator registering a simulation engine under ``name``.

    The decorated class is instantiated once at registration time (an already
    constructed instance is also accepted).  It must expose ``run_many`` and
    ``estimate_expected_output`` methods taking ``(crn, x, config)``.

    Pass ``replace=True`` to overwrite an existing registration (useful in
    tests); otherwise a duplicate name raises ``ValueError``.
    """
    if not isinstance(name, str) or not name:
        raise ValueError(f"engine name must be a nonempty string, got {name!r}")

    def decorator(cls):
        if name in _REGISTRY and not replace:
            raise ValueError(
                f"engine {name!r} is already registered; pass replace=True to overwrite"
            )
        implementation = cls() if isinstance(cls, type) else cls
        for method in _REQUIRED_METHODS:
            if not callable(getattr(implementation, method, None)):
                raise TypeError(
                    f"engine {name!r} must define a callable {method}(crn, x, config)"
                )
        _REGISTRY[name] = EngineInfo(
            name=name,
            implementation=implementation,
            supports_gillespie=supports_gillespie,
            supports_fair=supports_fair,
            max_recommended_population=max_recommended_population,
            min_recommended_population=min_recommended_population,
            approximate=approximate,
            batch_capable=batch_capable,
            description=description,
        )
        return cls

    return decorator


def unregister_engine(name: str) -> None:
    """Remove an engine registration (no-op if absent).  Intended for tests."""
    _REGISTRY.pop(name, None)


def engine_names() -> Tuple[str, ...]:
    """The currently registered engine names, in registration order."""
    _ensure_builtin_engines()
    return tuple(_REGISTRY)


def registered_engines() -> Tuple[EngineInfo, ...]:
    """All current registrations with their capability metadata."""
    _ensure_builtin_engines()
    return tuple(_REGISTRY.values())


def get_engine(name: str) -> EngineInfo:
    """Look up a registered engine, raising a listing error when unknown."""
    _ensure_builtin_engines()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown simulation engine {name!r}; registered engines: "
            f"{', '.join(repr(known) for known in _REGISTRY) or '(none)'}"
        ) from None


def check_engine(engine: str) -> None:
    """Raise ``ValueError`` unless ``engine`` names a registered engine."""
    get_engine(engine)


def validate_engine_request(
    engine: str,
    *,
    fair: bool = False,
    epsilon: Optional[float] = None,
) -> EngineInfo:
    """Check an explicit per-call request against the engine's capabilities.

    Raises ``ValueError`` with an actionable message when the caller asks for
    something the engine cannot honour:

    * ``epsilon=`` on an exact engine — the error knob only tunes approximate
      samplers, so an exact engine would silently ignore it;
    * ``fair=True`` on a kinetic-only engine (``supports_fair=False``) —
      e.g. ``"nrm"`` and ``"tau"`` implement Gillespie scheduling only.

    Returns the :class:`EngineInfo` on success.  This guards *explicit*
    requests (e.g. per-call Workbench overrides); a plain
    :class:`~repro.api.config.RunConfig` may carry its default ``epsilon``
    alongside an exact engine without tripping it.
    """
    info = get_engine(engine)
    if epsilon is not None and not info.approximate:
        approximate = [e.name for e in registered_engines() if e.approximate]
        raise ValueError(
            f"epsilon={epsilon!r} tunes the error of an approximate sampler, "
            f"but engine {engine!r} is exact and would ignore it; drop "
            f"epsilon= or pick an approximate engine "
            f"({', '.join(repr(n) for n in approximate) or 'none registered'})"
        )
    if fair and not info.supports_fair:
        fair_capable = [e.name for e in registered_engines() if e.supports_fair]
        raise ValueError(
            f"engine {engine!r} implements kinetic (Gillespie) scheduling "
            f"only (supports_fair=False); for fair-scheduler semantics pick "
            f"one of {', '.join(repr(n) for n in fair_capable) or '(none)'}"
        )
    return info
