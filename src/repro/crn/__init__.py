"""Discrete chemical reaction network (CRN) substrate.

This package implements the discrete (stochastic) CRN model used throughout
the paper: species, reactions, configurations, reaction networks, bounded
reachability, stable computation, and composition by concatenation
(Section 2 of the paper).

The public surface is re-exported here so that users can write::

    from repro.crn import Species, Reaction, CRN, Configuration, concatenate
"""

from repro.crn.species import Species, Expression, species
from repro.crn.configuration import Configuration
from repro.crn.reaction import Reaction, parse_reaction
from repro.crn.network import CRN
from repro.crn.composition import (
    concatenate,
    parallel_composition,
    fan_out_network,
    rename_disjoint,
)
from repro.crn.stoichiometry import (
    StoichiometricMatrix,
    stoichiometric_matrix,
    conservation_laws,
    dead_reactions,
    producible_species,
    species_dependency_graph,
)
from repro.crn.reachability import (
    ReachabilityResult,
    StableComputationVerdict,
    check_stable_computation_at,
    reachable_configurations,
    reachability_graph,
    stable_configurations,
    stably_computes_exhaustive,
)

__all__ = [
    "Species",
    "Expression",
    "species",
    "Configuration",
    "Reaction",
    "parse_reaction",
    "CRN",
    "concatenate",
    "parallel_composition",
    "fan_out_network",
    "rename_disjoint",
    "StoichiometricMatrix",
    "stoichiometric_matrix",
    "conservation_laws",
    "dead_reactions",
    "producible_species",
    "species_dependency_graph",
    "ReachabilityResult",
    "StableComputationVerdict",
    "check_stable_computation_at",
    "reachable_configurations",
    "reachability_graph",
    "stable_configurations",
    "stably_computes_exhaustive",
]
