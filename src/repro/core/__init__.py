"""The paper's primary contribution: characterization and constructions.

This package contains:

* :mod:`repro.core.specs` — :class:`FunctionSpec`, the user-facing description
  of a function ``f : N^d -> N`` together with whatever structure is known
  about it (semilinear representation, eventually-min representation, known
  hand-written CRN, restriction specs).
* :mod:`repro.core.construction_quilt` — Lemma 6.1: an output-oblivious CRN
  for any quilt-affine function with nonnegative outputs.
* :mod:`repro.core.construction_1d` — Theorem 3.1: the 1D construction with a
  leader for any semilinear nondecreasing function.
* :mod:`repro.core.construction_leaderless` — Theorem 9.2: the 1D leaderless
  construction for semilinear superadditive functions.
* :mod:`repro.core.construction_general` — Lemma 6.2: the general recursive
  construction from an eventually-min representation plus restriction specs.
* :mod:`repro.core.impossibility` — Lemma 4.1: contradiction sequences and the
  bounded search for them (Theorem 5.4's negative characterization).
* :mod:`repro.core.decomposition` — Section 7: domain decomposition of a
  semilinear function into regions with quilt-affine extensions, producing the
  eventually-min representation required by Theorem 5.2.
* :mod:`repro.core.characterization` — the Theorem 5.2 / 5.4 decision
  procedure assembled from the pieces above.
* :mod:`repro.core.scaling` — Section 8: the ∞-scaling limit and the
  correspondence with continuous (rate-independent) CRN computation.
* :mod:`repro.core.superadditive` — Section 9: superadditivity checks and the
  leaderless characterization in 1D.
"""

from repro.core.specs import FunctionSpec
from repro.core.construction_quilt import build_quilt_affine_crn
from repro.core.construction_1d import build_1d_crn
from repro.core.construction_leaderless import build_leaderless_1d_crn
from repro.core.construction_general import build_general_crn
from repro.core.restrictions import hardcode_input, restriction_spec
from repro.core.algebra import compose_specs, min_of_specs, scale_spec, sum_of_specs
from repro.core.impossibility import (
    ContradictionWitness,
    verify_contradiction_pair,
    verify_contradiction_sequence,
    find_contradiction_witness,
    max_contradiction_witness,
)
from repro.core.characterization import (
    CharacterizationVerdict,
    check_obliviously_computable,
    build_crn_for,
)
from repro.core.decomposition import DomainDecomposition, decompose
from repro.core.scaling import infinity_scaling, scaling_of_eventually_min
from repro.core.superadditive import is_superadditive_upto, is_nondecreasing_upto

__all__ = [
    "FunctionSpec",
    "build_quilt_affine_crn",
    "build_1d_crn",
    "build_leaderless_1d_crn",
    "build_general_crn",
    "hardcode_input",
    "restriction_spec",
    "compose_specs",
    "min_of_specs",
    "scale_spec",
    "sum_of_specs",
    "ContradictionWitness",
    "verify_contradiction_pair",
    "verify_contradiction_sequence",
    "find_contradiction_witness",
    "max_contradiction_witness",
    "CharacterizationVerdict",
    "check_obliviously_computable",
    "build_crn_for",
    "DomainDecomposition",
    "decompose",
    "infinity_scaling",
    "scaling_of_eventually_min",
    "is_superadditive_upto",
    "is_nondecreasing_upto",
]
