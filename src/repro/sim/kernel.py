"""The scalar simulation kernel: one step loop, pluggable step policies.

Historically the package carried two parallel scalar hot loops — the Gillespie
direct method in :mod:`repro.sim.gillespie` and the fair scheduler in
:mod:`repro.sim.fair` — each advancing an immutable dict-backed
:class:`~repro.crn.configuration.Configuration` one reaction at a time and
re-deriving every propensity / applicability flag from scratch at every step.
That duplicated the applicability, propensity, and quiescence logic already
present in the batch engines and capped scalar runs at populations around
10^3 (every step paid a full dict copy plus ``R`` dict-lookup propensity
evaluations).

This module replaces both loops with a single :class:`SimulatorCore` running
over the shared :class:`~repro.sim.engine.CompiledCRN` IR:

* species counts live in one mutable dense list, so firing a reaction is a
  handful of integer adds over the reaction's sparse ``net_terms``;
* propensities / applicability flags are recomputed *incrementally*: after
  reaction ``j`` fires, only the reactions listed in
  ``CompiledCRN.dependency_graph[j]`` (those whose reactants share a species
  with the species ``j`` changed) are refreshed — the Gibson–Bruck dependency
  trick, which makes exact SSA scale with the number of *affected* reactions
  instead of the number of reactions;
* scheduling semantics are pluggable :class:`StepPolicy` strategies —
  :class:`GillespiePolicy` (exponential clocks, propensity-proportional
  choice), :class:`NextReactionPolicy` (Gibson–Bruck next-reaction method:
  per-reaction putative firing times in an :class:`IndexedPriorityQueue`,
  exact like the direct method but with no per-step O(R) propensity scan),
  :class:`FairPolicy` (uniform or statically biased choice among
  applicable reactions), and :class:`TauLeapPolicy` (approximate SSA firing
  Poisson batches of reactions per leap) — while the quiescence-window
  convergence detector, step/time bounds, trajectory recording, and
  ``stop_when`` predicates live once in the core.

Exact policies hand the core one reaction index per ``select`` call; a policy
that declares ``fires_many = True`` (tau-leaping) instead exposes an
``advance`` method that applies a whole batch of firings to the counts and
reports how many events it fired, so the core's bookkeeping (step counter,
output tracking, quiescence window) advances in batches.  The
:class:`KernelRunResult` distinguishes ``steps`` (reaction events fired) from
``selections`` (scheduler iterations); for exact policies the two are equal,
while a tau-leap run collapses thousands of events into a handful of leaps.
Every run also carries a uniform :class:`repro.obs.stats.RunStats` block
(``result.stats``: events, selections, propensity_ops, rng_draws, wall_s) —
the counters are plain per-stepper ints incremented at the existing call
sites, so the random stream and the seeded draw order are untouched, and the
disabled-tracing overhead stays inside the ≤ 2% bench ceiling
(``benchmarks/test_bench_obs.py``).

Seeding / reproducibility policy
--------------------------------

The kernel consumes a :class:`random.Random` generator with *exactly* the
draw order of the legacy loops: Gillespie draws ``expovariate(total)`` then
``random()`` per step; the fair policy draws one ``choice()`` (unbiased) or
one ``random()`` (biased) per step, and propensities are multiplied in each
reaction's own term order.  Seeded runs therefore reproduce the historical
scalar simulators bit for bit — ``tests/test_kernel.py`` locks this against
the frozen legacy implementation in :mod:`repro.sim._reference`.  The one
documented divergence: a :class:`FairPolicy` bias function is evaluated once
per reaction per run (it is static in every in-repo use), not once per step,
so a *stateful* bias callable would observe fewer calls than under the legacy
scheduler.

:class:`NextReactionPolicy` is exact but consumes the stream *differently*
from :class:`GillespiePolicy` (one exponential per reaction up front, then
roughly one draw per step instead of two), so seeded NRM runs are not
bit-comparable to direct-method runs; cross-engine agreement is gated
statistically instead (``tests/test_statistical_equivalence.py``).
"""

from __future__ import annotations

import math
import random
import time as _time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.crn.configuration import Configuration
from repro.crn.species import Species
from repro.obs.stats import RunStats
from repro.obs.trace import get_tracer
from repro.sim.engine import CompiledCRN
from repro.sim.tau import build_g_candidates, g_factor, is_critical, select_tau
from repro.sim.trajectory import Trajectory

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.crn.network import CRN
    from repro.crn.reaction import Reaction


def default_quiescence_window(x: Sequence[int]) -> int:
    """The default quiescence window, scaled with the input population.

    Catalytic CRNs never fall silent, so convergence is detected by the output
    count staying unchanged for this many consecutive steps.  This is the
    single definition shared by the scalar kernel, the runner entry points,
    and the vectorized engines (it used to be duplicated per call site).
    """
    population = sum(int(v) for v in x) + 2
    return max(200, 50 * population)


@dataclass
class KernelRunResult:
    """Result of one :meth:`SimulatorCore.run` — the union of what the two
    scalar result dataclasses need, so the compatibility shims are pure field
    mappings."""

    final_configuration: Configuration
    steps: int
    silent: bool
    """True if the run ended because no reaction was applicable."""
    converged: bool
    """True if the run stopped because the output was quiescent for the window."""
    final_time: float
    """Simulated time (Gillespie clocks); 0.0 under time-free policies."""
    max_output_seen: int
    """The maximum output count observed at any point during the run.

    Under a batch-firing policy (tau-leaping) the output is only observed at
    leap boundaries, so an intra-leap peak can be missed; exact policies
    observe every step.
    """
    trajectory: Optional[Trajectory] = None
    selections: int = 0
    """Scheduler iterations: equal to ``steps`` for exact policies, the number
    of leaps / fallback bursts for a batch-firing policy."""
    stats: Optional[RunStats] = None
    """The uniform :class:`repro.obs.stats.RunStats` counter block (events,
    selections, propensity_ops, rng_draws, wall_s) — populated by
    :meth:`SimulatorCore.run` for every policy, including tau-leaping."""


class StepPolicy:
    """A scheduling strategy for :class:`SimulatorCore`.

    A policy owns reaction *selection* (and, for kinetic policies, the clock);
    the core owns everything else — counts, firing, bounds, quiescence
    detection, trajectory recording.  ``bind`` returns a fresh single-run
    stepper; policy objects themselves are stateless and reusable.
    """

    #: Whether the policy advances simulated time (enables ``max_time``).
    uses_time: bool = False

    #: Whether the policy fires batches of reactions per scheduler iteration.
    #: When True the bound stepper exposes ``advance(counts, time_now,
    #: max_time) -> (events, new_time)`` (mutating ``counts`` in place)
    #: instead of ``select`` / ``fired``.
    fires_many: bool = False

    def bind(self, compiled: CompiledCRN, rng: random.Random):
        """Return a bound per-run stepper exposing ``start`` / ``select`` / ``fired``."""
        raise NotImplementedError


class GillespiePolicy(StepPolicy):
    """Exact SSA (Gillespie 1977 direct method) over the compiled IR.

    Per step: total propensity summed in reaction order, an exponential
    waiting time, then a propensity-proportional reaction choice — the same
    draws, in the same order, as the legacy ``GillespieSimulator`` loop.
    Propensities are refreshed incrementally through the dependency graph.
    """

    uses_time = True

    def bind(self, compiled: CompiledCRN, rng: random.Random) -> "_GillespieStepper":
        return _GillespieStepper(compiled, rng)


class FairPolicy(StepPolicy):
    """Rate-agnostic fair scheduling: a random applicable reaction per step.

    ``bias`` optionally maps a reaction to a nonnegative weight; applicable
    reactions are then chosen proportionally to their weight (falling back to
    the uniform choice when every applicable reaction weighs zero).  The bias
    is evaluated once per reaction when a run starts — see the module
    docstring for how this relates to the legacy scheduler.
    """

    def __init__(self, bias: Optional[Callable[["Reaction"], float]] = None) -> None:
        self.bias = bias

    def bind(self, compiled: CompiledCRN, rng: random.Random) -> "_FairStepper":
        weights = None
        if self.bias is not None:
            # max(..., 0.0) mirrors the legacy _choose clamp, including its
            # int-preserving behaviour (max(3, 0.0) stays an int).
            weights = [max(self.bias(rxn), 0.0) for rxn in compiled.crn.reactions]
        return _FairStepper(compiled, rng, weights)


#: Sentinel select() results (reaction indices are always >= 0).
_SILENT = -1
_TIMED_OUT = -2


class _GillespieStepper:
    """Single-run Gillespie state: the propensity vector, kept incrementally."""

    __slots__ = ("compiled", "rng", "props", "last_recomputed", "propensity_ops", "rng_draws")

    def __init__(self, compiled: CompiledCRN, rng: random.Random) -> None:
        self.compiled = compiled
        self.rng = rng
        self.props: List[float] = []
        #: Reactions refreshed by the most recent ``fired`` call (test hook).
        self.last_recomputed: Tuple[int, ...] = ()
        #: Propensity values computed or read while scheduling (see
        #: benchmarks/test_bench_simulators.py): the full vector at ``start``,
        #: then the whole vector per select (the total-rate sum; the choice
        #: scan prefix is not counted, which undercounts) plus ``|deps(j)|``
        #: recomputes per fired; NRM pays only the start plus the recomputes.
        self.propensity_ops: int = 0
        #: Calls into the ``random.Random`` stream *not* covered by the
        #: per-event constant below — i.e. the lone expovariate consumed by a
        #: select that then times out.  The direct method's draw count is
        #: otherwise a constant 2 per fired event (waiting time + choice), so
        #: the hot path carries no counter at all; :meth:`SimulatorCore.run`
        #: folds ``rng_draws + rng_draws_per_event * events`` into RunStats.
        #: The stream itself is never wrapped, so seeded runs stay
        #: bit-identical (RunStats contract).
        self.rng_draws: int = 0

    #: RNG draws per fired event (see ``rng_draws``): exponential waiting
    #: time plus the propensity-proportional choice.
    rng_draws_per_event = 2

    def _propensity(self, r: int, counts: List[int]) -> float:
        # Bit-identical to Reaction.propensity: start from the rate constant
        # and multiply binomial coefficients in the reaction's own term order.
        p = self.compiled.rate_list[r]
        for s, k in self.compiled.reactant_terms[r]:
            n = counts[s]
            if n < k:
                return 0.0
            p *= n if k == 1 else math.comb(n, k)
        return p

    def start(self, counts: List[int]) -> None:
        self.props = [
            self._propensity(r, counts) for r in range(self.compiled.n_reactions)
        ]
        self.propensity_ops += len(self.props)

    def select(self, time_now: float, max_time: float) -> Tuple[int, float]:
        """Pick the next reaction; returns ``(index, new_time)``.

        ``index`` is ``_SILENT`` when the total propensity is zero and
        ``_TIMED_OUT`` when the sampled waiting time crosses ``max_time`` (the
        clock is then clamped, matching the legacy loop).
        """
        props = self.props
        self.propensity_ops += len(props)
        total = sum(props)
        if total <= 0.0:
            return _SILENT, time_now
        rng = self.rng
        time_now += rng.expovariate(total)
        if time_now > max_time:
            self.rng_draws += 1  # drawn but no event fired; see rng_draws_per_event
            return _TIMED_OUT, max_time
        choice = rng.random() * total
        cumulative = 0.0
        for j, a in enumerate(props):
            cumulative += a
            if choice <= cumulative:
                if a <= 0.0:
                    # Only reachable when random() returns exactly 0.0 with a
                    # leading zero-propensity reaction; the legacy loop then
                    # fired it through Reaction.apply, which raises.
                    raise ValueError(
                        f"reaction {self.compiled.crn.reactions[j]} is not "
                        f"applicable (zero propensity)"
                    )
                return j, time_now
        # Numerical edge case (choice exceeded the accumulated total by an
        # ulp): fall back to the last reaction with positive propensity.
        for j in range(len(props) - 1, -1, -1):
            if props[j] > 0.0:
                return j, time_now
        raise AssertionError("positive total propensity but no positive term")

    def fired(self, j: int, counts: List[int]) -> None:
        """Refresh exactly the propensities that firing ``j`` can have changed."""
        dependents = self.compiled.dependency_graph[j]
        self.last_recomputed = dependents
        self.propensity_ops += len(dependents)
        props = self.props
        for r in dependents:
            props[r] = self._propensity(r, counts)

    def propensities(self) -> Tuple[float, ...]:
        """A snapshot of the incrementally-maintained propensity vector."""
        return tuple(self.props)


class IndexedPriorityQueue:
    """A binary min-heap over ``(item, key)`` pairs with O(log n) key updates.

    Items are dense nonnegative integers assigned at construction /
    :meth:`push` time; a position map (item -> heap slot) makes
    :meth:`update` — Gibson–Bruck's decrease/increase-key — O(log n) instead
    of the O(n) search a plain ``heapq`` would need.  Keys are ordinarily
    floats (putative firing times, ``math.inf`` for a disabled reaction) but
    any mutually comparable keys work.  Ties are broken arbitrarily.

    Dependency-free on purpose: the heap is small (one entry per reaction)
    and the hot operation is ``update`` on an interior entry, which the
    standard library's ``heapq`` does not support.
    """

    __slots__ = ("_keys", "_heap", "_pos")

    def __init__(self, keys: Iterable[float] = ()) -> None:
        self._keys: List[float] = list(keys)
        n = len(self._keys)
        self._heap: List[int] = list(range(n))
        self._pos: List[int] = list(range(n))
        for i in reversed(range(n // 2)):
            self._sift_down(i)

    # -- heap plumbing ---------------------------------------------------------

    def _sift_up(self, i: int) -> None:
        heap, keys, pos = self._heap, self._keys, self._pos
        item = heap[i]
        key = keys[item]
        while i > 0:
            parent = (i - 1) >> 1
            other = heap[parent]
            if keys[other] <= key:
                break
            heap[i] = other
            pos[other] = i
            i = parent
        heap[i] = item
        pos[item] = i

    def _sift_down(self, i: int) -> None:
        heap, keys, pos = self._heap, self._keys, self._pos
        n = len(heap)
        item = heap[i]
        key = keys[item]
        while True:
            child = 2 * i + 1
            if child >= n:
                break
            right = child + 1
            if right < n and keys[heap[right]] < keys[heap[child]]:
                child = right
            other = heap[child]
            if key <= keys[other]:
                break
            heap[i] = other
            pos[other] = i
            i = child
        heap[i] = item
        pos[item] = i

    # -- the public contract ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._heap)

    def __contains__(self, item: int) -> bool:
        return 0 <= item < len(self._pos) and self._pos[item] >= 0

    def key(self, item: int) -> float:
        """The current key of ``item`` (KeyError if absent or popped)."""
        if item not in self:
            raise KeyError(f"item {item!r} is not in the queue")
        return self._keys[item]

    def top(self) -> Tuple[int, float]:
        """The ``(item, key)`` pair with the minimum key, without removing it."""
        if not self._heap:
            raise IndexError("top of an empty IndexedPriorityQueue")
        item = self._heap[0]
        return item, self._keys[item]

    def push(self, key: float) -> int:
        """Insert a new entry; returns the item id assigned to it."""
        item = len(self._keys)
        self._keys.append(key)
        self._pos.append(len(self._heap))
        self._heap.append(item)
        self._sift_up(len(self._heap) - 1)
        return item

    def pop(self) -> Tuple[int, float]:
        """Remove and return the minimum ``(item, key)`` pair.

        The item id is retired: ``item in queue`` becomes False and
        :meth:`update` on it raises.  Ids are never reused.
        """
        heap, pos = self._heap, self._pos
        if not heap:
            raise IndexError("pop from an empty IndexedPriorityQueue")
        item = heap[0]
        pos[item] = -1
        last = heap.pop()
        if heap:
            heap[0] = last
            pos[last] = 0
            self._sift_down(0)
        return item, self._keys[item]

    def update(self, item: int, key: float) -> None:
        """Set ``item``'s key and restore the heap order (O(log n))."""
        if item not in self:
            raise KeyError(f"item {item!r} is not in the queue")
        self._keys[item] = key
        i = self._pos[item]
        self._sift_up(i)
        self._sift_down(self._pos[item])

    def __repr__(self) -> str:
        entries = ", ".join(
            f"{item}: {self._keys[item]!r}" for item in self._heap[:8]
        )
        more = "" if len(self._heap) <= 8 else ", ..."
        return f"IndexedPriorityQueue({{{entries}{more}}})"


class NextReactionPolicy(StepPolicy):
    """Exact SSA via the Gibson–Bruck next-reaction method (2000).

    Every reaction keeps a *putative firing time* — the absolute time at
    which it would fire next if no other reaction interfered — in an
    :class:`IndexedPriorityQueue`; each step pops the minimum, fires it, and
    repairs only the dependency-graph neighbours:

    * the fired reaction's clock is consumed, so it gets a fresh exponential
      draw at its new propensity;
    * an affected reaction that stays enabled *reuses* its pending draw,
      rescaled as ``t_new = t + (a_old / a_new) * (t_old - t)`` — valid
      because the remaining waiting time is exponential (memoryless) and an
      Exp(a_old) excess scales into an Exp(a_new) one;
    * a reaction whose propensity drops to zero parks at ``math.inf``
      (invariant: key is finite iff the propensity is positive) and gets a
      fresh draw when re-enabled.

    Statistically identical to :class:`GillespiePolicy` — both sample the
    same CTMC — but each step costs O(|deps(j)| log R) instead of the direct
    method's O(R) propensity scan, which wins for the dozens-of-reactions
    networks the general construction emits.  Seeded runs are *not*
    bit-comparable across the two (different stream consumption); the KS
    gates in ``tests/test_statistical_equivalence.py`` are the equivalence
    contract.
    """

    uses_time = True

    def bind(self, compiled: CompiledCRN, rng: random.Random) -> "_NRMStepper":
        return _NRMStepper(compiled, rng)


class _NRMStepper:
    """Single-run next-reaction state: propensities plus the putative-time queue."""

    __slots__ = (
        "compiled",
        "rng",
        "props",
        "queue",
        "time_now",
        "last_recomputed",
        "propensity_ops",
        "rng_draws",
    )

    def __init__(self, compiled: CompiledCRN, rng: random.Random) -> None:
        self.compiled = compiled
        self.rng = rng
        self.props: List[float] = []
        self.queue = IndexedPriorityQueue()
        #: The firing time returned by the most recent ``select`` — the
        #: stepper protocol's ``fired(j, counts)`` does not receive the
        #: clock, and the rescaling rule needs "now".
        self.time_now = 0.0
        #: Reactions refreshed by the most recent ``fired`` call (test hook).
        self.last_recomputed: Tuple[int, ...] = ()
        #: Propensity values computed or read while scheduling — comparable
        #: with the :class:`_GillespieStepper` counter of the same name.
        self.propensity_ops: int = 0
        #: Calls into the ``random.Random`` stream (same contract as the
        #: direct-method stepper: count, never wrap).
        self.rng_draws: int = 0

    # Bit-identical propensity evaluation, shared with the direct method.
    _propensity = _GillespieStepper._propensity

    def start(self, counts: List[int]) -> None:
        rng = self.rng
        self.time_now = 0.0
        self.props = [
            self._propensity(r, counts) for r in range(self.compiled.n_reactions)
        ]
        self.propensity_ops += len(self.props)
        self.rng_draws += sum(1 for a in self.props if a > 0.0)
        self.queue = IndexedPriorityQueue(
            rng.expovariate(a) if a > 0.0 else math.inf for a in self.props
        )

    def select(self, time_now: float, max_time: float) -> Tuple[int, float]:
        """The reaction with the earliest putative time; sentinels as usual.

        ``math.inf`` at the top means every reaction is disabled
        (``_SILENT``); a finite top past ``max_time`` clamps the clock
        (``_TIMED_OUT``).  No randomness is consumed here — the winning time
        was drawn when the reaction's clock was last set.
        """
        if not self.queue:
            return _SILENT, time_now
        j, t = self.queue.top()
        if t == math.inf:
            return _SILENT, time_now
        if t > max_time:
            return _TIMED_OUT, max_time
        self.time_now = t
        return j, t

    def fired(self, j: int, counts: List[int]) -> None:
        """Gibson–Bruck repair: fresh clock for ``j``, rescaled clocks for deps."""
        t = self.time_now
        dependents = self.compiled.dependency_graph[j]
        self.last_recomputed = dependents
        self.propensity_ops += len(dependents)
        props = self.props
        queue = self.queue
        rng = self.rng
        for r in dependents:
            old = props[r]
            new = self._propensity(r, counts)
            props[r] = new
            if r == j:
                continue  # its clock is consumed; redrawn below regardless
            if new <= 0.0:
                queue.update(r, math.inf)
            elif old > 0.0:
                if new != old:
                    queue.update(r, t + (old / new) * (queue.key(r) - t))
            else:
                queue.update(r, t + rng.expovariate(new))
                self.rng_draws += 1
        a = props[j]
        if a > 0.0:
            queue.update(j, t + rng.expovariate(a))
            self.rng_draws += 1
        else:
            queue.update(j, math.inf)

    def propensities(self) -> Tuple[float, ...]:
        """A snapshot of the incrementally-maintained propensity vector."""
        return tuple(self.props)

    def putative_times(self) -> Tuple[float, ...]:
        """A snapshot of the per-reaction putative firing times (test hook)."""
        return tuple(self.queue.key(r) for r in range(self.compiled.n_reactions))


class _FairStepper:
    """Single-run fair-scheduler state: the applicability flags, kept incrementally."""

    __slots__ = ("compiled", "rng", "weights", "app", "last_recomputed", "propensity_ops", "rng_draws")

    def __init__(
        self,
        compiled: CompiledCRN,
        rng: random.Random,
        weights: Optional[List[float]],
    ) -> None:
        self.compiled = compiled
        self.rng = rng
        self.weights = weights
        self.app: List[bool] = []
        #: Reactions refreshed by the most recent ``fired`` call (test hook).
        self.last_recomputed: Tuple[int, ...] = ()
        #: Applicability evaluations — the fair scheduler's analogue of the
        #: kinetic steppers' propensity work, counted under the same name so
        #: :class:`repro.obs.stats.RunStats` is uniform across policies.
        self.propensity_ops: int = 0
        #: Calls into the ``random.Random`` stream (count, never wrap).
        self.rng_draws: int = 0

    def _applicable(self, r: int, counts: List[int]) -> bool:
        for s, k in self.compiled.reactant_terms[r]:
            if counts[s] < k:
                return False
        return True

    def start(self, counts: List[int]) -> None:
        self.app = [
            self._applicable(r, counts) for r in range(self.compiled.n_reactions)
        ]
        self.propensity_ops += len(self.app)

    def select(self, time_now: float, max_time: float) -> Tuple[int, float]:
        """Pick a random applicable reaction (``_SILENT`` when there is none)."""
        app = self.app
        applicable = [j for j in range(len(app)) if app[j]]
        if not applicable:
            return _SILENT, time_now
        rng = self.rng
        self.rng_draws += 1
        if self.weights is None:
            return rng.choice(applicable), time_now
        weights = [self.weights[j] for j in applicable]
        total = sum(weights)
        if total <= 0:
            return rng.choice(applicable), time_now
        pick = rng.random() * total
        cumulative = 0.0
        for j, weight in zip(applicable, weights):
            cumulative += weight
            if pick <= cumulative:
                return j, time_now
        return applicable[-1], time_now

    def fired(self, j: int, counts: List[int]) -> None:
        """Refresh exactly the applicability flags firing ``j`` can have changed."""
        dependents = self.compiled.dependency_graph[j]
        self.last_recomputed = dependents
        self.propensity_ops += len(dependents)
        app = self.app
        for r in dependents:
            app[r] = self._applicable(r, counts)

    def applicability(self) -> Tuple[bool, ...]:
        """A snapshot of the incrementally-maintained applicability flags."""
        return tuple(self.app)


class TauLeapPolicy(StepPolicy):
    """Approximate SSA via tau-leaping (Cao–Gillespie–Petzold 2006 selection).

    When propensities are quasi-constant over an interval ``tau``, the number
    of times each reaction fires in that interval is approximately Poisson
    with mean ``a_j * tau``, so a whole batch of firings can be sampled per
    scheduler iteration instead of one.  ``tau`` is chosen so that no
    propensity is expected to drift by more than a fraction ``epsilon`` of the
    total rate (the largest-relative-change bound of Cao, Gillespie & Petzold,
    *J. Chem. Phys.* 124, 044109 (2006), computed species-wise from the IR's
    sparse ``reactant_terms`` / ``net_terms``).

    Safety rails, in the order they engage:

    * **exact fallback** — when the selected leap would contain fewer than
      ``n_critical`` expected firings, leaping buys nothing and risks bias, so
      the stepper runs a burst of ``exact_burst`` exact Gillespie steps
      instead (via the same incremental-propensity machinery as
      :class:`GillespiePolicy`).  Small populations therefore degrade
      gracefully to exact SSA.
    * **negative-population rejection** — a sampled leap that would drive any
      species count negative is discarded and retried with ``tau`` halved;
      after ``max_rejections`` halvings (or once the halved leap drops under
      ``n_critical`` expected firings) the stepper falls back to an exact
      burst, so the rejection loop always terminates and counts never go
      negative.

    ``epsilon`` is the single error knob: smaller values mean smaller leaps
    and a closer match to the exact CTMC, at proportionally more scheduler
    iterations.  Runs are *statistically* (not bit-for-bit) equivalent to
    exact SSA — ``tests/test_statistical_equivalence.py`` gates this with
    two-sample Kolmogorov–Smirnov tests against the exact engines.
    """

    uses_time = True
    fires_many = True

    def __init__(
        self,
        epsilon: float = 0.03,
        n_critical: float = 10.0,
        exact_burst: int = 100,
        max_rejections: int = 30,
    ) -> None:
        from repro.api.config import validate_epsilon

        epsilon = validate_epsilon(epsilon)
        if n_critical <= 0:
            raise ValueError(f"n_critical must be positive, got {n_critical!r}")
        if exact_burst < 1:
            raise ValueError(f"exact_burst must be >= 1, got {exact_burst!r}")
        if max_rejections < 1:
            raise ValueError(f"max_rejections must be >= 1, got {max_rejections!r}")
        self.epsilon = float(epsilon)
        self.n_critical = float(n_critical)
        self.exact_burst = int(exact_burst)
        self.max_rejections = int(max_rejections)

    def bind(self, compiled: CompiledCRN, rng: random.Random) -> "_TauLeapStepper":
        return _TauLeapStepper(compiled, rng, self)


class _TauLeapStepper:
    """Single-run tau-leap state: an exact stepper for propensities/fallback,
    plus the precomputed per-species highest-order-reaction data for tau
    selection."""

    __slots__ = (
        "compiled",
        "rng",
        "policy",
        "exact",
        "g_candidates",
        "leaps",
        "exact_events",
        "rejections",
        "poisson_draws",
    )

    def __init__(
        self, compiled: CompiledCRN, rng: random.Random, policy: TauLeapPolicy
    ) -> None:
        self.compiled = compiled
        self.rng = rng
        self.policy = policy
        # The exact stepper is both the propensity store (full recompute after
        # a leap, incremental dependency-graph updates inside exact bursts)
        # and the fallback engine.
        self.exact = _GillespieStepper(compiled, rng)
        # Per reactant species: the distinct (reaction order, own coefficient)
        # pairs over reactions consuming it, for the g_i factor of the tau
        # bound (shared with the batched engine via repro.sim.tau).
        self.g_candidates: Dict[int, Tuple[Tuple[int, int], ...]] = (
            build_g_candidates(compiled.reactant_terms)
        )
        #: Diagnostics (test hooks): leap / exact-burst / rejection counters.
        self.leaps = 0
        self.exact_events = 0
        self.rejections = 0
        #: Uniform draws consumed by :meth:`_poisson` (the leap sampler's
        #: share of the run's rng_draws; the embedded exact stepper keeps its
        #: own counter for the fallback bursts).
        self.poisson_draws = 0

    # Uniform RunStats counters: the embedded exact stepper carries the
    # propensity work (full recomputes after each leap, incremental updates
    # inside bursts, the per-advance total-rate read) and the fallback draws;
    # the leap sampler's Poisson draws are added on top.
    @property
    def propensity_ops(self) -> int:
        return self.exact.propensity_ops

    @property
    def rng_draws(self) -> int:
        # exact_events scales the embedded stepper's per-event draw constant
        # (its hot path carries no counter; see _GillespieStepper.rng_draws).
        return (
            self.exact.rng_draws
            + self.exact.rng_draws_per_event * self.exact_events
            + self.poisson_draws
        )

    # -- tau selection ---------------------------------------------------------

    def _g(self, s: int, x: int) -> float:
        """The highest-order-reaction factor g_i of Cao et al. (2006)."""
        return g_factor(self.g_candidates.get(s, ((1, 1),)), x)

    def select_tau(self, counts: List[int]) -> float:
        """The largest leap over which no propensity should drift by more than
        ``epsilon`` relatively (species-wise mean/variance bound).

        Delegates to the shared scalar form in :mod:`repro.sim.tau` — the
        same float ops in the same order as the pre-refactor inline loop, so
        seeded ``engine="tau"`` streams are bit-for-bit unchanged.
        """
        return select_tau(
            self.g_candidates,
            self.compiled.net_terms,
            self.exact.props,
            counts,
            self.policy.epsilon,
        )

    # -- Poisson sampling ------------------------------------------------------

    def _poisson(self, lam: float) -> int:
        """A Poisson(lam) draw from the run's ``random.Random`` stream.

        Knuth's multiplication method below lam = 10; Hörmann's transformed
        rejection (PTRS, 1993) above it, which needs O(1) draws at any lam
        (the multiplication method needs O(lam) draws and underflows its
        ``exp(-lam)`` threshold past lam ~ 745).
        """
        rng = self.rng
        if lam <= 0.0:
            return 0
        if lam < 10.0:
            threshold = math.exp(-lam)
            k = 0
            product = rng.random()
            while product > threshold:
                k += 1
                product *= rng.random()
            self.poisson_draws += k + 1
            return k
        log_lam = math.log(lam)
        b = 0.931 + 2.53 * math.sqrt(lam)
        a = -0.059 + 0.02483 * b
        inv_alpha = 1.1239 + 1.1328 / (b - 3.4)
        v_r = 0.9277 - 3.6224 / (b - 2.0)
        while True:
            u = rng.random() - 0.5
            v = rng.random()
            self.poisson_draws += 2
            us = 0.5 - abs(u)
            k = math.floor((2.0 * a / us + b) * u + lam + 0.43)
            if us >= 0.07 and v <= v_r:
                return int(k)
            if k < 0 or (us < 0.013 and v > us):
                continue
            if math.log(v) + math.log(inv_alpha) - math.log(a / (us * us) + b) <= (
                k * log_lam - lam - math.lgamma(k + 1.0)
            ):
                return int(k)

    # -- the stepper protocol --------------------------------------------------

    def start(self, counts: List[int]) -> None:
        self.exact.start(counts)

    def advance(
        self, counts: List[int], time_now: float, max_time: float
    ) -> Tuple[int, float]:
        """Fire one leap (or one exact burst); returns ``(events, new_time)``.

        ``counts`` is mutated in place.  ``events`` is ``_SILENT`` when no
        reaction can fire and ``_TIMED_OUT`` when the clock crosses
        ``max_time`` before anything fires; a zero-event leap (possible when
        the clamped leap is short) advances only the clock.
        """
        policy = self.policy
        props = self.exact.props
        # The leap scheduler reads the whole vector (total rate + tau bound);
        # counted once per advance, mirroring the direct method's per-select
        # accounting, so tau's propensity work is comparable across engines.
        self.exact.propensity_ops += len(props)
        total = sum(props)
        if total <= 0.0:
            return _SILENT, time_now
        tau = self.select_tau(counts)
        if math.isinf(tau):
            # No reactant species ever changes (purely catalytic kinetics):
            # propensities are constant, so any leap is exact w.r.t. the
            # rates.  Bound the batch so step budgets stay meaningful.
            tau = 1000.0 / total
        if is_critical(tau, total, policy.n_critical):
            return self._exact_burst(counts, time_now, max_time)
        if time_now + tau > max_time:
            tau = max_time - time_now
            if tau <= 0.0:
                return _TIMED_OUT, max_time
        net_terms = self.compiled.net_terms
        for _ in range(policy.max_rejections):
            events = 0
            deltas: Dict[int, int] = {}
            for j, a in enumerate(props):
                if a <= 0.0:
                    continue
                k = self._poisson(a * tau)
                if k:
                    events += k
                    for s, delta in net_terms[j]:
                        deltas[s] = deltas.get(s, 0) + delta * k
            if all(counts[s] + delta >= 0 for s, delta in deltas.items()):
                time_now += tau
                if events:
                    for s, delta in deltas.items():
                        counts[s] += delta
                    # A leap can change many species at once; recompute the
                    # whole propensity vector (amortized over `events` firings).
                    self.exact.start(counts)
                    self.leaps += 1
                return events, time_now
            self.rejections += 1
            tau /= 2.0
            if is_critical(tau, total, policy.n_critical):
                break
        return self._exact_burst(counts, time_now, max_time)

    def _exact_burst(
        self, counts: List[int], time_now: float, max_time: float
    ) -> Tuple[int, float]:
        """Up to ``exact_burst`` exact SSA steps through the embedded stepper."""
        exact = self.exact
        net_terms = self.compiled.net_terms
        events = 0
        for _ in range(self.policy.exact_burst):
            j, time_now = exact.select(time_now, max_time)
            if j < 0:
                # Report the events already fired; the *next* advance call
                # re-detects silence / timeout and returns the sentinel.
                break
            for s, delta in net_terms[j]:
                counts[s] += delta
            exact.fired(j, counts)
            events += 1
        self.exact_events += events
        # events == 0 only when the first select hit a sentinel, so j is set.
        return (events, time_now) if events else (j, time_now)

    def propensities(self) -> Tuple[float, ...]:
        """A snapshot of the current propensity vector (test hook)."""
        return tuple(self.exact.props)


class SimulatorCore:
    """The one scalar step loop, parameterized by a :class:`StepPolicy`.

    Parameters
    ----------
    crn:
        The network to simulate (a :class:`~repro.crn.network.CRN`, compiled
        lazily and cached on the network) or an existing
        :class:`~repro.sim.engine.CompiledCRN`.
    policy:
        The scheduling strategy (:class:`GillespiePolicy`,
        :class:`FairPolicy`, or a third-party :class:`StepPolicy`).
    rng:
        Optional :class:`random.Random` for reproducibility; draw order per
        step matches the legacy scalar simulators (see the module docstring).
    """

    def __init__(
        self,
        crn: "CRN | CompiledCRN",
        policy: StepPolicy,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.compiled = crn if isinstance(crn, CompiledCRN) else crn.compiled()
        self.crn = self.compiled.crn
        self.policy = policy
        self.rng = rng or random.Random()

    # -- encoding --------------------------------------------------------------

    def _encode(self, initial: Configuration) -> Tuple[List[int], Dict[Species, int]]:
        """Dense counts plus a passthrough dict for out-of-network species.

        The legacy dict-backed simulators carried species the network never
        mentions through a run untouched (no reaction can consume them); the
        kernel preserves that by re-merging them into every decoded
        configuration.
        """
        counts = [0] * self.compiled.n_species
        extras: Dict[Species, int] = {}
        index = self.compiled.index
        for sp, count in initial.items():
            i = index.get(sp)
            if i is None:
                extras[sp] = count
            else:
                counts[i] = count
        return counts, extras

    def _decode(self, counts: List[int], extras: Dict[Species, int]) -> Configuration:
        merged = {sp: counts[i] for sp, i in self.compiled.index.items() if counts[i] > 0}
        if extras:
            merged.update(extras)
        return Configuration(merged)

    # -- the step loop ---------------------------------------------------------

    def run(
        self,
        initial: Configuration,
        max_steps: int = 1_000_000,
        max_time: float = math.inf,
        quiescence_window: int = 0,
        track: Sequence[Species] = (),
        record_every: int = 1,
        stop_when: Optional[Callable[[Configuration], bool]] = None,
    ) -> KernelRunResult:
        """Advance from ``initial`` until silence, quiescence, a bound, or ``stop_when``.

        Parameters
        ----------
        max_steps / max_time:
            Upper bounds on reactions fired / simulated time (``max_time``
            only binds under a clock-bearing policy such as
            :class:`GillespiePolicy`).
        quiescence_window:
            If positive, stop (``converged``) once the output count has been
            unchanged for this many consecutive steps while reactions kept
            firing — the convergence detector for CRNs that never fall silent.
        track / record_every:
            Species recorded into a :class:`~repro.sim.trajectory.Trajectory`,
            sampled every ``record_every`` reaction events.
        stop_when:
            Optional predicate on the current configuration, checked before
            each step; the run stops as soon as it returns True.
        """
        compiled = self.compiled
        t0_unix = _time.time()
        t0 = _time.perf_counter()
        counts, extras = self._encode(initial)
        stepper = self.policy.bind(compiled, self.rng)
        stepper.start(counts)
        leaping = self.policy.fires_many
        if leaping:
            advance = stepper.advance
        else:
            select = stepper.select
            fired = stepper.fired
        net_terms = compiled.net_terms
        output_index = compiled.output_index
        uses_time = self.policy.uses_time

        time_now = 0.0
        steps = 0
        selections = 0
        silent = False
        converged = False
        max_output = counts[output_index]
        last_output = max_output
        unchanged_for = 0
        trajectory = Trajectory(track) if track else None
        last_recorded = 0
        if trajectory is not None:
            trajectory.record(0.0, 0, self._decode(counts, extras))

        while steps < max_steps and time_now < max_time:
            if stop_when is not None and stop_when(self._decode(counts, extras)):
                break
            if leaping:
                # A batch-firing stepper applies the whole leap to `counts`
                # itself and reports how many events it fired; the run may
                # overshoot max_steps by at most one leap.
                events, time_now = advance(counts, time_now, max_time)
                if events < 0:
                    if events == _SILENT:
                        silent = True
                    break
                steps += events
            else:
                j, time_now = select(time_now, max_time)
                if j < 0:
                    if j == _SILENT:
                        silent = True
                    break
                for s, delta in net_terms[j]:
                    counts[s] += delta
                events = 1
                steps += 1
                fired(j, counts)
            selections += 1
            current = counts[output_index]
            if current > max_output:
                max_output = current
            if current == last_output:
                unchanged_for += events
            else:
                unchanged_for = 0
                last_output = current
            if trajectory is not None and steps - last_recorded >= record_every:
                last_recorded = steps
                trajectory.record(
                    time_now if uses_time else float(steps),
                    steps,
                    self._decode(counts, extras),
                )
            if quiescence_window and unchanged_for >= quiescence_window:
                converged = True
                break

        if trajectory is not None and (
            len(trajectory) == 0 or trajectory[-1].step != steps
        ):
            trajectory.record(
                time_now if uses_time else float(steps),
                steps,
                self._decode(counts, extras),
            )
        stats = RunStats(
            events=steps,
            selections=selections,
            propensity_ops=getattr(stepper, "propensity_ops", 0),
            rng_draws=getattr(stepper, "rng_draws", 0)
            + getattr(stepper, "rng_draws_per_event", 0) * steps,
            wall_s=_time.perf_counter() - t0,
        )
        # Tracing is a single emit of timings already measured above; when the
        # global tracer is disabled (the default) this is one bool check.
        tracer = get_tracer()
        if tracer.enabled:
            tracer.emit_span(
                "kernel.run",
                t0_unix,
                stats.wall_s,
                policy=type(self.policy).__name__,
                events=steps,
                selections=selections,
                propensity_ops=stats.propensity_ops,
                rng_draws=stats.rng_draws,
                silent=silent,
                converged=converged,
            )
        return KernelRunResult(
            final_configuration=self._decode(counts, extras),
            steps=steps,
            silent=silent,
            converged=converged,
            final_time=time_now,
            max_output_seen=max_output,
            trajectory=trajectory,
            selections=selections,
            stats=stats,
        )

    def run_on_input(self, x: Sequence[int], **kwargs) -> KernelRunResult:
        """Run from the CRN's initial configuration for input ``x``."""
        return self.run(self.crn.initial_configuration(x), **kwargs)

    def __repr__(self) -> str:
        return (
            f"SimulatorCore({self.compiled!r}, "
            f"policy={type(self.policy).__name__})"
        )
