"""Cross-engine statistical equivalence: KS distribution gates.

The exact engines (``"python"`` scalar kernel, ``"vectorized"`` numpy batch)
can be compared output-for-output on stable computations, and the kernel is
even bit-for-bit against the frozen reference loops.  An *approximate* engine
(``"tau"`` tau-leaping, a future numba/C backend with its own random stream)
admits no such check: the only meaningful contract is that it samples the
same continuous-time Markov chain, i.e. that its *distributions* over
trajectory statistics match the exact engines'.  This module is that
contract's toolkit:

* :func:`ks_two_sample` — the two-sample Kolmogorov–Smirnov statistic with
  the standard asymptotic p-value (no scipy dependency; the Kolmogorov tail
  sum is a dozen lines).  On the integer-valued samples compared here the
  asymptotic test is *conservative* (ties reduce the attainable statistic),
  which is the right failure direction for a CI gate: a pass is never
  manufactured by discreteness, and the deliberately-biased-engine tests in
  ``tests/test_statistical_equivalence.py`` show the power that remains.
* :func:`sample_kinetic_distribution` — one seeded sample of per-trajectory
  completion step counts and final output counts for a CRN under a named
  kinetic sampler (``"python"`` exact scalar, ``"vectorized"`` exact batch,
  ``"nrm"`` exact next-reaction method, ``"tau"`` tau-leaping, ``"tau-vec"``
  batched tau-leaping, or any bound
  :class:`~repro.sim.kernel.StepPolicy`).
  All samplers target the same CTMC, so their step/output distributions must
  agree up to sampling noise.
* :func:`assert_distributions_match` — the gate: KS-test a metric between two
  samples and fail with a readable report when the p-value drops under alpha.

The test suite (``tests/test_statistical_equivalence.py``, ``-m
statistical``) runs these gates python-vs-vectorized-vs-nrm-vs-tau across
every construction strategy family on a fixed seed matrix, so the gates are
deterministic in CI while still rejecting a subtly rate-biased backend.
The same machinery admits an exact-but-stream-divergent engine such as
``"nrm"``: bit-for-bit comparison against ``"python"`` is impossible by
construction (different draw order), but distributional identity is exactly
what "samples the same CTMC" means, so passing these gates is the admission
contract.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from repro.crn.network import CRN
from repro.sim.kernel import (
    GillespiePolicy,
    NextReactionPolicy,
    SimulatorCore,
    StepPolicy,
    TauLeapPolicy,
)

__all__ = [
    "KSResult",
    "ks_statistic",
    "kolmogorov_pvalue",
    "ks_two_sample",
    "DistributionSample",
    "sample_kinetic_distribution",
    "assert_distributions_match",
]


@dataclass(frozen=True)
class KSResult:
    """A two-sample Kolmogorov–Smirnov comparison."""

    statistic: float
    pvalue: float
    n: int
    m: int

    def rejects(self, alpha: float) -> bool:
        """True when the samples differ significantly at level ``alpha``."""
        return self.pvalue < alpha

    def describe(self) -> str:
        return (
            f"KS D={self.statistic:.4f}, p={self.pvalue:.4g} "
            f"(n={self.n}, m={self.m})"
        )


def ks_statistic(a: Sequence[float], b: Sequence[float]) -> float:
    """The two-sample KS statistic ``sup_x |F_a(x) - F_b(x)|``.

    Tie-safe: both empirical CDFs are evaluated after consuming *all* values
    equal to the current point, so repeated integer values (the common case
    for step and output counts) are handled exactly.
    """
    if not a or not b:
        raise ValueError("ks_statistic needs two nonempty samples")
    xs = sorted(a)
    ys = sorted(b)
    n, m = len(xs), len(ys)
    i = j = 0
    d = 0.0
    while i < n and j < m:
        point = xs[i] if xs[i] <= ys[j] else ys[j]
        while i < n and xs[i] <= point:
            i += 1
        while j < m and ys[j] <= point:
            j += 1
        gap = abs(i / n - j / m)
        if gap > d:
            d = gap
    return d


def kolmogorov_pvalue(statistic: float, n: int, m: int) -> float:
    """Asymptotic two-sample KS p-value (Kolmogorov distribution tail).

    Uses the standard small-sample correction
    ``lambda = (sqrt(ne) + 0.12 + 0.11/sqrt(ne)) * D`` with effective size
    ``ne = n*m/(n+m)``, then the alternating tail series
    ``Q(lambda) = 2 * sum_{k>=1} (-1)^{k-1} exp(-2 k^2 lambda^2)``.
    """
    if n < 1 or m < 1:
        raise ValueError("kolmogorov_pvalue needs positive sample sizes")
    effective = math.sqrt(n * m / (n + m))
    lam = (effective + 0.12 + 0.11 / effective) * statistic
    if lam <= 0.0:
        return 1.0
    total = 0.0
    sign = 1.0
    for k in range(1, 101):
        term = sign * math.exp(-2.0 * (k * lam) ** 2)
        total += term
        if abs(term) < 1e-12:
            break
        sign = -sign
    return max(0.0, min(1.0, 2.0 * total))


def ks_two_sample(a: Sequence[float], b: Sequence[float]) -> KSResult:
    """Two-sample KS test: statistic plus asymptotic p-value."""
    d = ks_statistic(a, b)
    return KSResult(statistic=d, pvalue=kolmogorov_pvalue(d, len(a), len(b)), n=len(a), m=len(b))


@dataclass
class DistributionSample:
    """Per-trajectory statistics from repeated seeded kinetic runs."""

    engine: str
    steps: List[int] = field(default_factory=list)
    """Reaction events fired per trajectory (completion step counts)."""
    outputs: List[int] = field(default_factory=list)
    """Final output-species count per trajectory."""
    all_completed: bool = True
    """True when every trajectory fell silent or detected quiescence."""

    def metric(self, name: str) -> List[int]:
        try:
            return {"steps": self.steps, "outputs": self.outputs}[name]
        except KeyError:
            raise ValueError(
                f"unknown metric {name!r}; expected 'steps' or 'outputs'"
            ) from None


#: Engine selectors accepted by :func:`sample_kinetic_distribution`, or any
#: StepPolicy instance for ad-hoc (e.g. deliberately biased) samplers.
EngineLike = Union[str, StepPolicy]


def sample_kinetic_distribution(
    crn: CRN,
    x: Sequence[int],
    engine: EngineLike = "python",
    n_seeds: int = 40,
    base_seed: int = 0,
    max_steps: int = 1_000_000,
    quiescence_window: int = 0,
    epsilon: float = 0.03,
) -> DistributionSample:
    """Sample completion-step and output distributions under one kinetic sampler.

    Every sampler targets the same CTMC (stochastic mass-action kinetics), so
    two samples of the same CRN/input must agree distributionally no matter
    which engine produced them — that is the property the KS gates check.

    Parameters
    ----------
    engine:
        ``"python"`` (exact scalar kernel), ``"nrm"`` (exact Gibson–Bruck
        next-reaction method), ``"tau"`` (tau-leaping with ``epsilon``),
        ``"vectorized"`` (exact numpy batch engine), ``"tau-vec"`` (batched
        tau-leaping with ``epsilon``), or a
        :class:`~repro.sim.kernel.StepPolicy` instance to sample an arbitrary
        — e.g. deliberately biased — scalar policy.
    n_seeds / base_seed:
        The fixed seed matrix: scalar trajectories use seeds ``base_seed + i``
        for ``i < n_seeds``; the vectorized engine runs one ``n_seeds``-row
        batch seeded with ``base_seed``.  Fixed seeds make the gates
        deterministic in CI.
    quiescence_window:
        Optional kinetic quiescence detection for CRNs that never fall
        silent (scalar samplers only — the batch engines are sampled on a
        pure ``max_steps`` budget here, so requesting both raises
        ``ValueError``).
    """
    if n_seeds < 2:
        raise ValueError(f"n_seeds must be >= 2 for a distribution, got {n_seeds}")
    if isinstance(engine, StepPolicy):
        policy: Optional[StepPolicy] = engine
        label = type(engine).__name__
    elif engine == "python":
        policy = GillespiePolicy()
        label = "python"
    elif engine == "nrm":
        policy = NextReactionPolicy()
        label = "nrm"
    elif engine == "tau":
        policy = TauLeapPolicy(epsilon=epsilon)
        label = "tau"
    elif engine == "vectorized":
        policy = None
        label = "vectorized"
    elif engine == "tau-vec":
        policy = None
        label = "tau-vec"
    else:
        raise ValueError(
            f"unknown kinetic sampler {engine!r}; expected 'python', "
            f"'vectorized', 'nrm', 'tau', 'tau-vec', or a StepPolicy instance"
        )

    sample = DistributionSample(engine=label)
    if policy is None:
        if quiescence_window:
            raise ValueError(
                "batch engines are sampled on a max_steps budget here "
                "(quiescence_window=0) so every engine sees the identical "
                "stopping rule; drop quiescence_window for cross-engine "
                "sampling"
            )
        if label == "tau-vec":
            from repro.sim.engine import BatchTauLeapEngine

            batch_engine = BatchTauLeapEngine(
                crn.compiled(), seed=base_seed, epsilon=epsilon
            )
        else:
            from repro.sim.engine import BatchGillespieEngine

            batch_engine = BatchGillespieEngine(crn.compiled(), seed=base_seed)
        result = batch_engine.run_on_input(x, batch=n_seeds, max_steps=max_steps)
        sample.steps = [int(v) for v in result.steps]
        sample.outputs = [int(v) for v in result.output_counts()]
        sample.all_completed = bool(result.silent.all())
        return sample

    for i in range(n_seeds):
        core = SimulatorCore(crn, policy, rng=random.Random(base_seed + i))
        result = core.run_on_input(
            x, max_steps=max_steps, quiescence_window=quiescence_window
        )
        sample.steps.append(result.steps)
        sample.outputs.append(crn.output_count(result.final_configuration))
        if not (result.silent or result.converged):
            sample.all_completed = False
    return sample


def assert_distributions_match(
    reference: DistributionSample,
    candidate: DistributionSample,
    metrics: Tuple[str, ...] = ("steps", "outputs"),
    alpha: float = 1e-3,
) -> List[Tuple[str, KSResult]]:
    """KS-gate ``candidate`` against ``reference`` on the given metrics.

    Raises ``AssertionError`` naming the engine pair, metric, and KS numbers
    when any gate rejects at level ``alpha``; returns the per-metric results
    otherwise (so callers can log or archive them).  ``alpha`` is the false
    alarm probability per gate under the null — keep it small (the default
    1e-3 keeps a full strategy-family matrix stable across CI runs) and rely
    on the biased-engine tests for evidence of power.
    """
    results: List[Tuple[str, KSResult]] = []
    for metric in metrics:
        ks = ks_two_sample(reference.metric(metric), candidate.metric(metric))
        results.append((metric, ks))
        if ks.rejects(alpha):
            raise AssertionError(
                f"{candidate.engine!r} disagrees with {reference.engine!r} on "
                f"the {metric} distribution: {ks.describe()} < alpha={alpha}"
            )
    return results
