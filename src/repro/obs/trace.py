"""Span/event tracing with a zero-cost disabled path and a JSONL sink.

Design constraints (DESIGN.md §9):

* **Off by default, ~free when off.**  The module-level tracer starts
  disabled; ``tracer.span(...)`` then returns a shared no-op singleton and
  ``tracer.event(...)`` returns after one attribute check.  Hot loops are
  expected to check ``tracer.enabled`` once per *run*, never per step —
  the kernel emits a single completed span per run via :meth:`Tracer.emit_span`
  with timings it measured anyway.
* **Monotonic durations, unix timestamps.**  Span durations come from
  ``time.perf_counter()`` deltas (immune to clock steps); start times are
  stamped with ``time.time()`` so spans from different processes land on one
  timeline.
* **Process/thread safety.**  Each record is serialized to a single line and
  written with one ``os.write`` on an ``O_APPEND`` descriptor, so pool
  workers and the parent can share a trace file without interleaving bytes;
  a per-process lock orders writers within a process.  The writer re-opens
  its descriptor after a fork (pid check) rather than sharing file offsets.
* **Schema-versioned.**  The first line of every trace file is a ``meta``
  record carrying :data:`TRACE_SCHEMA`; :func:`validate_trace` checks the
  invariants that ``python -m repro trace`` and the CI ``obs-smoke`` job
  rely on.

Record shapes (one JSON object per line)::

    {"type": "meta", "schema": "repro-trace-v1", "version": ..., "pid": ...,
     "created_unix": ..., "manifest": {...}?}
    {"type": "span", "name": ..., "t0": <unix s>, "dur_s": <float >= 0>,
     "pid": ..., "tid": ..., "id": ..., "parent": <id or None>, "attrs": {}}
    {"type": "event", "name": ..., "t": <unix s>, "pid": ..., "tid": ...,
     "attrs": {}}
"""

from __future__ import annotations

import io
import itertools
import json
import os
import tempfile
import threading
import time
from typing import Any, Dict, Iterator, List, Optional

#: Bump on any backwards-incompatible change to the record shapes above.
TRACE_SCHEMA = "repro-trace-v1"

_RECORD_TYPES = ("meta", "span", "event")


class JsonlTraceSink:
    """Append-only JSONL writer; one ``os.write`` per record (fork-safe)."""

    def __init__(self, path: str, manifest: Optional[Dict[str, Any]] = None) -> None:
        self.path = str(path)
        self._lock = threading.Lock()
        self._fd: Optional[int] = None
        self._fd_pid: Optional[int] = None
        header: Dict[str, Any] = {
            "type": "meta",
            "schema": TRACE_SCHEMA,
            "pid": os.getpid(),
            "created_unix": time.time(),
        }
        if manifest is not None:
            header["manifest"] = manifest
        # Truncate-then-append: the creating process owns the header line.
        with io.open(self.path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(header, sort_keys=True) + "\n")

    def _descriptor(self) -> int:
        pid = os.getpid()
        if self._fd is None or self._fd_pid != pid:
            # After a fork the child must not share the parent's file offset
            # bookkeeping; O_APPEND makes each write land atomically at EOF.
            self._fd = os.open(self.path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
            self._fd_pid = pid
        return self._fd

    def write(self, record: Dict[str, Any]) -> None:
        line = (json.dumps(record, sort_keys=True, default=str) + "\n").encode("utf-8")
        with self._lock:
            os.write(self._descriptor(), line)

    def close(self) -> None:
        with self._lock:
            if self._fd is not None and self._fd_pid == os.getpid():
                os.close(self._fd)
            self._fd = None
            self._fd_pid = None


class _NoopSpan:
    """Shared do-nothing span: the entire cost of tracing-while-disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self


#: The singleton handed out by a disabled tracer — never allocate per call.
NOOP_SPAN = _NoopSpan()


class Span:
    """A live span; use as a context manager or close via ``__exit__``."""

    __slots__ = ("tracer", "name", "attrs", "span_id", "parent", "t0_unix", "_t0_perf")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]) -> None:
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = tracer._next_id()
        self.parent = tracer._current_span_id()
        self.t0_unix = time.time()
        self._t0_perf = time.perf_counter()

    def set(self, **attrs: Any) -> "Span":
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self.tracer._push(self.span_id)
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.tracer._pop()
        self.tracer._write(
            {
                "type": "span",
                "name": self.name,
                "t0": self.t0_unix,
                "dur_s": max(0.0, time.perf_counter() - self._t0_perf),
                "pid": os.getpid(),
                "tid": threading.get_ident(),
                "id": self.span_id,
                "parent": self.parent,
                "attrs": self.attrs,
            }
        )


class Tracer:
    """Span/event emitter bound to a sink; disabled instances are no-ops."""

    def __init__(self, sink: Optional[JsonlTraceSink] = None) -> None:
        self.sink = sink
        self.enabled = sink is not None
        self._seq = itertools.count(1)
        self._stack = threading.local()

    # -- emitting ------------------------------------------------------------

    def span(self, name: str, **attrs: Any):
        """A context-manager span, or the shared no-op when disabled."""
        if not self.enabled:
            return NOOP_SPAN
        return Span(self, name, attrs)

    def event(self, name: str, **attrs: Any) -> None:
        """A point-in-time event record (heartbeats, cache hits, ...)."""
        if not self.enabled:
            return
        self._write(
            {
                "type": "event",
                "name": name,
                "t": time.time(),
                "pid": os.getpid(),
                "tid": threading.get_ident(),
                "attrs": attrs,
            }
        )

    def emit_span(self, name: str, t0_unix: float, dur_s: float, **attrs: Any) -> None:
        """Record a span whose timing the caller already measured.

        This is the hot-path-friendly form: the kernel times its run loop
        anyway (``RunStats.wall_s``), so when tracing is on it reports that
        measurement here instead of paying for a live :class:`Span` object.
        """
        if not self.enabled:
            return
        self._write(
            {
                "type": "span",
                "name": name,
                "t0": t0_unix,
                "dur_s": max(0.0, float(dur_s)),
                "pid": os.getpid(),
                "tid": threading.get_ident(),
                "id": self._next_id(),
                "parent": self._current_span_id(),
                "attrs": attrs,
            }
        )

    # -- plumbing ------------------------------------------------------------

    def _write(self, record: Dict[str, Any]) -> None:
        if self.sink is not None:
            self.sink.write(record)

    def _next_id(self) -> str:
        return f"{os.getpid():x}-{next(self._seq)}"

    def _current_span_id(self) -> Optional[str]:
        stack = getattr(self._stack, "ids", None)
        return stack[-1] if stack else None

    def _push(self, span_id: str) -> None:
        stack = getattr(self._stack, "ids", None)
        if stack is None:
            stack = []
            self._stack.ids = stack
        stack.append(span_id)

    def _pop(self) -> None:
        stack = getattr(self._stack, "ids", None)
        if stack:
            stack.pop()


#: Process-global tracer.  Disabled by default; campaigns/servers install an
#: enabled one for the duration of a traced run via :func:`install_tracer`.
_GLOBAL = Tracer()


def get_tracer() -> Tracer:
    return _GLOBAL


def install_tracer(tracer: Tracer) -> Tracer:
    """Swap the global tracer; returns the previous one (restore in finally)."""
    global _GLOBAL
    previous = _GLOBAL
    _GLOBAL = tracer
    return previous


# -- reading / validating ----------------------------------------------------


def read_trace(path: str) -> Iterator[Dict[str, Any]]:
    """Yield the records of a JSONL trace file (raises on malformed JSON)."""
    with io.open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{line_number}: malformed trace line: {exc}")
            yield record


def merge_trace_files(
    out_path: str,
    shard_paths: List[str],
    manifest: Optional[Dict[str, Any]] = None,
) -> int:
    """Merge per-shard traces into one schema-valid trace file at ``out_path``.

    Built for distributed campaigns: every worker writes its own
    ``repro-trace-v1`` shard, and the coordinator folds them into the
    campaign's ``trace.jsonl``.  Shard ``meta`` headers are dropped in favour
    of one fresh header (carrying ``manifest`` and the shard count);
    ``lab.cell`` spans are **deduplicated by their cell id** — a cell executed
    twice (lease expiry, resume) keeps only the latest span, mirroring the
    store's last-write-wins row merge — and everything is ordered by
    timestamp.  Unreadable shards are skipped (a worker killed mid-write must
    not poison the merge); returns the number of records written after the
    header.  ``out_path`` may itself be listed as a shard: records are read
    before the output is replaced atomically.
    """
    by_cell: Dict[str, Dict[str, Any]] = {}
    rest: List[Dict[str, Any]] = []
    for path in shard_paths:
        try:
            records = list(read_trace(path))
        except (OSError, ValueError):
            continue
        for record in records:
            if record.get("type") == "meta":
                continue
            cell = None
            if record.get("type") == "span" and record.get("name") == "lab.cell":
                attrs = record.get("attrs")
                if isinstance(attrs, dict):
                    cell = attrs.get("cell")
            if cell is None:
                rest.append(record)
                continue
            previous = by_cell.get(cell)
            if previous is None or (record.get("t0") or 0.0) >= (previous.get("t0") or 0.0):
                by_cell[cell] = record

    def _stamp(record: Dict[str, Any]) -> float:
        value = record.get("t0", record.get("t"))
        return float(value) if isinstance(value, (int, float)) else 0.0

    merged = sorted(rest + list(by_cell.values()), key=_stamp)
    header: Dict[str, Any] = {
        "type": "meta",
        "schema": TRACE_SCHEMA,
        "pid": os.getpid(),
        "created_unix": time.time(),
        "merged_shards": len(shard_paths),
    }
    if manifest is not None:
        header["manifest"] = manifest
    directory = os.path.dirname(os.path.abspath(out_path))
    fd, temp_path = tempfile.mkstemp(dir=directory, prefix=".tmp-trace-")
    try:
        with io.open(fd, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(header, sort_keys=True) + "\n")
            for record in merged:
                handle.write(json.dumps(record, sort_keys=True, default=str) + "\n")
        os.replace(temp_path, out_path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise
    return len(merged)


def validate_trace(records: List[Dict[str, Any]]) -> List[str]:
    """Schema-check a trace; returns human-readable problems ([] = valid)."""
    problems: List[str] = []
    if not records:
        return ["trace is empty (expected a leading meta record)"]
    head = records[0]
    if head.get("type") != "meta":
        problems.append(f"first record must be meta, got {head.get('type')!r}")
    elif head.get("schema") != TRACE_SCHEMA:
        problems.append(
            f"unsupported trace schema {head.get('schema')!r} (expected {TRACE_SCHEMA!r})"
        )
    span_ids = {
        record.get("id")
        for record in records
        if record.get("type") == "span" and record.get("id") is not None
    }
    for index, record in enumerate(records):
        kind = record.get("type")
        where = f"record {index}"
        if kind not in _RECORD_TYPES:
            problems.append(f"{where}: unknown record type {kind!r}")
            continue
        if kind == "span":
            for key in ("name", "t0", "dur_s", "pid", "id"):
                if key not in record:
                    problems.append(f"{where}: span missing {key!r}")
            duration = record.get("dur_s")
            if isinstance(duration, (int, float)) and duration < 0:
                problems.append(f"{where}: negative span duration {duration}")
            parent = record.get("parent")
            if parent is not None and parent not in span_ids:
                problems.append(f"{where}: parent {parent!r} is not a span id")
        elif kind == "event":
            for key in ("name", "t", "pid"):
                if key not in record:
                    problems.append(f"{where}: event missing {key!r}")
    return problems
