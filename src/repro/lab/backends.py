"""Pluggable work-queue backends for distributed, sharded campaigns.

The executor seam (:func:`~repro.lab.campaign.run_campaign` accepts anything
with ``map(cells) -> iterator of CellResult``) generalizes to a **work
queue**: campaign cells are deterministic, content-addressed, and resumable
from the JSONL store, so shards can be *claimed idempotently* by any number
of hosts and the per-worker results merged by cache key.  Three pieces:

* :class:`WorkQueue` — the claim / lease / renew / complete protocol over
  content-addressed cell ids;
* :class:`LocalPoolBackend` — the degenerate backend: wraps today's
  in-process :class:`~repro.lab.executor.PoolExecutor` bit-for-bit, so
  ``backend="local"`` is exactly the historical behaviour;
* :class:`SharedDirBackend` / :class:`SharedDirQueue` — a filesystem-backed
  queue any number of ``python -m repro worker --queue-dir ...`` processes
  can serve, coordinated purely by atomic directory-entry operations (no
  server, no locks, works on any shared POSIX directory).

**The lease contract.**  A cell is claimed by atomically creating
``leases/<cell_id>`` with ``O_CREAT | O_EXCL`` — exactly one claimant can
win — after which the claim token ``pending/<cell_id>`` is removed.  A lease
carries a deadline; a worker that dies (SIGKILL, host loss) simply stops
renewing, and once the deadline passes any other worker re-issues the claim
token and drops the stale lease.  The race this allows — the presumed-dead
worker finishing after its cell was reclaimed — is *harmless by
construction*: cells are deterministic, rows are merged by ``cell_id`` with
last-write-wins, and both writers produce canonical-JSON-identical
deterministic rows.  Leases are therefore an optimization against duplicate
*work*, never a correctness mechanism; correctness rests on idempotence.

**Merge-by-cache-key.**  Each worker appends to its own
``results/<worker_id>.jsonl`` (single-writer, so the store's torn-tail
recovery applies per shard).  The merged view is the union of the shards
deduplicated by ``cell_id`` (equivalently the cache key — both are content
addresses of the descriptor), so N workers, duplicated executions, and
resumed runs all collapse to one canonical row per cell, byte-identical in
the deterministic view to a serial run.

Queue directory layout::

    queue.json            seal: the campaign's full cell-id list
    cells/<id>.json       serialized Cell descriptors (atomic publish)
    pending/<id>          claim tokens (zero-byte)
    leases/<id>           held claims: {worker, deadline, ...}
    done/<id>             completion markers: {worker, finished_unix}
    results/<w>.jsonl     per-worker CellResult shards (ResultStore format)
    stats/<w>.json        per-worker counters (claimed/executed/errors/...)
    traces/<w>.jsonl      optional per-worker repro-trace-v1 shards
"""

from __future__ import annotations

import json
import os
import socket
import tempfile
import time
from typing import Any, Dict, Iterable, Iterator, List, Optional, Set

from repro.api.config import RunConfig
from repro.lab.campaign import Cell
from repro.lab.executor import PoolExecutor, run_cell_with_timeout
from repro.lab.store import CellResult, ResultStore

#: Schema tag of the queue seal file.
QUEUE_SCHEMA = "repro-queue-v1"

QUEUE_MANIFEST_NAME = "queue.json"

#: Default seconds a claim stays exclusive without renewal.
DEFAULT_LEASE_TTL = 60.0


# ---------------------------------------------------------------------------
# Cell serialization: descriptors must cross process/host boundaries as JSON
# ---------------------------------------------------------------------------


def cell_to_dict(cell: Cell) -> Dict[str, Any]:
    """A JSON-safe rendering of a :class:`~repro.lab.campaign.Cell`.

    Specs travel *by registered name* (the same contract as the pickle path):
    the built-in catalog is registered at import in every process, while
    custom factories must be registered in the worker process before it can
    execute cells referencing them.
    """
    return {
        "index": cell.index,
        "spec": cell.spec,
        "strategy": cell.strategy,
        "input": [int(v) for v in cell.input],
        "engine": cell.engine,
        "config": cell.config.to_dict(),
        "spec_fingerprint": cell.spec_fingerprint,
        "cell_id": cell.cell_id,
    }


def cell_from_dict(data: Dict[str, Any]) -> Cell:
    """Rebuild a :class:`~repro.lab.campaign.Cell` from :func:`cell_to_dict`."""
    return Cell(
        index=int(data["index"]),
        spec=str(data["spec"]),
        strategy=str(data["strategy"]),
        input=tuple(int(v) for v in data["input"]),
        engine=str(data["engine"]),
        config=RunConfig.from_dict(data["config"]),
        spec_fingerprint=str(data["spec_fingerprint"]),
        cell_id=str(data["cell_id"]),
    )


def _atomic_write_json(path: str, payload: Dict[str, Any]) -> None:
    directory = os.path.dirname(path) or "."
    handle = tempfile.NamedTemporaryFile(
        "w", encoding="utf-8", dir=directory, prefix=".tmp-", delete=False
    )
    try:
        with handle:
            json.dump(payload, handle, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(handle.name, path)
    except BaseException:
        try:
            os.unlink(handle.name)
        except OSError:
            pass
        raise


def _read_json(path: str) -> Optional[Dict[str, Any]]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError):
        return None
    return data if isinstance(data, dict) else None


def default_worker_id() -> str:
    """``<host>-<pid>`` — unique per live worker process, stable within one."""
    return f"{socket.gethostname()}-{os.getpid()}"


# ---------------------------------------------------------------------------
# The protocol
# ---------------------------------------------------------------------------


class WorkQueue:
    """Claim / lease / renew / complete over content-addressed cell ids.

    The contract every backend honours:

    * :meth:`enqueue` publishes cell descriptors and claim tokens, sealing
      the work list; enqueueing is idempotent (already-done cells are never
      re-issued).
    * :meth:`claim` hands *at most one* worker a given cell at a time while
      the lease is live; expired leases are re-claimable.
    * :meth:`renew` extends a held lease (long cells call it before work
      whose duration may exceed the TTL).
    * :meth:`complete` durably records the row and releases the lease;
      completing twice is harmless (last write wins on merge).
    """

    def enqueue(self, cells: Iterable[Cell]) -> int:
        raise NotImplementedError

    def claim(self, worker_id: str) -> Optional[Cell]:
        raise NotImplementedError

    def renew(self, cell_id: str, worker_id: str, ttl: Optional[float] = None) -> bool:
        raise NotImplementedError

    def complete(self, cell_id: str, worker_id: str, result: CellResult) -> None:
        raise NotImplementedError


class SharedDirQueue(WorkQueue):
    """A :class:`WorkQueue` over a shared POSIX directory (see module docs).

    Every mutation is a single atomic directory operation (``O_EXCL`` create,
    ``rename``, ``replace``), so any number of worker processes — local or on
    hosts sharing the filesystem — can serve one queue without coordination.
    """

    def __init__(self, root: str, lease_ttl: float = DEFAULT_LEASE_TTL) -> None:
        if lease_ttl <= 0:
            raise ValueError(f"lease_ttl must be positive, got {lease_ttl}")
        self.root = str(root)
        self.lease_ttl = float(lease_ttl)
        for name in ("cells", "pending", "leases", "done", "results", "stats", "traces"):
            os.makedirs(self._dir(name), exist_ok=True)

    def _dir(self, name: str) -> str:
        return os.path.join(self.root, name)

    def _entry(self, kind: str, cell_id: str) -> str:
        return os.path.join(self.root, kind, cell_id)

    def _list(self, kind: str) -> List[str]:
        try:
            return sorted(os.listdir(self._dir(kind)))
        except FileNotFoundError:
            return []

    @property
    def manifest_path(self) -> str:
        return os.path.join(self.root, QUEUE_MANIFEST_NAME)

    def manifest(self) -> Optional[Dict[str, Any]]:
        return _read_json(self.manifest_path)

    def sealed(self) -> bool:
        return self.manifest() is not None

    # -- producer side ------------------------------------------------------

    def enqueue(self, cells: Iterable[Cell]) -> int:
        """Publish descriptors + claim tokens for every not-yet-done cell.

        Idempotent: done cells are skipped, already-pending/leased cells keep
        their existing token, and re-enqueueing after a crash simply re-issues
        tokens for whatever never completed.  Seals the queue by writing
        ``queue.json`` (the full id list) last, so workers only treat the
        queue as complete once every token is in place.
        """
        cells = list(cells)
        done = set(self._list("done"))
        issued = 0
        for cell in cells:
            cell_id = cell.cell_id
            cell_path = self._entry("cells", cell_id + ".json")
            if not os.path.exists(cell_path):
                _atomic_write_json(cell_path, cell_to_dict(cell))
            if cell_id in done:
                continue
            if os.path.exists(self._entry("leases", cell_id)):
                continue
            token = self._entry("pending", cell_id)
            try:
                os.close(os.open(token, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644))
            except FileExistsError:
                continue
            issued += 1
        existing = self.manifest()
        ids = sorted(
            set(cell.cell_id for cell in cells)
            | set((existing or {}).get("cell_ids", []))
        )
        _atomic_write_json(
            self.manifest_path,
            {
                "schema": QUEUE_SCHEMA,
                "cell_ids": ids,
                "total": len(ids),
                "lease_ttl": self.lease_ttl,
                "created_unix": (existing or {}).get("created_unix") or time.time(),
                "updated_unix": time.time(),
            },
        )
        return issued

    # -- worker side --------------------------------------------------------

    def claim(self, worker_id: str) -> Optional[Cell]:
        """Atomically claim one cell, or ``None`` if nothing is claimable.

        Sweeps the claim tokens; if none can be won, reclaims expired leases
        and sweeps once more.  Winning a claim = creating the lease file with
        ``O_EXCL`` (exactly one winner per token, even across hosts).
        """
        for attempt in (0, 1):
            cell = self._claim_pending(worker_id)
            if cell is not None:
                return cell
            if attempt == 0 and not self._reclaim_expired():
                return None
        return None

    def _claim_pending(self, worker_id: str) -> Optional[Cell]:
        for cell_id in self._list("pending"):
            token = self._entry("pending", cell_id)
            if os.path.exists(self._entry("done", cell_id)):
                # stale token from a reclaim race; the work is already done
                try:
                    os.unlink(token)
                except OSError:
                    pass
                continue
            lease_path = self._entry("leases", cell_id)
            now = time.time()
            try:
                fd = os.open(lease_path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
            except FileExistsError:
                continue  # someone else holds (or just won) this cell
            except OSError:
                continue
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(
                    {
                        "cell_id": cell_id,
                        "worker": worker_id,
                        "claimed_unix": now,
                        "deadline": now + self.lease_ttl,
                        "pid": os.getpid(),
                        "host": socket.gethostname(),
                    },
                    handle,
                    sort_keys=True,
                )
            try:
                os.unlink(token)
            except OSError:
                pass
            cell_data = _read_json(self._entry("cells", cell_id + ".json"))
            if cell_data is None:
                # unreadable descriptor: nothing can ever run this id; drop
                # the lease so the damage is visible as an unfinished queue
                # rather than silently marked done
                try:
                    os.unlink(lease_path)
                except OSError:
                    pass
                continue
            return cell_from_dict(cell_data)
        return None

    def _reclaim_expired(self) -> int:
        """Re-issue claim tokens for leases whose deadline has passed."""
        now = time.time()
        reclaimed = 0
        for cell_id in self._list("leases"):
            lease_path = self._entry("leases", cell_id)
            if os.path.exists(self._entry("done", cell_id)):
                try:
                    os.unlink(lease_path)
                except OSError:
                    pass
                continue
            meta = _read_json(lease_path)
            deadline = meta.get("deadline") if meta else None
            if not isinstance(deadline, (int, float)):
                # half-written lease (claimant died between create and write):
                # fall back to the file's age
                try:
                    deadline = os.path.getmtime(lease_path) + self.lease_ttl
                except OSError:
                    continue
            if now < deadline:
                continue
            token = self._entry("pending", cell_id)
            try:
                os.close(os.open(token, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644))
            except OSError:
                pass
            try:
                os.unlink(lease_path)
            except OSError:
                pass
            reclaimed += 1
        return reclaimed

    def renew(self, cell_id: str, worker_id: str, ttl: Optional[float] = None) -> bool:
        """Extend a held lease; ``False`` if it is no longer this worker's."""
        lease_path = self._entry("leases", cell_id)
        meta = _read_json(lease_path)
        if meta is None or meta.get("worker") != worker_id:
            return False
        meta["deadline"] = time.time() + (ttl if ttl is not None else self.lease_ttl)
        _atomic_write_json(lease_path, meta)
        return True

    def worker_store(self, worker_id: str) -> ResultStore:
        return ResultStore(self._entry("results", worker_id + ".jsonl"))

    def worker_trace_path(self, worker_id: str) -> str:
        return self._entry("traces", worker_id + ".jsonl")

    def complete(self, cell_id: str, worker_id: str, result: CellResult) -> None:
        """Durably record ``result`` and release the lease.

        Order matters: the row is appended (flushed + fsync'd) *before* the
        done marker appears, so a done marker always has a row behind it.
        """
        self.worker_store(worker_id).append(result)
        _atomic_write_json(
            self._entry("done", cell_id),
            {"cell_id": cell_id, "worker": worker_id, "finished_unix": time.time()},
        )
        for kind in ("leases", "pending"):
            try:
                os.unlink(self._entry(kind, cell_id))
            except OSError:
                pass

    # -- coordinator / merge side ------------------------------------------

    def done_ids(self) -> Set[str]:
        return set(self._list("done"))

    def all_done(self, wanted: Optional[Set[str]] = None) -> bool:
        if wanted is None:
            manifest = self.manifest()
            if manifest is None:
                return False
            wanted = set(manifest.get("cell_ids", []))
        return wanted <= self.done_ids()

    def merged_rows(self, wanted: Optional[Set[str]] = None) -> Dict[str, CellResult]:
        """The union of every worker shard, deduplicated by ``cell_id``.

        Within a shard the store's own last-write-wins dedupe applies; across
        shards the newest row (by append order over shards sorted by name)
        wins — sound because any two rows for one id agree on the
        deterministic view.
        """
        rows: Dict[str, CellResult] = {}
        for name in self._list("results"):
            if not name.endswith(".jsonl"):
                continue
            store = ResultStore(self._entry("results", name))
            for row in store.iter_rows():
                if wanted is not None and row.cell_id not in wanted:
                    continue
                rows[row.cell_id] = row
        return rows

    def write_worker_stats(self, worker_id: str, stats: Dict[str, Any]) -> None:
        _atomic_write_json(self._entry("stats", worker_id + ".json"), stats)

    def worker_stats(self) -> Dict[str, Dict[str, Any]]:
        """Per-worker counters, keyed by worker id (for provenance folding)."""
        stats: Dict[str, Dict[str, Any]] = {}
        for name in self._list("stats"):
            if not name.endswith(".json"):
                continue
            payload = _read_json(self._entry("stats", name))
            if payload is not None:
                stats[name[: -len(".json")]] = payload
        return stats

    def trace_shards(self) -> List[str]:
        """Paths of every per-worker trace shard present in the queue."""
        return [
            self.worker_trace_path(name[: -len(".jsonl")])
            for name in self._list("traces")
            if name.endswith(".jsonl")
        ]

    def __repr__(self) -> str:
        return f"SharedDirQueue({self.root!r}, lease_ttl={self.lease_ttl})"


# ---------------------------------------------------------------------------
# Backends: the executor-seam adapters run_campaign actually consumes
# ---------------------------------------------------------------------------


class LocalPoolBackend:
    """The local backend: today's multiprocessing pool behind the seam.

    ``map`` delegates straight to :class:`~repro.lab.executor.PoolExecutor`
    (ordered ``imap``), so rows — provenance included — are bit-for-bit what
    the historical executor produced.  Exists so campaign call sites select
    backends uniformly (``"local"`` vs ``"shared-dir"``).
    """

    name = "local"

    def __init__(
        self,
        workers: Optional[int] = None,
        chunksize: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> None:
        self.executor = PoolExecutor(workers=workers, chunksize=chunksize, timeout=timeout)

    def map(self, cells: Iterable[Cell]) -> Iterator[CellResult]:
        yield from self.executor.map(cells)

    def __repr__(self) -> str:
        return f"LocalPoolBackend({self.executor!r})"


class SharedDirBackend:
    """Executor-seam adapter over a :class:`SharedDirQueue`.

    ``map(cells)`` enqueues the cells, optionally participates in serving the
    queue in-process (``participate=True``, the default — a campaign run with
    no external workers still completes), waits until every wanted cell has a
    done marker, then yields the merged rows **in the given cell order** so
    :func:`~repro.lab.campaign.run_campaign`'s ``zip(to_run, ...)`` append
    loop sees exactly what the pool executor would have produced.
    """

    name = "shared-dir"

    def __init__(
        self,
        queue_dir: str,
        participate: bool = True,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        timeout: Optional[float] = None,
        poll: float = 0.2,
        stall_timeout: float = 600.0,
        worker_id: Optional[str] = None,
        trace: bool = False,
    ) -> None:
        self.queue = SharedDirQueue(queue_dir, lease_ttl=lease_ttl)
        self.participate = participate
        self.timeout = timeout
        self.poll = float(poll)
        self.stall_timeout = float(stall_timeout)
        self.worker_id = worker_id or ("coordinator-" + default_worker_id())
        self.trace = trace

    def map(self, cells: Iterable[Cell]) -> Iterator[CellResult]:
        cells = list(cells)
        if not cells:
            return
        queue = self.queue
        queue.enqueue(cells)
        wanted = {cell.cell_id for cell in cells}
        worker = _WorkerSession(
            queue, self.worker_id, timeout=self.timeout, trace=self.trace
        )
        last_done = -1
        last_progress = time.monotonic()
        while True:
            done = len(wanted & queue.done_ids())
            if done > last_done:
                last_done = done
                last_progress = time.monotonic()
            if done >= len(wanted):
                break
            claimed = worker.serve_one() if self.participate else False
            if claimed:
                last_progress = time.monotonic()
                continue
            if time.monotonic() - last_progress > self.stall_timeout:
                raise RuntimeError(
                    f"shared-dir queue stalled: {len(wanted) - done} of "
                    f"{len(wanted)} cells incomplete after {self.stall_timeout}s "
                    f"without progress (queue_dir={queue.root!r}; are any "
                    f"workers running?)"
                )
            time.sleep(self.poll)
        worker.finish()
        rows = queue.merged_rows(wanted)
        for cell in cells:
            row = rows.get(cell.cell_id)
            if row is None:
                raise RuntimeError(
                    f"cell {cell.cell_id} is marked done but no worker shard "
                    f"holds its row (queue_dir={queue.root!r})"
                )
            yield row

    def worker_stats(self) -> Dict[str, Dict[str, Any]]:
        return self.queue.worker_stats()

    def trace_shards(self) -> List[str]:
        return self.queue.trace_shards()

    def __repr__(self) -> str:
        return (
            f"SharedDirBackend({self.queue.root!r}, participate={self.participate}, "
            f"lease_ttl={self.queue.lease_ttl})"
        )


# ---------------------------------------------------------------------------
# The worker loop behind `python -m repro worker`
# ---------------------------------------------------------------------------


class _WorkerSession:
    """Shared claim→run→complete machinery for workers and the coordinator."""

    def __init__(
        self,
        queue: SharedDirQueue,
        worker_id: str,
        timeout: Optional[float] = None,
        trace: bool = False,
    ) -> None:
        self.queue = queue
        self.worker_id = worker_id
        self.timeout = timeout
        self.stats: Dict[str, Any] = {
            "worker": worker_id,
            "host": socket.gethostname(),
            "pid": os.getpid(),
            "claimed": 0,
            "executed": 0,
            "errors": 0,
            "wall_s": 0.0,
            "cpu_s": 0.0,
            "started_unix": time.time(),
            "updated_unix": time.time(),
        }
        self._tracer = None
        self._sink = None
        if trace:
            from repro.obs.trace import JsonlTraceSink, Tracer

            self._sink = JsonlTraceSink(
                queue.worker_trace_path(worker_id),
                manifest={"worker": worker_id, "queue_dir": queue.root},
            )
            self._tracer = Tracer(self._sink)

    def serve_one(self) -> bool:
        """Claim and execute one cell; ``False`` when nothing was claimable."""
        cell = self.queue.claim(self.worker_id)
        if cell is None:
            return False
        self.stats["claimed"] += 1
        if self.timeout is not None and self.timeout > 0:
            # make sure the lease outlives the cell's own wall-clock budget
            self.queue.renew(
                cell.cell_id,
                self.worker_id,
                ttl=max(self.queue.lease_ttl, self.timeout * 2),
            )
        result = run_cell_with_timeout(cell, self.timeout)
        self.queue.complete(cell.cell_id, self.worker_id, result)
        self.stats["executed"] += 1
        if not result.ok:
            self.stats["errors"] += 1
        self.stats["wall_s"] += result.wall_time
        self.stats["cpu_s"] += result.cpu_time or 0.0
        self.stats["updated_unix"] = time.time()
        self.queue.write_worker_stats(self.worker_id, self.stats)
        if self._tracer is not None:
            self._tracer.emit_span(
                "lab.cell",
                time.time() - result.wall_time,
                result.wall_time,
                cell=result.cell_id,
                spec=result.spec,
                engine=result.engine,
                status=result.status,
                worker=result.worker,
                cpu_s=result.cpu_time,
            )
            self._tracer.event(
                "worker.heartbeat", worker=self.worker_id, cell=result.cell_id
            )
        return True

    def finish(self) -> Dict[str, Any]:
        self.stats["updated_unix"] = time.time()
        if self.stats["claimed"]:
            self.queue.write_worker_stats(self.worker_id, self.stats)
        if self._sink is not None:
            self._sink.close()
        return self.stats


def worker_loop(
    queue_dir: str,
    worker_id: Optional[str] = None,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    timeout: Optional[float] = None,
    poll: float = 0.2,
    max_idle: float = 60.0,
    max_cells: Optional[int] = None,
    trace: bool = False,
) -> Dict[str, Any]:
    """Serve a shared-dir queue until it drains: ``python -m repro worker``.

    Claims cells one at a time, executing each under ``timeout`` and
    completing it durably before claiming the next.  Exits when the queue is
    sealed and fully done, after ``max_idle`` seconds without a successful
    claim (covers the never-sealed and stuck-foreign-lease cases), or after
    ``max_cells`` completions.  Returns the worker's final counter dict (the
    same payload published to ``stats/<worker_id>.json``).
    """
    queue = SharedDirQueue(queue_dir, lease_ttl=lease_ttl)
    session = _WorkerSession(
        queue, worker_id or default_worker_id(), timeout=timeout, trace=trace
    )
    idle_since: Optional[float] = None
    try:
        while True:
            if max_cells is not None and session.stats["executed"] >= max_cells:
                break
            if session.serve_one():
                idle_since = None
                continue
            if queue.sealed() and queue.all_done():
                break
            now = time.monotonic()
            if idle_since is None:
                idle_since = now
            elif now - idle_since > max_idle:
                break
            time.sleep(poll)
    finally:
        session.finish()
    return session.stats
