"""Trajectory recording for simulation runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.crn.configuration import Configuration
from repro.crn.species import Species


@dataclass(frozen=True)
class TrajectoryPoint:
    """A single sampled point of a simulation trajectory."""

    time: float
    """Simulated time (Gillespie) or step index (fair scheduler)."""

    step: int
    """Number of reactions fired so far."""

    counts: Dict[Species, int]
    """Counts of the tracked species at this point."""


class Trajectory:
    """A time series of species counts recorded during a simulation run.

    Only the species passed as ``tracked`` are recorded (tracking everything is
    possible by passing the full species tuple, at a memory cost).
    """

    def __init__(self, tracked: Sequence[Species]) -> None:
        self._tracked: Tuple[Species, ...] = tuple(tracked)
        self._points: List[TrajectoryPoint] = []

    @property
    def tracked_species(self) -> Tuple[Species, ...]:
        """The species recorded by this trajectory."""
        return self._tracked

    def record(self, time: float, step: int, config: Configuration) -> None:
        """Append a sample of the tracked species at the given time/step."""
        self._points.append(
            TrajectoryPoint(time=time, step=step, counts={sp: config[sp] for sp in self._tracked})
        )

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self):
        return iter(self._points)

    def __getitem__(self, index: int) -> TrajectoryPoint:
        return self._points[index]

    def times(self) -> List[float]:
        """All sample times."""
        return [p.time for p in self._points]

    def counts_of(self, sp: Species) -> List[int]:
        """The time series of counts of one tracked species."""
        if sp not in self._tracked:
            raise KeyError(f"species {sp.name} is not tracked by this trajectory")
        return [p.counts[sp] for p in self._points]

    def final(self) -> Optional[TrajectoryPoint]:
        """The last recorded point, or ``None`` if empty."""
        return self._points[-1] if self._points else None

    def max_count_of(self, sp: Species) -> int:
        """The maximum recorded count of ``sp`` (0 if never recorded)."""
        if sp not in self._tracked:
            raise KeyError(f"species {sp.name} is not tracked by this trajectory")
        return max((p.counts[sp] for p in self._points), default=0)

    def as_dict(self) -> Dict[str, List[int]]:
        """The trajectory as ``{species name: list of counts}`` plus ``"time"``."""
        out: Dict[str, List] = {"time": self.times()}
        for sp in self._tracked:
            out[sp.name] = self.counts_of(sp)
        return out
