"""Theorem 9.2: the leaderless 1D construction for superadditive functions.

Without a leader, every copy of the input may independently start a counting
chain, so several "auxiliary leader" species can coexist.  The construction
adds pairwise *merge* reactions between auxiliary leaders that combine their
counts and release the corrective difference

    D = f(i + j) - f(i) - f(j)  >=  0   (by superadditivity),

which is exactly the output that was undercounted by running the two chains
independently.  For states in the periodic phase the corrective difference is
well defined because the finite differences are periodic.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.crn.network import CRN
from repro.crn.reaction import Reaction
from repro.crn.species import Expression, Species
from repro.quilt.fitting import EventuallyPeriodic1D, fit_eventually_quilt_affine_1d


class _StateTable:
    """Auxiliary-leader states of the leaderless construction and their semantics."""

    def __init__(self, structure: EventuallyPeriodic1D, prefix: str) -> None:
        self.structure = structure
        # The counting phase needs exact states only for counts 1 .. start-1;
        # any count >= max(start, 1) is tracked modulo the period.
        self.threshold = max(structure.start, 1)
        self.period = structure.period
        self.counting: Dict[int, Species] = {
            i: Species(f"{prefix}L{i}") for i in range(1, self.threshold)
        }
        self.periodic: Dict[int, Species] = {
            a: Species(f"{prefix}P{a}") for a in range(self.period)
        }

    def state_for(self, count: int) -> Species:
        """The species representing an auxiliary leader that has absorbed ``count`` inputs."""
        if count < 1:
            raise ValueError("auxiliary leader states start at count 1")
        if count < self.threshold:
            return self.counting[count]
        return self.periodic[count % self.period]

    def representative(self, species: Species) -> int:
        """A count value represented by the given state (the smallest one)."""
        for count, sp in self.counting.items():
            if sp == species:
                return count
        for a, sp in self.periodic.items():
            if sp == species:
                offset = (a - self.threshold) % self.period
                return self.threshold + offset
        raise KeyError(f"{species} is not an auxiliary leader state")

    def all_states(self) -> List[Species]:
        """Every auxiliary leader species."""
        return list(self.counting.values()) + list(self.periodic.values())


def build_leaderless_1d_crn(
    func: Callable[[int], int] | EventuallyPeriodic1D,
    input_name: str = "X",
    output_name: str = "Y",
    prefix: str = "",
    name: str = "",
    max_start: int = 200,
    max_period: int = 36,
    check_superadditive_upto: int = 30,
) -> CRN:
    """Build the Theorem 9.2 leaderless output-oblivious CRN.

    ``func`` must be semilinear and superadditive (which implies nondecreasing
    and ``f(0) = 0``); a bounded superadditivity check guards against misuse.
    """
    if isinstance(func, EventuallyPeriodic1D):
        structure = func
        evaluate = structure.value
    else:
        evaluate = lambda x: int(func(x))
        structure = fit_eventually_quilt_affine_1d(
            evaluate, max_start=max_start, max_period=max_period
        )

    if evaluate(0) != 0:
        raise ValueError("a superadditive function must satisfy f(0) = 0")
    for a in range(check_superadditive_upto):
        for b in range(check_superadditive_upto):
            if evaluate(a) + evaluate(b) > evaluate(a + b):
                raise ValueError(
                    f"the function is not superadditive: f({a}) + f({b}) > f({a + b})"
                )

    table = _StateTable(structure, prefix)
    input_species = Species(prefix + input_name if prefix else input_name)
    output = Species(prefix + output_name if prefix else output_name)

    reactions: List[Reaction] = []

    def value_of(count: int) -> int:
        return structure.value(count)

    def emit(products: Dict[Species, int], amount: int) -> Dict[Species, int]:
        if amount < 0:
            raise ValueError("negative output difference; the function is not superadditive")
        if amount > 0:
            products[output] = products.get(output, 0) + amount
        return products

    # First reaction: a lone input becomes the state for count 1, emitting f(1).
    first_products = emit({table.state_for(1): 1}, value_of(1))
    reactions.append(Reaction(input_species, Expression(first_products), name="seed"))

    # Sequential reactions: a state absorbs one more input.
    for state in table.all_states():
        count = table.representative(state)
        difference = value_of(count + 1) - value_of(count)
        products = emit({table.state_for(count + 1): 1}, difference)
        reactions.append(
            Reaction(
                Expression({state: 1, input_species: 1}),
                Expression(products),
                name=f"absorb-{state.name}",
            )
        )

    # Merge reactions: two auxiliary leaders combine, releasing the corrective
    # difference D = f(i+j) - f(i) - f(j) >= 0.
    states = table.all_states()
    for index_a, state_a in enumerate(states):
        for state_b in states[index_a:]:
            count_a = table.representative(state_a)
            count_b = table.representative(state_b)
            correction = value_of(count_a + count_b) - value_of(count_a) - value_of(count_b)
            target = table.state_for(count_a + count_b)
            products = emit({target: 1}, correction)
            if state_a == state_b:
                reactants = Expression({state_a: 2})
            else:
                reactants = Expression({state_a: 1, state_b: 1})
            reactions.append(
                Reaction(reactants, Expression(products), name=f"merge-{state_a.name}-{state_b.name}")
            )

    return CRN(
        reactions,
        (input_species,),
        output,
        leader=None,
        name=name or "theorem-9.2",
    )


def construction_size_leaderless(structure: EventuallyPeriodic1D) -> Dict[str, int]:
    """Species and reaction counts of the Theorem 9.2 construction (Θ((n + p)^2) reactions)."""
    states = max(structure.start, 1) - 1 + structure.period
    return {
        "species": 2 + states,
        "reactions": 1 + states + states * (states + 1) // 2,
        "states": states,
    }
