"""Tests for the verification harness (stable, oblivious, overproduction, composition)."""

import pytest

from repro.functions.catalog import double_spec, maximum_spec, min_one_leaderless_crn, minimum_spec
from repro.verify.composition import verify_composition
from repro.verify.oblivious import audit_output_oblivious
from repro.verify.overproduction import find_overproduction, measure_overshoot
from repro.verify.stable import default_input_grid, verify_stable_computation


class TestStableVerification:
    def test_min_passes_exhaustively(self):
        report = verify_stable_computation(minimum_spec().known_crn, lambda x: min(x))
        assert report.passed
        assert all(result.method == "exhaustive" for result in report.results)

    def test_wrong_function_fails(self):
        report = verify_stable_computation(
            minimum_spec().known_crn, lambda x: max(x), inputs=[(1, 2)]
        )
        assert not report.passed
        assert report.failures()

    def test_simulation_fallback(self):
        report = verify_stable_computation(
            double_spec().known_crn,
            lambda x: 2 * x[0],
            inputs=[(30,)],
            exhaustive_limit=10,
            trials=3,
        )
        assert report.passed
        assert report.results[0].method == "simulation"

    def test_forced_simulation_method(self):
        report = verify_stable_computation(
            minimum_spec().known_crn, lambda x: min(x), inputs=[(2, 2)], method="simulation", trials=3
        )
        assert report.passed
        assert report.results[0].method == "simulation"

    def test_forced_exhaustive_reports_inconclusive_as_failure(self):
        report = verify_stable_computation(
            double_spec().known_crn,
            lambda x: 2 * x[0],
            inputs=[(40,)],
            method="exhaustive",
            exhaustive_limit=10,
        )
        assert not report.passed

    def test_invalid_method_rejected(self):
        with pytest.raises(ValueError):
            verify_stable_computation(minimum_spec().known_crn, lambda x: min(x), method="magic")

    def test_default_grid(self):
        assert len(default_input_grid(2, 3)) == 16

    def test_describe_output(self):
        report = verify_stable_computation(
            minimum_spec().known_crn, lambda x: min(x), inputs=[(1, 1)]
        )
        assert "PASS" in report.describe()


class TestObliviousnessAudit:
    def test_min_report(self):
        report = audit_output_oblivious(minimum_spec().known_crn)
        assert report.output_oblivious and report.output_monotonic
        assert report.composable_by_concatenation()

    def test_max_report(self):
        report = audit_output_oblivious(maximum_spec().known_crn)
        assert not report.output_oblivious and not report.output_monotonic
        assert len(report.consuming_reactions) == 1
        assert "K + Y" in report.describe()

    def test_annihilation_report(self):
        report = audit_output_oblivious(min_one_leaderless_crn())
        assert not report.output_oblivious


class TestOverproduction:
    def test_max_crn_overshoots(self):
        spec = maximum_spec()
        witness = find_overproduction(spec.known_crn, spec.func, (4, 4), trials=10, seed=3)
        assert witness is not None
        assert witness.overshoot >= 1
        assert not witness.permanent   # the max CRN eventually retracts the excess

    def test_min_crn_never_overshoots(self):
        spec = minimum_spec()
        witness = find_overproduction(spec.known_crn, spec.func, (4, 4), trials=5, seed=3)
        assert witness is None

    def test_measure_overshoot_summary(self):
        spec = maximum_spec()
        summary = measure_overshoot(spec.known_crn, spec.func, [(2, 2), (3, 3)], trials=5, seed=5)
        assert summary["max_overshoot"] >= 1
        min_summary = measure_overshoot(
            minimum_spec().known_crn, lambda x: min(x), [(2, 2)], trials=5, seed=5
        )
        assert min_summary["max_overshoot"] == 0


class TestCompositionVerification:
    def test_double_of_min_composes(self):
        report = verify_composition(
            minimum_spec().known_crn,
            double_spec().known_crn,
            lambda x: min(x),
            lambda w: 2 * w[0],
            inputs=[(0, 0), (1, 2), (2, 2)],
        )
        assert report.passed
        assert report.upstream_output_oblivious

    def test_double_of_max_concatenation_fails(self):
        report = verify_composition(
            maximum_spec().known_crn,
            double_spec().known_crn,
            lambda x: max(x),
            lambda w: 2 * w[0],
            inputs=[(1, 1), (2, 1)],
            require_output_oblivious=False,
        )
        assert not report.passed
        assert not report.upstream_output_oblivious
        assert "∘" in report.describe()
