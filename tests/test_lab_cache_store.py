"""Cache keys, the content-addressed cache, the JSONL store, and resume."""

import json

import pytest

from repro.api.config import RunConfig
from repro.core.specs import FunctionSpec
from repro.lab.cache import ResultCache, cell_cache_key, spec_fingerprint
from repro.lab.campaign import Campaign, SweepGrid, run_campaign
from repro.lab.store import CellResult, ResultStore


class TestRunConfigCacheKey:
    def test_equal_configs_hash_equal(self):
        assert RunConfig(trials=3, seed=7).cache_key() == RunConfig(trials=3, seed=7).cache_key()

    def test_any_field_change_changes_the_key(self):
        base = RunConfig(trials=3, seed=7)
        for change in (
            {"trials": 4},
            {"max_steps": 99},
            {"quiescence_window": 5},
            {"seed": 8},
            {"seed": None},
            {"engine": "vectorized"},
        ):
            assert base.replace(**change).cache_key() != base.cache_key()

    def test_key_is_stable_across_processes(self):
        # regression pin: the key must never depend on hash randomization
        assert RunConfig().cache_key() == (
            RunConfig.from_dict(RunConfig().to_dict()).cache_key()
        )

    def test_to_dict_from_dict_round_trip(self):
        config = RunConfig(trials=2, max_steps=50, quiescence_window=9, seed=4, engine="vectorized")
        assert RunConfig.from_dict(config.to_dict()) == config

    def test_from_dict_ignores_unknown_keys(self):
        data = RunConfig(trials=2).to_dict()
        data["future_field"] = "whatever"
        assert RunConfig.from_dict(data) == RunConfig(trials=2)

    def test_from_dict_still_validates(self):
        with pytest.raises(ValueError):
            RunConfig.from_dict({"trials": 0})


class TestSpecFingerprint:
    def test_same_function_same_fingerprint(self):
        a = FunctionSpec(name="f", dimension=1, func=lambda x: x[0])
        b = FunctionSpec(name="f", dimension=1, func=lambda x: x[0] * 1)
        assert spec_fingerprint(a) == spec_fingerprint(b)

    def test_same_name_different_behaviour_differs(self):
        a = FunctionSpec(name="f", dimension=1, func=lambda x: x[0])
        b = FunctionSpec(name="f", dimension=1, func=lambda x: 2 * x[0])
        assert spec_fingerprint(a) != spec_fingerprint(b)

    def test_cell_key_sensitive_to_every_component(self):
        base = dict(
            spec_fingerprint_hex="ab",
            strategy="auto",
            input_value=(1, 2),
            engine="python",
            config_key=RunConfig(seed=1).cache_key(),
        )
        key = cell_cache_key(**base)
        for change in (
            {"spec_fingerprint_hex": "cd"},
            {"strategy": "known"},
            {"input_value": (2, 1)},
            {"engine": "vectorized"},
            {"config_key": RunConfig(seed=2).cache_key()},
        ):
            assert cell_cache_key(**{**base, **change}) != key
        assert cell_cache_key(**base, salt="other-code-version") != key


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        assert cache.get("a" * 64) is None
        cache.put("a" * 64, {"cell_id": "x", "status": "ok"})
        assert cache.get("a" * 64) == {"cell_id": "x", "status": "ok"}
        assert ("a" * 64) in cache
        assert len(cache) == 1

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        cache.put("b" * 64, {"status": "ok"})
        with open(cache._path("b" * 64), "w") as handle:
            handle.write("{not json")
        assert cache.get("b" * 64) is None


class TestResultCacheCrashSafety:
    """put() is temp-file + os.replace: a crash can never publish a torn entry."""

    def test_interrupted_write_leaves_the_old_entry_intact(self, tmp_path, monkeypatch):
        """A writer killed mid-write (before the rename) must change nothing."""
        import json as json_module

        cache = ResultCache(str(tmp_path / "cache"))
        key = "c" * 64
        cache.put(key, {"cell_id": "old", "status": "ok"})

        original_dump = json_module.dump
        written = {"bytes": 0}

        def partial_dump(payload, handle, **kwargs):
            # simulate the process dying after half the payload is on disk
            text = json_module.dumps(payload, **kwargs)
            handle.write(text[: len(text) // 2])
            written["bytes"] = len(text) // 2
            raise OSError("simulated crash mid-write")

        monkeypatch.setattr(json_module, "dump", partial_dump)
        with pytest.raises(OSError, match="simulated crash"):
            cache.put(key, {"cell_id": "new", "status": "ok"})
        monkeypatch.setattr(json_module, "dump", original_dump)

        assert written["bytes"] > 0  # the injection really wrote a partial payload
        # the published entry is the complete old payload, not the torn new one
        assert cache.get(key) == {"cell_id": "old", "status": "ok"}
        # and the aborted temp file was cleaned up
        shard = tmp_path / "cache" / key[:2]
        assert [p.name for p in shard.iterdir()] == [key + ".json"]

    def test_interrupted_first_write_reads_as_miss(self, tmp_path, monkeypatch):
        import json as json_module

        cache = ResultCache(str(tmp_path / "cache"))
        key = "d" * 64

        def exploding_dump(payload, handle, **kwargs):
            handle.write('{"cell_id": "tor')  # a torn prefix
            raise OSError("simulated crash mid-write")

        monkeypatch.setattr(json_module, "dump", exploding_dump)
        with pytest.raises(OSError):
            cache.put(key, {"cell_id": "x", "status": "ok"})
        monkeypatch.setattr(json_module, "dump", json_module.dump)

        assert cache.get(key) is None
        assert key not in cache


class TestResultCacheConcurrency:
    """Two processes sharing one cache root: interleaved get/put must never
    raise or surface a corrupt payload (the serve server and a local campaign
    share the memo exactly this way)."""

    WORKER = r"""
import json, os, sys
sys.path.insert(0, {src!r})
from repro.lab.cache import ResultCache

root, worker_id, rounds = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
cache = ResultCache(root)
keys = [format(k, "x").rjust(64, "0") for k in range(8)]
payloads = {{key: {{"cell_id": key[:8], "status": "ok", "outputs": list(range(50))}}
            for key in keys}}
errors = 0
for round_no in range(rounds):
    for key in keys:
        cache.put(key, payloads[key])
        value = cache.get(key)
        if value is not None and value != payloads[key]:
            errors += 1  # a torn or foreign payload — the failure we test for
print(json.dumps({{"worker": worker_id, "errors": errors}}))
"""

    def test_two_processes_interleave_without_corruption(self, tmp_path):
        import os
        import subprocess
        import sys
        import textwrap

        src = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
        )
        script = textwrap.dedent(self.WORKER).format(src=src)
        root = str(tmp_path / "cache")
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", script, root, str(worker_id), "40"],
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
            )
            for worker_id in range(2)
        ]
        for proc in procs:
            out, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err
            report = json.loads(out)
            assert report["errors"] == 0
        cache = ResultCache(root)
        assert len(cache) == 8
        for k in range(8):
            key = format(k, "x").rjust(64, "0")
            value = cache.get(key)
            assert value is not None and value["cell_id"] == key[:8]


class TestResultStore:
    def row(self, cell_id="c1", **overrides):
        kwargs = dict(
            cell_id=cell_id,
            spec="minimum",
            strategy="auto",
            input=(1, 2),
            engine="python",
            config=RunConfig(seed=3).to_dict(),
            status="ok",
            expected=1,
            outputs=(1, 1),
            output_mode=1,
            output_unanimous=True,
            converged=True,
            correct=True,
            mean_steps=2.0,
            total_steps=4,
            wall_time=0.5,
        )
        kwargs.update(overrides)
        return CellResult(**kwargs)

    def test_append_and_load_round_trip(self, tmp_path):
        store = ResultStore(str(tmp_path / "r.jsonl"))
        store.append(self.row("c1"))
        store.append(self.row("c2", status="error", error="Boom: x", outputs=()))
        rows = store.load()
        assert [r.cell_id for r in rows] == ["c1", "c2"]
        assert rows[0] == self.row("c1")
        assert store.completed_ids() == {"c1", "c2"}

    def test_torn_final_line_is_ignored(self, tmp_path):
        store = ResultStore(str(tmp_path / "r.jsonl"))
        store.append(self.row("c1"))
        with open(store.path, "a") as handle:
            handle.write('{"cell_id": "c2", "trunc')  # kill -9 mid-write
        assert store.completed_ids() == {"c1"}

    def test_duplicate_cell_id_last_write_wins(self, tmp_path):
        store = ResultStore(str(tmp_path / "r.jsonl"))
        store.append(self.row("c1", output_mode=1))
        store.append(self.row("c2"))
        store.append(self.row("c1", output_mode=7))  # re-executed after a reclaim
        rows = store.load()
        assert [r.cell_id for r in rows] == ["c2", "c1"]  # file order of the winners
        assert rows[1].output_mode == 7
        assert store.completed_ids() == {"c1", "c2"}
        assert len(store) == 2
        assert store.last_scan.duplicates == 1
        assert store.last_scan.corrupt_total == 0

    def test_dedupe_false_restores_the_raw_view(self, tmp_path):
        store = ResultStore(str(tmp_path / "r.jsonl"))
        store.append(self.row("c1", output_mode=1))
        store.append(self.row("c1", output_mode=7))
        raw = list(store.iter_rows(dedupe=False))
        assert [r.output_mode for r in raw] == [1, 7]

    def test_interior_corrupt_line_warns_and_is_counted(self, tmp_path):
        store = ResultStore(str(tmp_path / "r.jsonl"))
        store.append(self.row("c1"))
        store.append(self.row("c2"))
        lines = open(store.path).readlines()
        lines[0] = '{"cell_id": "c1", "trunc\n'  # torn line buried mid-file
        with open(store.path, "w") as handle:
            handle.writelines(lines)
        with pytest.warns(UserWarning, match="corrupt"):
            rows = store.load()
        assert [r.cell_id for r in rows] == ["c2"]
        assert store.last_scan.corrupt_interior == 1
        assert store.last_scan.corrupt_tail == 0
        # c1 is no longer completed, so a resume re-runs it instead of
        # silently dropping it
        with pytest.warns(UserWarning):
            assert store.completed_ids() == {"c2"}

    def test_torn_tail_stays_silent(self, tmp_path):
        # an interrupted append is the *expected* crash artifact, not damage
        store = ResultStore(str(tmp_path / "r.jsonl"))
        store.append(self.row("c1"))
        with open(store.path, "a") as handle:
            handle.write('{"cell_id": "c2", "trunc')
        import warnings as warnings_module

        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            assert store.completed_ids() == {"c1"}
        assert store.last_scan.corrupt_tail == 1
        assert store.last_scan.corrupt_interior == 0

    def test_fast_scan_plausible_but_unparseable_line_is_skipped(self, tmp_path):
        store = ResultStore(str(tmp_path / "r.jsonl"))
        store.append(self.row("c1"))
        with open(store.path, "a") as handle:
            # matches the cell_id fast-scan regex and ends in "}", but is not
            # JSON — iter_rows must skip and count it, not crash mid-stream
            handle.write('{"cell_id":"zz",garbage}\n')
        store.append(self.row("c2"))
        rows = store.load()
        assert {r.cell_id for r in rows} == {"c1", "c2"}
        assert store.last_scan.corrupt_interior == 1

    def test_deterministic_dict_drops_provenance_only(self):
        row = self.row(cached=True)
        deterministic = row.deterministic_dict()
        assert "wall_time" not in deterministic and "cached" not in deterministic
        assert deterministic["outputs"] == [1, 1]
        rebuilt = CellResult.from_dict(deterministic)
        assert rebuilt.wall_time == 0.0 and rebuilt.cached is False
        assert rebuilt.deterministic_dict() == deterministic


def tiny_campaign(seed=9):
    return Campaign(
        name="cache-test",
        specs=["minimum"],
        inputs=SweepGrid.parse("0:3", dimension=2),
        engines=("python",),
        configs=(RunConfig(trials=2),),
        seed=seed,
    )


class TestCampaignCacheAndResume:
    def test_second_run_is_all_cache_hits(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        first = run_campaign(tiny_campaign(), str(tmp_path / "out1"), cache_dir=cache_dir)
        assert first.executed == first.total_cells == 9
        second = run_campaign(tiny_campaign(), str(tmp_path / "out2"), cache_dir=cache_dir)
        assert second.executed == 0
        assert second.from_cache == second.total_cells
        assert second.summary.cache_hits == second.total_cells
        assert [r.deterministic_dict() for r in first.results] == [
            r.deterministic_dict() for r in second.results
        ]

    def test_rerun_into_same_dir_skips_done_cells(self, tmp_path):
        out = str(tmp_path / "out")
        run_campaign(tiny_campaign(), out, cache_dir=None)
        events = []
        again = run_campaign(
            tiny_campaign(),
            out,
            cache_dir=None,
            progress=lambda result, source: events.append(source),
        )
        assert again.already_done == again.total_cells
        assert again.executed == 0 and again.from_cache == 0
        # already-recorded cells are reported too, so progress reaches 100%
        assert events == ["done"] * again.total_cells

    def test_resume_after_interrupt_runs_only_the_remainder(self, tmp_path):
        out = str(tmp_path / "out")
        full = run_campaign(tiny_campaign(), out, cache_dir=None)
        before = [r.deterministic_dict() for r in full.results]
        # simulate a kill mid-run: keep only the first 4 completed rows
        store_path = str(tmp_path / "out" / "results.jsonl")
        with open(store_path) as handle:
            lines = handle.readlines()
        with open(store_path, "w") as handle:
            handle.writelines(lines[:4])
        resumed = run_campaign(tiny_campaign(), out, cache_dir=None)
        assert resumed.already_done == 4
        assert resumed.executed == resumed.total_cells - 4
        assert [r.deterministic_dict() for r in resumed.results] == before

    def test_resume_after_interior_corruption_reruns_only_damaged_cells(self, tmp_path):
        out = str(tmp_path / "out")
        full = run_campaign(tiny_campaign(), out, cache_dir=None)
        before = [r.deterministic_dict() for r in full.results]
        store_path = tmp_path / "out" / "results.jsonl"
        lines = store_path.read_text().splitlines(keepends=True)
        lines[2] = '{"cell_id": "mangled-by-a-disk-fault\n'  # interior damage
        store_path.write_text("".join(lines))

        with pytest.warns(UserWarning, match="corrupt"):
            resumed = run_campaign(tiny_campaign(), out, cache_dir=None)
        # only the damaged cell re-ran, and the merged view has no duplicates
        assert resumed.already_done == 8
        assert resumed.executed == 1
        assert [r.deterministic_dict() for r in resumed.results] == before
        row_ids = [r.cell_id for r in resumed.results]
        assert len(set(row_ids)) == len(row_ids)
        # the skip is surfaced, not silent: summary counter + report line
        assert resumed.summary.corrupt_lines_skipped == 1
        from repro.lab.aggregate import format_report

        assert "corrupt" in format_report(resumed.summary)

    def test_unseeded_cells_never_touch_the_cache(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        campaign = tiny_campaign(seed=None)
        first = run_campaign(campaign, str(tmp_path / "o1"), cache_dir=cache_dir)
        second = run_campaign(campaign, str(tmp_path / "o2"), cache_dir=cache_dir)
        assert first.executed == second.executed == first.total_cells
        assert second.from_cache == 0
        assert len(ResultCache(cache_dir)) == 0

    def test_error_rows_count_as_done_by_default(self, tmp_path):
        campaign = Campaign(
            name="err",
            specs=[("minimum", "no-such-strategy")],
            inputs=[(1, 1), (2, 2)],
            engines=("python",),
            seed=3,
        )
        out = str(tmp_path / "out")
        first = run_campaign(campaign, out, cache_dir=None)
        assert first.summary.errors == 2
        again = run_campaign(campaign, out, cache_dir=None)
        assert again.already_done == 2 and again.executed == 0

    def test_retry_errors_reexecutes_error_rows_only(self, tmp_path):
        bad = Campaign(
            name="mixed",
            specs=[("minimum", "no-such-strategy"), ("minimum", "known")],
            inputs=[(1, 1)],
            engines=("python",),
            seed=3,
        )
        out = str(tmp_path / "out")
        first = run_campaign(bad, out, cache_dir=None)
        assert first.summary.errors == 1 and first.summary.ok == 1
        retried = run_campaign(bad, out, cache_dir=None, retry_errors=True)
        assert retried.already_done == 1  # the ok row stays done
        assert retried.executed == 1      # only the error row re-ran
        # the retried row supersedes the old one in the collected results
        assert len(retried.results) == 2

    def test_timeout_race_alarm_after_return_still_yields_error_row(self):
        # direct check of the race guard: CellTimeoutError escaping run_cell
        # must be folded into an error row by run_cell_with_timeout
        from repro.lab import executor as executor_module
        from repro.lab.executor import run_cell_with_timeout

        cells = tiny_campaign().expand()

        def explode(cell):
            raise executor_module.CellTimeoutError("late alarm")

        original = executor_module.run_cell
        executor_module.run_cell = explode
        try:
            result = run_cell_with_timeout(cells[0], timeout=5.0)
        finally:
            executor_module.run_cell = original
        assert result.status == "error"
        assert "CellTimeoutError" in result.error

    def test_different_campaign_in_same_dir_rejected(self, tmp_path):
        out = str(tmp_path / "out")
        run_campaign(tiny_campaign(seed=9), out, cache_dir=None)
        with pytest.raises(ValueError, match="different campaign"):
            run_campaign(tiny_campaign(seed=10), out, cache_dir=None)

    def test_summary_written_next_to_store(self, tmp_path):
        out = tmp_path / "out"
        run = run_campaign(tiny_campaign(), str(out), cache_dir=None)
        on_disk = json.loads((out / "summary.json").read_text())
        assert on_disk == run.summary.to_dict()
        assert on_disk["correct_rate"] == 1.0
