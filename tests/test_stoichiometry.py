"""Tests for stoichiometric analysis: matrices, conservation laws, structural audits."""

from fractions import Fraction

import pytest

from repro.core.construction_1d import build_1d_crn
from repro.core.construction_general import build_general_crn
from repro.core.construction_quilt import build_quilt_affine_crn
from repro.crn.network import CRN
from repro.crn.species import Species, species
from repro.crn.stoichiometry import (
    conservation_laws,
    conserved_quantity,
    dead_reactions,
    is_feed_forward,
    leader_state_conservation,
    producible_species,
    species_dependency_graph,
    stoichiometric_matrix,
    unproducible_species,
)
from repro.functions.catalog import maximum_spec, minimum_spec
from repro.functions.paper_examples import interior_min_plus_one_spec
from repro.quilt.quilt_affine import QuiltAffine


X, X1, X2, Y, Z, W = species("X X1 X2 Y Z W")


class TestStoichiometricMatrix:
    def test_min_matrix(self):
        matrix = stoichiometric_matrix(minimum_spec().known_crn)
        assert matrix.shape == (3, 1)
        assert matrix.row(Species("X1")) == (-1,)
        assert matrix.row(Species("Y")) == (1,)
        assert matrix.column(0) == (-1, -1, 1)

    def test_catalyst_has_zero_net_change(self):
        crn = CRN([X1 + Y >> X1 + 2 * Y], (X1,), Y)
        matrix = stoichiometric_matrix(crn)
        assert matrix.row(Species("X1")) == (0,)
        assert matrix.row(Species("Y")) == (1,)


class TestConservationLaws:
    def test_min_conserves_x1_minus_x2(self):
        crn = minimum_spec().known_crn
        laws = conservation_laws(crn)
        assert len(laws) == 2   # 3 species, rank-1 stoichiometry
        counts_a = {Species("X1"): 4, Species("X2"): 1, Species("Y"): 0}
        counts_b = {Species("X1"): 3, Species("X2"): 0, Species("Y"): 1}
        for law in laws:
            assert conserved_quantity(law, counts_a) == conserved_quantity(law, counts_b)

    def test_theorem31_conserves_single_leader_token(self):
        crn = build_1d_crn(lambda x: min(x, 2))
        leader_states = [sp for sp in crn.species() if sp.name[0] in ("L", "P") and sp.name != "L"]
        # The leader plus its auxiliary states form a conserved token once initialized.
        assert leader_state_conservation(crn, [crn.leader] + leader_states)

    def test_quilt_construction_conserves_leader_token(self):
        crn = build_quilt_affine_crn(QuiltAffine.floor_linear((3,), 2))
        states = [sp for sp in crn.species() if sp.name.startswith("L")]
        assert leader_state_conservation(crn, states)

    def test_crn_without_reactions(self):
        crn = CRN([X1 + X2 >> Y], (X1, X2), Y)
        laws = conservation_laws(crn)
        assert all(isinstance(value, Fraction) for law in laws for value in law.values())


class TestStructuralAudits:
    def test_producible_species_of_max(self):
        crn = maximum_spec().known_crn
        names = {sp.name for sp in producible_species(crn)}
        assert names == {"X1", "X2", "Y", "Z1", "Z2", "K"}
        assert not unproducible_species(crn)

    def test_dead_reaction_detection(self):
        # W is never produced, so the second reaction can never fire.
        crn = CRN([X >> Y, W + X >> 2 * Y], (X,), Y)
        dead = dead_reactions(crn)
        assert len(dead) == 1
        assert dead[0].consumes(W)
        assert W in unproducible_species(crn)

    def test_general_construction_wiring(self):
        # A wiring bug in the Lemma 6.2 plumbing would show up as a dead reaction
        # whose reactants are module inputs.  For the threshold-0 Fig. 7 function
        # there are no restriction terms and the construction must have none at all.
        from repro.functions.paper_examples import fig7_spec

        crn = build_general_crn(fig7_spec())
        assert dead_reactions(crn) == []

    def test_zero_restrictions_yield_only_harmless_dead_reactions(self):
        # interior-min-plus-one has constant-zero restrictions, whose output species
        # are (correctly) never produced; the only dead reactions are the pass-through
        # reactions consuming those outputs.
        crn = build_general_crn(interior_min_plus_one_spec())
        dead = dead_reactions(crn)
        assert all(rxn.name.endswith("pass_a") for rxn in dead)

    def test_dependency_graph_and_feed_forward(self):
        crn = minimum_spec().known_crn
        graph = species_dependency_graph(crn)
        assert graph.has_edge(Species("X1"), Species("Y"))
        assert is_feed_forward(crn)

    def test_cyclic_network_not_feed_forward(self):
        crn = CRN([X >> Y, Y >> X], (X,), Y)
        assert not is_feed_forward(crn)
