"""Shared test configuration.

Ensures the package is importable even when the editable install is absent
(e.g. a fresh checkout without network access), and provides a deterministic
random seed fixture.
"""

import os
import random
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


@pytest.fixture
def rng():
    """A deterministic random generator for simulation tests."""
    return random.Random(12345)
