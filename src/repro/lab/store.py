"""Typed campaign artifacts: :class:`CellResult` rows in a JSONL store.

One campaign produces one ``results.jsonl`` file — one JSON object per line,
one line per cell.  Append-only and flushed per row, so a campaign killed
mid-run leaves a valid store behind; resume reads the completed cell ids back
and schedules only the remainder.

The **determinism contract**: everything in :meth:`CellResult.deterministic_dict`
is a pure function of the cell descriptor (spec fingerprint, input, config,
engine) for seeded cells, so the serial and parallel executors must produce
bit-identical deterministic rows.  The :data:`PROVENANCE_FIELDS`
(``wall_time``, ``cached``, ``cpu_time``, ``worker``) describe *this*
execution, not the result, and are the only fields excluded.
"""

from __future__ import annotations

import json
import os
import re
import warnings
from dataclasses import asdict, dataclass, fields
from typing import Any, Dict, Iterator, List, Mapping, Optional, Set, Tuple

#: Fields describing how a row was produced rather than what was computed.
#: Excluded from the deterministic view (and therefore from cache payloads).
PROVENANCE_FIELDS = ("wall_time", "cached", "cpu_time", "worker")


@dataclass
class CellResult:
    """The outcome of one campaign cell (one spec x input x engine x config run).

    ``status`` is ``"ok"`` or ``"error"``; error rows keep the descriptor
    fields populated and carry the exception rendering in ``error`` so a
    failed cell is a recorded data point, never a crashed campaign.
    """

    cell_id: str
    spec: str
    strategy: str
    input: Tuple[int, ...]
    engine: str
    config: Dict[str, Any]
    status: str
    expected: Optional[int] = None
    outputs: Tuple[int, ...] = ()
    output_mode: Optional[int] = None
    output_unanimous: Optional[bool] = None
    converged: Optional[bool] = None
    correct: Optional[bool] = None
    mean_steps: Optional[float] = None
    total_steps: Optional[int] = None
    error: Optional[str] = None
    wall_time: float = 0.0
    cached: bool = False
    cpu_time: Optional[float] = None
    """CPU seconds (``time.process_time``) the executing worker spent on this
    cell; ``None`` for cached rows (provenance, like ``wall_time``)."""
    worker: Optional[int] = None
    """PID of the process that executed the cell (provenance)."""

    def __post_init__(self) -> None:
        self.input = tuple(int(v) for v in self.input)
        self.outputs = tuple(int(v) for v in self.outputs)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> Dict[str, Any]:
        """The full row, provenance included (one JSONL line)."""
        data = asdict(self)
        data["input"] = list(self.input)
        data["outputs"] = list(self.outputs)
        return data

    def deterministic_dict(self) -> Dict[str, Any]:
        """The row minus provenance — the executor-equivalence / cache payload view."""
        data = self.to_dict()
        for name in PROVENANCE_FIELDS:
            data.pop(name)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CellResult":
        """Rebuild a row from :meth:`to_dict` / :meth:`deterministic_dict` output."""
        known = {f.name for f in fields(cls)}
        kwargs = {key: value for key, value in data.items() if key in known}
        return cls(**kwargs)


#: Fast path for pulling the ``cell_id`` out of a row without parsing the
#: whole line.  Rows are written by :meth:`ResultStore.append` with sorted
#: keys and compact separators, so the *first* occurrence of the pattern is
#: always the real key (``cached`` and ``cell_id`` sort before every field
#: whose value could embed the pattern as text).
_CELL_ID_RE = re.compile(r'"cell_id":"([^"]+)"')


@dataclass
class StoreScanStats:
    """What one scan of a store file saw (set on :attr:`ResultStore.last_scan`).

    ``corrupt_tail`` is the torn final line an interrupted writer can leave
    behind — expected, and silently ignored.  ``corrupt_interior`` lines are
    *not* expected (disk fault, manual edit): they are counted, surfaced via a
    :class:`UserWarning` and the campaign report, and the affected cell simply
    reads as not-yet-completed so resume re-runs it.  ``duplicates`` counts
    rows superseded by a later row with the same ``cell_id`` (resume after
    interior corruption, ``--retry-errors``, or a distributed worker racing a
    lease expiry); readers keep the last write.
    """

    lines: int = 0
    rows: int = 0
    duplicates: int = 0
    corrupt_interior: int = 0
    corrupt_tail: int = 0

    @property
    def corrupt_total(self) -> int:
        return self.corrupt_interior + self.corrupt_tail


class ResultStore:
    """Append-only JSONL store for :class:`CellResult` rows.

    Rows are flushed (and fsync'd) as they are appended, so the store is
    always a valid prefix of the campaign — the property resume depends on.
    A trailing partial line (the one a ``kill -9`` can leave behind) is
    ignored on read.

    Readers deduplicate by ``cell_id`` with last-write-wins semantics: a store
    may legitimately hold several rows for one cell (resume re-ran a cell whose
    earlier row was corrupted, ``--retry-errors`` superseded an error row, or a
    distributed worker duplicated work after a lease expiry), and the newest
    row is the canonical one.  Every read path records what it saw on
    :attr:`last_scan` so callers can surface corruption counts.
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self.last_scan: StoreScanStats = StoreScanStats()

    def exists(self) -> bool:
        return os.path.exists(self.path)

    def append(self, result: CellResult) -> None:
        line = json.dumps(result.to_dict(), sort_keys=True, separators=(",", ":"))
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    @staticmethod
    def _fast_cell_id(line: str) -> Optional[str]:
        """``cell_id`` of a complete-looking row, without a full JSON parse.

        The regex alone would also match a line truncated *after* the id, so a
        cheap completeness check (object lines end with ``}``) guards it; the
        one line where truncation is actually expected — the final one — gets
        a strict parse in :meth:`_index` instead.
        """
        if not line.endswith("}"):
            return None
        match = _CELL_ID_RE.search(line)
        if match is not None:
            return match.group(1)
        try:  # hand-written / re-ordered row: fall back to a real parse
            data = json.loads(line)
        except json.JSONDecodeError:
            return None
        cell_id = data.get("cell_id") if isinstance(data, dict) else None
        return cell_id if isinstance(cell_id, str) else None

    @staticmethod
    def _strict_cell_id(line: str) -> Optional[str]:
        try:
            data = json.loads(line)
        except json.JSONDecodeError:
            return None
        cell_id = data.get("cell_id") if isinstance(data, dict) else None
        return cell_id if isinstance(cell_id, str) else None

    def _index(self) -> Tuple[Dict[str, int], StoreScanStats]:
        """Map each ``cell_id`` to the line number of its *last* occurrence.

        Single streaming pass, parsing only the ``cell_id`` key — this is what
        makes million-row resume scans cheap.  Interior lines use the fast
        scan; the final line (the only one an interrupted append can tear) is
        fully parsed so a torn tail never masquerades as a completed cell.
        """
        last: Dict[str, int] = {}
        stats = StoreScanStats()
        corrupt_lines = 0

        def take(index: int, line: str, cell_id: Optional[str]) -> None:
            nonlocal corrupt_lines
            stats.lines += 1
            if cell_id is None:
                corrupt_lines += 1
                return
            if cell_id in last:
                stats.duplicates += 1
            last[cell_id] = index

        pending: Optional[Tuple[int, str]] = None
        with open(self.path, "r", encoding="utf-8") as handle:
            for index, raw in enumerate(handle):
                line = raw.strip()
                if not line:
                    continue
                if pending is not None:
                    take(pending[0], pending[1], self._fast_cell_id(pending[1]))
                pending = (index, line)
        if pending is not None:
            tail_id = self._strict_cell_id(pending[1])
            take(pending[0], pending[1], tail_id)
            if tail_id is None and corrupt_lines:
                corrupt_lines -= 1
                stats.corrupt_tail = 1
        stats.corrupt_interior = corrupt_lines
        stats.rows = len(last)
        if stats.corrupt_interior:
            warnings.warn(
                f"{self.path}: skipped {stats.corrupt_interior} corrupt interior "
                "line(s); the affected cells read as incomplete and will be "
                "re-run on resume",
                UserWarning,
                stacklevel=3,
            )
        return last, stats

    def iter_rows(self, dedupe: bool = True) -> Iterator[CellResult]:
        """Stream rows in file order, one canonical row per ``cell_id``.

        With ``dedupe=True`` (the default) only the last row written for each
        cell is yielded, at the position of that last occurrence; corrupt
        lines are skipped and counted on :attr:`last_scan`.  ``dedupe=False``
        restores the raw historical view (every parseable row, duplicates
        included) for forensics.
        """
        if not os.path.exists(self.path):
            self.last_scan = StoreScanStats()
            return
        if dedupe:
            last, stats = self._index()
            self.last_scan = stats
            keep = set(last.values())
            with open(self.path, "r", encoding="utf-8") as handle:
                for index, raw in enumerate(handle):
                    if index not in keep:
                        continue
                    try:
                        yield CellResult.from_dict(json.loads(raw))
                    except (ValueError, TypeError):
                        # a line the fast scan accepted but a strict parse
                        # rejects: treat it like any other interior damage
                        self.last_scan.corrupt_interior += 1
            return
        self.last_scan = StoreScanStats()
        with open(self.path, "r", encoding="utf-8") as handle:
            for raw in handle:
                line = raw.strip()
                if not line:
                    continue
                self.last_scan.lines += 1
                try:
                    data = json.loads(line)
                except json.JSONDecodeError:
                    continue
                self.last_scan.rows += 1
                yield CellResult.from_dict(data)

    def load(self) -> List[CellResult]:
        return list(self.iter_rows())

    def completed_ids(self) -> Set[str]:
        """Cell ids already recorded (both ok and error rows count as done).

        Streams the file parsing only the ``cell_id`` key — never builds a
        :class:`CellResult` — so resuming a million-cell sweep costs one pass
        of regex scans, not a million dataclass constructions.
        """
        if not os.path.exists(self.path):
            self.last_scan = StoreScanStats()
            return set()
        last, stats = self._index()
        self.last_scan = stats
        return set(last)

    def __len__(self) -> int:
        """Number of distinct completed cells (the deduplicated row count)."""
        if not os.path.exists(self.path):
            self.last_scan = StoreScanStats()
            return 0
        last, stats = self._index()
        self.last_scan = stats
        return len(last)

    def __repr__(self) -> str:
        return f"ResultStore({self.path!r})"
