"""Lemma 6.1: an output-oblivious CRN for any quilt-affine ``g : N^d -> N``.

The construction uses a single leader that walks through the congruence
classes of ``Z^d / p Z^d``: species ``L_a`` for each class ``a`` act as
auxiliary leader states.  The initial reaction releases ``g(0)`` outputs and
puts the leader in state ``L_0``; thereafter the reaction

    L_a + X_i  ->  δ^i_a Y + L_{a + e_i}

consumes one input of coordinate ``i`` and releases the (periodic, nonnegative
integer) finite difference ``δ^i_a = g(x + e_i) - g(x)`` for ``x ≡ a``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.crn.network import CRN
from repro.crn.reaction import Reaction
from repro.crn.species import Expression, Species
from repro.quilt.quilt_affine import QuiltAffine, all_residues, residue_of


def _leader_state_name(prefix: str, residue: Sequence[int]) -> str:
    return prefix + "L_" + "_".join(str(v) for v in residue)


def build_quilt_affine_crn(
    g: QuiltAffine,
    input_names: Optional[Sequence[str]] = None,
    output_name: str = "Y",
    leader_name: str = "L",
    prefix: str = "",
    name: str = "",
) -> CRN:
    """Build the Lemma 6.1 output-oblivious CRN stably computing ``g``.

    Parameters
    ----------
    g:
        The quilt-affine function.  Must have nonnegative values (checked at
        the residue representatives) and nonnegative integer finite
        differences (guaranteed when ``g`` is nondecreasing and integer-valued).
    input_names / output_name / leader_name / prefix:
        Species naming controls, used when the CRN is embedded as a module of
        a larger construction.
    """
    dimension = g.dimension
    period = g.period
    if input_names is None:
        input_names = [f"{prefix}X{i + 1}" for i in range(dimension)]
    if len(input_names) != dimension:
        raise ValueError(
            f"expected {dimension} input names, got {len(input_names)}"
        )

    g_zero = g.value(tuple([0] * dimension))
    if g_zero.denominator != 1 or g_zero < 0:
        raise ValueError(
            f"g(0) = {g_zero} must be a nonnegative integer for the Lemma 6.1 construction"
        )
    if not g.has_nonnegative_range_upto(period):
        raise ValueError(
            "the quilt-affine function takes negative values; translate it first "
            "(Lemma 6.2 uses g(x + n) which is nonnegative)"
        )

    inputs = tuple(Species(name_) for name_ in input_names)
    output = Species(prefix + output_name if prefix else output_name)
    leader = Species(prefix + leader_name if prefix else leader_name)

    leader_states: Dict[Tuple[int, ...], Species] = {
        residue: Species(_leader_state_name(prefix, residue))
        for residue in all_residues(dimension, period)
    }

    reactions: List[Reaction] = []
    zero_residue = tuple([0] * dimension)
    initial_products: Dict[Species, int] = {leader_states[zero_residue]: 1}
    if int(g_zero) > 0:
        initial_products[output] = int(g_zero)
    reactions.append(Reaction(leader, Expression(initial_products), name="init"))

    deltas = g.finite_difference_table()
    for residue in all_residues(dimension, period):
        for i in range(dimension):
            delta = deltas[(i, residue)]
            if delta < 0:
                raise ValueError(
                    f"finite difference δ^{i}_{residue} = {delta} is negative; "
                    "the function is not nondecreasing"
                )
            successor = tuple(
                (value + (1 if j == i else 0)) % period for j, value in enumerate(residue)
            )
            products: Dict[Species, int] = {leader_states[successor]: 1}
            if delta > 0:
                products[output] = delta
            reactants: Dict[Species, int] = {leader_states[residue]: 1, inputs[i]: 1}
            reactions.append(
                Reaction(
                    Expression(reactants),
                    Expression(products),
                    name=f"step-{i}-{residue}",
                )
            )

    return CRN(
        reactions,
        inputs,
        output,
        leader=leader,
        name=name or (g.name and f"quilt[{g.name}]") or "quilt-affine",
    )
