"""The repro.api facade: RunConfig, Workbench, CompiledFunction, public surface."""

import os
import re

import pytest

import repro
from repro import RunConfig, Workbench
from repro.core.characterization import build_crn_for
from repro.core.construction_1d import build_1d_crn
from repro.core.construction_leaderless import build_leaderless_1d_crn
from repro.core.construction_quilt import build_quilt_affine_crn
from repro.functions.catalog import (
    double_spec,
    maximum_spec,
    minimum_spec,
    quilt_2d_fig3b_spec,
    threshold_capped_spec,
)
from repro.sim.runner import ConvergenceReport, run_many, sweep_inputs


def same_network(a, b):
    """Structural equality: same reaction multiset, inputs, output, leader."""
    return (
        sorted(str(rxn) for rxn in a.reactions) == sorted(str(rxn) for rxn in b.reactions)
        and a.input_species == b.input_species
        and a.output_species == b.output_species
        and a.leader == b.leader
    )


class TestRunConfig:
    def test_defaults(self):
        config = RunConfig()
        assert config.trials == 10
        assert config.max_steps == 1_000_000
        assert config.quiescence_window is None
        assert config.seed is None
        assert config.engine == "python"
        assert config.epsilon == 0.03

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.2, 1.5, "0.1", None, True])
    def test_epsilon_validated_in_open_unit_interval(self, bad):
        with pytest.raises(ValueError, match="epsilon"):
            RunConfig(epsilon=bad)

    @pytest.mark.parametrize("good", [0.001, 0.03, 0.5, 0.999])
    def test_epsilon_accepts_open_unit_interval(self, good):
        assert RunConfig(epsilon=good).epsilon == good

    def test_epsilon_round_trips_and_keys_the_cache(self):
        config = RunConfig(epsilon=0.12, seed=4)
        assert RunConfig.from_dict(config.to_dict()) == config
        assert config.to_dict()["epsilon"] == 0.12
        # A different error tolerance is a different cached result.
        assert config.cache_key() != config.replace(epsilon=0.03).cache_key()

    def test_from_dict_without_epsilon_defaults(self):
        # Rows written before the epsilon field still load (campaign
        # manifests, cached cells).
        legacy = {"trials": 3, "seed": 9, "engine": "python"}
        assert RunConfig.from_dict(legacy).epsilon == 0.03

    @pytest.mark.parametrize("bad", [0, -1, 2.5, "3"])
    def test_trials_validated(self, bad):
        with pytest.raises(ValueError, match="trials"):
            RunConfig(trials=bad)

    @pytest.mark.parametrize("bad", [0, -5])
    def test_max_steps_validated(self, bad):
        with pytest.raises(ValueError, match="max_steps"):
            RunConfig(max_steps=bad)

    def test_quiescence_window_validated(self):
        with pytest.raises(ValueError, match="quiescence_window"):
            RunConfig(quiescence_window=0)
        assert RunConfig(quiescence_window=None).quiescence_window is None

    def test_frozen_and_replace(self):
        config = RunConfig(seed=1)
        with pytest.raises(Exception):
            config.trials = 3
        derived = config.replace(trials=3, engine="vectorized")
        assert (derived.trials, derived.engine, derived.seed) == (3, "vectorized", 1)
        assert config.trials == 10  # original untouched
        with pytest.raises(ValueError):
            config.replace(trials=0)  # derivation re-validates

    def test_trial_seeds_match_historical_stream(self):
        import random

        master = random.Random(10)
        expected = tuple(master.getrandbits(64) for _ in range(5))
        assert RunConfig(trials=5, seed=10).trial_seeds() == expected

    def test_per_input_seeds_are_independent_and_reproducible(self):
        config = RunConfig(seed=12)
        first = config.per_input(3)
        second = config.per_input(3)
        assert [c.seed for c in first] == [c.seed for c in second]
        assert len({c.seed for c in first}) == 3
        assert all(c.seed != 12 for c in first)

    def test_per_input_without_seed_stays_unseeded(self):
        configs = RunConfig().per_input(2)
        assert all(c.seed is None for c in configs)


class TestConvergenceReportGuards:
    def test_output_mode_raises_clearly_on_zero_runs(self):
        report = ConvergenceReport(
            input_value=(1,), outputs=[], max_outputs=[], steps=[],
            all_silent_or_converged=True,
        )
        with pytest.raises(ValueError, match="zero runs"):
            report.output_mode
        assert report.max_overshoot == 0
        assert report.mean_steps == 0.0

    def test_run_many_rejects_zero_trials(self):
        crn = minimum_spec().known_crn
        with pytest.raises(ValueError, match="trials"):
            run_many(crn, (1, 1), trials=0)


class TestSweepSeeding:
    def test_identical_inputs_get_independent_streams(self):
        # Regression: the master seed used to be forwarded verbatim to every
        # run_many call, so all inputs of a sweep replayed one random stream.
        crn = maximum_spec().known_crn
        reports = sweep_inputs(crn, [(8, 8), (8, 8), (8, 8)], trials=6, seed=5)
        peaks = [tuple(r.max_outputs) for r in reports]
        assert len(set(peaks)) > 1, "all sweep inputs replayed the same stream"

    def test_sweep_is_reproducible_from_the_master_seed(self):
        crn = maximum_spec().known_crn
        first = sweep_inputs(crn, [(4, 9), (8, 8)], trials=4, seed=12)
        second = sweep_inputs(crn, [(4, 9), (8, 8)], trials=4, seed=12)
        assert [r.steps for r in first] == [r.steps for r in second]
        assert [r.max_outputs for r in first] == [r.max_outputs for r in second]

    def test_sweep_outputs_unchanged(self):
        crn = minimum_spec().known_crn
        reports = sweep_inputs(crn, [(1, 1), (2, 3)], trials=3, seed=12)
        assert [r.output_mode for r in reports] == [1, 2]


class TestLegacySignatureEquivalence:
    def test_run_many_config_equals_kwargs_bit_for_bit(self):
        crn = maximum_spec().known_crn
        by_kwargs = run_many(crn, (4, 6), trials=5, seed=10)
        by_config = run_many(crn, (4, 6), config=RunConfig(trials=5, seed=10))
        assert by_kwargs.outputs == by_config.outputs
        assert by_kwargs.steps == by_config.steps
        assert by_kwargs.max_outputs == by_config.max_outputs

    def test_verify_config_equals_kwargs(self):
        from repro.verify import verify_stable_computation

        spec = maximum_spec()
        crn = spec.known_crn
        kwargs_report = verify_stable_computation(
            crn, spec.func, inputs=[(2, 3)], method="simulation", trials=4, seed=7
        )
        config_report = verify_stable_computation(
            crn, spec.func, inputs=[(2, 3)], method="simulation",
            config=RunConfig(trials=4, max_steps=400_000, seed=7),
        )
        assert (
            kwargs_report.results[0].observed_outputs
            == config_report.results[0].observed_outputs
        )


class TestWorkbenchCompile:
    def test_auto_prefers_known_crn(self):
        spec = minimum_spec()
        compiled = Workbench().compile(spec)
        assert compiled.crn is spec.known_crn

    def test_known_strategy_requires_a_known_crn(self):
        with pytest.raises(ValueError, match="no hand-written CRN"):
            Workbench().compile(threshold_capped_spec(), strategy="known")

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="strategy"):
            Workbench().compile(minimum_spec(), strategy="quantum")

    def test_1d_strategy_matches_direct_construction(self):
        spec = threshold_capped_spec()
        compiled = Workbench().compile(spec, strategy="1d")
        direct = build_1d_crn(lambda t: spec((t,)), name=spec.name)
        assert same_network(compiled.crn, direct)

    def test_leaderless_strategy_matches_direct_construction(self):
        spec = double_spec()
        compiled = Workbench().compile(spec, strategy="leaderless")
        direct = build_leaderless_1d_crn(lambda t: spec((t,)), name=spec.name)
        assert same_network(compiled.crn, direct)

    def test_quilt_strategy_matches_direct_construction(self):
        spec = quilt_2d_fig3b_spec()
        compiled = Workbench().compile(spec, strategy="quilt")
        direct = build_quilt_affine_crn(spec.eventually_min.pieces[0], name=spec.name)
        assert same_network(compiled.crn, direct)

    def test_strategies_match_build_crn_for(self):
        for spec, strategy in [
            (minimum_spec(), "auto"),
            (threshold_capped_spec(), "1d"),
            (quilt_2d_fig3b_spec(), "quilt"),
        ]:
            compiled = Workbench().compile(spec, strategy=strategy)
            assert same_network(compiled.crn, build_crn_for(spec, strategy=strategy))

    def test_compile_is_cached_per_spec_and_strategy(self):
        wb = Workbench()
        spec = threshold_capped_spec()
        first = wb.compile(spec, strategy="1d")
        second = wb.compile(spec, strategy="1d")
        assert first.crn is second.crn
        assert first.compiled_crn is second.compiled_crn

    def test_compile_cache_respects_the_name_argument(self):
        wb = Workbench()
        spec = threshold_capped_spec()
        assert wb.compile(spec, strategy="1d", name="a").crn.name == "a"
        assert wb.compile(spec, strategy="1d", name="b").crn.name == "b"

    def test_compiled_crn_matrices_are_cached_on_the_network(self):
        compiled = Workbench().compile(minimum_spec())
        assert compiled.compiled_crn is compiled.crn.compiled()

    def test_dimension_zero_spec_with_known_crn_still_compiles(self):
        # The known-CRN shortcut must keep running before the dimension
        # check, as it did before strategy dispatch existed.
        from repro.core.specs import FunctionSpec

        known = minimum_spec().known_crn
        spec = FunctionSpec(name="const-ish", dimension=0, func=lambda v: 0, known_crn=known)
        assert build_crn_for(spec) is known
        assert Workbench().compile(spec, strategy="known").crn is known
        with pytest.raises(ValueError, match="1-input constant"):
            build_crn_for(spec, prefer_known=False)


class TestWorkbenchRoundTrip:
    @pytest.mark.parametrize("engine", ["python", "vectorized", "nrm", "tau"])
    @pytest.mark.parametrize(
        "factory", [minimum_spec, double_spec, maximum_spec], ids=["min", "2x", "max"]
    )
    def test_compile_simulate_verify_round_trip(self, factory, engine):
        spec = factory()
        wb = Workbench(RunConfig(trials=6, seed=7, engine=engine))
        compiled = wb.compile(spec)
        x = (3,) * spec.dimension
        report = compiled.simulate(x)
        assert report.output_mode == spec(x)
        if engine in ("nrm", "tau"):
            # Kinetic-only engines are excluded from the stable-computation
            # verification contract (supports_fair=False) — NRM because it
            # schedules by Gillespie rates even though it is exact, tau
            # additionally because it is approximate; verify through a
            # fair-capable engine instead.
            with pytest.raises(ValueError, match="supports_fair"):
                compiled.verify(inputs=[x])
            verification = compiled.verify(inputs=[(1,) * spec.dimension, x],
                                           engine="python")
        else:
            verification = compiled.verify(inputs=[(1,) * spec.dimension, x])
        assert verification.passed
        estimate = compiled.expected_output(x, trials=12)
        assert estimate == pytest.approx(spec(x), abs=1.5)

    def test_python_vectorized_parity_on_stable_outputs(self):
        spec = minimum_spec()
        wb = Workbench(RunConfig(trials=5, seed=3))
        compiled = wb.compile(spec)
        python = compiled.simulate((7, 11))
        vectorized = compiled.simulate((7, 11), engine="vectorized")
        assert python.outputs == vectorized.outputs == [7] * 5

    def test_sweep_through_the_facade(self):
        compiled = Workbench(RunConfig(trials=3, seed=9)).compile(minimum_spec())
        reports = compiled.sweep([(1, 1), (2, 3), (5, 2)])
        assert [r.output_mode for r in reports] == [1, 2, 2]

    def test_per_call_overrides_do_not_mutate_the_workbench(self):
        wb = Workbench(RunConfig(trials=4, seed=1))
        compiled = wb.compile(minimum_spec())
        compiled.simulate((2, 2), trials=2, engine="vectorized")
        assert wb.config.trials == 4 and wb.config.engine == "python"
        assert compiled.config.trials == 4

    def test_with_config_derivation(self):
        wb = Workbench(RunConfig(seed=1))
        derived = wb.with_config(engine="vectorized", trials=3)
        assert derived.config.engine == "vectorized"
        assert derived.config.seed == 1
        assert wb.config.engine == "python"

    def test_workbench_characterize_and_engines(self):
        wb = Workbench()
        verdict = wb.characterize(minimum_spec())
        assert verdict.obliviously_computable is True
        assert {info.name for info in wb.engines()} >= {"python", "vectorized", "tau"}

    def test_epsilon_override_flows_through_the_facade(self):
        wb = Workbench(RunConfig(trials=3, seed=2))
        compiled = wb.compile(minimum_spec())
        report = compiled.simulate((2_000, 3_000), engine="tau", epsilon=0.1)
        assert report.output_mode == 2_000
        assert compiled.config.epsilon == 0.03  # per-call override, not mutation

    def test_compiled_function_evaluates_the_spec(self):
        compiled = Workbench().compile(minimum_spec())
        assert compiled((4, 9)) == 4


class TestWorkbenchEngineCapabilityGuards:
    """Explicit per-call requests the resolved engine cannot honour fail fast."""

    def test_epsilon_override_on_exact_engine_rejected(self):
        compiled = Workbench(RunConfig(trials=2, seed=1)).compile(minimum_spec())
        for engine in ("python", "vectorized", "nrm"):
            with pytest.raises(ValueError, match="exact"):
                compiled.simulate((2, 2), engine=engine, epsilon=0.1)

    def test_fair_request_on_kinetic_only_engine_rejected(self):
        compiled = Workbench(RunConfig(trials=2, seed=1)).compile(minimum_spec())
        for engine in ("nrm", "tau"):
            with pytest.raises(ValueError, match="supports_fair"):
                compiled.simulate((2, 2), engine=engine, fair=True)

    def test_fair_assertion_passes_on_fair_capable_engines(self):
        compiled = Workbench(RunConfig(trials=2, seed=1)).compile(minimum_spec())
        report = compiled.simulate((3, 5), fair=True)  # default engine: python
        assert report.output_mode == 3

    def test_nrm_simulate_and_expected_output_flow_through(self):
        wb = Workbench(RunConfig(trials=5, seed=11, engine="nrm"))
        compiled = wb.compile(minimum_spec())
        report = compiled.simulate((6, 10))
        assert report.output_mode == 6
        estimate = compiled.expected_output((6, 10), trials=10)
        assert estimate == pytest.approx(6, abs=1.0)

    def test_config_default_epsilon_is_not_an_explicit_request(self):
        # RunConfig always carries epsilon (a carrier field with a default);
        # only an explicit per-call epsilon= override is validated, so exact
        # engines keep working under any stored config.
        wb = Workbench(RunConfig(trials=2, seed=1, epsilon=0.2))
        compiled = wb.compile(minimum_spec())
        assert compiled.simulate((2, 2)).output_mode == 2
        assert compiled.simulate((2, 2), engine="nrm").output_mode == 2


class TestPublicSurface:
    def test_top_level_exports(self):
        assert repro.Workbench is Workbench
        assert repro.RunConfig is RunConfig
        assert callable(repro.minimum_spec)
        assert callable(repro.all_catalog_specs)
        from repro.api import CompiledFunction, Workbench as ApiWorkbench

        assert ApiWorkbench is Workbench
        assert repro.CompiledFunction is CompiledFunction

    def test_version_synced_with_setup_py(self):
        setup_py = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "setup.py"
        )
        with open(setup_py) as handle:
            match = re.search(r"version=\"([^\"]+)\"", handle.read())
        assert match is not None
        assert match.group(1) == repro.__version__
