"""Exact stochastic simulation (Gillespie 1977) of discrete CRNs.

The CRN model of the paper is a continuous-time Markov chain whose transition
rates follow stochastic mass-action kinetics.  The Gillespie "direct method"
samples this process exactly: at each step, the time to the next reaction is
exponential with rate equal to the total propensity, and the reaction fired is
chosen proportionally to its propensity.

Stable computation is rate-independent, so the Gillespie simulator is used for
kinetic experiments (time-to-convergence, overshoot dynamics) and throughput
benchmarks rather than correctness proofs.

:class:`GillespieSimulator` is a thin compatibility shim over the shared
scalar kernel (:class:`repro.sim.kernel.SimulatorCore` with
:class:`~repro.sim.kernel.GillespiePolicy`): the public API and result type
are unchanged, seeded runs reproduce the historical dict-backed loop bit for
bit (``tests/test_kernel.py`` locks this against the frozen reference in
:mod:`repro.sim._reference`), and large-population runs are several times
faster thanks to dense counts and dependency-graph propensity updates.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.crn.configuration import Configuration
from repro.crn.network import CRN
from repro.crn.species import Species
from repro.sim.kernel import GillespiePolicy, SimulatorCore
from repro.sim.trajectory import Trajectory


@dataclass
class GillespieResult:
    """Result of a single Gillespie simulation run."""

    final_configuration: Configuration
    final_time: float
    steps: int
    silent: bool
    """True if the run ended because no reaction was applicable."""
    trajectory: Optional[Trajectory] = None

    def output_count(self, crn: CRN) -> int:
        """Convenience accessor for the output-species count at the end of the run."""
        return crn.output_count(self.final_configuration)


class GillespieSimulator:
    """Gillespie direct-method simulator for a fixed CRN (kernel-backed).

    Parameters
    ----------
    crn:
        The network to simulate.
    rng:
        Optional :class:`random.Random` instance (for reproducibility).
    """

    def __init__(self, crn: CRN, rng: Optional[random.Random] = None) -> None:
        self.crn = crn
        self.rng = rng or random.Random()

    def run(
        self,
        initial: Configuration,
        max_steps: int = 1_000_000,
        max_time: float = math.inf,
        track: Sequence[Species] = (),
        record_every: int = 1,
        stop_when: Optional[Callable[[Configuration], bool]] = None,
    ) -> GillespieResult:
        """Simulate from ``initial`` until silence, a bound, or ``stop_when``.

        Parameters
        ----------
        initial:
            Starting configuration.
        max_steps / max_time:
            Upper bounds on the number of reactions fired / simulated time.
        track:
            Species whose counts should be recorded into a trajectory.
        record_every:
            Record a trajectory point every this many reaction events.
        stop_when:
            Optional predicate on the current configuration; the run stops as
            soon as it returns True.
        """
        core = SimulatorCore(self.crn, GillespiePolicy(), rng=self.rng)
        result = core.run(
            initial,
            max_steps=max_steps,
            max_time=max_time,
            track=track,
            record_every=record_every,
            stop_when=stop_when,
        )
        return GillespieResult(
            final_configuration=result.final_configuration,
            final_time=result.final_time,
            steps=result.steps,
            silent=result.silent,
            trajectory=result.trajectory,
        )

    def run_on_input(self, x: Sequence[int], **kwargs) -> GillespieResult:
        """Simulate from the CRN's initial configuration for input ``x``."""
        return self.run(self.crn.initial_configuration(x), **kwargs)

    def expected_completion_time(
        self,
        x: Sequence[int],
        trials: int = 20,
        max_steps: int = 1_000_000,
    ) -> float:
        """Monte-Carlo estimate of the expected time until the CRN falls silent.

        Returns ``math.inf`` if any trial fails to fall silent within
        ``max_steps`` reactions (e.g. for CRNs with catalytic loops).
        """
        total = 0.0
        for _ in range(trials):
            result = self.run_on_input(x, max_steps=max_steps)
            if not result.silent:
                return math.inf
            total += result.final_time
        return total / trials
