"""Species and the small expression DSL used to build reactions.

A :class:`Species` is an immutable named chemical species.  Species support a
light-weight arithmetic DSL so that reactions read like chemistry::

    X, Y = species("X Y")
    rxn = (2 * X) >> (3 * Y)        # 2X -> 3Y
    rxn = (X + Y) >> Y              # X + Y -> Y

The DSL builds :class:`Expression` objects (integer linear combinations of
species) and the ``>>`` operator produces a :class:`repro.crn.reaction.Reaction`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Tuple, Union


@dataclass(frozen=True, order=True)
class Species:
    """An immutable chemical species identified by its name.

    Parameters
    ----------
    name:
        The species name.  Names are compared literally; two species with the
        same name are the same species.
    """

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("species name must be a non-empty string")
        if any(ch.isspace() for ch in self.name):
            raise ValueError(f"species name may not contain whitespace: {self.name!r}")

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name

    def __repr__(self) -> str:
        return f"Species({self.name!r})"

    # -- expression DSL -----------------------------------------------------

    def __add__(self, other: Union["Species", "Expression", int]) -> "Expression":
        return Expression({self: 1}) + other

    def __radd__(self, other: Union["Species", "Expression", int]) -> "Expression":
        return Expression({self: 1}) + other

    def __mul__(self, coefficient: int) -> "Expression":
        return Expression({self: 1}) * coefficient

    def __rmul__(self, coefficient: int) -> "Expression":
        return Expression({self: 1}) * coefficient

    def __rshift__(self, other: Union["Species", "Expression", int]) -> "Reaction":
        return Expression({self: 1}) >> other

    def __rrshift__(self, other: Union["Species", "Expression", int]) -> "Reaction":
        return _as_expression(other) >> Expression({self: 1})

    def renamed(self, name: str) -> "Species":
        """Return a species identical to this one but with a different name."""
        return Species(name)

    def with_prefix(self, prefix: str) -> "Species":
        """Return this species with ``prefix`` prepended to its name."""
        return Species(prefix + self.name)


class Expression:
    """An integer linear combination of species, e.g. ``2X + Y``.

    Expressions are the reactant / product sides of reactions.  The empty
    expression (``Expression({})``) denotes "nothing" and can be written with
    the integer literal ``0`` in the DSL, as in ``(K + Y) >> 0`` for the
    reaction ``K + Y -> (nothing)``.
    """

    __slots__ = ("_counts",)

    def __init__(self, counts: Mapping[Species, int] | None = None) -> None:
        cleaned: Dict[Species, int] = {}
        for sp, count in dict(counts or {}).items():
            if not isinstance(sp, Species):
                raise TypeError(f"expression keys must be Species, got {type(sp).__name__}")
            if not isinstance(count, int):
                raise TypeError(f"stoichiometric coefficients must be int, got {count!r}")
            if count < 0:
                raise ValueError(f"stoichiometric coefficients must be nonnegative, got {count}")
            if count > 0:
                cleaned[sp] = count
        self._counts = cleaned

    # -- accessors -----------------------------------------------------------

    @property
    def counts(self) -> Dict[Species, int]:
        """A copy of the species -> coefficient mapping."""
        return dict(self._counts)

    def species(self) -> Tuple[Species, ...]:
        """All species that appear with a positive coefficient, sorted by name."""
        return tuple(sorted(self._counts, key=lambda s: s.name))

    def count(self, sp: Species) -> int:
        """The coefficient of ``sp`` in this expression (0 if absent)."""
        return self._counts.get(sp, 0)

    def total(self) -> int:
        """The total molecularity (sum of coefficients)."""
        return sum(self._counts.values())

    def is_empty(self) -> bool:
        """True if this is the empty (zero) expression."""
        return not self._counts

    # -- algebra -------------------------------------------------------------

    def __add__(self, other: Union["Expression", Species, int]) -> "Expression":
        other_expr = _as_expression(other)
        merged = dict(self._counts)
        for sp, count in other_expr._counts.items():
            merged[sp] = merged.get(sp, 0) + count
        return Expression(merged)

    __radd__ = __add__

    def __mul__(self, coefficient: int) -> "Expression":
        if not isinstance(coefficient, int):
            raise TypeError("expressions can only be scaled by integers")
        if coefficient < 0:
            raise ValueError("expressions cannot be scaled by negative integers")
        return Expression({sp: count * coefficient for sp, count in self._counts.items()})

    __rmul__ = __mul__

    def __rshift__(self, other: Union["Expression", Species, int]) -> "Reaction":
        from repro.crn.reaction import Reaction

        return Reaction(self, _as_expression(other))

    def __rrshift__(self, other: Union["Expression", Species, int]) -> "Reaction":
        from repro.crn.reaction import Reaction

        return Reaction(_as_expression(other), self)

    # -- comparisons ---------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, int) and other == 0:
            return self.is_empty()
        if not isinstance(other, Expression):
            return NotImplemented
        return self._counts == other._counts

    def __hash__(self) -> int:
        return hash(frozenset(self._counts.items()))

    def __str__(self) -> str:
        if not self._counts:
            return "(nothing)"
        parts: List[str] = []
        for sp in self.species():
            count = self._counts[sp]
            parts.append(sp.name if count == 1 else f"{count}{sp.name}")
        return " + ".join(parts)

    def __repr__(self) -> str:
        return f"Expression({self!s})"


def _as_expression(value: Union[Expression, Species, int, Mapping[Species, int]]) -> Expression:
    """Coerce a DSL value into an :class:`Expression`."""
    if isinstance(value, Expression):
        return value
    if isinstance(value, Species):
        return Expression({value: 1})
    if isinstance(value, int):
        if value != 0:
            raise ValueError("only the integer 0 (meaning 'nothing') may appear in a reaction")
        return Expression({})
    if isinstance(value, Mapping):
        return Expression(value)
    raise TypeError(f"cannot interpret {value!r} as a reaction expression")


def species(names: Union[str, Iterable[str]]) -> Tuple[Species, ...]:
    """Create several species at once.

    ``names`` is either a whitespace-separated string (``"X1 X2 Y"``) or an
    iterable of name strings.  Returns a tuple of :class:`Species` in the same
    order, so it can be unpacked::

        X1, X2, Y = species("X1 X2 Y")
    """
    if isinstance(names, str):
        name_list = names.split()
    else:
        name_list = list(names)
    if not name_list:
        raise ValueError("species() requires at least one name")
    return tuple(Species(name) for name in name_list)
