"""Stable-computation verification: exhaustive for small inputs, randomized beyond.

The exhaustive check (:func:`repro.crn.reachability.check_stable_computation_at`)
is exact but only feasible while the reachability graph is small.  For larger
inputs the fair random scheduler is run repeatedly; every run of a correct CRN
converges to the stable output with probability 1 (footnote 2 of the paper),
so repeated disagreement is strong evidence of an incorrect construction while
repeated agreement is strong evidence of correctness (it is not a proof, which
is documented in DESIGN.md as the one substitution this reproduction makes).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.api.config import RunConfig
from repro.crn.network import CRN
from repro.crn.reachability import check_stable_computation_at
from repro.sim.registry import check_engine, get_engine
from repro.sim.runner import run_many


@dataclass
class InputVerification:
    """Verification outcome for a single input vector."""

    input_value: Tuple[int, ...]
    expected: int
    method: str
    passed: bool
    observed_outputs: Tuple[int, ...] = ()
    detail: str = ""


@dataclass
class VerificationReport:
    """Aggregated verification outcomes over a set of inputs."""

    crn_name: str
    function_name: str
    results: List[InputVerification] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """True if every input verified successfully."""
        return all(result.passed for result in self.results)

    def failures(self) -> List[InputVerification]:
        """The inputs that failed verification."""
        return [result for result in self.results if not result.passed]

    def describe(self) -> str:
        """A human-readable summary table."""
        lines = [f"{self.crn_name} computing {self.function_name}: "
                 f"{'PASS' if self.passed else 'FAIL'} ({len(self.results)} inputs)"]
        for result in self.results:
            status = "ok" if result.passed else "FAIL"
            lines.append(
                f"  {result.input_value} -> expected {result.expected} "
                f"[{result.method}] {status} {result.detail}"
            )
        return "\n".join(lines)


def default_input_grid(dimension: int, max_value: int = 3) -> List[Tuple[int, ...]]:
    """The default verification grid ``[0, max_value]^d``."""
    import itertools

    return list(itertools.product(range(max_value + 1), repeat=dimension))


def verify_stable_computation(
    crn: CRN,
    func: Callable[[Sequence[int]], int],
    inputs: Optional[Iterable[Sequence[int]]] = None,
    method: str = "auto",
    exhaustive_limit: int = 20_000,
    trials: int = 8,
    max_steps: int = 400_000,
    seed: Optional[int] = 7,
    function_name: str = "",
    engine: str = "python",
    config: Optional[RunConfig] = None,
) -> VerificationReport:
    """Verify that ``crn`` stably computes ``func`` on the given inputs.

    Parameters
    ----------
    method:
        ``"exhaustive"`` forces the exact reachability check, ``"simulation"``
        forces the randomized fair-scheduler check, and ``"auto"`` (default)
        tries the exhaustive check first and falls back to simulation when the
        reachable set exceeds ``exhaustive_limit``.
    engine:
        Simulation engine for the randomized path, resolved through the
        registry of :mod:`repro.sim.registry`: ``"python"`` (default, the
        scalar fair scheduler, preserving historical seeded behaviour),
        ``"vectorized"`` (the numpy batch engine of :mod:`repro.sim.engine`,
        which runs all trials simultaneously and makes repeated-run evidence
        cheap to gather at large populations), or any engine registered via
        :func:`repro.sim.registry.register_engine`.
    config:
        A ready-made :class:`~repro.api.config.RunConfig` for the randomized
        path; takes precedence over the ``trials`` / ``max_steps`` / ``seed``
        / ``engine`` keywords.

    Note
    ----
    Unlike :func:`repro.sim.runner.sweep_inputs`, every input deliberately
    reuses the *same* config (and hence the same per-trial seed sequence):
    the check on each input is pass/fail against a fixed expected value, not
    statistical aggregation across inputs, and reusing the config keeps
    seeded verification runs bit-for-bit identical to the historical
    behaviour.  Pass ``config.per_input(...)`` configs in a loop if
    cross-input independence matters for your analysis.
    """
    if method not in ("auto", "exhaustive", "simulation"):
        raise ValueError(f"unknown verification method {method!r}")
    if config is None:
        config = RunConfig(trials=trials, max_steps=max_steps, seed=seed, engine=engine)
    check_engine(config.engine)
    if method != "exhaustive" and not get_engine(config.engine).supports_fair:
        # The randomized path's evidence rests on fair-scheduler semantics
        # (footnote 2 of the paper); a kinetic-only / approximate backend
        # such as "tau" samples a different (and approximated) process, so
        # letting it stand in silently would weaken the verification
        # contract.  The registry metadata exists exactly for this check.
        # method="exhaustive" never simulates, so any engine is acceptable.
        raise ValueError(
            f"engine {config.engine!r} does not implement fair-scheduler "
            f"semantics (supports_fair=False); stable-computation "
            f"verification needs a fair-capable engine such as 'python' or "
            f"'vectorized'"
        )
    if inputs is None:
        inputs = default_input_grid(crn.dimension)

    report = VerificationReport(
        crn_name=crn.name or "CRN", function_name=function_name or getattr(func, "__name__", "f")
    )

    for x in inputs:
        x = tuple(int(v) for v in x)
        expected = int(func(x))

        if method in ("auto", "exhaustive"):
            verdict = check_stable_computation_at(crn, x, expected, max_configurations=exhaustive_limit)
            if verdict.conclusive:
                report.results.append(
                    InputVerification(
                        input_value=x,
                        expected=expected,
                        method="exhaustive",
                        passed=verdict.holds,
                        detail=verdict.failure_reason,
                    )
                )
                continue
            if method == "exhaustive":
                report.results.append(
                    InputVerification(
                        input_value=x,
                        expected=expected,
                        method="exhaustive",
                        passed=False,
                        detail=verdict.failure_reason,
                    )
                )
                continue

        convergence = run_many(crn, x, config=config)
        passed = (
            convergence.all_silent_or_converged
            and convergence.output_unanimous
            and convergence.outputs[0] == expected
        )
        detail = ""
        if not convergence.all_silent_or_converged:
            detail = "some runs did not converge within the step budget"
        elif not convergence.output_unanimous:
            detail = f"runs disagreed: {sorted(set(convergence.outputs))}"
        elif convergence.outputs[0] != expected:
            detail = f"converged to {convergence.outputs[0]}"
        report.results.append(
            InputVerification(
                input_value=x,
                expected=expected,
                method="simulation",
                passed=passed,
                observed_outputs=tuple(convergence.outputs),
                detail=detail,
            )
        )
    return report
