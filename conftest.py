"""Root pytest configuration.

Registers the ``--benchmark`` flag: the throughput suites under
``benchmarks/`` are skipped by default so the tier-1 run (``pytest -x -q``)
stays fast, and opt in with::

    PYTHONPATH=src python -m pytest benchmarks --benchmark

Also registers the ``statistical`` marker: the cross-engine KS equivalence
gates in ``tests/test_statistical_equivalence.py`` run as part of the normal
suite (they are deterministic on a fixed seed matrix) and CI additionally
selects them alone with ``-m statistical`` for the dedicated
statistical-equivalence job.
"""


def pytest_addoption(parser):
    parser.addoption(
        "--benchmark",
        action="store_true",
        default=False,
        help="run the benchmark suites under benchmarks/ (skipped by default)",
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "statistical: cross-engine statistical equivalence gates "
        "(two-sample KS on a fixed seed matrix; select alone with -m statistical)",
    )
