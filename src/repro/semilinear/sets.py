"""Semilinear subsets of N^d as Boolean combinations of threshold and mod sets.

Definition 2.5 of the paper: a set ``S ⊆ N^d`` is semilinear if it is a finite
Boolean combination (union, intersection, complement) of

* threshold sets ``{x : a·x ≥ b}`` with ``a ∈ Z^d``, ``b ∈ Z``, and
* mod sets ``{x : a·x ≡ b (mod c)}`` with ``a ∈ Z^d``, ``b ∈ Z``, ``c ∈ N+``.

The classes here form an expression tree with membership testing, bounded
enumeration, and extraction of the threshold hyperplanes / periods needed by
the domain-decomposition machinery of Section 7.
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence, Set, Tuple


IntVector = Tuple[int, ...]


def _dot(a: Sequence[int], x: Sequence[int]) -> int:
    """Integer dot product."""
    if len(a) != len(x):
        raise ValueError(f"dimension mismatch: {len(a)} vs {len(x)}")
    return sum(ai * xi for ai, xi in zip(a, x))


class SemilinearSet(ABC):
    """Abstract base class for semilinear-set expressions over N^d."""

    dimension: int

    @abstractmethod
    def contains(self, x: Sequence[int]) -> bool:
        """True if the integer point ``x`` belongs to the set."""

    @abstractmethod
    def atoms(self) -> List["SemilinearSet"]:
        """All atomic threshold / mod sets appearing in the expression."""

    def __contains__(self, x: Sequence[int]) -> bool:
        return self.contains(x)

    # -- Boolean algebra -----------------------------------------------------

    def union(self, other: "SemilinearSet") -> "SemilinearSet":
        """The union of this set with another."""
        return Union(self, other)

    def intersection(self, other: "SemilinearSet") -> "SemilinearSet":
        """The intersection of this set with another."""
        return Intersection(self, other)

    def complement(self) -> "SemilinearSet":
        """The complement of this set within N^d."""
        return Complement(self)

    def difference(self, other: "SemilinearSet") -> "SemilinearSet":
        """Set difference ``self \\ other``."""
        return Intersection(self, Complement(other))

    def __or__(self, other: "SemilinearSet") -> "SemilinearSet":
        return self.union(other)

    def __and__(self, other: "SemilinearSet") -> "SemilinearSet":
        return self.intersection(other)

    def __invert__(self) -> "SemilinearSet":
        return self.complement()

    def __sub__(self, other: "SemilinearSet") -> "SemilinearSet":
        return self.difference(other)

    # -- structure extraction --------------------------------------------------

    def threshold_atoms(self) -> List["ThresholdSet"]:
        """All threshold atoms in the expression."""
        return [atom for atom in self.atoms() if isinstance(atom, ThresholdSet)]

    def mod_atoms(self) -> List["ModSet"]:
        """All mod atoms in the expression."""
        return [atom for atom in self.atoms() if isinstance(atom, ModSet)]

    def global_period(self) -> int:
        """The lcm of all mod-set moduli appearing in the expression (1 if none)."""
        period = 1
        for atom in self.mod_atoms():
            period = _lcm(period, atom.modulus)
        return period

    # -- enumeration -----------------------------------------------------------

    def enumerate_upto(self, bound: int) -> Iterator[IntVector]:
        """Yield every member ``x`` of the set with all coordinates < ``bound``."""
        for x in itertools.product(range(bound), repeat=self.dimension):
            if self.contains(x):
                yield x

    def count_upto(self, bound: int) -> int:
        """The number of members with all coordinates < ``bound``."""
        return sum(1 for _ in self.enumerate_upto(bound))

    def is_empty_upto(self, bound: int) -> bool:
        """True if no member has all coordinates < ``bound`` (a bounded emptiness check)."""
        return next(self.enumerate_upto(bound), None) is None


def _lcm(a: int, b: int) -> int:
    import math

    return a * b // math.gcd(a, b)


@dataclass(frozen=True)
class ThresholdSet(SemilinearSet):
    """The threshold set ``{x ∈ N^d : a·x ≥ b}``."""

    coefficients: IntVector
    bound: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "coefficients", tuple(int(c) for c in self.coefficients))
        object.__setattr__(self, "dimension", len(self.coefficients))

    def contains(self, x: Sequence[int]) -> bool:
        return _dot(self.coefficients, x) >= self.bound

    def atoms(self) -> List[SemilinearSet]:
        return [self]

    def boundary_hyperplane(self) -> Tuple[IntVector, int]:
        """The pair ``(a, b)`` describing the boundary ``a·x = b``."""
        return self.coefficients, self.bound

    def __str__(self) -> str:
        terms = " + ".join(f"{c}*x{i+1}" for i, c in enumerate(self.coefficients) if c != 0) or "0"
        return f"{{x : {terms} >= {self.bound}}}"


@dataclass(frozen=True)
class ModSet(SemilinearSet):
    """The mod set ``{x ∈ N^d : a·x ≡ b (mod c)}``."""

    coefficients: IntVector
    residue: int
    modulus: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "coefficients", tuple(int(c) for c in self.coefficients))
        object.__setattr__(self, "dimension", len(self.coefficients))
        if self.modulus <= 0:
            raise ValueError(f"mod-set modulus must be positive, got {self.modulus}")

    def contains(self, x: Sequence[int]) -> bool:
        return _dot(self.coefficients, x) % self.modulus == self.residue % self.modulus

    def atoms(self) -> List[SemilinearSet]:
        return [self]

    def __str__(self) -> str:
        terms = " + ".join(f"{c}*x{i+1}" for i, c in enumerate(self.coefficients) if c != 0) or "0"
        return f"{{x : {terms} ≡ {self.residue} (mod {self.modulus})}}"


@dataclass(frozen=True)
class UniversalSet(SemilinearSet):
    """All of N^d."""

    dim: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "dimension", self.dim)

    def contains(self, x: Sequence[int]) -> bool:
        if len(x) != self.dim:
            raise ValueError(f"dimension mismatch: expected {self.dim}, got {len(x)}")
        return True

    def atoms(self) -> List[SemilinearSet]:
        return []

    def __str__(self) -> str:
        return f"N^{self.dim}"


@dataclass(frozen=True)
class EmptySet(SemilinearSet):
    """The empty subset of N^d."""

    dim: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "dimension", self.dim)

    def contains(self, x: Sequence[int]) -> bool:
        if len(x) != self.dim:
            raise ValueError(f"dimension mismatch: expected {self.dim}, got {len(x)}")
        return False

    def atoms(self) -> List[SemilinearSet]:
        return []

    def __str__(self) -> str:
        return "∅"


class Union(SemilinearSet):
    """Union of finitely many semilinear sets."""

    def __init__(self, *members: SemilinearSet) -> None:
        if not members:
            raise ValueError("Union requires at least one member")
        dims = {m.dimension for m in members}
        if len(dims) != 1:
            raise ValueError(f"all members of a Union must share a dimension, got {dims}")
        self.members: Tuple[SemilinearSet, ...] = tuple(members)
        self.dimension = members[0].dimension

    def contains(self, x: Sequence[int]) -> bool:
        return any(m.contains(x) for m in self.members)

    def atoms(self) -> List[SemilinearSet]:
        out: List[SemilinearSet] = []
        for m in self.members:
            out.extend(m.atoms())
        return out

    def __str__(self) -> str:
        return "(" + " ∪ ".join(str(m) for m in self.members) + ")"


class Intersection(SemilinearSet):
    """Intersection of finitely many semilinear sets."""

    def __init__(self, *members: SemilinearSet) -> None:
        if not members:
            raise ValueError("Intersection requires at least one member")
        dims = {m.dimension for m in members}
        if len(dims) != 1:
            raise ValueError(f"all members of an Intersection must share a dimension, got {dims}")
        self.members: Tuple[SemilinearSet, ...] = tuple(members)
        self.dimension = members[0].dimension

    def contains(self, x: Sequence[int]) -> bool:
        return all(m.contains(x) for m in self.members)

    def atoms(self) -> List[SemilinearSet]:
        out: List[SemilinearSet] = []
        for m in self.members:
            out.extend(m.atoms())
        return out

    def __str__(self) -> str:
        return "(" + " ∩ ".join(str(m) for m in self.members) + ")"


class Complement(SemilinearSet):
    """Complement of a semilinear set within N^d."""

    def __init__(self, member: SemilinearSet) -> None:
        self.member = member
        self.dimension = member.dimension

    def contains(self, x: Sequence[int]) -> bool:
        return not self.member.contains(x)

    def atoms(self) -> List[SemilinearSet]:
        return self.member.atoms()

    def __str__(self) -> str:
        return f"¬{self.member}"


def equality_set(coefficients: Sequence[int], value: int) -> SemilinearSet:
    """The set ``{x : a·x = value}`` expressed as an intersection of two thresholds."""
    coefficients = tuple(int(c) for c in coefficients)
    negated = tuple(-c for c in coefficients)
    return Intersection(
        ThresholdSet(coefficients, value),
        ThresholdSet(negated, -value),
    )


def box_set(lower: Sequence[int], upper: Sequence[int]) -> SemilinearSet:
    """The axis-aligned box ``{x : lower ≤ x ≤ upper}`` (inclusive) as a semilinear set."""
    lower = tuple(int(v) for v in lower)
    upper = tuple(int(v) for v in upper)
    if len(lower) != len(upper):
        raise ValueError("lower and upper bounds must have the same dimension")
    dimension = len(lower)
    members: List[SemilinearSet] = []
    for i in range(dimension):
        unit = tuple(1 if j == i else 0 for j in range(dimension))
        neg_unit = tuple(-1 if j == i else 0 for j in range(dimension))
        members.append(ThresholdSet(unit, lower[i]))
        members.append(ThresholdSet(neg_unit, -upper[i]))
    return Intersection(*members)
