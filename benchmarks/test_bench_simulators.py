"""Simulator throughput benchmarks (Gillespie SSA vs. fair scheduler).

Not a paper figure, but the substrate ablation DESIGN.md calls out: reaction
events per second for both schedulers across population sizes, and the cost of
exhaustive reachability-based verification versus randomized simulation for the
same small instance.
"""

import random

import pytest

from repro.crn.reachability import check_stable_computation_at
from repro.functions.catalog import minimum_spec
from repro.sim.fair import FairScheduler
from repro.sim.gillespie import GillespieSimulator
from repro.verify.stable import verify_stable_computation


POPULATIONS = [10, 100, 1000]


@pytest.mark.parametrize("population", POPULATIONS)
def test_gillespie_throughput(benchmark, population):
    crn = minimum_spec().known_crn

    def run():
        simulator = GillespieSimulator(crn, rng=random.Random(1))
        return simulator.run_on_input((population, population))

    result = benchmark(run)
    assert result.silent
    assert result.output_count(crn) == population


@pytest.mark.parametrize("population", POPULATIONS)
def test_fair_scheduler_throughput(benchmark, population):
    crn = minimum_spec().known_crn

    def run():
        scheduler = FairScheduler(crn, rng=random.Random(1))
        return scheduler.run_on_input((population, population))

    result = benchmark(run)
    assert result.silent
    assert crn.output_count(result.final_configuration) == population


def test_exhaustive_vs_simulation_verification(benchmark):
    crn = minimum_spec().known_crn

    def run():
        exhaustive = check_stable_computation_at(crn, (6, 6), 6)
        simulated = verify_stable_computation(
            crn, lambda x: min(x), inputs=[(6, 6)], method="simulation", trials=3
        )
        return exhaustive, simulated

    exhaustive, simulated = benchmark.pedantic(run, rounds=1, iterations=1)
    assert exhaustive.holds and simulated.passed
    print(f"\n[ablation] exhaustive check explored {exhaustive.reachable_count} configurations; "
          "the randomized check ran 3 fair-scheduler trials")
