"""Lemma 4.1: contradiction sequences ruling out oblivious computability.

Lemma 4.1: if there is an increasing sequence ``a_1 < a_2 < ...`` such that for
all ``i < j`` there is ``Δ_ij`` with

    f(a_i + Δ_ij) - f(a_i)  >  f(a_j + Δ_ij) - f(a_j),

then ``f`` is not obliviously-computable.  The proof pumps a reaction sequence
from the smaller input to the larger one (via Dickson's lemma) to force an
output-oblivious CRN to overproduce.

This module provides

* :func:`verify_contradiction_pair` / :func:`verify_contradiction_sequence` —
  exact checks of the Lemma 4.1 inequality for explicit witnesses;
* :func:`max_contradiction_witness` — the paper's explicit witness for ``max``
  (``a_i = (i, 0)``, ``Δ_ij = (0, j)``, Fig. 6);
* :func:`find_contradiction_witness` — a bounded search for a *linear* witness
  family ``a_i = base + i·step`` with ``Δ_ij`` depending only on ``j``, which
  covers every counterexample used in the paper (``max``, the depressed
  diagonal of Eq. (2), ...) and provides the negative evidence used by the
  Theorem 5.4 checker.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Tuple


IntPoint = Tuple[int, ...]


@dataclass(frozen=True)
class ContradictionWitness:
    """A linear family witnessing the Lemma 4.1 condition.

    The witness describes ``a_i = base + i * step`` for ``i = 1, 2, ...`` and
    ``Δ_ij = delta_base + j * delta_step`` (depending only on ``j``).  The
    ``checked_terms`` attribute records how many pairs ``i < j`` were verified
    exactly.
    """

    base: IntPoint
    step: IntPoint
    delta_base: IntPoint
    delta_step: IntPoint
    checked_terms: int

    def a(self, i: int) -> IntPoint:
        """The i-th sequence element ``a_i`` (1-based)."""
        return tuple(b + i * s for b, s in zip(self.base, self.step))

    def delta(self, j: int) -> IntPoint:
        """The displacement ``Δ_ij`` used for the pair ``(i, j)`` (depends only on j)."""
        return tuple(b + j * s for b, s in zip(self.delta_base, self.delta_step))

    def describe(self) -> str:
        """A human-readable description of the witness family."""
        return (
            f"a_i = {self.base} + i*{self.step},  Δ_ij = {self.delta_base} + j*{self.delta_step} "
            f"(verified on {self.checked_terms} terms)"
        )


def verify_contradiction_pair(
    func: Callable[[Sequence[int]], int],
    a_small: Sequence[int],
    a_large: Sequence[int],
    delta: Sequence[int],
) -> bool:
    """Check the Lemma 4.1 inequality for one pair ``a_i <= a_j`` and one ``Δ``."""
    a_small = tuple(int(v) for v in a_small)
    a_large = tuple(int(v) for v in a_large)
    delta = tuple(int(v) for v in delta)
    if not all(s <= l for s, l in zip(a_small, a_large)):
        raise ValueError("the first point must be componentwise <= the second")
    left = int(func(tuple(a + d for a, d in zip(a_small, delta)))) - int(func(a_small))
    right = int(func(tuple(a + d for a, d in zip(a_large, delta)))) - int(func(a_large))
    return left > right


def verify_contradiction_sequence(
    func: Callable[[Sequence[int]], int],
    points: Sequence[Sequence[int]],
    deltas: Callable[[int, int], Sequence[int]],
) -> bool:
    """Check the Lemma 4.1 condition for an explicit finite prefix of a sequence.

    ``points`` is the increasing prefix ``a_1, ..., a_k``; ``deltas(i, j)``
    returns ``Δ_ij`` for 0-based indices ``i < j``.
    """
    points = [tuple(int(v) for v in p) for p in points]
    for earlier, later in zip(points, points[1:]):
        if not all(a <= b for a, b in zip(earlier, later)) or earlier == later:
            raise ValueError("the sequence must be strictly increasing (componentwise <=, not equal)")
    for i in range(len(points)):
        for j in range(i + 1, len(points)):
            if not verify_contradiction_pair(func, points[i], points[j], deltas(i, j)):
                return False
    return True


def verify_witness(
    func: Callable[[Sequence[int]], int],
    witness: ContradictionWitness,
    terms: int = 6,
) -> bool:
    """Re-verify a :class:`ContradictionWitness` on the first ``terms`` sequence elements."""
    points = [witness.a(i) for i in range(1, terms + 1)]
    return verify_contradiction_sequence(func, points, lambda i, j: witness.delta(j + 1))


def max_contradiction_witness(dimension: int = 2) -> ContradictionWitness:
    """The paper's explicit Lemma 4.1 witness for ``max`` (Fig. 6).

    ``a_i = (i, 0, ..., 0)`` and ``Δ_ij = (0, j, 0, ..., 0)``.
    """
    if dimension < 2:
        raise ValueError("max needs at least two inputs")
    zero = tuple([0] * dimension)
    step = tuple([1] + [0] * (dimension - 1))
    delta_step = tuple([0, 1] + [0] * (dimension - 2))
    return ContradictionWitness(
        base=zero, step=step, delta_base=zero, delta_step=delta_step, checked_terms=0
    )


def find_contradiction_witness(
    func: Callable[[Sequence[int]], int],
    dimension: int,
    direction_bound: int = 2,
    offset_bound: int = 3,
    terms: int = 5,
) -> Optional[ContradictionWitness]:
    """Bounded search for a linear Lemma 4.1 witness family.

    The search space is: base points with coordinates < ``offset_bound``,
    nonzero step directions with coordinates <= ``direction_bound``, and
    displacement families ``Δ_ij = delta_base + j*delta_step`` with small
    coordinates.  A candidate is accepted if the Lemma 4.1 inequality holds for
    every pair ``i < j`` among the first ``terms`` elements.

    Returns ``None`` when no witness is found within the bounds — which is
    evidence (not proof) that the function has no contradiction sequence, the
    "no bad sequence" part of Theorem 5.4.
    """
    coordinate_range = range(direction_bound + 1)
    nonzero_steps = [
        step
        for step in itertools.product(coordinate_range, repeat=dimension)
        if any(step)
    ]
    bases = list(itertools.product(range(offset_bound), repeat=dimension))
    delta_steps = nonzero_steps
    delta_bases = list(itertools.product(range(offset_bound), repeat=dimension))

    for step in nonzero_steps:
        for base in bases:
            for delta_step in delta_steps:
                for delta_base in delta_bases:
                    candidate = ContradictionWitness(
                        base=base,
                        step=step,
                        delta_base=delta_base,
                        delta_step=delta_step,
                        checked_terms=terms,
                    )
                    try:
                        if verify_witness(func, candidate, terms=terms):
                            return candidate
                    except ValueError:
                        continue
    return None
