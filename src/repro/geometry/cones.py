"""Polyhedral recession cones and their dimension / containment structure.

A region ``R = {x in R^d_{>=0} : S(Tx - h) >= 0}`` has recession cone
``recc(R) = {y in R^d_{>=0} : S T y >= 0}`` (Definition 7.4 and the remark
after it).  The classification of regions into *determined* (full-dimensional
recession cone) and *under-determined* (lower-dimensional) drives the whole
Section 7 argument; computing cone dimension and cone containment is what this
module does.

Dimension is computed via the standard implicit-equality characterization:
``dim C = d - rank{rows a of the constraint system : a·x = 0 for every x in C}``,
and a row is an implicit equality exactly when the LP ``max a·x`` over the cone
intersected with the unit box has optimum 0.  LPs are solved with
``scipy.optimize.linprog`` (the dimensions involved are tiny).
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.linalg import rational_nullspace, rational_rank


def _solve_lp(c, a_ub, b_ub, bounds):
    """Thin wrapper over scipy linprog (minimization) returning the result object."""
    from scipy.optimize import linprog

    return linprog(c, A_ub=a_ub, b_ub=b_ub, bounds=bounds, method="highs")


class Cone:
    """The polyhedral cone ``{x in R^d_{>=0} : A x >= 0}``.

    ``A`` is a matrix given as a sequence of integer (or rational) rows; the
    nonnegativity constraints ``x >= 0`` are always implied and do not need to
    appear in ``A``.
    """

    def __init__(self, rows: Sequence[Sequence], dimension: int) -> None:
        self.dimension = int(dimension)
        self.rows: List[Tuple[Fraction, ...]] = [
            tuple(Fraction(value) for value in row) for row in rows
        ]
        for row in self.rows:
            if len(row) != self.dimension:
                raise ValueError(
                    f"constraint row {row} has length {len(row)}, expected {self.dimension}"
                )

    # -- membership --------------------------------------------------------------

    def contains(self, vector: Sequence) -> bool:
        """True if ``vector`` is in the cone (exact rational check)."""
        v = tuple(Fraction(value) for value in vector)
        if len(v) != self.dimension:
            raise ValueError("dimension mismatch")
        if any(value < 0 for value in v):
            return False
        return all(
            sum((a * x for a, x in zip(row, v)), start=Fraction(0)) >= 0 for row in self.rows
        )

    # -- constraint system as floats (for LPs) --------------------------------------

    def _all_constraint_rows(self) -> List[List[float]]:
        """All constraints ``a·x >= 0`` including the nonnegativity rows, as floats."""
        rows = [[float(value) for value in row] for row in self.rows]
        for i in range(self.dimension):
            unit = [0.0] * self.dimension
            unit[i] = 1.0
            rows.append(unit)
        return rows

    def _all_constraint_rows_exact(self) -> List[Tuple[Fraction, ...]]:
        rows = list(self.rows)
        for i in range(self.dimension):
            rows.append(
                tuple(Fraction(1) if j == i else Fraction(0) for j in range(self.dimension))
            )
        return rows

    # -- structure -----------------------------------------------------------------

    def implicit_equalities(self, tolerance: float = 1e-9) -> List[Tuple[Fraction, ...]]:
        """The constraint rows that hold with equality on the entire cone.

        A row ``a`` is an implicit equality iff ``max a·x`` over the cone
        intersected with the box ``0 <= x <= 1`` is zero.
        """
        constraints = self._all_constraint_rows()
        exact_rows = self._all_constraint_rows_exact()
        # Feasible set for LPs: A x >= 0  <=>  -A x <= 0, plus 0 <= x <= 1.
        a_ub = [[-value for value in row] for row in constraints]
        b_ub = [0.0] * len(constraints)
        bounds = [(0.0, 1.0)] * self.dimension

        implicit: List[Tuple[Fraction, ...]] = []
        for row_floats, row_exact in zip(constraints, exact_rows):
            # maximize row·x  ==  minimize -row·x
            objective = [-value for value in row_floats]
            result = _solve_lp(objective, a_ub, b_ub, bounds)
            maximum = -result.fun if result.status == 0 else 0.0
            if maximum <= tolerance:
                implicit.append(row_exact)
        return implicit

    def dim(self) -> int:
        """The dimension of the cone (of its linear span)."""
        implicit = self.implicit_equalities()
        if not implicit:
            return self.dimension
        return self.dimension - rational_rank(implicit)

    def is_full_dimensional(self) -> bool:
        """True if ``dim == d`` — the defining property of a determined region."""
        return self.dim() == self.dimension

    def span_basis(self) -> List[Tuple[Fraction, ...]]:
        """A basis of ``span(cone)`` (the determined subspace W of Section 7.4)."""
        implicit = self.implicit_equalities()
        return rational_nullspace(implicit, self.dimension)

    def interior_vector(self, scale: int = 1000) -> Optional[Tuple[int, ...]]:
        """An integer vector strictly inside the cone (all constraints strict), if one exists.

        Solves ``max t`` subject to ``A x >= t``, ``x >= t``, ``x <= 1``; if the
        optimum is positive, the optimizer is scaled and rounded to integers,
        then verified exactly.  Returns ``None`` when the cone has empty
        interior (i.e. it is not full-dimensional).
        """
        constraints = self._all_constraint_rows()
        n = self.dimension
        # Variables: x (n of them) and t.  Maximize t.
        # Constraints: -A x + t <= 0  for each row; x <= 1 handled via bounds.
        a_ub = []
        b_ub = []
        for row in constraints:
            a_ub.append([-value for value in row] + [1.0])
            b_ub.append(0.0)
        bounds = [(0.0, 1.0)] * n + [(None, 1.0)]
        objective = [0.0] * n + [-1.0]
        result = _solve_lp(objective, a_ub, b_ub, bounds)
        if result.status != 0 or -result.fun <= 1e-9:
            return None
        x = result.x[:n]
        candidate = tuple(int(round(value * scale)) + 1 for value in x)
        if self.contains(candidate) and self._strictly_inside(candidate):
            return candidate
        # Retry with a larger scale before giving up.
        candidate = tuple(int(round(value * scale * scale)) + 1 for value in x)
        if self.contains(candidate) and self._strictly_inside(candidate):
            return candidate
        return None

    def _strictly_inside(self, vector: Sequence[int]) -> bool:
        v = tuple(Fraction(value) for value in vector)
        if any(value <= 0 for value in v):
            return False
        return all(
            sum((a * x for a, x in zip(row, v)), start=Fraction(0)) > 0 for row in self.rows
        )

    def positive_vector(self) -> Optional[Tuple[int, ...]]:
        """An integer vector in the cone with every coordinate strictly positive, if any.

        This witnesses the *eventual* property of a region (Definition 7.10):
        the region is unbounded in all inputs iff its recession cone contains a
        strictly positive vector.
        """
        constraints = self._all_constraint_rows()
        n = self.dimension
        a_ub = []
        b_ub = []
        for row in constraints:
            a_ub.append([-value for value in row] + [0.0])
            b_ub.append(0.0)
        # x_i >= t for every i.
        for i in range(n):
            row = [0.0] * n
            row[i] = -1.0
            a_ub.append(row + [1.0])
            b_ub.append(0.0)
        bounds = [(0.0, 1.0)] * n + [(None, 1.0)]
        objective = [0.0] * n + [-1.0]
        result = _solve_lp(objective, a_ub, b_ub, bounds)
        if result.status != 0 or -result.fun <= 1e-9:
            return None
        scale = int(2.0 / max(-result.fun, 1e-6)) + 2
        candidate = tuple(max(1, int(round(value * scale))) for value in result.x[:n])
        if self.contains(candidate):
            return candidate
        bigger = tuple(value * 10 for value in candidate)
        return bigger if self.contains(bigger) else None

    def contains_cone(self, other: "Cone", tolerance: float = 1e-9) -> bool:
        """True if ``other ⊆ self`` (used for the neighbor relation, Definition 7.11).

        Checked constraint by constraint: ``other ⊆ self`` iff for every
        constraint ``a·x >= 0`` of ``self``, the minimum of ``a·x`` over
        ``other`` intersected with the unit box is 0 (it cannot be negative).
        """
        if other.dimension != self.dimension:
            raise ValueError("cones live in different dimensions")
        other_constraints = other._all_constraint_rows()
        a_ub = [[-value for value in row] for row in other_constraints]
        b_ub = [0.0] * len(other_constraints)
        bounds = [(0.0, 1.0)] * self.dimension
        for row in self.rows:
            objective = [float(value) for value in row]
            result = _solve_lp(objective, a_ub, b_ub, bounds)
            if result.status != 0:
                return False
            if result.fun < -tolerance:
                return False
        return True

    # -- display -------------------------------------------------------------------

    def __repr__(self) -> str:
        return f"Cone(dimension={self.dimension}, constraints={len(self.rows)})"
