"""Endpoint handlers: the JSON API surface over the Workbench/lab stack.

Pure routing + translation: every handler parses a request with the
:mod:`repro.serve.protocol` schema helpers, delegates the actual work to the
existing layers (``repro.lab`` cells on the worker pool, the engine registry,
the verify harness), and renders a deterministic JSON payload.  No simulation
logic lives here.

The simulate endpoint is where the **cache memo contract** is visible: a
request denotes one campaign cell (:func:`repro.serve.jobs.single_cell`), the
cell routes through :meth:`~repro.serve.jobs.JobManager.execute_cell`, and
the response body is the canonical rendering of the cell's *deterministic*
row — so a cache hit and the miss that populated it are byte-identical, with
the provenance carried in the ``X-Repro-Cache`` header instead of the body.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.api.config import RunConfig
from repro.lab.cache import CODE_SALT, ResultCache, cell_cache_key, spec_fingerprint
from repro.lab.campaign import Campaign, SweepGrid, spec_factory_names
from repro.obs.metrics import PROMETHEUS_CONTENT_TYPE, render_prometheus
from repro.obs.provenance import run_manifest
from repro.serve.jobs import JobManager, QueueFullError, single_cell
from repro.serve.metrics import ServerMetrics
from repro.serve.protocol import (
    ApiError,
    HttpRequest,
    Response,
    parse_config,
    parse_input,
    parse_spec_ref,
)
from repro.sim.registry import check_engine, registered_engines

#: Cache-key salt namespace for expected-output memo entries: same content
#: address inputs as simulate cells, different payload shape, so the two can
#: never answer for each other.
EXPECTED_OUTPUT_SALT = CODE_SALT + "/expected-output"


class ServerState:
    """Everything the handlers share: config, cache, pool, metrics, jobs."""

    def __init__(
        self,
        config: RunConfig,
        cache: Optional[ResultCache],
        pool,
        metrics: ServerMetrics,
        jobs: JobManager,
        version: str,
        workers: int,
    ) -> None:
        self.config = config
        self.cache = cache
        self.pool = pool
        self.metrics = metrics
        self.jobs = jobs
        self.version = version
        self.workers = workers


# ---------------------------------------------------------------------------
# Worker-pool task functions (module-level: they must ride a pickle)
# ---------------------------------------------------------------------------


def expected_output_task(
    spec_name: str, strategy: str, x: Sequence[int], config_dict: Dict[str, Any]
) -> float:
    from repro.lab.executor import _built_crn
    from repro.sim.runner import estimate_expected_output

    config = RunConfig.from_dict(config_dict)
    crn = _built_crn(spec_name, strategy)
    return float(estimate_expected_output(crn, tuple(x), config=config))


def verify_task(
    spec_name: str,
    strategy: str,
    inputs: Optional[List[Tuple[int, ...]]],
    method: str,
    exhaustive_limit: int,
    config_dict: Dict[str, Any],
) -> Dict[str, Any]:
    from repro.lab.campaign import resolve_spec
    from repro.lab.executor import _built_crn
    from repro.verify.stable import verify_stable_computation

    spec = resolve_spec(spec_name)
    config = RunConfig.from_dict(config_dict)
    crn = _built_crn(spec_name, strategy)
    report = verify_stable_computation(
        crn,
        spec,
        inputs=inputs,
        method=method,
        exhaustive_limit=exhaustive_limit,
        function_name=spec.name,
        config=config,
    )
    return {
        "crn_name": report.crn_name,
        "function_name": report.function_name,
        "passed": report.passed,
        "results": [
            {
                "input": list(result.input_value),
                "expected": result.expected,
                "method": result.method,
                "passed": result.passed,
                "observed_outputs": list(result.observed_outputs),
                "detail": result.detail,
            }
            for result in report.results
        ],
    }


# ---------------------------------------------------------------------------
# Handlers
# ---------------------------------------------------------------------------


async def handle_health(state: ServerState, request: HttpRequest) -> Response:
    return Response(payload={"status": "ok", "version": state.version})


async def handle_engines(state: ServerState, request: HttpRequest) -> Response:
    return Response(
        payload={"engines": [info.to_dict() for info in registered_engines()]}
    )


async def handle_stats(state: ServerState, request: HttpRequest) -> Response:
    payload = state.metrics.snapshot()
    payload["server"] = {
        "version": state.version,
        "workers": state.workers,
        "queue_limit": state.jobs.queue_limit,
        "pending_cells": state.jobs.pending_cells,
        "jobs_tracked": len(state.jobs.jobs),
    }
    payload["cache"]["enabled"] = state.cache is not None
    payload["cache"]["root"] = state.cache.root if state.cache is not None else None
    payload["provenance"] = run_manifest(
        config=state.config, extra={"workers": state.workers}
    )
    return Response(payload=payload)


async def handle_metrics(state: ServerState, request: HttpRequest) -> Response:
    """Prometheus text exposition of the server's metrics registry.

    Rendered from the *same* registry ``/v1/stats`` snapshots, including the
    :class:`~repro.lab.cache.ResultCache` hit/miss and latency series when the
    server owns a cache.
    """
    state.metrics.touch()
    return Response(
        body=render_prometheus(state.metrics.registry).encode("utf-8"),
        headers={"Content-Type": PROMETHEUS_CONTENT_TYPE},
    )


async def handle_compile(state: ServerState, request: HttpRequest) -> Response:
    data = request.json()
    spec_name, spec, strategy = parse_spec_ref(data)
    from repro.lab.executor import _built_crn  # per-process CRN memo

    loop = asyncio.get_running_loop()
    try:
        crn = await loop.run_in_executor(None, _built_crn, spec_name, strategy)
    except (ValueError, NotImplementedError) as exc:
        raise ApiError(422, f"cannot build a CRN for spec {spec_name!r}: {exc}") from None
    fingerprint = await loop.run_in_executor(None, spec_fingerprint, spec)
    return Response(
        payload={
            "spec": spec_name,
            "strategy": strategy,
            "dimension": spec.dimension,
            "fingerprint": fingerprint,
            "crn_name": crn.name,
            "reactions": len(crn.reactions),
            "species": len(crn.species()),
        }
    )


async def handle_simulate(state: ServerState, request: HttpRequest) -> Response:
    data = request.json()
    spec_name, spec, strategy = parse_spec_ref(data)
    config = parse_config(data, state.config)
    x = parse_input(data, spec.dimension)
    if config.engine != "auto":
        _check_engine_400(config.engine)
    cell = single_cell(spec_name, strategy, x, config)
    row, hit = await state.jobs.execute_cell(cell)
    if not row.ok:
        raise ApiError(500, f"simulation failed: {row.error}")
    return Response(
        payload=row.deterministic_dict(),
        headers={"X-Repro-Cache": "hit" if hit else "miss"},
    )


async def handle_expected_output(state: ServerState, request: HttpRequest) -> Response:
    data = request.json()
    spec_name, spec, strategy = parse_spec_ref(data)
    config = parse_config(data, state.config)
    x = parse_input(data, spec.dimension)
    if config.engine != "auto":
        _check_engine_400(config.engine)

    loop = asyncio.get_running_loop()
    fingerprint = await loop.run_in_executor(None, spec_fingerprint, spec)
    key = cell_cache_key(
        fingerprint, strategy, x, config.engine, config.cache_key(),
        salt=EXPECTED_OUTPUT_SALT,
    )
    cacheable = state.cache is not None and config.seed is not None
    state.metrics.record_engine_request(config.engine)
    if cacheable:
        cached = state.cache.get(key)
        if isinstance(cached, dict) and "expected_output" in cached:
            state.metrics.record_cache(True)
            return Response(payload=cached, headers={"X-Repro-Cache": "hit"})
        state.metrics.record_cache(False)

    try:
        value = await loop.run_in_executor(
            state.pool, expected_output_task, spec_name, strategy, x, config.to_dict()
        )
    except Exception as exc:  # noqa: BLE001 — pool task failures become 500s
        raise ApiError(500, f"expected_output failed: {type(exc).__name__}: {exc}") from None
    state.metrics.record_engine_executed(config.engine)
    payload = {
        "spec": spec_name,
        "strategy": strategy,
        "input": list(x),
        "engine": config.engine,
        "expected_output": value,
    }
    if cacheable:
        state.cache.put(key, payload)
    return Response(payload=payload, headers={"X-Repro-Cache": "miss"})


async def handle_verify(state: ServerState, request: HttpRequest) -> Response:
    data = request.json()
    spec_name, spec, strategy = parse_spec_ref(data)
    config = parse_config(data, state.config)
    method = data.get("method", "auto")
    if method not in ("auto", "exhaustive", "randomized"):
        raise ApiError(
            400,
            f"field 'method' must be 'auto', 'exhaustive', or 'randomized', got {method!r}",
        )
    exhaustive_limit = data.get("exhaustive_limit", 20_000)
    if isinstance(exhaustive_limit, bool) or not isinstance(exhaustive_limit, int) or exhaustive_limit < 1:
        raise ApiError(
            400, f"field 'exhaustive_limit' must be an integer >= 1, got {exhaustive_limit!r}"
        )
    inputs = None
    if data.get("inputs") is not None:
        raw_inputs = data["inputs"]
        if not isinstance(raw_inputs, list) or not raw_inputs:
            raise ApiError(400, f"field 'inputs' must be a nonempty list of input tuples")
        inputs = [
            parse_input({"inputs": entry}, spec.dimension, field_name="inputs")
            for entry in raw_inputs
        ]

    loop = asyncio.get_running_loop()
    try:
        payload = await loop.run_in_executor(
            state.pool,
            verify_task,
            spec_name,
            strategy,
            inputs,
            method,
            exhaustive_limit,
            config.to_dict(),
        )
    except Exception as exc:  # noqa: BLE001
        raise ApiError(500, f"verify failed: {type(exc).__name__}: {exc}") from None
    return Response(payload=payload)


async def handle_submit_job(state: ServerState, request: HttpRequest) -> Response:
    data = request.json()
    campaign, cells = _parse_job_campaign(data, state.config)
    queue_dir = _parse_job_backend(data)
    try:
        job = state.jobs.submit(campaign, cells, queue_dir=queue_dir)
    except QueueFullError as exc:
        raise ApiError(429, str(exc), retry_after=exc.retry_after) from None
    payload = {"id": job.id, "name": job.name, "state": job.state, "total": job.total}
    if queue_dir is not None:
        payload["backend"] = "shared-dir"
        payload["queue_dir"] = queue_dir
    return Response(status=202, payload=payload)


async def handle_job_results(state: ServerState, request: HttpRequest, job_id: str) -> Response:
    """``GET /v1/jobs/{id}/results`` — rows so far as streaming NDJSON.

    One canonical-JSON row per line, written row by row off
    :meth:`~repro.serve.jobs.Job.results_iter` with close-delimited framing —
    the server never materializes a million-cell body.  Pass
    ``X-Repro-Deterministic: 1`` to strip the provenance fields, leaving
    exactly the rows a serial run's store would dedupe to.
    """
    job = state.jobs.get(job_id)
    if job is None:
        raise ApiError(404, f"no job {job_id!r}")
    deterministic = request.headers.get("x-repro-deterministic", "0") == "1"

    def ndjson():
        from repro.serve.protocol import canonical_json

        for row in job.results_iter():
            payload = row.deterministic_dict() if deterministic else row.to_dict()
            yield canonical_json(payload) + b"\n"

    return Response(
        stream=ndjson(),
        headers={
            "Content-Type": "application/x-ndjson",
            "X-Repro-Job-State": job.state,
        },
    )


async def handle_get_job(state: ServerState, request: HttpRequest, job_id: str) -> Response:
    job = state.jobs.get(job_id)
    if job is None:
        raise ApiError(404, f"no job {job_id!r}")
    include_results = request.headers.get("x-repro-results", "1") != "0"
    return Response(payload=job.to_dict(include_results=include_results))


async def handle_cancel_job(state: ServerState, request: HttpRequest, job_id: str) -> Response:
    job = state.jobs.cancel(job_id)
    if job is None:
        raise ApiError(404, f"no job {job_id!r}")
    return Response(
        payload={"id": job.id, "state": job.state, "cancel_requested": True}
    )


def _check_engine_400(engine: str) -> None:
    try:
        check_engine(engine)
    except ValueError as exc:
        raise ApiError(400, f"field 'config.engine' invalid: {exc}") from None


def _parse_job_backend(data: Any) -> Optional[str]:
    """The optional ``backend`` / ``queue_dir`` pair on a job submission.

    Returns the queue directory for a shared-dir job, or ``None`` for the
    default local-pool fan-out.  ``backend`` may be omitted when ``queue_dir``
    is given (it implies shared-dir), but a contradiction is a 400.
    """
    queue_dir = data.get("queue_dir")
    if queue_dir is not None and (not isinstance(queue_dir, str) or not queue_dir):
        raise ApiError(400, f"field 'queue_dir' must be a nonempty string, got {queue_dir!r}")
    backend = data.get("backend")
    if backend is None:
        backend = "shared-dir" if queue_dir is not None else "local"
    if backend not in ("local", "shared-dir"):
        raise ApiError(400, f"field 'backend' must be 'local' or 'shared-dir', got {backend!r}")
    if backend == "shared-dir" and queue_dir is None:
        raise ApiError(400, "backend 'shared-dir' requires field 'queue_dir'")
    if backend == "local" and queue_dir is not None:
        raise ApiError(400, "field 'queue_dir' only applies to backend 'shared-dir'")
    return queue_dir if backend == "shared-dir" else None


def _parse_job_campaign(data: Any, default_config: RunConfig) -> Tuple[Campaign, List]:
    """Translate a job request body into a Campaign + expanded cells.

    Shape::

        {"name": "sweep-1",
         "specs": ["minimum", ["add", "general"]],
         "inputs": [[1, 2], [3, 4]]  |  "grid": "0:5",
         "engines": ["python"],
         "config": {...} | "configs": [{...}, ...],
         "seed": 11, "strategy": "auto"}
    """
    if not isinstance(data, dict):
        raise ApiError(400, f"request body must be a JSON object, got {type(data).__name__}")
    name = data.get("name", "job")
    if not isinstance(name, str) or not name:
        raise ApiError(400, f"field 'name' must be a nonempty string, got {name!r}")

    raw_specs = data.get("specs")
    if isinstance(raw_specs, str):
        raw_specs = [raw_specs]
    if not isinstance(raw_specs, list) or not raw_specs:
        raise ApiError(
            400,
            f"field 'specs' must be a nonempty list of registered spec names; "
            f"registered: {', '.join(spec_factory_names())}",
        )
    specs: List[Tuple[str, str]] = []
    default_strategy = data.get("strategy", "auto")
    if not isinstance(default_strategy, str) or not default_strategy:
        raise ApiError(400, f"field 'strategy' must be a nonempty string, got {default_strategy!r}")
    for position, entry in enumerate(raw_specs):
        if isinstance(entry, str):
            specs.append((entry, default_strategy))
        elif isinstance(entry, list) and len(entry) == 2 and all(isinstance(v, str) for v in entry):
            specs.append((entry[0], entry[1]))
        else:
            raise ApiError(
                400,
                f"field 'specs'[{position}] must be a spec name or a "
                f"[name, strategy] pair, got {entry!r}",
            )

    if (data.get("inputs") is None) == (data.get("grid") is None):
        raise ApiError(400, "exactly one of 'inputs' (list of tuples) or 'grid' (axis syntax) is required")
    if data.get("grid") is not None:
        grid_text = data["grid"]
        if not isinstance(grid_text, str) or not grid_text:
            raise ApiError(400, f"field 'grid' must be an axis string like '0:5', got {grid_text!r}")
        # dimension for single-axis replication comes from the first spec
        from repro.lab.campaign import resolve_spec

        try:
            dimension = resolve_spec(specs[0][0]).dimension
            inputs: Any = SweepGrid.parse(grid_text, dimension=dimension)
        except ValueError as exc:
            raise ApiError(400, f"field 'grid' invalid: {exc}") from None
    else:
        raw_inputs = data["inputs"]
        if not isinstance(raw_inputs, list) or not raw_inputs:
            raise ApiError(400, "field 'inputs' must be a nonempty list of input tuples")
        inputs = []
        for position, entry in enumerate(raw_inputs):
            if not isinstance(entry, (list, tuple)):
                raise ApiError(400, f"field 'inputs'[{position}] must be a list of integers, got {entry!r}")
            for value in entry:
                if isinstance(value, bool) or not isinstance(value, int) or value < 0:
                    raise ApiError(
                        400,
                        f"field 'inputs'[{position}] must hold nonnegative integers, got {value!r}",
                    )
            inputs.append(tuple(entry))

    engines = data.get("engines", [default_config.engine])
    if isinstance(engines, str):
        engines = [engines]
    if not isinstance(engines, list) or not engines or not all(isinstance(e, str) and e for e in engines):
        raise ApiError(400, f"field 'engines' must be a nonempty list of engine names, got {engines!r}")
    for engine in engines:
        if engine != "auto":
            _check_engine_400(engine)

    if data.get("config") is not None and data.get("configs") is not None:
        raise ApiError(400, "pass either 'config' (one object) or 'configs' (a list), not both")
    if data.get("configs") is not None:
        raw_configs = data["configs"]
        if not isinstance(raw_configs, list) or not raw_configs:
            raise ApiError(400, "field 'configs' must be a nonempty list of config objects")
        configs = tuple(parse_config({"config": entry}, default_config) for entry in raw_configs)
    else:
        configs = (parse_config(data, default_config),)

    seed = data.get("seed")
    if seed is not None and (isinstance(seed, bool) or not isinstance(seed, int)):
        raise ApiError(400, f"field 'seed' must be null or an integer, got {seed!r}")

    try:
        campaign = Campaign(
            name=name,
            specs=specs,
            inputs=inputs,
            engines=tuple(engines),
            configs=configs,
            seed=seed,
            default_strategy=default_strategy,
        )
        cells = campaign.expand()
    except ValueError as exc:
        raise ApiError(400, str(exc)) from None
    return campaign, cells


# ---------------------------------------------------------------------------
# Routing
# ---------------------------------------------------------------------------

_FIXED_ROUTES = {
    ("GET", "/v1/health"): (handle_health, "GET /v1/health"),
    ("GET", "/v1/engines"): (handle_engines, "GET /v1/engines"),
    ("GET", "/v1/stats"): (handle_stats, "GET /v1/stats"),
    ("GET", "/v1/metrics"): (handle_metrics, "GET /v1/metrics"),
    ("POST", "/v1/compile"): (handle_compile, "POST /v1/compile"),
    ("POST", "/v1/simulate"): (handle_simulate, "POST /v1/simulate"),
    ("POST", "/v1/expected_output"): (handle_expected_output, "POST /v1/expected_output"),
    ("POST", "/v1/verify"): (handle_verify, "POST /v1/verify"),
    ("POST", "/v1/jobs"): (handle_submit_job, "POST /v1/jobs"),
}

_KNOWN_PATHS = {path for _method, path in _FIXED_ROUTES}


async def dispatch(state: ServerState, request: HttpRequest) -> Response:
    """Route one request; every failure mode is an :class:`ApiError`."""
    route = _FIXED_ROUTES.get((request.method, request.path))
    if route is not None:
        handler, endpoint = route
        response = await handler(state, request)
        response.endpoint = endpoint
        return response

    if request.path.startswith("/v1/jobs/"):
        tail = request.path[len("/v1/jobs/"):]
        if request.method == "GET" and tail.endswith("/results"):
            job_id = tail[: -len("/results")]
            if job_id and "/" not in job_id:
                response = await handle_job_results(state, request, job_id)
                response.endpoint = "GET /v1/jobs/{id}/results"
                return response
        if request.method == "GET" and tail and "/" not in tail:
            response = await handle_get_job(state, request, tail)
            response.endpoint = "GET /v1/jobs/{id}"
            return response
        if request.method == "DELETE" and tail and "/" not in tail:
            response = await handle_cancel_job(state, request, tail)
            response.endpoint = "DELETE /v1/jobs/{id}"
            return response
        if request.method == "POST" and tail.endswith("/cancel"):
            job_id = tail[: -len("/cancel")]
            if job_id and "/" not in job_id:
                response = await handle_cancel_job(state, request, job_id)
                response.endpoint = "POST /v1/jobs/{id}/cancel"
                return response
        raise ApiError(405 if tail else 404, f"unsupported {request.method} on {request.path}")

    if request.path in _KNOWN_PATHS:
        raise ApiError(405, f"method {request.method} not allowed on {request.path}")
    raise ApiError(404, f"no route for {request.method} {request.path}")
