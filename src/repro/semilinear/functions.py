"""Semilinear functions: finite unions of affine partial functions.

Definition 2.6 of the paper: ``f : N^d -> N`` is semilinear if it is the finite
union of affine partial functions whose domains are disjoint semilinear subsets
of ``N^d``.  Gradients and offsets are rational (the paper's Lemma 7.3), but
the value at every integer point must be a nonnegative integer.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.semilinear.sets import SemilinearSet, UniversalSet


RationalVector = Tuple[Fraction, ...]


def _as_fraction_vector(values: Sequence) -> RationalVector:
    return tuple(Fraction(v) for v in values)


@dataclass(frozen=True)
class AffinePiece:
    """An affine partial function ``x -> gradient·x + offset`` on a semilinear domain."""

    domain: SemilinearSet
    gradient: RationalVector
    offset: Fraction

    def __post_init__(self) -> None:
        object.__setattr__(self, "gradient", _as_fraction_vector(self.gradient))
        object.__setattr__(self, "offset", Fraction(self.offset))
        if len(self.gradient) != self.domain.dimension:
            raise ValueError(
                f"gradient dimension {len(self.gradient)} does not match domain "
                f"dimension {self.domain.dimension}"
            )

    @property
    def dimension(self) -> int:
        """The input dimension of the piece."""
        return len(self.gradient)

    def applies_to(self, x: Sequence[int]) -> bool:
        """True if ``x`` lies in this piece's domain."""
        return self.domain.contains(x)

    def value(self, x: Sequence[int]) -> Fraction:
        """The (rational) value of the affine expression at ``x``."""
        return sum(
            (g * xi for g, xi in zip(self.gradient, x)), start=Fraction(0)
        ) + self.offset

    def __call__(self, x: Sequence[int]) -> Fraction:
        return self.value(x)

    def __str__(self) -> str:
        terms = " + ".join(
            f"{g}*x{i+1}" for i, g in enumerate(self.gradient) if g != 0
        ) or "0"
        return f"({terms} + {self.offset}) on {self.domain}"


class SemilinearFunction:
    """A total function ``N^d -> N`` given as affine pieces on disjoint domains.

    The pieces are evaluated in order; the first piece whose domain contains
    the point wins (so strictly speaking the representation is a decision
    list, which is interchangeable with the disjoint-domain form of
    Definition 2.6 and more convenient to write down).
    """

    def __init__(self, pieces: Sequence[AffinePiece], name: str = "") -> None:
        if not pieces:
            raise ValueError("a semilinear function needs at least one piece")
        dims = {p.dimension for p in pieces}
        if len(dims) != 1:
            raise ValueError(f"all pieces must share a dimension, got {dims}")
        self.pieces: Tuple[AffinePiece, ...] = tuple(pieces)
        self.dimension: int = pieces[0].dimension
        self.name = name

    # -- evaluation ------------------------------------------------------------

    def piece_at(self, x: Sequence[int]) -> AffinePiece:
        """The first piece whose domain contains ``x`` (raises if none does)."""
        for piece in self.pieces:
            if piece.applies_to(x):
                return piece
        raise ValueError(f"no piece of {self.name or 'the function'} covers the point {tuple(x)}")

    def __call__(self, x: Sequence[int]) -> int:
        value = self.piece_at(x).value(x)
        if value.denominator != 1:
            raise ValueError(
                f"semilinear function produced a non-integer value {value} at {tuple(x)}"
            )
        result = int(value)
        if result < 0:
            raise ValueError(
                f"semilinear function produced a negative value {result} at {tuple(x)}"
            )
        return result

    def as_callable(self) -> Callable[[Sequence[int]], int]:
        """The function as a plain callable on integer tuples."""
        return self.__call__

    # -- structure ---------------------------------------------------------------

    def threshold_atoms(self) -> List:
        """Every threshold atom appearing in any piece's domain."""
        atoms = []
        for piece in self.pieces:
            atoms.extend(piece.domain.threshold_atoms())
        return atoms

    def mod_atoms(self) -> List:
        """Every mod atom appearing in any piece's domain."""
        atoms = []
        for piece in self.pieces:
            atoms.extend(piece.domain.mod_atoms())
        return atoms

    def global_period(self) -> int:
        """The lcm of all mod-set moduli over all pieces (1 if there are none)."""
        import math

        period = 1
        for piece in self.pieces:
            period = period * piece.domain.global_period() // math.gcd(
                period, piece.domain.global_period()
            )
        return period

    # -- bounded checks ------------------------------------------------------------

    def is_total_upto(self, bound: int) -> bool:
        """True if some piece covers every point with coordinates < ``bound``."""
        for x in itertools.product(range(bound), repeat=self.dimension):
            if not any(piece.applies_to(x) for piece in self.pieces):
                return False
        return True

    def is_nondecreasing_upto(self, bound: int) -> bool:
        """Check the nondecreasing property on all unit steps within the bound."""
        for x in itertools.product(range(bound), repeat=self.dimension):
            fx = self(x)
            for i in range(self.dimension):
                step = tuple(v + (1 if j == i else 0) for j, v in enumerate(x))
                if max(step) < bound and self(step) < fx:
                    return False
        return True

    def disjoint_upto(self, bound: int) -> bool:
        """True if no two pieces' domains overlap within the bound."""
        for x in itertools.product(range(bound), repeat=self.dimension):
            if sum(1 for piece in self.pieces if piece.applies_to(x)) > 1:
                return False
        return True

    def agrees_with_upto(self, other: Callable[[Sequence[int]], int], bound: int) -> bool:
        """True if this function equals ``other`` on every point below the bound."""
        for x in itertools.product(range(bound), repeat=self.dimension):
            if self(x) != int(other(x)):
                return False
        return True

    # -- constructors ----------------------------------------------------------------

    @staticmethod
    def affine(gradient: Sequence, offset=0, name: str = "") -> "SemilinearFunction":
        """A globally affine function ``x -> gradient·x + offset``."""
        gradient = _as_fraction_vector(gradient)
        return SemilinearFunction(
            [AffinePiece(UniversalSet(len(gradient)), gradient, Fraction(offset))],
            name=name or "affine",
        )

    def __str__(self) -> str:
        label = self.name or "semilinear function"
        lines = [f"{label} : N^{self.dimension} -> N"]
        for piece in self.pieces:
            lines.append(f"  {piece}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"SemilinearFunction(name={self.name!r}, d={self.dimension}, pieces={len(self.pieces)})"
