"""repro.lab in five acts: declare, run in parallel, cache, resume, aggregate.

Run from the repository root::

    PYTHONPATH=src python examples/campaign_demo.py

Everything here is also reachable from a shell — the equivalent CLI line is
printed before each act.
"""

import shutil
import tempfile
import os

from repro import RunConfig, Workbench
from repro.lab import (
    Campaign,
    SweepGrid,
    format_report,
    run_campaign,
    resume_campaign,
)

scratch = tempfile.mkdtemp(prefix="repro-campaign-demo-")
cache_dir = os.path.join(scratch, "cache")
out_dir = os.path.join(scratch, "minimum-sweep")

# -- 1. Declare -------------------------------------------------------------
# python -m repro run --spec minimum --spec add --grid 0:8 --seed 7 ...
campaign = Campaign(
    name="minimum-and-add",
    specs=["minimum", "add"],                      # catalog names; FunctionSpec works too
    inputs=SweepGrid.parse("0:8", dimension=2),    # 64 inputs, shared by both specs
    engines=("auto",),                             # registry metadata picks per cell
    configs=(RunConfig(trials=4),),
    seed=7,                                        # master seed -> derived per-cell seeds
)
cells = campaign.expand()
print(f"1. declared {campaign.name!r}: {len(cells)} cells, e.g. {cells[0]}")

# -- 2. Run on a worker pool ------------------------------------------------
# ... --workers 4 --out runs/minimum-and-add
run = run_campaign(campaign, out_dir, workers=4, cache_dir=cache_dir)
print(f"2. executed {run.executed} cells on 4 workers -> {run.out_dir}")

# -- 3. Re-run: the content-addressed cache makes it free -------------------
rerun = run_campaign(campaign, os.path.join(scratch, "again"), workers=4, cache_dir=cache_dir)
print(f"3. re-run: {rerun.from_cache}/{rerun.total_cells} cells from cache, "
      f"{rerun.executed} simulated")

# -- 4. Interrupt and resume ------------------------------------------------
# kill a run mid-flight, then: python -m repro resume runs/minimum-and-add
store = os.path.join(out_dir, "results.jsonl")
with open(store) as handle:
    rows = handle.readlines()
with open(store, "w") as handle:
    handle.writelines(rows[: len(rows) // 2])      # simulate the kill
resumed = resume_campaign(out_dir, workers=4, cache_dir=None)
print(f"4. resumed: {resumed.already_done} rows survived the interrupt, "
      f"{resumed.executed} finished now")

# -- 5. Aggregate -----------------------------------------------------------
# python -m repro report runs/minimum-and-add
print("5. the report:")
print(format_report(resumed.summary))

# The same lifecycle hangs off the workbench facade:
wb = Workbench(RunConfig(trials=4, seed=7))
wb_run = wb.campaign(
    "facade-demo", ["minimum"], SweepGrid.parse("0:4", dimension=2),
    out_dir=os.path.join(scratch, "facade"), cache_dir=cache_dir,
)
print(f"\nWorkbench.campaign: {wb_run.summary.total_cells} cells, "
      f"correct rate {wb_run.summary.correct_rate:.0%}")

shutil.rmtree(scratch)
