"""Root pytest configuration.

Registers the ``--benchmark`` flag: the throughput suites under
``benchmarks/`` are skipped by default so the tier-1 run (``pytest -x -q``)
stays fast, and opt in with::

    PYTHONPATH=src python -m pytest benchmarks --benchmark
"""


def pytest_addoption(parser):
    parser.addoption(
        "--benchmark",
        action="store_true",
        default=False,
        help="run the benchmark suites under benchmarks/ (skipped by default)",
    )
