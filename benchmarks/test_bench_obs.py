"""Observability overhead gate: disabled tracing/stats must be (nearly) free.

PR 8 added :class:`~repro.obs.stats.RunStats` bookkeeping to the scalar
kernel's steppers (plain-int increments at the RNG draw sites, one extra add
per ``start``/``select``/``fired``) and a once-per-run tracer check.  The
contract is that with tracing *disabled* — the default — the kernel pays at
most ``MAX_OVERHEAD`` relative to the same stepper with the per-event
instrumentation stripped.

The baseline is a subclass of the shipped ``_GillespieStepper`` whose
``start``/``select`` bodies are byte-for-byte the shipped ones minus the
counter increments, bound through the same :class:`SimulatorCore` run loop —
so the two timings differ *only* by the instrumentation, not by call
structure.  (The O(1) per-run additions — one ``perf_counter`` pair, one
``RunStats`` allocation, one ``tracer.enabled`` check — amortize to nothing
over the thousands of events each run fires and are shared by both sides
here.)

Timing discipline: best-of-``REPEATS`` per side, alternating sides, and up to
``ATTEMPTS`` rounds before declaring a regression — min-of-N is robust to
scheduler noise, the retries keep a single noisy round from failing CI.

Run with ``PYTHONPATH=src python -m pytest benchmarks/test_bench_obs.py
--benchmark``; the ``obs/*`` records land in ``BENCH_results.json`` and the
CI bench-compare gate diffs them with ``--filter obs``.
"""

import random
import time

from repro.functions.catalog import minimum_spec
from repro.obs.trace import get_tracer
from repro.sim.kernel import (
    _SILENT,
    _TIMED_OUT,
    GillespiePolicy,
    SimulatorCore,
    _GillespieStepper,
)

POPULATION = 1_000
REPEATS = 5
ATTEMPTS = 5
MAX_OVERHEAD = 0.02


class _UninstrumentedGillespieStepper(_GillespieStepper):
    """The shipped stepper with the PR 8 counter increments stripped."""

    __slots__ = ()

    def start(self, counts):
        self.props = [
            self._propensity(r, counts) for r in range(self.compiled.n_reactions)
        ]

    def select(self, time_now, max_time):
        props = self.props
        self.propensity_ops += len(props)
        total = sum(props)
        if total <= 0.0:
            return _SILENT, time_now
        rng = self.rng
        time_now += rng.expovariate(total)
        if time_now > max_time:
            return _TIMED_OUT, max_time
        choice = rng.random() * total
        cumulative = 0.0
        for j, a in enumerate(props):
            cumulative += a
            if choice <= cumulative:
                if a <= 0.0:
                    raise ValueError(
                        f"reaction {self.compiled.crn.reactions[j]} is not "
                        f"applicable (zero propensity)"
                    )
                return j, time_now
        for j in range(len(props) - 1, -1, -1):
            if props[j] > 0.0:
                return j, time_now
        raise AssertionError("positive total propensity but no positive term")


class _UninstrumentedGillespiePolicy(GillespiePolicy):
    def bind(self, compiled, rng):
        return _UninstrumentedGillespieStepper(compiled, rng)


def _best_run_seconds(crn, policy_cls):
    """Best-of-REPEATS wall time for one seeded run under ``policy_cls``."""
    best = float("inf")
    steps = 0
    for _ in range(REPEATS):
        core = SimulatorCore(crn, policy_cls(), rng=random.Random(7))
        initial = crn.initial_configuration((POPULATION, POPULATION))
        t0 = time.perf_counter()
        result = core.run(initial, max_steps=10_000_000)
        best = min(best, time.perf_counter() - t0)
        steps = result.steps
    return best, steps


def test_disabled_observability_overhead_is_bounded(bench_record):
    assert not get_tracer().enabled, "the gate measures the *disabled* path"
    crn = minimum_spec().known_crn

    ratio = float("inf")
    for _attempt in range(ATTEMPTS):
        # Alternate sides within one attempt so drift hits both equally.
        baseline_s, baseline_steps = _best_run_seconds(
            crn, _UninstrumentedGillespiePolicy
        )
        shipped_s, shipped_steps = _best_run_seconds(crn, GillespiePolicy)
        assert shipped_steps == baseline_steps  # same seed, same stream
        ratio = shipped_s / baseline_s
        if ratio <= 1.0 + MAX_OVERHEAD:
            break

    bench_record(
        f"obs/kernel-disabled/pop{2 * POPULATION}",
        2 * POPULATION,
        shipped_s,
        shipped_steps,
        overhead_ratio=round(ratio, 4),
    )
    bench_record(
        f"obs/kernel-uninstrumented/pop{2 * POPULATION}",
        2 * POPULATION,
        baseline_s,
        baseline_steps,
    )
    assert ratio <= 1.0 + MAX_OVERHEAD, (
        f"disabled-observability overhead {ratio - 1.0:.2%} exceeds "
        f"{MAX_OVERHEAD:.0%} (shipped {shipped_s:.4f}s vs baseline "
        f"{baseline_s:.4f}s over {shipped_steps} events)"
    )


def test_run_stats_survive_the_overhead_configuration(bench_record):
    """The gated configuration still reports full RunStats (no silent stub)."""
    crn = minimum_spec().known_crn
    core = SimulatorCore(crn, GillespiePolicy(), rng=random.Random(7))
    result = core.run(
        crn.initial_configuration((POPULATION, POPULATION)), max_steps=10_000_000
    )
    stats = result.stats
    assert stats is not None
    assert stats.events == result.steps == stats.selections
    assert stats.rng_draws == 2 * stats.events
    bench_record(
        f"obs/runstats/pop{2 * POPULATION}",
        2 * POPULATION,
        stats.wall_s,
        stats.events,
        propensity_ops=stats.propensity_ops,
        rng_draws=stats.rng_draws,
    )
