"""Property-based tests (hypothesis) for core data structures and invariants."""

import random
from fractions import Fraction

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.crn.configuration import Configuration
from repro.crn.network import CRN
from repro.crn.reachability import check_stable_computation_at
from repro.crn.reaction import Reaction
from repro.crn.species import Species, species
from repro.core.construction_1d import build_1d_crn
from repro.core.construction_quilt import build_quilt_affine_crn
from repro.core.impossibility import find_contradiction_witness
from repro.quilt.fitting import fit_eventually_quilt_affine_1d
from repro.quilt.quilt_affine import QuiltAffine, all_residues
from repro.sim.fair import FairScheduler
from repro.sim.kernel import SimulatorCore, TauLeapPolicy


SPECIES_POOL = species("A B C D")

counts_strategy = st.dictionaries(
    st.sampled_from(SPECIES_POOL), st.integers(min_value=0, max_value=20), max_size=4
)


class TestConfigurationAlgebra:
    @given(counts_strategy, counts_strategy)
    def test_addition_commutes(self, a, b):
        assert Configuration(a) + Configuration(b) == Configuration(b) + Configuration(a)

    @given(counts_strategy, counts_strategy, counts_strategy)
    def test_addition_associates(self, a, b, c):
        x, y, z = Configuration(a), Configuration(b), Configuration(c)
        assert (x + y) + z == x + (y + z)

    @given(counts_strategy, counts_strategy)
    def test_subtraction_inverts_addition(self, a, b):
        x, y = Configuration(a), Configuration(b)
        assert (x + y) - y == x

    @given(counts_strategy, counts_strategy, counts_strategy)
    def test_order_is_additive(self, a, b, c):
        # The reachability-additivity precondition used throughout the paper:
        # A <= B implies A + C <= B + C.
        x, y, z = Configuration(a), Configuration(b), Configuration(c)
        if x <= y:
            assert x + z <= y + z

    @given(counts_strategy)
    def test_zero_is_identity(self, a):
        x = Configuration(a)
        assert x + Configuration.zero() == x


class TestQuiltAffineInvariants:
    @st.composite
    def quilt_functions(draw):
        dimension = draw(st.integers(min_value=1, max_value=2))
        period = draw(st.integers(min_value=1, max_value=3))
        gradient = tuple(
            Fraction(draw(st.integers(min_value=0, max_value=6)), period) for _ in range(dimension)
        )
        base = {
            residue: Fraction(draw(st.integers(min_value=0, max_value=4)))
            for residue in all_residues(dimension, period)
        }
        # Force nondecreasing offsets by construction: take a running maximum cap.
        try:
            return QuiltAffine(gradient, period, base, validate=True)
        except ValueError:
            return None

    @given(quilt_functions())
    @settings(suppress_health_check=[HealthCheck.filter_too_much], max_examples=40)
    def test_valid_quilts_are_nondecreasing_pointwise(self, quilt):
        if quilt is None:
            return
        for x1 in range(4):
            point = (x1,) if quilt.dimension == 1 else (x1, 2)
            step = tuple(v + 1 for v in point)
            assert quilt(step) >= quilt(point)

    @given(quilt_functions(), st.integers(min_value=0, max_value=3), st.integers(min_value=0, max_value=3))
    @settings(suppress_health_check=[HealthCheck.filter_too_much], max_examples=40)
    def test_translation_consistency(self, quilt, a, b):
        if quilt is None:
            return
        shift = (a,) if quilt.dimension == 1 else (a, b)
        translated = quilt.translate(shift)
        probe = (2,) if quilt.dimension == 1 else (2, 1)
        assert translated(probe) == quilt(tuple(p + s for p, s in zip(probe, shift)))


class TestFittingRoundTrip:
    @given(
        st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=4),
        st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=3),
    )
    @settings(max_examples=30, deadline=None)
    def test_fit_recovers_eventually_periodic_functions(self, prefix_deltas, cycle_deltas):
        # Build f from nonnegative finite differences: a prefix followed by a repeated cycle.
        def func(x):
            total = 0
            for step in range(x):
                if step < len(prefix_deltas):
                    total += prefix_deltas[step]
                else:
                    total += cycle_deltas[(step - len(prefix_deltas)) % len(cycle_deltas)]
            return total

        structure = fit_eventually_quilt_affine_1d(func, max_start=12, max_period=8)
        for x in range(16):
            assert structure.value(x) == func(x)

    @given(
        st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=3),
        st.integers(min_value=0, max_value=4),
    )
    @settings(max_examples=20, deadline=None)
    def test_theorem_31_construction_on_random_functions(self, cycle_deltas, offset):
        def func(x):
            total = offset
            for step in range(x):
                total += cycle_deltas[step % len(cycle_deltas)]
            return total

        crn = build_1d_crn(func)
        value = 4
        verdict = check_stable_computation_at(crn, (value,), func(value), max_configurations=20_000)
        assert verdict.conclusive and verdict.holds


class TestSimulationAgreement:
    @given(st.integers(min_value=0, max_value=6), st.integers(min_value=0, max_value=6))
    @settings(max_examples=20, deadline=None)
    def test_min_crn_fair_runs_always_reach_min(self, a, b):
        X1, X2, Y = species("X1 X2 Y")
        crn = CRN([X1 + X2 >> Y], (X1, X2), Y)
        scheduler = FairScheduler(crn, rng=random.Random(a * 31 + b))
        result = scheduler.run_on_input((a, b))
        assert result.silent
        assert result.final_configuration[Y] == min(a, b)

    @given(st.integers(min_value=0, max_value=5))
    @settings(max_examples=15, deadline=None)
    def test_quilt_construction_matches_function_under_simulation(self, value):
        quilt = QuiltAffine.floor_linear((3,), 2)
        crn = build_quilt_affine_crn(quilt)
        scheduler = FairScheduler(crn, rng=random.Random(value))
        result = scheduler.run_on_input((value,))
        assert result.silent
        assert crn.output_count(result.final_configuration) == (3 * value) // 2


@st.composite
def random_crns(draw, allow_noops=False):
    """A random CRN over the species pool: 1-5 mass-action reactions with
    random (<= bimolecular) reactant/product sides and rates.

    ``allow_noops=True`` keeps catalytic no-op reactions (lhs == rhs) instead
    of skipping them — the dependency-graph properties need the zero-net-change
    edge case, while the tau-leaping invariants skip no-ops because they only
    stall the clock.
    """
    n_reactions = draw(st.integers(min_value=1, max_value=5))
    reactions = []
    for _ in range(n_reactions):
        reactant_pool = draw(
            st.lists(st.sampled_from(SPECIES_POOL), min_size=1, max_size=2)
        )
        product_pool = draw(
            st.lists(st.sampled_from(SPECIES_POOL), min_size=0, max_size=2)
        )
        lhs = {}
        for sp in reactant_pool:
            lhs[sp] = lhs.get(sp, 0) + 1
        rhs = {}
        for sp in product_pool:
            rhs[sp] = rhs.get(sp, 0) + 1
        if lhs == rhs and not allow_noops:
            continue  # skip pure no-ops; they only stall the clock
        rate = draw(st.floats(min_value=0.25, max_value=4.0))
        reactions.append(Reaction(lhs, rhs, rate=rate))
    if not reactions:
        return None
    inputs = tuple(SPECIES_POOL[:2])
    return CRN(reactions, inputs, SPECIES_POOL[2])


class TestTauLeapKernelInvariants:
    """Tau-leaping over random small CRNs: the kernel's safety rails hold for
    arbitrary reaction structure, not just the curated construction families."""

    @given(
        random_crns(),
        st.integers(min_value=0, max_value=400),
        st.integers(min_value=0, max_value=400),
        st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=40, deadline=None)
    def test_leaps_never_drive_counts_negative(self, crn, a, b, seed):
        # Drive the stepper protocol directly and inspect the raw dense
        # counts after every advance: the decoded Configuration drops
        # nonpositive entries, so it could never witness a negative count.
        if crn is None:
            return
        import math

        compiled = crn.compiled()
        stepper = TauLeapPolicy(epsilon=0.1).bind(compiled, random.Random(seed))
        counts = list(compiled.encode(crn.initial_configuration((a, b))))
        stepper.start(counts)
        time_now = 0.0
        fired = 0
        while fired < 5_000:
            events, time_now = stepper.advance(counts, time_now, math.inf)
            if events < 0:
                break
            fired += events
            assert all(count >= 0 for count in counts), counts

    @given(
        st.integers(min_value=0, max_value=500),
        st.integers(min_value=0, max_value=500),
        st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=30, deadline=None)
    def test_conservative_reactions_conserve_mass(self, a, b, seed):
        # Every reaction maps 2 molecules to 2 molecules, so the total count
        # is invariant under any schedule — including whole Poisson leaps.
        A, B, C, D = SPECIES_POOL
        crn = CRN(
            [A + B >> C + D, C + D >> A + B, (A + C >> B + D).with_rate(2.0)],
            (A, B),
            C,
        )
        core = SimulatorCore(crn, TauLeapPolicy(epsilon=0.1), rng=random.Random(seed))
        result = core.run_on_input((a, b), max_steps=3_000)
        total = sum(count for _, count in result.final_configuration.items())
        assert total == a + b

    @given(
        random_crns(),
        st.integers(min_value=0, max_value=300),
        st.integers(min_value=0, max_value=300),
        st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=40, deadline=None)
    def test_tau_fallback_always_terminates(self, crn, a, b, seed):
        # The rejection loop halves tau at most max_rejections times and then
        # falls back to bounded exact bursts, so a run always returns within
        # its budgets (overshooting max_steps by at most one leap).
        if crn is None:
            return
        policy = TauLeapPolicy(epsilon=0.05, max_rejections=3, exact_burst=16)
        core = SimulatorCore(crn, policy, rng=random.Random(seed))
        result = core.run_on_input((a, b), max_steps=2_000, quiescence_window=500)
        # With max_time unbounded the loop has exactly three exits: silence,
        # quiescence, or the step budget (possibly overshot by one leap).
        assert result.silent or result.converged or result.steps >= 2_000
        if result.steps:
            assert result.selections >= 1


class TestDependencyGraphProperties:
    """``CompiledCRN.dependency_graph`` vs brute force on random CRNs.

    The graph is the load-bearing structure of every incremental stepper
    (Gillespie, fair, NRM): if an edge is missing, a stale propensity can
    survive a firing and silently bias the sampled kinetics.  The semantic
    property below is the actual soundness requirement — any reaction whose
    propensity *can* change when ``j`` fires must be among ``j``'s dependents
    — and the structural property pins the (slightly stronger) definition the
    IR promises: reactant set intersects ``j``'s net-change support.
    """

    @given(random_crns(allow_noops=True))
    @settings(max_examples=60, deadline=None)
    def test_structural_brute_force(self, crn):
        if crn is None:
            return
        compiled = crn.compiled()
        for j, fired in enumerate(crn.reactions):
            changed = set(fired.net_changes())
            expected = tuple(
                r
                for r, rxn in enumerate(crn.reactions)
                if changed & set(rxn.reactants.counts)
            )
            assert compiled.dependency_graph[j] == expected, (crn.reactions, j)

    @given(
        random_crns(allow_noops=True),
        st.lists(st.integers(min_value=0, max_value=6), min_size=4, max_size=4),
    )
    @settings(max_examples=60, deadline=None)
    def test_semantic_completeness(self, crn, raw_counts):
        # Soundness of incremental updates: fire j from a random
        # configuration; every reaction whose propensity moved must be a
        # registered dependent of j.
        if crn is None:
            return
        before = Configuration(dict(zip(SPECIES_POOL, raw_counts)))
        for j, fired in enumerate(crn.reactions):
            if not fired.applicable(before):
                continue
            after = fired.apply(before)
            deps = set(crn.compiled().dependency_graph[j])
            for r, rxn in enumerate(crn.reactions):
                if rxn.propensity(before) != rxn.propensity(after):
                    assert r in deps, (
                        f"propensity of reaction {r} ({rxn}) changed when "
                        f"{j} ({fired}) fired, but {r} is not a dependent"
                    )

    def test_zero_net_change_reactions_have_no_dependents(self):
        # A catalytic no-op changes nothing, so it can invalidate no
        # propensity — not even its own (Gibson-Bruck's "no self edge unless
        # the reaction changes its own reactants").
        A, B, C, D = SPECIES_POOL
        crn = CRN([A + B >> A + B, A >> C], (A, B), C)
        compiled = crn.compiled()
        assert compiled.net_terms[0] == ()
        assert compiled.dependency_graph[0] == ()

    def test_self_dependency_when_own_reactants_change(self):
        # 2A -> A consumes its own reactant, so it must depend on itself;
        # A -> A + C leaves A untouched, so it must not.
        A, B, C, D = SPECIES_POOL
        crn = CRN([A + A >> A, A >> A + C], (A, B), C)
        compiled = crn.compiled()
        assert 0 in compiled.dependency_graph[0]
        assert 1 not in compiled.dependency_graph[1]
        # ...but 2A -> A changes A, which reaction 1 consumes: edge 0 -> 1.
        assert 1 in compiled.dependency_graph[0]

    @given(
        random_crns(allow_noops=True),
        st.integers(min_value=0, max_value=50),
        st.integers(min_value=0, max_value=50),
        st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=40, deadline=None)
    def test_nrm_incremental_propensities_stay_exact(self, crn, a, b, seed):
        # The dependency graph in action: along an NRM run over an arbitrary
        # random network, the incrementally-repaired propensity vector always
        # equals a from-scratch recomputation, and putative times are finite
        # exactly for enabled reactions.
        if crn is None:
            return
        import math

        from repro.sim.kernel import GillespiePolicy, NextReactionPolicy

        compiled = crn.compiled()
        stepper = NextReactionPolicy().bind(compiled, random.Random(seed))
        counts = list(compiled.encode(crn.initial_configuration((a, b))))
        stepper.start(counts)
        time_now = 0.0
        for _ in range(60):
            j, time_now = stepper.select(time_now, math.inf)
            if j < 0:
                break
            for s, delta in compiled.net_terms[j]:
                counts[s] += delta
            stepper.fired(j, counts)
            assert all(count >= 0 for count in counts), counts
            fresh = GillespiePolicy().bind(compiled, random.Random(0))
            fresh.start(counts)
            assert stepper.propensities() == fresh.propensities()
            for prop, t in zip(stepper.propensities(), stepper.putative_times()):
                assert (prop > 0.0) == (t != math.inf)


class TestWitnessSearchSoundness:
    @given(st.integers(min_value=1, max_value=3), st.integers(min_value=0, max_value=3))
    @settings(max_examples=10, deadline=None)
    def test_no_witness_for_linear_functions(self, slope, offset):
        # Affine functions are obliviously-computable, so the bounded Lemma 4.1
        # search must never find a witness for them.
        witness = find_contradiction_witness(
            lambda x: slope * x[0] + offset * x[1], 2, direction_bound=1, offset_bound=2, terms=3
        )
        assert witness is None


class TestBatchTauLeapInvariants:
    """The batched tau-leap engine's safety rails on random CRNs, plus
    scalar-vs-batched agreement of the shared CGP tau bound.

    The batched engine reimplements the scalar tau machinery in dense numpy;
    these properties pin the pieces the statistical gates cannot isolate —
    nonnegativity after whole Poisson leaps, conservation-law preservation,
    termination of the rejection/fallback cascade, and the tau bound itself
    agreeing with the scalar form on arbitrary reaction structure.
    """

    @given(
        random_crns(),
        st.integers(min_value=0, max_value=400),
        st.integers(min_value=0, max_value=400),
        st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=40, deadline=None)
    def test_batched_leaps_never_drive_counts_negative(self, crn, a, b, seed):
        # The per-trial rejection rail: whatever the sampled Poisson firing
        # counts, the accepted raw dense counts are never negative.
        if crn is None:
            return
        from repro.sim.engine import BatchTauLeapEngine

        engine = BatchTauLeapEngine(crn.compiled(), seed=seed, epsilon=0.1)
        result = engine.run_on_input((a, b), batch=5, max_steps=5_000)
        assert (result.counts >= 0).all()
        assert (result.steps >= 0).all()

    @given(
        st.integers(min_value=0, max_value=500),
        st.integers(min_value=0, max_value=500),
        st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=30, deadline=None)
    def test_conservative_reactions_conserve_mass_batched(self, a, b, seed):
        # Every reaction maps 2 molecules to 2 molecules, so the per-row
        # total is invariant under whole Poisson leaps and fallback bursts.
        from repro.sim.engine import BatchTauLeapEngine

        A, B, C, D = SPECIES_POOL
        crn = CRN(
            [A + B >> C + D, C + D >> A + B, (A + C >> B + D).with_rate(2.0)],
            (A, B),
            C,
        )
        result = BatchTauLeapEngine(crn.compiled(), seed=seed, epsilon=0.1).run_on_input(
            (a, b), batch=4, max_steps=3_000
        )
        assert (result.counts.sum(axis=1) == a + b).all()

    @given(
        random_crns(),
        st.lists(st.integers(min_value=0, max_value=400), min_size=4, max_size=4),
        st.floats(min_value=0.01, max_value=0.3),
    )
    @settings(max_examples=60, deadline=None)
    def test_scalar_and_batched_tau_bounds_agree(self, crn, raw_counts, epsilon):
        # Same propensity vector in, same CGP bound out — up to float
        # summation order (sparse dict accumulation vs dense matmul), hence
        # approx rather than exact equality.  Catalytic rows must be inf in
        # both forms.
        if crn is None:
            return
        import math

        import numpy as np

        from repro.sim.tau import build_g_candidates, select_tau, select_tau_batch

        compiled = crn.compiled()
        row = [int(v) for v in raw_counts[: compiled.n_species]]
        counts = np.array([row], dtype=np.int64)
        props = compiled.propensities(counts)
        g_candidates = build_g_candidates(compiled.reactant_terms)
        scalar = select_tau(
            g_candidates,
            compiled.net_terms,
            [float(v) for v in props[0]],
            row,
            epsilon,
        )
        batched = select_tau_batch(
            g_candidates,
            compiled.net_terms,
            compiled.n_species,
            np.repeat(props, 3, axis=0),
            np.repeat(counts, 3, axis=0),
            epsilon,
        )
        assert batched.shape == (3,)
        for value in batched:
            if math.isinf(scalar):
                assert math.isinf(value), (crn.reactions, row)
            else:
                assert math.isclose(float(value), scalar, rel_tol=1e-9), (
                    crn.reactions,
                    row,
                )

    @given(
        random_crns(),
        st.integers(min_value=0, max_value=300),
        st.integers(min_value=0, max_value=300),
        st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=40, deadline=None)
    def test_batched_fallback_always_terminates(self, crn, a, b, seed):
        # Tight rails (few rejections, tiny exact bursts) still terminate:
        # every run ends in silence, quiescence, or the step budget
        # (overshot by at most one leap per trial).
        if crn is None:
            return
        from repro.sim.engine import BatchTauLeapEngine

        engine = BatchTauLeapEngine(
            crn.compiled(), seed=seed, epsilon=0.05, max_rejections=3, exact_burst=16
        )
        result = engine.run_on_input(
            (a, b), batch=4, max_steps=2_000, quiescence_window=500
        )
        done = result.silent | result.converged | (result.steps >= 2_000)
        assert done.all(), (result.silent, result.converged, result.steps)
