"""Threshold hyperplanes shifted off the integer lattice.

Section 7.2 of the paper: each threshold set ``{x : t·x >= h}`` (with integer
``t, h``) has boundary hyperplane ``t·x = h``.  The paper rewrites thresholds
as ``2t·x > 2h - 1`` so the boundary ``t·x = h - 1/2`` contains no integer
point, which makes the induced partition of ``N^d`` well defined (every integer
point is strictly on one side).  :class:`Hyperplane` stores the original
integer data and performs the half-integer shift when computing sides.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence, Tuple


@dataclass(frozen=True)
class Hyperplane:
    """The boundary of the threshold set ``{x : normal·x >= threshold}``.

    The *positive side* (sign ``+1``) is ``normal·x >= threshold``; the
    *negative side* (sign ``-1``) is ``normal·x <= threshold - 1`` — every
    integer point is on exactly one side because the shifted boundary
    ``normal·x = threshold - 1/2`` contains no integer points.
    """

    normal: Tuple[int, ...]
    threshold: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "normal", tuple(int(v) for v in self.normal))
        if all(v == 0 for v in self.normal):
            raise ValueError("a hyperplane needs a nonzero normal vector")

    @property
    def dimension(self) -> int:
        """The ambient dimension."""
        return len(self.normal)

    def dot(self, x: Sequence) -> Fraction:
        """The (rational) value ``normal·x``."""
        if len(x) != self.dimension:
            raise ValueError(f"dimension mismatch: expected {self.dimension}, got {len(x)}")
        return sum((Fraction(n) * Fraction(v) for n, v in zip(self.normal, x)), start=Fraction(0))

    def side(self, x: Sequence[int]) -> int:
        """The side (+1 or -1) of the shifted hyperplane that the integer point ``x`` is on."""
        return 1 if self.dot(x) >= self.threshold else -1

    def shifted_value(self, x: Sequence) -> Fraction:
        """``normal·x - (threshold - 1/2)``: positive on the + side, negative on the - side."""
        return self.dot(x) - (Fraction(self.threshold) - Fraction(1, 2))

    def contains_integer_points(self) -> bool:
        """Whether the *shifted* boundary contains integer points (always False by design)."""
        return False

    def is_parallel_to(self, direction: Sequence) -> bool:
        """True if the direction vector is parallel to the hyperplane (normal·direction == 0)."""
        return sum(
            (Fraction(n) * Fraction(v) for n, v in zip(self.normal, direction)), start=Fraction(0)
        ) == 0

    def distance_to(self, x: Sequence) -> Fraction:
        """Scaled distance from ``x`` to the shifted boundary: ``|normal·x - (h - 1/2)|``.

        The true Euclidean distance divides this by ``‖normal‖``; the scaled
        version keeps the arithmetic rational and is sufficient for the
        separation arguments (Lemma 7.14) which only need lower bounds.
        """
        value = self.shifted_value(x)
        return value if value >= 0 else -value

    def __str__(self) -> str:
        terms = " + ".join(
            f"{c}*x{i+1}" for i, c in enumerate(self.normal) if c != 0
        ) or "0"
        return f"{{x : {terms} = {self.threshold} - 1/2}}"
