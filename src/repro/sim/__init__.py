"""Simulators for discrete CRNs.

Two schedulers are provided:

* :class:`GillespieSimulator` — the exact stochastic simulation algorithm
  (Gillespie 1977), which samples the continuous-time Markov process the paper
  describes.  Used for kinetic experiments and benchmarks.
* :class:`FairScheduler` — a rate-agnostic scheduler that repeatedly fires a
  uniformly random applicable reaction.  Stable computation is defined purely
  by reachability, so a fair random scheduler converges to the stable output
  with probability 1; this scheduler is the workhorse of the empirical
  verification harness for inputs too large for exhaustive search.
"""

from repro.sim.gillespie import GillespieSimulator, GillespieResult
from repro.sim.fair import FairScheduler, FairRunResult
from repro.sim.trajectory import Trajectory, TrajectoryPoint
from repro.sim.runner import (
    ConvergenceReport,
    run_to_convergence,
    run_many,
    estimate_expected_output,
    sweep_inputs,
)

__all__ = [
    "GillespieSimulator",
    "GillespieResult",
    "FairScheduler",
    "FairRunResult",
    "Trajectory",
    "TrajectoryPoint",
    "ConvergenceReport",
    "run_to_convergence",
    "run_many",
    "estimate_expected_output",
    "sweep_inputs",
]
